"""Learning-curve benchmark: accuracy vs training-corpus size.

The paper trains on ~390k sessions; this reproduction uses thousands.
The learning curve quantifies what that costs: stall-model CV accuracy
as the training corpus grows, over the fixed CFS-selected feature
subset.  A flattening curve indicates the bench-scale corpora are large
enough for stable paper-shaped numbers."""

import numpy as np

from repro.core.features import build_stall_matrix
from repro.core.labeling import STALL_LABELS, label_records, stall_label
from repro.ml.balance import oversample
from repro.ml.crossval import cross_validate
from repro.ml.forest import RandomForestClassifier

from conftest import paper_row


def test_learning_curve(benchmark, workspace):
    records = workspace.stall_records()
    detector = workspace.stall_detector()
    X_full, _ = build_stall_matrix(records)
    X_full = X_full[:, detector.selected_indices_]
    y_full = label_records(records, stall_label)

    sizes = [n for n in (300, 600, 1200) if n < len(records)]
    sizes.append(len(records))

    def run():
        rng = np.random.default_rng(7)
        order = rng.permutation(len(records))
        accuracies = {}
        for n in sizes:
            idx = order[:n]
            X, y = X_full[idx], y_full[idx]
            if np.unique(y).size < 3:
                continue
            report = cross_validate(
                lambda: RandomForestClassifier(
                    n_estimators=40, min_samples_leaf=3, random_state=7
                ),
                X,
                y,
                n_splits=5,
                random_state=7,
                balance=lambda Xb, yb: oversample(Xb, yb, random_state=7),
                labels=list(STALL_LABELS),
            )
            accuracies[n] = report.accuracy
        return accuracies

    accuracies = benchmark.pedantic(run, rounds=1, iterations=1)
    for n, accuracy in accuracies.items():
        paper_row(
            f"learning curve: {n} training sessions",
            "grows toward 93.5%",
            f"{accuracy:.1%}",
        )
    values = list(accuracies.values())
    # the curve must not collapse as data grows, and the largest corpus
    # should be within a few points of the best point on the curve
    assert values[-1] >= max(values) - 0.04
    assert values[-1] >= 0.85
