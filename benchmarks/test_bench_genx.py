"""Vectorized-vs-per-session benchmark for the corpus engine.

Acceptance shape: on 2k planned sessions the vectorized engine
(``repro.datasets.genx.vector``) must simulate the corpus at least 2x
faster than the per-session oracle — and bit-identically (every chunk,
transfer annotation, stall and session field compared exactly, no
tolerances).  Vectorizing the transport rounds while keeping the
players' control flow per-session in Python yields ~3x on a quiet
host; the gate is set at 2x so scheduler noise cannot flake it.

The equality half always runs.  The speed half is skipped (not
weakened) only when the host is so overloaded that even the oracle
falls under a floor rate — a machine that slow cannot produce a
meaningful ratio.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

import pytest

from repro.datasets.generate import CorpusConfig, _simulate_sessions_oracle
from repro.datasets.genx.plan import build_plan
from repro.datasets.genx.streams import corpus_streams
from repro.datasets.genx.vector import simulate_sessions
from repro.streaming.catalog import VideoCatalog

from conftest import paper_row

N_SESSIONS = 2000
MIN_SPEEDUP = 2.0
#: Oracle sessions/sec below which the host is too loaded to time.
SLOW_HOST_FLOOR = 40.0


def _assert_identical(a, b, path=""):
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        assert isinstance(a, np.ndarray) and isinstance(b, np.ndarray), path
        assert np.array_equal(a, b), f"{path}: arrays differ"
        return
    if dataclasses.is_dataclass(a) and not isinstance(a, type):
        assert type(a) is type(b), path
        for f in dataclasses.fields(a):
            _assert_identical(
                getattr(a, f.name), getattr(b, f.name), f"{path}.{f.name}"
            )
        return
    if isinstance(a, (list, tuple)):
        assert len(a) == len(b), f"{path}: len {len(a)} != {len(b)}"
        for i, (x, y) in enumerate(zip(a, b)):
            _assert_identical(x, y, f"{path}[{i}]")
        return
    assert a == b, f"{path}: {a!r} != {b!r}"


def _plan_and_streams(config):
    catalog = VideoCatalog(mean_duration_s=config.mean_video_duration_s)
    plan_rng, streams = corpus_streams(config.seed, config.n_sessions)
    return build_plan(config, plan_rng, catalog), streams


def test_vectorized_speedup_and_equality(benchmark):
    """Vectorized >= 2x over the oracle at 2k sessions, bit-identical."""
    config = CorpusConfig(n_sessions=N_SESSIONS, seed=77)
    # Each engine gets its own identically-seeded plan and streams, so
    # both consume fresh RNG state exactly as a real generation run.
    vec_plan, vec_streams = _plan_and_streams(config)
    ora_plan, ora_streams = _plan_and_streams(config)

    holder = {}

    def _vectorized() -> float:
        start = time.perf_counter()
        holder["vec"] = simulate_sessions(vec_plan, vec_streams)
        return time.perf_counter() - start

    vectorized_s = benchmark.pedantic(_vectorized, rounds=1, iterations=1)

    oracle_start = time.perf_counter()
    oracle = _simulate_sessions_oracle(ora_plan, ora_streams)
    oracle_s = time.perf_counter() - oracle_start

    # Equality is the contract and never skipped.
    _assert_identical(holder["vec"], oracle, "sessions")

    speedup = oracle_s / vectorized_s
    paper_row(
        f"corpus simulation, {N_SESSIONS} sessions",
        f">= {MIN_SPEEDUP:.0f}x vectorized, bit-identical",
        f"per-session {oracle_s:.2f}s / vectorized {vectorized_s:.2f}s "
        f"= {speedup:.1f}x",
    )
    if N_SESSIONS / oracle_s < SLOW_HOST_FLOOR:
        pytest.skip(
            f"host too loaded to time: oracle ran "
            f"{N_SESSIONS / oracle_s:.0f} sessions/s "
            f"(floor {SLOW_HOST_FLOOR:.0f})"
        )
    assert speedup >= MIN_SPEEDUP, (
        f"expected >={MIN_SPEEDUP}x vectorized speedup, got {speedup:.2f}x "
        f"(per-session {oracle_s:.2f}s, vectorized {vectorized_s:.2f}s)"
    )
