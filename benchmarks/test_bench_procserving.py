"""Benchmark gate for the process-sharded (true multi-core) serving tier.

The paper's deployment target is ISP scale — millions of subscribers
behind one passive tap.  The thread backend tops out at one core (the
GIL serializes feature extraction and forest inference), so its gate
is only 1.5x; the process backend must clear **>=2.5x serial
sessions/sec with 4 process shards** (skipped, never weakened, on
boxes with fewer than 4 usable cores) while staying *bit-identical* to
the serial monitor.

Population scale comes from **subscriber tiling**: a base synthetic
trace is replicated under fresh subscriber identities, multiplying the
population and the entry volume without re-simulating sessions.  The
default run tiles to ~1k subscribers (~180k weblog entries — CI
sized); ``REPRO_BENCH_MILLION=1`` tiles the same way to a full
1,000,000-subscriber replay (tens of millions of entries; budget tens
of minutes per backend).

Latency gate: p99 end-to-end diagnosis latency (submit → diagnosis,
from the merged ``repro_serving_e2e_seconds`` histogram) must beat the
*serial* wall-clock — i.e. sharding must buy latency, not just
throughput.  Under max-rate replay the producer always outruns the
consumers, so e2e is backlog-dominated and the gate is only meaningful
with real parallelism; it shares the <4-core skip.  The per-batch
``diagnose`` stage p99 is gated unconditionally — vectorized batch
inference must stay fast regardless of core count.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.obs import get_registry
from repro.realtime.monitor import RealTimeMonitor
from repro.serving.replay import synthetic_trace
from repro.serving.service import QoEService

from conftest import paper_row

MILLION = os.environ.get("REPRO_BENCH_MILLION") == "1"

#: (base sessions, base subscribers, tiles).  Tiling multiplies both
#: the subscriber population and the entry volume.
BASE_SESSIONS, BASE_SUBSCRIBERS, TILES = (
    (2000, 2000, 500) if MILLION else (500, 125, 8)
)
POPULATION = BASE_SUBSCRIBERS * TILES
N_SHARDS = 4
SPEEDUP_FLOOR = 2.5
DIAGNOSE_P99_CEILING_S = 0.5


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:   # non-Linux
        return os.cpu_count() or 1


def tile_population(trace, tiles):
    """The trace replayed by ``tiles`` disjoint subscriber populations.

    Tile 0 is the original; tile *k* clones every entry under
    subscriber ``<id>~t<k>``.  Entries stay in timestamp order (the
    tiles interleave exactly as the base trace does), every clone
    keeps its tile's per-subscriber sequence, and CRC32 partitioning
    spreads the new identities across shards — which is what makes
    tiling a faithful population-scale stand-in.
    """
    if tiles < 1:
        raise ValueError("tiles must be >= 1")
    if tiles == 1:
        return list(trace)
    out = []
    for entry in trace:
        out.append(entry)
        for k in range(1, tiles):
            clone = object.__new__(type(entry))
            clone.__dict__.update(entry.__dict__)
            clone.__dict__["subscriber_id"] = f"{entry.subscriber_id}~t{k}"
            out.append(clone)
    return out


@pytest.fixture(scope="module")
def framework(serving_framework):
    return serving_framework


@pytest.fixture(scope="module")
def trace():
    base = synthetic_trace(
        BASE_SESSIONS, seed=29, subscribers=BASE_SUBSCRIBERS
    )
    return tile_population(base, TILES)


def _multiset(diagnoses):
    return sorted(
        (
            d.session_id,
            d.stall_class,
            d.representation_class,
            d.has_quality_switches,
        )
        for d in diagnoses
    )


def _serial_run(framework, trace):
    monitor = RealTimeMonitor(framework)
    start = time.perf_counter()
    monitor.feed_many(trace)
    monitor.drain()
    return time.perf_counter() - start, monitor


def _process_run(framework, trace):
    service = QoEService(
        framework, n_shards=N_SHARDS, shard_backend="process"
    )
    service.start()
    start = time.perf_counter()
    service.submit_many(trace)
    service.drain()
    elapsed = time.perf_counter() - start
    service.stop()
    return elapsed, service


def _histogram_p99(name, **match):
    worst = 0.0
    for family in get_registry().collect():
        if family.name == name:
            for labels, child in family.samples():
                if child.count and all(
                    labels.get(k) == v for k, v in match.items()
                ):
                    worst = max(worst, child.quantile(0.99))
    return worst


@pytest.fixture(scope="module")
def runs(framework, trace):
    serial_s, serial = _serial_run(framework, trace)
    process_s, service = _process_run(framework, trace)
    return serial_s, serial, process_s, service


def test_process_backend_deterministic_at_population_scale(runs, trace):
    """Tiled population, 4 process shards: diagnosis multiset identical
    to the serial monitor's."""
    _, serial, _, service = runs
    sessions = BASE_SESSIONS * TILES
    assert len(serial.diagnoses) >= sessions * 0.98
    assert _multiset(service.diagnoses) == _multiset(serial.diagnoses)
    paper_row(
        f"process-shard determinism, {POPULATION} subscribers",
        "multiset-identical",
        f"{len(service.diagnoses)} diagnoses over {len(trace)} entries "
        "(4 process shards == serial)",
    )


def test_process_backend_speedup_gate(runs, trace):
    """4 process shards >= 2.5x serial sessions/sec (true multi-core)."""
    serial_s, _, process_s, _ = runs
    sessions = BASE_SESSIONS * TILES
    speedup = serial_s / process_s
    paper_row(
        f"process-shard throughput, {N_SHARDS} shards",
        f">={SPEEDUP_FLOOR}x serial",
        f"serial {sessions / serial_s:.0f}/s, process "
        f"{sessions / process_s:.0f}/s = {speedup:.2f}x",
    )
    if _usable_cpus() < N_SHARDS:
        pytest.skip(
            f"only {_usable_cpus()} usable core(s); "
            f">={SPEEDUP_FLOOR}x needs >= {N_SHARDS}"
        )
    assert speedup >= SPEEDUP_FLOOR, (
        f"expected >={SPEEDUP_FLOOR}x sessions/sec with {N_SHARDS} "
        f"process shards, got {speedup:.2f}x "
        f"(serial {serial_s:.2f}s, process {process_s:.2f}s)"
    )


def test_diagnosis_latency_gates(runs):
    """p99 e2e < serial wall-clock (>=4 cores); diagnose-stage p99
    bounded unconditionally."""
    serial_s, _, _, _ = runs
    stage_p99 = _histogram_p99(
        "repro_serving_stage_seconds", stage="diagnose"
    )
    e2e_p99 = _histogram_p99("repro_serving_e2e_seconds")
    assert e2e_p99 > 0.0, "e2e histogram never observed a sample"
    paper_row(
        "process-shard p99 latency",
        f"diagnose < {DIAGNOSE_P99_CEILING_S}s, e2e < serial wall-clock",
        f"stage p99 {stage_p99 * 1000:.1f}ms, e2e p99 {e2e_p99:.2f}s "
        f"(serial {serial_s:.2f}s)",
    )
    # The worst per-batch stage (including diagnose) must stay fast on
    # any box: it measures vectorized work, not backlog.
    assert stage_p99 < DIAGNOSE_P99_CEILING_S, (
        f"stage p99 {stage_p99:.3f}s breaches "
        f"{DIAGNOSE_P99_CEILING_S}s ceiling"
    )
    if _usable_cpus() < N_SHARDS:
        pytest.skip(
            f"only {_usable_cpus()} usable core(s); e2e p99 gate needs "
            f">= {N_SHARDS}"
        )
    assert e2e_p99 < serial_s, (
        f"p99 end-to-end {e2e_p99:.2f}s did not beat serial wall-clock "
        f"{serial_s:.2f}s — sharding bought no latency"
    )
