"""Columnar-vs-per-record benchmark for the batch feature engine.

Acceptance shape: on >= 2k synthetic sessions the serial columnar
engine must build the 210-column representation matrix at least 5x
faster than the per-record reference — and bit-identically
(``np.array_equal``, not allclose).  The serial gate runs on any
machine; the parallel fan-out variant additionally needs cores to show
a win and is skipped (not weakened) below 4 usable CPUs.  A repeated
build must come back from the content-addressed cache without touching
the engine at all.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core.features import (
    build_representation_matrix,
    build_stall_matrix,
)
from repro.core.featurex import configure_cache, get_cache
from repro.datasets.schema import SessionRecord

from conftest import paper_row

N_SESSIONS = 2000
MIN_SPEEDUP = 5.0
N_JOBS = 4


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:   # non-Linux
        return os.cpu_count() or 1


def _synthetic_records(n=N_SESSIONS, seed=0):
    """Corpus-shaped records without the simulator (keeps setup cheap).

    Chunk counts span the corpus range (6..124) so the length-grouped
    engine sees realistically ragged batches, not one dense block.
    """
    rng = np.random.default_rng(seed)
    lengths = rng.integers(6, 125, size=n)
    records = []
    for i, n_chunks in enumerate(lengths):
        records.append(
            SessionRecord(
                session_id=f"bench-{i}",
                encrypted=False,
                timestamps=np.sort(rng.uniform(0.0, 600.0, n_chunks)),
                sizes=rng.uniform(2e5, 4e6, n_chunks),
                transactions=rng.uniform(0.05, 4.0, n_chunks),
                rtt_min=rng.uniform(10.0, 40.0, n_chunks),
                rtt_avg=rng.uniform(40.0, 90.0, n_chunks),
                rtt_max=rng.uniform(90.0, 300.0, n_chunks),
                bdp=rng.uniform(1e4, 1e6, n_chunks),
                bif_avg=rng.uniform(1e3, 1e5, n_chunks),
                bif_max=rng.uniform(1e4, 5e5, n_chunks),
                loss_pct=rng.uniform(0.0, 2.0, n_chunks),
                retx_pct=rng.uniform(0.0, 3.0, n_chunks),
            )
        )
    return records


def _build_seconds(records, **kwargs) -> float:
    start = time.perf_counter()
    build_representation_matrix(records, cache=False, **kwargs)
    return time.perf_counter() - start


def test_columnar_speedup_and_equality(benchmark):
    """Serial columnar >= 5x over per-record, bit-identical output."""
    records = _synthetic_records()

    reference_start = time.perf_counter()
    reference, _ = build_representation_matrix(
        records, engine="per-record", cache=False
    )
    reference_s = time.perf_counter() - reference_start

    columnar_s = benchmark.pedantic(
        _build_seconds,
        args=(records,),
        kwargs=dict(engine="columnar"),
        rounds=1,
        iterations=1,
    )
    columnar, _ = build_representation_matrix(
        records, engine="columnar", cache=False
    )
    assert np.array_equal(columnar, reference)

    speedup = reference_s / columnar_s
    paper_row(
        f"representation features, {N_SESSIONS} sessions (210 cols)",
        f">= {MIN_SPEEDUP:.0f}x columnar, bit-identical",
        f"per-record {reference_s:.2f}s / columnar {columnar_s:.2f}s "
        f"= {speedup:.1f}x",
    )
    assert speedup >= MIN_SPEEDUP, (
        f"expected >={MIN_SPEEDUP}x columnar speedup, got {speedup:.2f}x "
        f"(per-record {reference_s:.2f}s, columnar {columnar_s:.2f}s)"
    )


def test_stall_matrix_engines_bit_identical():
    """The 70-column model at benchmark scale, both engines."""
    records = _synthetic_records(seed=1)
    columnar, _ = build_stall_matrix(records, engine="columnar", cache=False)
    reference, _ = build_stall_matrix(records, engine="per-record", cache=False)
    assert np.array_equal(columnar, reference)


def test_parallel_build_matches_serial(benchmark):
    """Row-chunk fan-out: identical matrix, less wall-clock given cores."""
    records = _synthetic_records(seed=2)
    serial, _ = build_representation_matrix(records, n_jobs=1, cache=False)

    def _parallel():
        matrix, _ = build_representation_matrix(
            records, n_jobs=N_JOBS, cache=False
        )
        return matrix

    parallel = benchmark.pedantic(_parallel, rounds=1, iterations=1)
    assert np.array_equal(serial, parallel)
    if _usable_cpus() < N_JOBS:
        pytest.skip(
            f"only {_usable_cpus()} usable core(s); "
            f"fan-out win needs >= {N_JOBS}"
        )


def test_cache_hit_skips_the_build(tmp_path):
    """A repeated build on unchanged records is a cache hit, not a build."""
    records = _synthetic_records(n=500, seed=3)
    cache = get_cache()
    old_directory = cache.directory
    configure_cache(directory=str(tmp_path))
    cache.clear()
    try:
        cold_start = time.perf_counter()
        first, _ = build_representation_matrix(records)
        cold_s = time.perf_counter() - cold_start

        hit_start = time.perf_counter()
        second, _ = build_representation_matrix(records)
        hit_s = time.perf_counter() - hit_start

        assert second is first   # memory-layer hit: the same object
        paper_row(
            "feature-matrix cache hit, 500 sessions",
            "memoized, same object",
            f"cold {cold_s:.3f}s / hit {hit_s*1000:.1f}ms",
        )
        # a hit only hashes the inputs — it must beat the build easily
        assert hit_s < cold_s
    finally:
        configure_cache(directory=old_directory)
        cache.clear()
