"""Benchmarks for the average-representation experiments (Tables 5-7)."""

import numpy as np

from repro.experiments.tables import (
    table5_representation_features,
    tables6_7_representation_classifier,
)

from conftest import paper_row


def test_tab5_representation_features(benchmark, workspace):
    """Table 5: ~15 features selected, dominated by chunk-size stats."""
    workspace.representation_records()
    workspace.representation_detector()
    table = benchmark.pedantic(
        table5_representation_features, args=(workspace,), rounds=1, iterations=1
    )
    assert 5 <= len(table.rows) <= 15
    assert table.chunk_feature_share() >= 0.6, (
        "paper: chunk-size statistics represent the vast majority"
    )
    top_feature = max(table.rows, key=lambda r: r[1])[0]
    assert top_feature.startswith(("chunk", "throughput", "cumsum"))
    paper_row("tab5: subset size", "15", str(len(table.rows)))
    paper_row(
        "tab5: chunk-derived share",
        "12 of 15",
        f"{table.chunk_feature_share():.0%}",
    )
    paper_row("tab5: top feature", "chunk size 75%", top_feature)


def test_tab6_tab7_representation_classifier(benchmark, workspace):
    """Tables 6-7: ~84.5%; LD best; HD worst with HD->SD confusion."""
    workspace.representation_detector()
    table = benchmark.pedantic(
        tables6_7_representation_classifier,
        args=(workspace,),
        rounds=1,
        iterations=1,
    )
    report = table.report
    by_label = report.by_label()
    assert report.accuracy >= 0.75
    # LD recalled best (paper 90%); HD worst (paper 75.6%)
    assert by_label["LD"].recall >= by_label["HD"].recall
    # confusion stays between adjacent classes: LD is (almost) never
    # predicted HD and vice versa
    matrix = table.confusion_percent()
    assert matrix[0, 2] < 5.0     # LD -> HD
    assert matrix[2, 0] < 20.0    # HD -> LD
    paper_row("tab6: overall accuracy", "84.5%", f"{report.accuracy:.1%}")
    paper_row("tab6: LD recall", "90.0%", f"{by_label['LD'].recall:.1%}")
    paper_row("tab6: SD recall", "76.8%", f"{by_label['SD'].recall:.1%}")
    paper_row("tab6: HD recall", "75.0%", f"{by_label['HD'].recall:.1%}")
