"""Flow-level (proxy-less) deployment benchmark.

The paper's vantage point is a proxy that annotates transactions with
TCP statistics.  This bench measures the harder tap-only deployment:
sessions are reduced to raw packet streams (with LRO-style aggregation,
as taps commonly deliver), transactions are reassembled from packets
alone, and stall detection runs on the reassembled records.

Two variants:

* **naive transfer** — the proxy-trained model applied unchanged to
  tap records.  The TCP-annotation features it selected are zero at a
  tap, so this collapses: a negative result worth measuring.
* **tap-retrained** — the same pipeline trained *on tap records* (an
  operator trains where ground truth exists, but measured through the
  same tap it will deploy on).  Size/timing features carry enough
  signal to keep the detector useful without any TCP annotations.
"""

import numpy as np

from repro.capture.flows import FlowSynthesizer, record_from_packets
from repro.core.labeling import stall_label
from repro.core.stall import StallDetector
from repro.datasets.preparation import record_from_video_session

from conftest import paper_row


def _tap_records(sessions, rng, mtu_payload=4200):
    """(tap record, truth label) pairs; LRO-aggregated packet streams."""
    synthesizer = FlowSynthesizer(rng, mtu_payload=mtu_payload)
    out = []
    for session in sessions:
        truth = stall_label(record_from_video_session(session))
        try:
            record = record_from_packets(synthesizer.synthesize(session))
        except ValueError:
            continue
        out.append((record, truth))
    return out


def test_flow_level_stall_detection(benchmark, workspace):
    proxy_detector = workspace.stall_detector()
    sessions = [
        s
        for s in workspace.cleartext_corpus().sessions
        if s.total_duration_s > 0 and len(s.chunks) >= 3
    ][:500]
    split = int(0.7 * len(sessions))

    def run():
        rng = np.random.default_rng(7)
        train = _tap_records(sessions[:split], rng)
        test = _tap_records(sessions[split:], rng)
        test_records = [r for r, _ in test]
        test_truth = np.array([t for _, t in test])

        # (a) naive transfer of the proxy-trained model
        naive_pred = proxy_detector.predict(test_records)
        naive_acc = float(np.mean(naive_pred == test_truth))

        # (b) retrain the same pipeline on tap records
        tap_detector = StallDetector(
            n_estimators=workspace.config.n_estimators,
            random_state=7,
        )
        tap_detector.fit(
            [r for r, _ in train], labels=np.array([t for _, t in train])
        )
        tap_pred = tap_detector.predict(test_records)
        tap_acc = float(np.mean(tap_pred == test_truth))
        return naive_acc, tap_acc, len(test), tap_detector.selected_names_

    naive_acc, tap_acc, n_test, tap_features = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    paper_row(
        "flow-level: proxy model applied naively",
        "collapses (negative result)",
        f"{naive_acc:.1%} (n={n_test})",
    )
    paper_row(
        "flow-level: retrained on tap records",
        "usable without TCP annotations",
        f"{tap_acc:.1%}",
    )
    paper_row(
        "flow-level: tap model's features",
        "size/timing only",
        ", ".join(tap_features[:4]) + " ...",
    )
    assert tap_acc >= 0.7
    assert tap_acc > naive_acc
    # the tap pipeline must not have selected proxy-only features
    assert not any(
        name.startswith(("BDP", "BIF", "packet")) for name in tap_features
    )
