"""Benchmark for the Prometheus-baseline comparison (§4.1 / §6)."""

from repro.experiments.tables import baseline_comparison

from conftest import paper_row


def test_prometheus_baseline(benchmark, workspace):
    """The paper's model beats the Prometheus-style binary classifier
    (~84% in [15]) while solving the harder 3-class task."""
    workspace.stall_detector()
    workspace.prometheus_baseline()
    comparison = benchmark.pedantic(
        baseline_comparison, args=(workspace,), rounds=1, iterations=1
    )
    assert comparison.model_wins()
    assert comparison.model_three_class_accuracy > 0.8
    paper_row(
        "baseline: Prometheus binary accuracy",
        "~84%",
        f"{comparison.baseline_binary_accuracy:.1%}",
    )
    paper_row(
        "baseline: paper model (3-class)",
        "93.5%",
        f"{comparison.model_three_class_accuracy:.1%}",
    )
    paper_row(
        "baseline: paper model on binary task",
        "higher",
        f"{comparison.model_binary_accuracy:.1%}",
    )
