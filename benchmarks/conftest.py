"""Shared fixtures for the benchmark harness.

The benchmarks regenerate every table and figure of the paper at a
scale that keeps the whole harness runnable in minutes.  One shared
:class:`~repro.experiments.workspace.Workspace` is built per session;
individual benchmarks then time the experiment-specific work (feature
construction, training, evaluation, time-series scoring) and assert the
paper's qualitative shape.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.workspace import Workspace

#: Benchmark-scale corpora: big enough for stable paper-shaped numbers,
#: small enough for a minutes-long harness.
BENCH_CONFIG = ExperimentConfig(
    cleartext_sessions=1500,
    adaptive_sessions=800,
    encrypted_sessions=400,
    seed=7,
    n_estimators=40,
)


@pytest.fixture(scope="session")
def workspace():
    return Workspace(BENCH_CONFIG)


def paper_row(name: str, paper_value: str, measured: str) -> None:
    """Print a paper-vs-measured comparison row under -s / in captured logs."""
    print(f"    {name:<46} paper: {paper_value:<14} measured: {measured}")
