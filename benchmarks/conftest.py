"""Shared fixtures for the benchmark harness.

The benchmarks regenerate every table and figure of the paper at a
scale that keeps the whole harness runnable in minutes.  One shared
:class:`~repro.experiments.workspace.Workspace` is built per session;
individual benchmarks then time the experiment-specific work (feature
construction, training, evaluation, time-series scoring) and assert the
paper's qualitative shape.
"""

from __future__ import annotations

import pytest

from repro import QoEFramework
from repro.datasets.generate import (
    generate_adaptive_corpus,
    generate_cleartext_corpus,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.workspace import Workspace

#: Benchmark-scale corpora: big enough for stable paper-shaped numbers,
#: small enough for a minutes-long harness.
BENCH_CONFIG = ExperimentConfig(
    cleartext_sessions=1500,
    adaptive_sessions=800,
    encrypted_sessions=400,
    seed=7,
    n_estimators=40,
)


@pytest.fixture(scope="session")
def workspace():
    return Workspace(BENCH_CONFIG)


@pytest.fixture(scope="session")
def serving_corpora():
    """Training corpora shared by the serving-layer benchmarks.

    Built once per harness run (the corpus engine makes this cheap);
    every serving/faults/online benchmark trains its framework from the
    same pair instead of regenerating per module.
    """
    cleartext = generate_cleartext_corpus(400, seed=3)
    adaptive = generate_adaptive_corpus(200, seed=4)
    return cleartext, adaptive


@pytest.fixture(scope="session")
def serving_framework(serving_corpora):
    """One fitted QoE framework shared by the serving-layer benchmarks."""
    cleartext, adaptive = serving_corpora
    return QoEFramework(random_state=0, n_estimators=20).fit(
        cleartext.records_with_stall_truth(),
        [r for r in adaptive.records if r.resolutions is not None],
    )


def paper_row(name: str, paper_value: str, measured: str) -> None:
    """Print a paper-vs-measured comparison row under -s / in captured logs."""
    print(f"    {name:<46} paper: {paper_value:<14} measured: {measured}")
