"""Benchmark for the §7 extension: generalisation to other services.

The paper's future work argues the methodology should transfer to other
services built on the same delivery technologies (Vimeo, Dailymotion,
...).  This bench evaluates the YouTube-trained detectors, frozen, on
simulated corpora of two services with different ladders, segment
sizing and buffering."""

from repro.experiments.generalization import evaluate_generalization

from conftest import paper_row


def test_generalization_to_other_services(benchmark, workspace):
    stall = workspace.stall_detector()
    switch = workspace.switch_detector()
    results = benchmark.pedantic(
        evaluate_generalization,
        args=(stall, switch),
        kwargs={"n_sessions": 200},
        rounds=1,
        iterations=1,
    )
    assert len(results) == 2
    for result in results:
        paper_row(
            f"§7: stall accuracy on {result.service}",
            "should transfer",
            f"{result.stall_accuracy:.1%} (healthy {result.stall_healthy_recall:.1%})",
        )
        paper_row(
            f"§7: switch split on {result.service}",
            "should transfer",
            f"{result.switch_accuracy_without:.1%} / {result.switch_accuracy_with:.1%}",
        )
        # transfer must beat chance decisively on both tasks
        assert result.stall_accuracy >= 0.6
        assert result.stall_healthy_recall >= 0.6
        assert (
            result.switch_accuracy_without + result.switch_accuracy_with
        ) / 2 >= 0.55
