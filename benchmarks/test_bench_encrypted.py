"""Benchmarks for the encrypted-traffic evaluation (§5: Tables 8-11, §5.6)."""

import numpy as np

from repro.experiments.tables import (
    section56_encrypted_switching,
    tables8_9_encrypted_stall,
    tables10_11_encrypted_representation,
)

from conftest import paper_row


def test_tab8_tab9_encrypted_stall(benchmark, workspace):
    """Tables 8-9: frozen stall model on encrypted traffic.

    Paper: 91.8% (1.7 points below cleartext); healthy sessions detected
    best; the accuracy loss concentrates in the severe class, which is
    confused with mild.
    """
    workspace.stall_detector()
    workspace.encrypted_stall_records()
    table = benchmark.pedantic(
        tables8_9_encrypted_stall, args=(workspace,), rounds=1, iterations=1
    )
    report = table.report
    by_label = report.by_label()
    assert report.accuracy >= 0.65
    # healthy class detected well (paper 97.2%); allow sampling noise in
    # which impaired class happens to score highest at bench scale
    best_recall = max(row.recall for row in report.classes)
    assert by_label["no stalls"].recall >= best_recall - 0.15
    assert by_label["no stalls"].recall >= 0.6
    paper_row("tab8: overall accuracy", "91.8%", f"{report.accuracy:.1%}")
    paper_row(
        "tab8: no-stalls recall", "97.2%", f"{by_label['no stalls'].recall:.1%}"
    )
    paper_row(
        "tab9: severe recall", "65.6%", f"{by_label['severe stalls'].recall:.1%}"
    )


def test_tab10_tab11_encrypted_representation(benchmark, workspace):
    """Tables 10-11: frozen representation model on encrypted traffic.

    Paper: 81.9% (2.6 points below cleartext); LD best; HD hit hardest
    by class scarcity.
    """
    workspace.representation_detector()
    workspace.encrypted_representation_records()
    table = benchmark.pedantic(
        tables10_11_encrypted_representation,
        args=(workspace,),
        rounds=1,
        iterations=1,
    )
    report = table.report
    by_label = report.by_label()
    assert report.accuracy >= 0.7
    assert by_label["LD"].recall >= 0.75
    matrix = table.confusion_percent()
    assert matrix[0, 2] < 5.0        # LD never mistaken for HD
    paper_row("tab10: overall accuracy", "81.9%", f"{report.accuracy:.1%}")
    paper_row("tab10: LD recall", "84.5%", f"{by_label['LD'].recall:.1%}")
    paper_row("tab10: SD recall", "78.9%", f"{by_label['SD'].recall:.1%}")
    paper_row("tab10: HD recall", "51.3%", f"{by_label['HD'].recall:.1%}")


def test_sec56_encrypted_switch_detection(benchmark, workspace):
    """§5.6: the frozen threshold transfers to encrypted traffic with a
    few points of loss (paper: 76.9% / 71.7% vs 78% / 76%)."""
    workspace.switch_detector()
    workspace.encrypted_representation_records()
    evaluation = benchmark.pedantic(
        section56_encrypted_switching, args=(workspace,), rounds=1, iterations=1
    )
    assert evaluation.accuracy_without >= 0.6
    assert evaluation.accuracy_with >= 0.5
    assert evaluation.n_without > 0 and evaluation.n_with > 0
    paper_row(
        "sec5.6: without-switches accuracy",
        "76.9%",
        f"{evaluation.accuracy_without:.1%}",
    )
    paper_row(
        "sec5.6: with-switches accuracy",
        "71.7%",
        f"{evaluation.accuracy_with:.1%}",
    )
