"""Serial-vs-parallel benchmark for the n_jobs execution layer.

Acceptance shape: on a 100-tree forest, ``fit(n_jobs=4)`` must be at
least 2x faster than serial when the machine has the cores to show it,
and — on any machine — serial and parallel runs must be bit-identical.
The speedup assertion is skipped (not weakened) on boxes with fewer
than 4 usable cores, where a process pool can only add overhead.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.ml.crossval import cross_validate
from repro.ml.forest import RandomForestClassifier

from conftest import paper_row

N_TREES = 100
N_JOBS = 4


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:   # non-Linux
        return os.cpu_count() or 1


def _training_set(n=2000, features=12, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, features))
    y = np.digitize(X[:, 0] + 0.4 * X[:, 1] - 0.2 * X[:, 2], [-0.5, 0.5])
    return X, y


def _fit_seconds(n_jobs: int, X, y) -> float:
    start = time.perf_counter()
    RandomForestClassifier(
        n_estimators=N_TREES, random_state=0, n_jobs=n_jobs
    ).fit(X, y)
    return time.perf_counter() - start


def test_forest_fit_parallel_speedup(benchmark):
    """100-tree fit: n_jobs=4 >= 2x faster than serial (given cores)."""
    X, y = _training_set()
    serial_s = _fit_seconds(1, X, y)
    parallel_s = benchmark.pedantic(
        _fit_seconds, args=(N_JOBS, X, y), rounds=1, iterations=1
    )
    speedup = serial_s / parallel_s
    paper_row(
        f"forest fit, {N_TREES} trees",
        "embarrassingly parallel",
        f"serial {serial_s:.2f}s / n_jobs={N_JOBS} {parallel_s:.2f}s "
        f"= {speedup:.2f}x",
    )
    if _usable_cpus() < N_JOBS:
        pytest.skip(
            f"only {_usable_cpus()} usable core(s); "
            f">=2x speedup needs >= {N_JOBS}"
        )
    assert speedup >= 2.0, (
        f"expected >=2x speedup with n_jobs={N_JOBS}, got {speedup:.2f}x "
        f"(serial {serial_s:.2f}s, parallel {parallel_s:.2f}s)"
    )


def test_forest_parallel_is_bit_identical():
    """The determinism guarantee, at benchmark scale."""
    X, y = _training_set()
    serial = RandomForestClassifier(
        n_estimators=N_TREES, random_state=0, n_jobs=1
    ).fit(X, y)
    parallel = RandomForestClassifier(
        n_estimators=N_TREES, random_state=0, n_jobs=N_JOBS
    ).fit(X, y)
    assert np.array_equal(serial.predict_proba(X), parallel.predict_proba(X))


def test_cross_validate_parallel_matches_serial(benchmark):
    """Per-fold fan-out: identical pooled report, less wall-clock on
    multi-core machines."""
    X, y = _training_set(n=1200)

    def factory():
        return RandomForestClassifier(n_estimators=20, random_state=0)

    serial = cross_validate(
        factory, X, y, n_splits=5, random_state=0, n_jobs=1
    )
    parallel = benchmark.pedantic(
        cross_validate,
        args=(factory, X, y),
        kwargs=dict(n_splits=5, random_state=0, n_jobs=N_JOBS),
        rounds=1,
        iterations=1,
    )
    assert serial.accuracy == parallel.accuracy
    assert np.array_equal(serial.matrix, parallel.matrix)
    paper_row(
        "5-fold CV pooled accuracy",
        "n_jobs-invariant",
        f"{parallel.accuracy:.1%} (serial == parallel)",
    )
