"""Benchmark gate for the fault-injection layer's idle overhead.

The resilience machinery rides in the hot path: a validation call and
a monotonicity check per entry, a fault-hook branch per dequeue, a
supervisor watchdog thread polling shard state.  The contract is that
all of it is effectively free when no faults are planned: a service
built with a no-op :class:`~repro.faults.FaultPlan` wired all the way
through must replay a 500-session trace within 5% of the plain
service's wall-clock (best-of-3 each, plus a small epsilon absorbing
scheduler noise on short runs).
"""

from __future__ import annotations

import time

import pytest

from repro.faults import FaultInjector, FaultPlan
from repro.serving.replay import TraceReplayer, synthetic_trace
from repro.serving.service import QoEService

from conftest import paper_row

TRACE_SESSIONS = 500
N_SHARDS = 4
ROUNDS = 3
OVERHEAD_CEILING = 1.05
#: Absolute slack absorbing thread-scheduling noise on runs this short.
EPSILON_S = 0.15


@pytest.fixture(scope="module")
def framework(serving_framework):
    return serving_framework


@pytest.fixture(scope="module")
def trace():
    return synthetic_trace(TRACE_SESSIONS, seed=11, subscribers=32)


def _replay_seconds(framework, trace, faults):
    service = QoEService(framework, n_shards=N_SHARDS, faults=faults)
    service.start()
    start = time.perf_counter()
    TraceReplayer(service, speedup=0.0, faults=faults).replay(trace)
    service.drain()
    elapsed = time.perf_counter() - start
    assert not service.degraded
    assert service.supervisor.total_restarts == 0
    assert service.dead_letters.quarantined == 0
    return elapsed


def test_noop_fault_plan_overhead_under_five_percent(framework, trace):
    """A wired-through no-op FaultPlan costs <5% wall-clock."""
    base_s = min(_replay_seconds(framework, trace, None) for _ in range(ROUNDS))
    noop_s = min(
        _replay_seconds(framework, trace, FaultInjector(FaultPlan()))
        for _ in range(ROUNDS)
    )
    overhead = noop_s / base_s
    paper_row(
        f"no-fault overhead, {TRACE_SESSIONS} sessions",
        f"<{(OVERHEAD_CEILING - 1) * 100:.0f}%",
        f"base {base_s:.3f}s, noop-plan {noop_s:.3f}s = "
        f"{(overhead - 1) * 100:+.1f}%",
    )
    assert noop_s <= base_s * OVERHEAD_CEILING + EPSILON_S, (
        f"no-op fault plan cost {(overhead - 1) * 100:.1f}% "
        f"(base {base_s:.3f}s, with plan {noop_s:.3f}s)"
    )
