"""Confidence-based abstention benchmark (selective prediction).

An operator acting on per-session diagnoses (e.g. re-routing a
subscriber) can trade coverage for precision: only act on sessions the
forest is confident about.  This bench sweeps the coverage/accuracy
curve of the stall model on encrypted traffic using the forests' soft
votes."""

import numpy as np

from conftest import paper_row


def test_confidence_abstention(benchmark, workspace):
    detector = workspace.stall_detector()
    records = workspace.encrypted_stall_records()
    truth = detector.labels_for(records)

    def run():
        proba = detector.predict_proba(records)
        classes = detector._model.classes_
        predicted = classes[np.argmax(proba, axis=1)]
        confidence = proba.max(axis=1)
        correct = predicted == truth
        curve = {}
        for coverage in (1.0, 0.8, 0.6, 0.4):
            cutoff = np.quantile(confidence, 1.0 - coverage)
            mask = confidence >= cutoff
            curve[coverage] = float(np.mean(correct[mask]))
        return curve

    curve = benchmark.pedantic(run, rounds=1, iterations=1)
    for coverage, accuracy in curve.items():
        paper_row(
            f"abstention: accuracy at {coverage:.0%} coverage",
            "rises as coverage drops",
            f"{accuracy:.1%}",
        )
    # selective prediction must help: confident-40% beats full coverage
    assert curve[0.4] >= curve[1.0]
    assert curve[0.4] >= 0.75
