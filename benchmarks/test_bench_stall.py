"""Benchmarks for the stall-detection experiments (Tables 2, 3, 4)."""

import numpy as np

from repro.experiments.tables import (
    table2_stall_features,
    tables3_4_stall_classifier,
)

from conftest import paper_row


def test_tab2_stall_feature_selection(benchmark, workspace):
    """Table 2: CFS keeps a handful of features; chunk-size statistics
    carry the highest gains."""
    workspace.stall_records()
    workspace.stall_detector()        # selection happens inside fit
    table = benchmark.pedantic(
        table2_stall_features, args=(workspace,), rounds=1, iterations=1
    )
    assert 2 <= len(table.rows) <= 8
    assert table.chunk_feature_share() >= 0.25
    top_feature = max(table.rows, key=lambda r: r[1])[0]
    assert top_feature.startswith("chunk"), (
        f"paper: chunk-size statistics lead; got {top_feature!r}"
    )
    paper_row(
        "tab2: top feature",
        "chunk size min/std",
        top_feature,
    )
    paper_row(
        "tab2: chunk-derived share of subset",
        "2 of 4",
        f"{table.chunk_feature_share():.0%}",
    )


def test_tab3_tab4_stall_classifier(benchmark, workspace):
    """Tables 3-4: ~93.5% accuracy; errors between adjacent classes."""
    workspace.stall_detector()
    table = benchmark.pedantic(
        tables3_4_stall_classifier, args=(workspace,), rounds=1, iterations=1
    )
    report = table.report
    assert report.accuracy >= 0.85
    by_label = report.by_label()
    # healthy class detected best (paper: 97.7% vs 80.9/79.3)
    assert by_label["no stalls"].recall >= by_label["mild stalls"].recall - 0.05
    # adjacent-class confusion dominates: no<->severe confusion is the
    # smallest off-diagonal mass in the paper
    matrix = table.confusion_percent()
    assert matrix[0, 2] <= matrix[0, 1] + matrix[0, 2]
    paper_row("tab3: overall accuracy", "93.5%", f"{report.accuracy:.1%}")
    paper_row(
        "tab3: no-stalls recall",
        "97.7%",
        f"{by_label['no stalls'].recall:.1%}",
    )
    paper_row(
        "tab4: mild-stalls recall",
        "80.9%",
        f"{by_label['mild stalls'].recall:.1%}",
    )
    paper_row(
        "tab4: severe-stalls recall",
        "79.3%",
        f"{by_label['severe stalls'].recall:.1%}",
    )
