"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation replaces one design decision and verifies the paper's
choice is indeed the better (or at least an equivalent) one on this
reproduction's corpora.
"""

import numpy as np

from repro.core.evaluation import balanced_train_full_test
from repro.core.features import build_stall_matrix
from repro.core.labeling import STALL_LABELS, has_variation, label_records, stall_label
from repro.core.switching import SwitchDetector
from repro.ml.crossval import cross_validate
from repro.ml.balance import oversample
from repro.ml.forest import RandomForestClassifier
from repro.ml.tree import DecisionTreeClassifier
from repro.timeseries.cusum import cusum_score
from repro.timeseries.detection import delta_series

from conftest import paper_row


def _cv(model_factory, X, y, seed=7):
    return cross_validate(
        model_factory,
        X,
        y,
        n_splits=5,
        random_state=seed,
        balance=lambda Xb, yb: oversample(Xb, yb, random_state=seed),
        labels=list(STALL_LABELS),
    )


def test_ablation_product_vs_single_delta(benchmark, workspace):
    """§4.3 claims Δsize x Δt beats either delta alone."""
    records = workspace.representation_records()
    truth = np.array([has_variation(r) for r in records])

    def scores_for(mode):
        out = np.empty(len(records))
        for i, record in enumerate(records):
            dt, dsize = delta_series(record.timestamps, record.sizes / 1000.0)
            if dt.size == 0:
                out[i] = 0.0
                continue
            series = {"product": dt * dsize, "dt": dt, "dsize": dsize}[mode]
            out[i] = cusum_score(series)
        return out

    def balanced_accuracy(scores):
        detector = SwitchDetector()
        best = 0.0
        for threshold in np.quantile(scores, np.linspace(0.05, 0.95, 60)):
            if threshold <= 0:
                continue
            acc_without = np.mean(scores[~truth] <= threshold)
            acc_with = np.mean(scores[truth] > threshold)
            best = max(best, 0.5 * (acc_without + acc_with))
        return best

    results = benchmark.pedantic(
        lambda: {mode: balanced_accuracy(scores_for(mode)) for mode in
                 ("product", "dt", "dsize")},
        rounds=1,
        iterations=1,
    )
    paper_row("ablation: Δsize x Δt balanced acc", "best", f"{results['product']:.1%}")
    paper_row("ablation: Δt alone", "worse", f"{results['dt']:.1%}")
    paper_row("ablation: Δsize alone", "worse", f"{results['dsize']:.1%}")
    # The paper argues the product is the best signal.  In this
    # reproduction the product is competitive but Δt alone can edge it
    # out (our simulated fast-start perturbs inter-arrivals more
    # reliably than sizes) — a measured deviation recorded in
    # EXPERIMENTS.md.  The ablation asserts competitiveness, not strict
    # dominance.
    best_single = max(results["dt"], results["dsize"])
    assert results["product"] >= best_single - 0.08
    assert all(v >= 0.55 for v in results.values())


def test_ablation_forest_vs_single_tree(benchmark, workspace):
    """Random Forest vs one CART tree on the stall task."""
    records = workspace.stall_records()
    X, _ = build_stall_matrix(records)
    detector = workspace.stall_detector()
    X = X[:, detector.selected_indices_]
    y = label_records(records, stall_label)

    def run():
        forest = _cv(
            lambda: RandomForestClassifier(
                n_estimators=40, min_samples_leaf=3, random_state=7
            ),
            X,
            y,
        ).accuracy
        tree = _cv(
            lambda: DecisionTreeClassifier(min_samples_leaf=3, random_state=7),
            X,
            y,
        ).accuracy
        return forest, tree

    forest_acc, tree_acc = benchmark.pedantic(run, rounds=1, iterations=1)
    paper_row("ablation: Random Forest CV accuracy", "used", f"{forest_acc:.1%}")
    paper_row("ablation: single CART tree", "worse", f"{tree_acc:.1%}")
    assert forest_acc >= tree_acc - 0.01


def test_ablation_selected_vs_all_features(benchmark, workspace):
    """CFS-selected subset vs all 70 features: similar accuracy, far
    fewer features (the selection is about parsimony, not accuracy)."""
    records = workspace.stall_records()
    X_all, _ = build_stall_matrix(records)
    detector = workspace.stall_detector()
    X_sel = X_all[:, detector.selected_indices_]
    y = label_records(records, stall_label)

    def run():
        factory = lambda: RandomForestClassifier(
            n_estimators=40, min_samples_leaf=3, random_state=7
        )
        return _cv(factory, X_sel, y).accuracy, _cv(factory, X_all, y).accuracy

    sel_acc, all_acc = benchmark.pedantic(run, rounds=1, iterations=1)
    paper_row(
        f"ablation: {len(detector.selected_indices_)} selected features",
        "within a few pts of 70",
        f"{sel_acc:.1%}",
    )
    paper_row("ablation: all 70 features", "-", f"{all_acc:.1%}")
    assert sel_acc >= all_acc - 0.06


def test_ablation_balancing_vs_none(benchmark, workspace):
    """Class balancing before training vs raw class priors: balancing
    buys minority-class (mild/severe) recall."""
    records = workspace.stall_records()
    X, _ = build_stall_matrix(records)
    detector = workspace.stall_detector()
    X = X[:, detector.selected_indices_]
    y = label_records(records, stall_label)
    factory = lambda: RandomForestClassifier(
        n_estimators=40, min_samples_leaf=3, random_state=7
    )

    def run():
        balanced = cross_validate(
            factory, X, y, n_splits=5, random_state=7,
            balance=lambda Xb, yb: oversample(Xb, yb, random_state=7),
            labels=list(STALL_LABELS),
        )
        raw = cross_validate(
            factory, X, y, n_splits=5, random_state=7,
            labels=list(STALL_LABELS),
        )
        return balanced, raw

    balanced, raw = benchmark.pedantic(run, rounds=1, iterations=1)

    def minority_recall(report):
        by_label = report.by_label()
        return 0.5 * (
            by_label["mild stalls"].recall + by_label["severe stalls"].recall
        )

    paper_row(
        "ablation: minority recall with balancing",
        "higher",
        f"{minority_recall(balanced):.1%}",
    )
    paper_row(
        "ablation: minority recall without",
        "lower",
        f"{minority_recall(raw):.1%}",
    )
    assert minority_recall(balanced) >= minority_recall(raw) - 0.02


def test_ablation_ml_vs_cusum_for_switches(benchmark, workspace):
    """§4.3: "ML was also considered to develop a model for the
    detection of representation switches.  However, it did not perform
    as well as the proposed methodology."

    Compares the CUSUM-threshold method with a Random Forest trained on
    the 210 representation features for the binary has-switches task
    (honest CV for the forest, training-set calibration for CUSUM as in
    the paper)."""
    from repro.core.features import build_representation_matrix

    records = workspace.representation_records()
    truth = np.array([has_variation(r) for r in records])

    def run():
        detector = SwitchDetector()
        detector.calibrate(records, truth)
        cusum = detector.evaluate(records, truth).balanced_accuracy

        X, _ = build_representation_matrix(records)
        y = np.where(truth, "switches", "steady")
        report = cross_validate(
            lambda: RandomForestClassifier(
                n_estimators=40, min_samples_leaf=3, random_state=7
            ),
            X,
            y,
            n_splits=5,
            random_state=7,
            balance=lambda Xb, yb: oversample(Xb, yb, random_state=7),
            labels=["steady", "switches"],
        )
        by_label = report.by_label()
        ml = 0.5 * (by_label["steady"].recall + by_label["switches"].recall)
        return cusum, ml

    cusum_acc, ml_acc = benchmark.pedantic(run, rounds=1, iterations=1)
    paper_row(
        "ablation: CUSUM switch detection (balanced)",
        "preferred",
        f"{cusum_acc:.1%}",
    )
    paper_row(
        "ablation: RF on 210 features (balanced)",
        "did not perform as well",
        f"{ml_acc:.1%}",
    )
    # both must beat chance; the bench records which wins on this corpus
    assert cusum_acc > 0.55
    assert ml_acc > 0.5


def test_ablation_startup_filtering(benchmark, workspace):
    """§4.3 removes the first 10 s before switch detection; keeping the
    start-up noise must not *improve* the split."""
    records = workspace.representation_records()
    truth = np.array([has_variation(r) for r in records])

    def run():
        filtered = SwitchDetector(startup_skip_s=10.0)
        unfiltered = SwitchDetector(startup_skip_s=0.0)
        filtered.calibrate(records, truth)
        unfiltered.calibrate(records, truth)
        return (
            filtered.evaluate(records, truth).balanced_accuracy,
            unfiltered.evaluate(records, truth).balanced_accuracy,
        )

    with_filter, without_filter = benchmark.pedantic(run, rounds=1, iterations=1)
    paper_row(
        "ablation: balanced acc with 10s filter",
        "used",
        f"{with_filter:.1%}",
    )
    paper_row(
        "ablation: without filter",
        "noisier",
        f"{without_filter:.1%}",
    )
    assert with_filter >= without_filter - 0.03


def test_ablation_statistic_sets(benchmark, workspace):
    """7 basic statistics (§4.1) vs 15 extended statistics (§4.2) on the
    stall task: does the finer percentile grid add stall signal?"""
    from repro.core.features import STALL_METRICS
    from repro.timeseries.stats import (
        SUMMARY_STATS_BASIC,
        SUMMARY_STATS_EXTENDED,
        summary_statistics,
    )

    records = workspace.stall_records()
    y = label_records(records, stall_label)
    factory = lambda: RandomForestClassifier(
        n_estimators=40, min_samples_leaf=3, random_state=7
    )

    def matrix_for(stats):
        rows = []
        for record in records:
            row = []
            for extractor in STALL_METRICS.values():
                values = summary_statistics(extractor(record), stats=stats)
                row.extend(values[s] for s in stats)
            rows.append(row)
        return np.asarray(rows)

    def run():
        basic = _cv(factory, matrix_for(SUMMARY_STATS_BASIC), y).accuracy
        extended = _cv(factory, matrix_for(SUMMARY_STATS_EXTENDED), y).accuracy
        return basic, extended

    basic_acc, extended_acc = benchmark.pedantic(run, rounds=1, iterations=1)
    paper_row(
        "ablation: 7 basic statistics (70 features)",
        "§4.1 choice",
        f"{basic_acc:.1%}",
    )
    paper_row(
        "ablation: 15 extended statistics (150 features)",
        "§4.2 grid",
        f"{extended_acc:.1%}",
    )
    # the extended grid must not be dramatically better: the paper's
    # 7-statistic set suffices for the stall task
    assert basic_acc >= extended_acc - 0.03


def test_ablation_forest_size(benchmark, workspace):
    """Forest-size sensitivity on the fixed CFS feature subset."""
    from repro.core.features import build_stall_matrix

    records = workspace.stall_records()
    detector = workspace.stall_detector()
    X, _ = build_stall_matrix(records)
    X = X[:, detector.selected_indices_]
    y = label_records(records, stall_label)

    def run():
        out = {}
        for n_estimators in (5, 20, 60):
            out[n_estimators] = _cv(
                lambda: RandomForestClassifier(
                    n_estimators=n_estimators,
                    min_samples_leaf=3,
                    random_state=7,
                ),
                X,
                y,
            ).accuracy
        return out

    accuracies = benchmark.pedantic(run, rounds=1, iterations=1)
    for n_estimators, accuracy in accuracies.items():
        paper_row(
            f"ablation: forest of {n_estimators} trees",
            "plateaus quickly",
            f"{accuracy:.1%}",
        )
    assert accuracies[60] >= accuracies[5] - 0.01
    assert accuracies[60] - accuracies[20] < 0.05
