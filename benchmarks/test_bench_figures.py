"""Benchmarks regenerating Figures 1-5 of the paper.

Each benchmark times the figure's data generation and asserts the
qualitative shape the paper reports for it.
"""

import numpy as np

from repro.experiments.figures import (
    figure1_chunk_sizes,
    figure2_stall_ecdfs,
    figure3_switch_session,
    figure4_score_cdfs,
    figure5_dataset_comparison,
)

from conftest import paper_row


def test_fig1_chunk_sizes_around_stalls(benchmark):
    """Figure 1: chunk sizes dip sharply when stalls occur."""
    data = benchmark.pedantic(figure1_chunk_sizes, rounds=1, iterations=1)
    assert data.stall_starts_s, "the forced outages must cause stalls"
    assert data.sizes_dip_after_stalls()
    paper_row(
        "fig1: post-stall chunk-size dip",
        "visible",
        f"visible ({len(data.stall_starts_s)} stalls)",
    )


def test_fig2_stall_ecdfs(benchmark, workspace):
    """Figure 2: ~12% of sessions stall; ~10% of sessions have RR>=0.1."""
    workspace.cleartext_corpus()          # corpus built outside the timer
    data = benchmark.pedantic(
        figure2_stall_ecdfs, args=(workspace,), rounds=1, iterations=1
    )
    assert 0.05 <= data.frac_with_stalls <= 0.35
    assert data.frac_severe <= data.frac_with_stalls
    assert data.frac_more_than_one <= data.frac_with_stalls
    paper_row("fig2: sessions with stalls", "12%", f"{data.frac_with_stalls:.1%}")
    paper_row("fig2: sessions with RR>0.1", "~10%", f"{data.frac_severe:.1%}")


def test_fig3_switch_session(benchmark):
    """Figure 3: a 144p->480p ladder walk with post-switch Δ ramps."""
    data = benchmark.pedantic(figure3_switch_session, rounds=1, iterations=1)
    assert data.has_upswitch()
    assert 144 in data.resolutions
    assert data.resolutions.max() >= 480
    dt, dsize = data.deltas()
    assert dt.size > 0 and dsize.size > 0
    paper_row(
        "fig3: resolution walk",
        "144p -> 480p",
        f"{data.resolutions.min()}p -> {data.resolutions.max()}p",
    )


def test_fig4_switch_score_cdfs(benchmark, workspace):
    """Figure 4: the two score CDFs separate; threshold recovers ~78%/76%."""
    workspace.representation_records()
    workspace.switch_detector()
    data = benchmark.pedantic(
        figure4_score_cdfs, args=(workspace,), rounds=1, iterations=1
    )
    assert data.accuracy_without >= 0.6
    assert data.accuracy_with >= 0.55
    # the distributions must actually be separated, not trivially split
    assert data.cdf_with.quantile(0.5) > data.cdf_without.quantile(0.5)
    paper_row(
        "fig4: no-switch sessions below threshold",
        "78%",
        f"{data.accuracy_without:.1%}",
    )
    paper_row(
        "fig4: switch sessions above threshold",
        "76%",
        f"{data.accuracy_with:.1%}",
    )


def test_fig5_dataset_comparison(benchmark, workspace):
    """Figure 5: encrypted/cleartext size+IAT distributions overlap,
    encrypted shifted slightly lower."""
    workspace.stall_records()
    workspace.encrypted_stall_records()
    data = benchmark.pedantic(
        figure5_dataset_comparison, args=(workspace,), rounds=1, iterations=1
    )
    # large-chunk tail: paper reports only ~10% of segments over 1 MB
    assert data.frac_clear_over_1mb < 0.45
    assert data.frac_encrypted_over_1mb <= data.frac_clear_over_1mb
    # encrypted inter-arrivals slightly lower (worse networks -> more
    # frequent requests)
    assert data.median_iat_encrypted <= data.median_iat_clear * 1.3
    paper_row(
        "fig5: chunks > 1MB (clear / encrypted)",
        "~10% / fewer",
        f"{data.frac_clear_over_1mb:.1%} / {data.frac_encrypted_over_1mb:.1%}",
    )
    paper_row(
        "fig5: median inter-arrival (clear / enc)",
        "enc slightly lower",
        f"{data.median_iat_clear:.2f}s / {data.median_iat_encrypted:.2f}s",
    )
