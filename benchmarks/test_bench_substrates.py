"""Micro-benchmarks of the substrates (throughput-style measurements).

These time the hot paths a downstream user would care about: TCP chunk
transfers, full player simulations, CUSUM scoring and forest training.
"""

import numpy as np
import pytest

from repro.ml.forest import RandomForestClassifier
from repro.network.path import NetworkPath
from repro.network.tcp import TcpConnection
from repro.streaming.adaptive import AdaptivePlayer
from repro.streaming.catalog import Video
from repro.streaming.progressive import ProgressivePlayer
from repro.timeseries.cusum import cusum_score


def test_bench_tcp_transfer(benchmark):
    """Time one 1 MB chunk transfer through the TCP model."""
    rng = np.random.default_rng(0)
    path = NetworkPath("good", 600.0, rng)

    def transfer():
        conn = TcpConnection(path, rng)
        return conn.download(1_000_000, 1.0)

    result = benchmark(transfer)
    assert result.duration_s > 0


def test_bench_adaptive_session(benchmark):
    """Time one full 3-minute adaptive playback simulation."""
    video = Video(video_id="bench-has-v", duration_s=180.0)

    def play():
        rng = np.random.default_rng(1)
        path = NetworkPath("good", 900.0, rng)
        return AdaptivePlayer().play(video, path, rng)

    session = benchmark(play)
    assert session.video_chunks


def test_bench_progressive_session(benchmark):
    """Time one full 3-minute progressive playback simulation."""
    video = Video(video_id="bench-prg-v", duration_s=180.0)

    def play():
        rng = np.random.default_rng(2)
        path = NetworkPath("good", 900.0, rng)
        return ProgressivePlayer().play(video, path, rng)

    session = benchmark(play)
    assert session.video_chunks


def test_bench_cusum_score(benchmark):
    """Time the switch score of a 1000-point product series."""
    rng = np.random.default_rng(3)
    series = np.abs(rng.normal(500, 200, 1000))
    score = benchmark(cusum_score, series)
    assert score >= 0


def test_bench_forest_fit(benchmark):
    """Time a 40-tree forest fit on a 1000x8 stall-sized matrix."""
    rng = np.random.default_rng(4)
    X = rng.normal(size=(1000, 8))
    y = (X[:, 0] + 0.3 * X[:, 1] > 0).astype(int)

    def fit():
        return RandomForestClassifier(
            n_estimators=40, min_samples_leaf=3, random_state=0
        ).fit(X, y)

    forest = benchmark(fit)
    assert len(forest.estimators_) == 40
