"""Benchmark gate for the online/early-prediction subsystem.

Acceptance shape: maintaining streaming per-session feature state must
be (near-)free on the tracker's per-entry hot path — a 2k-session
replay through ``OnlineSessionTracker(streaming=True)`` must stay
within 10% of the plain tracker.  The design that makes this possible
(append-only feed, accumulators folded lazily at snapshot time) lives
in :mod:`repro.online.snapshot`.  A second test prints the
convergence curve an operator would use to pick ``--early-after-chunks``:
chunks-to-stable and provisional/final agreement from a full
early-enabled replay.
"""

from __future__ import annotations

import time

import pytest

from repro.online import EarlyPredictor
from repro.realtime.monitor import RealTimeMonitor
from repro.realtime.tracker import OnlineSessionTracker
from repro.serving.replay import synthetic_trace

from conftest import paper_row

TRACE_SESSIONS = 2000
OVERHEAD_CEILING = 0.10


@pytest.fixture(scope="module")
def trace():
    return synthetic_trace(TRACE_SESSIONS, seed=11, subscribers=64)


@pytest.fixture(scope="module")
def framework(serving_framework):
    return serving_framework


def _replay_seconds(trace, streaming):
    tracker = OnlineSessionTracker(streaming=streaming)
    start = time.perf_counter()
    for entry in trace:
        tracker.observe(entry)
    tracker.flush()
    return time.perf_counter() - start


def test_streaming_tracker_overhead_gate(benchmark, trace):
    """Streaming state within 10% of the plain tracker on 2k sessions."""
    base = min(_replay_seconds(trace, streaming=False) for _ in range(5))

    def run():
        return _replay_seconds(trace, streaming=True)

    streamed = min(
        [run() for _ in range(4)]
        + [benchmark.pedantic(run, rounds=1, iterations=1)]
    )
    overhead = streamed / base - 1.0
    paper_row(
        f"streaming tracker, {TRACE_SESSIONS} sessions",
        f"<={OVERHEAD_CEILING:.0%} overhead",
        f"base {base:.3f}s, streaming {streamed:.3f}s "
        f"= {overhead:+.1%}",
    )
    # Small absolute cushion: at ~0.2s totals a timer wobble of a few
    # milliseconds must not fail a gate about per-entry work.
    assert streamed <= base * (1.0 + OVERHEAD_CEILING) + 0.02, (
        f"streaming state cost {overhead:+.1%} on the tracker hot path "
        f"(base {base:.3f}s, streaming {streamed:.3f}s)"
    )


def test_chunks_to_stable_summary(framework, trace):
    """Full early-enabled replay: convergence curve for picking K."""
    monitor = RealTimeMonitor(
        framework,
        tracker=OnlineSessionTracker(),
        early=EarlyPredictor(framework, after_chunks=4),
    )
    start = time.perf_counter()
    monitor.feed_many(trace)
    monitor.drain()
    elapsed = time.perf_counter() - start
    report = monitor.early.report()
    assert report.sessions >= TRACE_SESSIONS * 0.9
    assert report.predictions > 0
    assert 0.0 <= report.stall_agreement_rate <= 1.0
    paper_row(
        "early prediction convergence",
        "stable well before close",
        f"median chunks-to-stable {report.median_chunks_to_stable:.1f}, "
        f"stall agreement {report.stall_agreement_rate:.1%}, "
        f"flip rate {report.flip_rate:.3f} "
        f"({report.sessions} sessions in {elapsed:.1f}s)",
    )
