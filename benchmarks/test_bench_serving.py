"""Benchmark gate for the sharded online serving layer.

Acceptance shape: replaying a 1k-session synthetic trace through a
4-shard :class:`~repro.serving.QoEService` must (a) produce the exact
diagnosis multiset of the serial :class:`RealTimeMonitor` — the
determinism guarantee at scale — and (b) sustain at least 1.5x the
serial monitor's sessions/sec, the dividend of micro-batched
vectorized diagnosis.  The speedup assertion is skipped (not
weakened) on boxes with fewer than 4 usable cores.  A final check
asserts the serving telemetry (queue depth, drops, model reloads)
lands in the Prometheus exposition.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.obs.exposition import render_prometheus
from repro.persistence import save_framework
from repro.realtime.monitor import RealTimeMonitor
from repro.serving.models import ModelManager
from repro.serving.replay import TraceReplayer, synthetic_trace
from repro.serving.service import QoEService

from conftest import paper_row

TRACE_SESSIONS = 1000
N_SHARDS = 4
SPEEDUP_FLOOR = 1.5


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:   # non-Linux
        return os.cpu_count() or 1


@pytest.fixture(scope="module")
def framework(serving_framework):
    return serving_framework


@pytest.fixture(scope="module")
def trace():
    return synthetic_trace(TRACE_SESSIONS, seed=11, subscribers=64)


def _diagnosis_multiset(diagnoses):
    return sorted(
        (
            d.session_id,
            d.stall_class,
            d.representation_class,
            d.has_quality_switches,
        )
        for d in diagnoses
    )


def _serial_seconds(framework, trace):
    monitor = RealTimeMonitor(framework)
    start = time.perf_counter()
    monitor.feed_many(trace)
    monitor.drain()
    return time.perf_counter() - start, monitor


def _service_seconds(framework, trace):
    service = QoEService(framework, n_shards=N_SHARDS)
    service.start()
    start = time.perf_counter()
    TraceReplayer(service, speedup=0.0).replay(trace)
    service.drain()
    return time.perf_counter() - start, service


def test_sharded_service_is_deterministic_at_scale(framework, trace):
    """1k sessions, 4 shards: diagnosis AND alarm multisets identical
    to the serial monitor."""
    _, serial = _serial_seconds(framework, trace)
    _, service = _service_seconds(framework, trace)
    # a handful of simulated sessions can fall under min_media_chunks
    # and are (rightly) never diagnosed — by either path
    assert len(serial.diagnoses) >= TRACE_SESSIONS * 0.98
    assert _diagnosis_multiset(service.diagnoses) == _diagnosis_multiset(
        serial.diagnoses
    )
    assert sorted(
        (a.subscriber_id, a.reason, a.sessions_observed) for a in service.alarms
    ) == sorted(
        (a.subscriber_id, a.reason, a.sessions_observed) for a in serial.alarms
    )
    paper_row(
        f"serving determinism, {TRACE_SESSIONS} sessions",
        "multiset-identical",
        f"{len(service.diagnoses)} diagnoses, "
        f"{len(service.alarms)} alarms (sharded == serial)",
    )


def test_serving_throughput_gate(benchmark, framework, trace):
    """4-shard micro-batched service >= 1.5x serial sessions/sec."""
    serial_s, serial = _serial_seconds(framework, trace)

    def run():
        return _service_seconds(framework, trace)[0]

    service_s = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = serial_s / service_s
    paper_row(
        f"serving throughput, {N_SHARDS} shards",
        f">={SPEEDUP_FLOOR}x serial",
        f"serial {TRACE_SESSIONS / serial_s:.0f}/s, sharded "
        f"{TRACE_SESSIONS / service_s:.0f}/s = {speedup:.2f}x",
    )
    if _usable_cpus() < N_SHARDS:
        pytest.skip(
            f"only {_usable_cpus()} usable core(s); "
            f">={SPEEDUP_FLOOR}x needs >= {N_SHARDS}"
        )
    assert speedup >= SPEEDUP_FLOOR, (
        f"expected >={SPEEDUP_FLOOR}x sessions/sec with {N_SHARDS} shards, "
        f"got {speedup:.2f}x (serial {serial_s:.2f}s, service {service_s:.2f}s)"
    )


def test_serving_metrics_land_in_exposition(framework, trace, tmp_path):
    """Queue depth/drops and model reloads are all scrapeable."""
    model_path = tmp_path / "model.json"
    save_framework(framework, model_path)
    models = ModelManager(model_path)
    # a deliberately tiny shedding queue forces visible drops
    service = QoEService(
        models, n_shards=2, queue_capacity=2, policy="drop_oldest"
    )
    with service:
        service.submit_many(trace[:2000])
        assert models.reload()           # hot-reload mid-flight
    exposition = render_prometheus()
    for family in (
        "repro_serving_queue_depth",
        "repro_serving_queue_dropped_total",
        "repro_serving_queue_enqueued_total",
        "repro_serving_model_reloads_total",
        "repro_serving_model_version",
        "repro_serving_entries_total",
        "repro_serving_batches_total",
        "repro_serving_replay_entries_total",
    ):
        assert f"# TYPE {family}" in exposition, family
    assert 'repro_serving_model_reloads_total{status="ok"}' in exposition
    assert 'policy="drop_oldest"' in exposition


TELEMETRY_ROUNDS = 5
TELEMETRY_OVERHEAD_CEILING = 1.05
#: Absolute slack absorbing thread-scheduling noise on runs this short.
TELEMETRY_EPSILON_S = 0.15


def _replay_seconds(framework, trace, **service_kwargs):
    service = QoEService(framework, n_shards=N_SHARDS, **service_kwargs)
    service.start()
    start = time.perf_counter()
    TraceReplayer(service, speedup=0.0).replay(trace)
    service.drain()
    return time.perf_counter() - start


def test_full_telemetry_overhead_under_five_percent(framework, trace):
    """Trace contexts + staged histograms + SLO windows cost <5%.

    The ISSUE's overhead gate: the per-record telemetry layer
    (TraceContext stamping, buffered stage timings, exemplar sampling,
    SLO window rolling) must stay under 5% wall-clock against the same
    replay with telemetry disabled.
    """
    from repro.obs import DEFAULT_SLOS

    # Interleave the rounds (base, full, base, full, ...) so slow drift
    # on a shared box biases both series equally; min-of-N discards the
    # rounds that caught a scheduler hiccup.
    base_rounds, full_rounds = [], []
    for _ in range(TELEMETRY_ROUNDS):
        base_rounds.append(
            _replay_seconds(framework, trace, telemetry=False)
        )
        full_rounds.append(
            _replay_seconds(framework, trace, slos=DEFAULT_SLOS)
        )
    base_s = min(base_rounds)
    full_s = min(full_rounds)
    overhead = full_s / base_s
    paper_row(
        f"telemetry overhead, {TRACE_SESSIONS} sessions",
        f"<{(TELEMETRY_OVERHEAD_CEILING - 1) * 100:.0f}%",
        f"base {base_s:.3f}s, full telemetry {full_s:.3f}s = "
        f"{(overhead - 1) * 100:+.1f}%",
    )
    assert full_s <= base_s * TELEMETRY_OVERHEAD_CEILING + TELEMETRY_EPSILON_S, (
        f"full telemetry cost {(overhead - 1) * 100:.1f}% "
        f"(base {base_s:.3f}s, with telemetry {full_s:.3f}s)"
    )


def test_telemetry_metrics_land_in_exposition(framework, trace):
    """Stage histograms, e2e series and SLO gauges are all scrapeable."""
    from repro.obs import DEFAULT_SLOS

    service = QoEService(framework, n_shards=2, slos=DEFAULT_SLOS)
    service.start()
    TraceReplayer(service, speedup=0.0).replay(trace[:2000])
    service.drain()
    exposition = render_prometheus()
    for family in (
        "repro_serving_stage_seconds",
        "repro_serving_e2e_seconds",
        "repro_slo_ok",
        "repro_slo_burn_rate",
        "repro_recorder_events_total",
    ):
        assert f"# TYPE {family}" in exposition, family
    assert 'repro_serving_stage_seconds_bucket{stage="queue_wait"' in exposition
    assert 'repro_slo_ok{slo="p99_e2e"}' in exposition
