"""Benchmark gate for the socket-sharded serving tier.

The socket backend exists for deployment reach (shards on other
machines, partition-tolerant supervision), not for speed — but reach
must not cost the fault-free path much.  The gate: on a 2k-session
tiled replay with faults off, 4 socket shards over loopback processes
(``local:4``) finish within **15%** of the process backend's
wall-clock (plus a small absolute slack so sub-second runs don't gate
on noise), while staying bit-identical to it — framing, CRC checks,
seq/ack bookkeeping and heartbeats are the only difference between the
two runs, so the delta isolates the transport tax.

Shares the procserving skip discipline: the relative gate is
meaningless without real parallelism, so it skips (never weakens) on
boxes with fewer than 4 usable cores.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.realtime.monitor import RealTimeMonitor
from repro.serving.replay import synthetic_trace
from repro.serving.service import QoEService

from conftest import paper_row
from test_bench_procserving import tile_population

#: 500 base sessions x 4 tiles = the 2k-session replay the gate names.
BASE_SESSIONS, BASE_SUBSCRIBERS, TILES = 500, 125, 4
POPULATION = BASE_SUBSCRIBERS * TILES
N_SHARDS = 4
#: Socket wall-clock may exceed process wall-clock by at most this
#: factor (plus ABS_SLACK_S for timer noise on fast runs).
OVERHEAD_CEILING = 1.15
ABS_SLACK_S = 0.75


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:   # non-Linux
        return os.cpu_count() or 1


@pytest.fixture(scope="module")
def framework(serving_framework):
    return serving_framework


@pytest.fixture(scope="module")
def trace():
    base = synthetic_trace(
        BASE_SESSIONS, seed=29, subscribers=BASE_SUBSCRIBERS
    )
    return tile_population(base, TILES)


def _multiset(diagnoses):
    return sorted(
        (
            d.session_id,
            d.stall_class,
            d.representation_class,
            d.has_quality_switches,
        )
        for d in diagnoses
    )


def _backend_run(framework, trace, backend, **kwargs):
    service = QoEService(
        framework, n_shards=N_SHARDS, shard_backend=backend, **kwargs
    )
    service.start()
    start = time.perf_counter()
    service.submit_many(trace)
    service.drain()
    elapsed = time.perf_counter() - start
    service.stop()
    return elapsed, service


@pytest.fixture(scope="module")
def runs(framework, trace):
    process_s, process = _backend_run(framework, trace, "process")
    socket_s, sock = _backend_run(
        framework, trace, "socket", placement=f"local:{N_SHARDS}"
    )
    return process_s, process, socket_s, sock


def test_socket_backend_deterministic_at_population_scale(
    runs, framework, trace
):
    """2k tiled sessions, 4 socket shards: multiset identical to both
    the process backend and the serial monitor."""
    _, process, _, sock = runs
    assert _multiset(sock.diagnoses) == _multiset(process.diagnoses)

    serial = RealTimeMonitor(framework)
    serial.feed_many(trace)
    serial.drain()
    assert _multiset(sock.diagnoses) == _multiset(serial.diagnoses)
    paper_row(
        f"socket-shard determinism, {POPULATION} subscribers",
        "multiset-identical",
        f"{len(sock.diagnoses)} diagnoses over {len(trace)} entries "
        "(4 socket shards == process == serial)",
    )


def test_socket_transport_overhead_gate(runs, trace):
    """Fault-free socket transport tax <= 15% over the process backend."""
    process_s, _, socket_s, sock = runs
    sessions = BASE_SESSIONS * TILES
    ratio = socket_s / process_s
    paper_row(
        f"socket-shard transport tax, {N_SHARDS} shards",
        f"<= {OVERHEAD_CEILING}x process wall-clock",
        f"process {sessions / process_s:.0f}/s ({process_s:.2f}s), "
        f"socket {sessions / socket_s:.0f}/s ({socket_s:.2f}s) "
        f"= {ratio:.2f}x",
    )
    # A clean run must not have exercised the robustness machinery.
    health = sock.health()
    assert health["restarts"] == 0
    assert sock.supervisor.open_circuits == []
    assert sum(s.reconnects for s in sock.router.shards) == 0
    if _usable_cpus() < N_SHARDS:
        pytest.skip(
            f"only {_usable_cpus()} usable core(s); the relative gate "
            f"needs >= {N_SHARDS}"
        )
    assert socket_s <= process_s * OVERHEAD_CEILING + ABS_SLACK_S, (
        f"socket backend took {socket_s:.2f}s vs process {process_s:.2f}s "
        f"({ratio:.2f}x) — transport overhead breaches the "
        f"{OVERHEAD_CEILING}x gate"
    )
