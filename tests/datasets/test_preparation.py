"""Unit tests for data preparation: cleaning, grouping, GT joining."""

import numpy as np
import pytest

from repro.capture.device import DeviceLogger
from repro.capture.proxy import WebProxy
from repro.capture.reconstruction import SessionReconstructor
from repro.datasets.preparation import (
    group_cleartext_sessions,
    record_from_video_session,
    records_from_reconstruction,
    remove_proxy_artifacts,
)


class TestRemoveProxyArtifacts:
    def test_cached_and_compressed_dropped(self, one_adaptive_session):
        proxy = WebProxy(np.random.default_rng(0), cache_mark_rate=0.9)
        entries = proxy.observe(one_adaptive_session, "s")
        cleaned = remove_proxy_artifacts(entries)
        assert all(not (e.cached or e.compressed) for e in cleaned)
        assert len(cleaned) < len(entries)


class TestGroupCleartext:
    def test_one_record_per_session(
        self, one_adaptive_session, one_progressive_session
    ):
        proxy = WebProxy(np.random.default_rng(1))
        entries = proxy.observe(one_adaptive_session, "s1")
        entries += proxy.observe(
            one_progressive_session, "s2", start_epoch_s=10_000.0
        )
        records = group_cleartext_sessions(entries)
        assert len(records) == 2
        ids = {r.session_id for r in records}
        assert ids == {
            one_adaptive_session.session_id,
            one_progressive_session.session_id,
        }

    def test_stall_ground_truth_attached(self, one_progressive_session):
        proxy = WebProxy(np.random.default_rng(2))
        entries = proxy.observe(one_progressive_session, "s")
        record = group_cleartext_sessions(entries)[0]
        assert record.stall_count == one_progressive_session.stall_count
        assert record.stall_duration_s == pytest.approx(
            one_progressive_session.stall_duration_s, abs=0.05
        )

    def test_resolutions_from_itags(self, one_adaptive_session):
        proxy = WebProxy(np.random.default_rng(3))
        entries = proxy.observe(one_adaptive_session, "s")
        record = group_cleartext_sessions(entries)[0]
        expected = [c.resolution_p for c in one_adaptive_session.video_chunks]
        assert record.resolutions.tolist() == expected

    def test_kind_detection(self, one_adaptive_session, one_progressive_session):
        proxy = WebProxy(np.random.default_rng(4))
        entries = proxy.observe(one_adaptive_session, "s1")
        entries += proxy.observe(
            one_progressive_session, "s2", start_epoch_s=10_000.0
        )
        by_id = {r.session_id: r for r in group_cleartext_sessions(entries)}
        assert by_id[one_adaptive_session.session_id].kind == "adaptive"
        assert by_id[one_progressive_session.session_id].kind == "progressive"

    def test_min_chunks_filter(self, one_adaptive_session):
        proxy = WebProxy(np.random.default_rng(5))
        entries = proxy.observe(one_adaptive_session, "s")
        records = group_cleartext_sessions(entries, min_chunks=10_000)
        assert records == []

    def test_chunk_arrays_sorted(self, one_adaptive_session):
        proxy = WebProxy(np.random.default_rng(6))
        entries = proxy.observe(one_adaptive_session, "s")
        record = group_cleartext_sessions(entries)[0]
        assert np.all(np.diff(record.timestamps) >= -1e-9)


class TestRecordFromVideoSession:
    def test_arrays_aligned(self, one_adaptive_session):
        record = record_from_video_session(one_adaptive_session)
        assert record.n_chunks == len(one_adaptive_session.chunks)
        assert record.sizes.size == record.timestamps.size

    def test_ground_truth_copied(self, one_adaptive_session):
        record = record_from_video_session(one_adaptive_session)
        assert record.stall_count == one_adaptive_session.stall_count
        assert record.kind == one_adaptive_session.kind
        assert record.place == one_adaptive_session.place

    def test_without_ground_truth(self, one_adaptive_session):
        record = record_from_video_session(
            one_adaptive_session, with_ground_truth=False
        )
        assert record.stall_count is None
        assert record.resolutions is None


class TestRecordsFromReconstruction:
    def test_join_by_timestamp(self, one_adaptive_session):
        proxy = WebProxy(np.random.default_rng(7))
        entries = proxy.observe(
            one_adaptive_session, "s", start_epoch_s=500.0, encrypted=True
        )
        reconstructed = SessionReconstructor().reconstruct(entries)
        device = DeviceLogger()
        records = records_from_reconstruction(
            reconstructed,
            [device.playback_summary(one_adaptive_session)],
            device.segment_records(one_adaptive_session, start_epoch_s=500.0),
        )
        assert len(records) == 1
        record = records[0]
        assert record.encrypted
        assert record.session_id == one_adaptive_session.session_id
        assert record.stall_count == one_adaptive_session.stall_count
        assert record.resolutions is not None

    def test_unmatched_reconstruction_kept_without_gt(self, one_adaptive_session):
        proxy = WebProxy(np.random.default_rng(8))
        entries = proxy.observe(
            one_adaptive_session, "s", start_epoch_s=500.0, encrypted=True
        )
        reconstructed = SessionReconstructor().reconstruct(entries)
        records = records_from_reconstruction(reconstructed, [], [])
        assert len(records) == 1
        assert records[0].stall_count is None
