"""Unit tests for the SessionRecord schema."""

import numpy as np
import pytest

from repro.datasets.schema import SessionRecord


def _record(n=5, **gt):
    arrays = dict(
        timestamps=np.arange(n, dtype=float),
        sizes=np.full(n, 1000.0),
        transactions=np.full(n, 0.5),
        rtt_min=np.full(n, 40.0),
        rtt_avg=np.full(n, 50.0),
        rtt_max=np.full(n, 60.0),
        bdp=np.full(n, 1e4),
        bif_avg=np.full(n, 1e3),
        bif_max=np.full(n, 2e3),
        loss_pct=np.zeros(n),
        retx_pct=np.zeros(n),
    )
    return SessionRecord(session_id="x", encrypted=False, **arrays, **gt)


class TestValidation:
    def test_misaligned_arrays_rejected(self):
        with pytest.raises(ValueError):
            record = _record()
            SessionRecord(
                session_id="x",
                encrypted=False,
                timestamps=np.arange(3, dtype=float),
                sizes=np.zeros(4),
                transactions=np.zeros(3),
                rtt_min=np.zeros(3),
                rtt_avg=np.zeros(3),
                rtt_max=np.zeros(3),
                bdp=np.zeros(3),
                bif_avg=np.zeros(3),
                bif_max=np.zeros(3),
                loss_pct=np.zeros(3),
                retx_pct=np.zeros(3),
            )

    def test_empty_record_rejected(self):
        with pytest.raises(ValueError):
            SessionRecord(
                session_id="x",
                encrypted=False,
                timestamps=np.empty(0),
                sizes=np.empty(0),
                transactions=np.empty(0),
                rtt_min=np.empty(0),
                rtt_avg=np.empty(0),
                rtt_max=np.empty(0),
                bdp=np.empty(0),
                bif_avg=np.empty(0),
                bif_max=np.empty(0),
                loss_pct=np.empty(0),
                retx_pct=np.empty(0),
            )

    def test_unsorted_arrays_get_sorted_together(self):
        record = SessionRecord(
            session_id="x",
            encrypted=False,
            timestamps=np.array([3.0, 1.0, 2.0]),
            sizes=np.array([30.0, 10.0, 20.0]),
            transactions=np.zeros(3),
            rtt_min=np.zeros(3),
            rtt_avg=np.zeros(3),
            rtt_max=np.zeros(3),
            bdp=np.zeros(3),
            bif_avg=np.zeros(3),
            bif_max=np.zeros(3),
            loss_pct=np.zeros(3),
            retx_pct=np.zeros(3),
        )
        assert record.timestamps.tolist() == [1.0, 2.0, 3.0]
        assert record.sizes.tolist() == [10.0, 20.0, 30.0]


class TestGroundTruthDerived:
    def test_rebuffering_ratio(self):
        record = _record(stall_duration_s=10.0, total_duration_s=100.0)
        assert record.rebuffering_ratio() == pytest.approx(0.1)

    def test_rr_requires_ground_truth(self):
        with pytest.raises(ValueError):
            _record().rebuffering_ratio()

    def test_mean_resolution_weighted(self):
        record = _record(
            resolutions=np.array([144, 480]),
            resolution_media_s=np.array([10.0, 30.0]),
        )
        assert record.mean_resolution() == pytest.approx((1440 + 14400) / 40)

    def test_mean_resolution_unweighted_fallback(self):
        record = _record(resolutions=np.array([144, 480]))
        assert record.mean_resolution() == pytest.approx(312.0)

    def test_mean_resolution_requires_truth(self):
        with pytest.raises(ValueError):
            _record().mean_resolution()

    def test_switch_count_and_amplitude(self):
        record = _record(resolutions=np.array([144, 240, 240, 480]))
        assert record.switch_count() == 2
        assert record.switch_amplitude() == pytest.approx((96 + 0 + 240) / 3)

    def test_has_switches(self):
        assert _record(resolutions=np.array([144, 240])).has_switches()
        assert not _record(resolutions=np.array([240, 240])).has_switches()

    def test_single_chunk_amplitude_zero(self):
        record = _record(resolutions=np.array([360]))
        assert record.switch_amplitude() == 0.0
