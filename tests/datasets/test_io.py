"""Tests for dataset JSONL import/export."""

import numpy as np
import pytest

from repro.datasets.io import (
    read_records,
    read_weblogs,
    write_records,
    write_weblogs,
)


class TestWeblogIo:
    def test_roundtrip(self, cleartext_corpus, tmp_path):
        path = tmp_path / "weblogs.jsonl"
        original = cleartext_corpus.weblogs[:200]
        assert write_weblogs(original, path) == 200
        restored = read_weblogs(path)
        assert restored == original

    def test_encrypted_entries_roundtrip(self, encrypted_corpus, tmp_path):
        path = tmp_path / "enc.jsonl"
        original = encrypted_corpus.weblogs[:100]
        write_weblogs(original, path)
        restored = read_weblogs(path)
        assert all(e.uri is None and e.encrypted for e in restored)
        assert restored == original

    def test_corrupt_line_reported_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"not": "a weblog"}\n')
        with pytest.raises(ValueError, match="bad.jsonl:1"):
            read_weblogs(path)

    def test_blank_lines_skipped(self, cleartext_corpus, tmp_path):
        path = tmp_path / "gaps.jsonl"
        write_weblogs(cleartext_corpus.weblogs[:5], path)
        path.write_text(path.read_text() + "\n\n")
        assert len(read_weblogs(path)) == 5


class TestRecordIo:
    def test_roundtrip_preserves_arrays(self, stall_records, tmp_path):
        path = tmp_path / "records.jsonl"
        original = stall_records[:30]
        assert write_records(original, path) == 30
        restored = read_records(path)
        assert len(restored) == 30
        for a, b in zip(original, restored):
            assert a.session_id == b.session_id
            np.testing.assert_allclose(a.sizes, b.sizes)
            np.testing.assert_allclose(a.timestamps, b.timestamps)
            np.testing.assert_allclose(a.bdp, b.bdp)

    def test_roundtrip_preserves_ground_truth(self, stall_records, tmp_path):
        path = tmp_path / "records.jsonl"
        write_records(stall_records[:20], path)
        restored = read_records(path)
        for a, b in zip(stall_records[:20], restored):
            assert a.stall_count == b.stall_count
            assert a.stall_duration_s == b.stall_duration_s
            assert a.kind == b.kind
            if a.resolutions is None:
                assert b.resolutions is None
            else:
                np.testing.assert_array_equal(a.resolutions, b.resolutions)

    def test_detector_works_on_restored_records(
        self, stall_records, tmp_path
    ):
        from repro.core.stall import StallDetector

        path = tmp_path / "records.jsonl"
        write_records(stall_records, path)
        restored = read_records(path)
        detector = StallDetector(n_estimators=8, random_state=0).fit(restored)
        original_detector = StallDetector(n_estimators=8, random_state=0).fit(
            stall_records
        )
        assert (
            detector.predict(restored).tolist()
            == original_detector.predict(stall_records).tolist()
        )

    def test_corrupt_record_reported(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{}\n")
        with pytest.raises(ValueError, match="bad.jsonl:1"):
            read_records(path)
