"""Integration tests for corpus generation (uses session fixtures)."""

import numpy as np
import pytest

from repro.datasets.generate import CorpusConfig, generate_corpus


class TestCleartextCorpus:
    def test_record_per_session(self, cleartext_corpus):
        assert len(cleartext_corpus.records) == len(cleartext_corpus.sessions)

    def test_records_have_ground_truth(self, cleartext_corpus):
        with_gt = [
            r
            for r in cleartext_corpus.records
            if r.stall_duration_s is not None
        ]
        assert len(with_gt) >= 0.95 * len(cleartext_corpus.records)

    def test_mostly_progressive(self, cleartext_corpus):
        kinds = [r.kind for r in cleartext_corpus.records]
        progressive = sum(1 for k in kinds if k == "progressive")
        assert progressive / len(kinds) > 0.85

    def test_stall_prevalence_in_paper_range(self, cleartext_corpus):
        """Paper Figure 2: ~12% of sessions stall; allow a wide band."""
        rrs = [
            r.rebuffering_ratio()
            for r in cleartext_corpus.records
            if r.stall_duration_s is not None and r.total_duration_s
        ]
        stalled = np.mean([rr > 0 for rr in rrs])
        assert 0.03 <= stalled <= 0.40

    def test_weblogs_cover_all_sessions(self, cleartext_corpus):
        assert len(cleartext_corpus.weblogs) > len(cleartext_corpus.sessions)

    def test_deterministic_given_seed(self):
        from repro.datasets.generate import generate_cleartext_corpus

        a = generate_cleartext_corpus(10, seed=55)
        b = generate_cleartext_corpus(10, seed=55)
        assert [s.session_id for s in a.sessions] == [
            s.session_id for s in b.sessions
        ]


class TestAdaptiveCorpus:
    def test_all_adaptive(self, adaptive_corpus):
        kinds = {r.kind for r in adaptive_corpus.records}
        assert kinds == {"adaptive"}

    def test_quality_class_mix_ld_dominant(self, adaptive_corpus):
        """Paper §4.2: 57% LD / 38% SD / 5% HD — LD must dominate."""
        mus = [
            r.mean_resolution()
            for r in adaptive_corpus.records
            if r.resolutions is not None and r.resolutions.size
        ]
        ld = np.mean([mu < 360 for mu in mus])
        hd = np.mean([mu > 480 for mu in mus])
        assert ld > 0.35
        assert hd < 0.25

    def test_switch_populations_exist(self, adaptive_corpus):
        has = [
            r.has_switches()
            for r in adaptive_corpus.records
            if r.resolutions is not None and r.resolutions.size
        ]
        assert 0.02 < np.mean(has) < 0.95


class TestEncryptedCorpus:
    def test_all_encrypted(self, encrypted_corpus):
        assert all(r.encrypted for r in encrypted_corpus.records)

    def test_no_uris_visible(self, encrypted_corpus):
        assert all(e.uri is None for e in encrypted_corpus.weblogs)

    def test_reconstruction_recovers_most_sessions(self, encrypted_corpus):
        """The §5.2 heuristic 'successfully identified the vast majority
        of the sessions'."""
        recovered = len(encrypted_corpus.records)
        launched = len(encrypted_corpus.sessions)
        assert recovered >= 0.9 * launched

    def test_device_ground_truth_joined(self, encrypted_corpus):
        matched = [
            r
            for r in encrypted_corpus.records
            if r.stall_duration_s is not None
        ]
        assert len(matched) >= 0.9 * len(encrypted_corpus.records)

    def test_resolutions_joined_from_device(self, encrypted_corpus):
        with_res = [
            r
            for r in encrypted_corpus.records
            if r.resolutions is not None and r.resolutions.size
        ]
        assert len(with_res) >= 0.8 * len(encrypted_corpus.records)


class TestCorpusConfig:
    def test_invalid_sessions(self):
        with pytest.raises(ValueError):
            CorpusConfig(n_sessions=-1)

    def test_invalid_adaptive_fraction(self):
        with pytest.raises(ValueError):
            CorpusConfig(n_sessions=1, adaptive_fraction=2.0)

    def test_zero_sessions(self):
        corpus = generate_corpus(CorpusConfig(n_sessions=0))
        assert corpus.sessions == []
        assert corpus.records == []
