"""Corpus-engine determinism and bit-identity tests.

The vectorized engine (``repro.datasets.genx.vector``) must reproduce
the per-session oracle bit for bit for every corpus shape: same
sessions, weblog fields, prepared records, device summaries and
segment records.  These tests run full ``generate_corpus`` builds
through both engines and compare every field exactly (no tolerances —
the contract is bitwise equality, not closeness).
"""

import dataclasses

import numpy as np
import pytest

from repro.datasets.generate import CorpusConfig, generate_corpus
from repro.datasets.genx import ENGINES
from repro.network.diurnal import DiurnalLoadModel
from repro.network.mobility import COMMUTER_USER


def _assert_identical(a, b, path=""):
    """Recursively assert two corpus objects are exactly equal."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        assert isinstance(a, np.ndarray) and isinstance(b, np.ndarray), path
        assert a.dtype == b.dtype, f"{path}: dtype {a.dtype} != {b.dtype}"
        assert np.array_equal(a, b), f"{path}: arrays differ"
        return
    if dataclasses.is_dataclass(a) and not isinstance(a, type):
        assert type(a) is type(b), path
        for f in dataclasses.fields(a):
            _assert_identical(
                getattr(a, f.name), getattr(b, f.name), f"{path}.{f.name}"
            )
        return
    if isinstance(a, (list, tuple)):
        assert isinstance(b, type(a)), path
        assert len(a) == len(b), f"{path}: len {len(a)} != {len(b)}"
        for i, (x, y) in enumerate(zip(a, b)):
            _assert_identical(x, y, f"{path}[{i}]")
        return
    assert a == b, f"{path}: {a!r} != {b!r}"


def assert_corpora_identical(a, b):
    for field in ("sessions", "records", "weblogs", "summaries", "segment_records"):
        _assert_identical(getattr(a, field), getattr(b, field), field)


CONFIGS = {
    "cleartext": CorpusConfig(n_sessions=25, seed=11),
    "adaptive": CorpusConfig(
        n_sessions=18, seed=12, adaptive_fraction=1.0, transient_outage_prob=0.45
    ),
    "encrypted": CorpusConfig(
        n_sessions=20,
        seed=13,
        adaptive_fraction=1.0,
        mobility=COMMUTER_USER,
        encrypted=True,
        single_subscriber=True,
    ),
    "empty": CorpusConfig(n_sessions=0, seed=14),
    "all-progressive": CorpusConfig(n_sessions=12, seed=15, adaptive_fraction=0.0),
    "diurnal": CorpusConfig(
        n_sessions=12, seed=16, diurnal=DiurnalLoadModel(), adaptive_fraction=0.5
    ),
}


class TestEngineBitIdentity:
    @pytest.mark.parametrize("name", sorted(CONFIGS))
    def test_vectorized_matches_oracle(self, name):
        cfg = CONFIGS[name]
        vec = generate_corpus(cfg, engine="vectorized")
        ora = generate_corpus(cfg, engine="per-session")
        assert_corpora_identical(vec, ora)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown corpus engine"):
            generate_corpus(CONFIGS["empty"], engine="warp")


class TestSameSeedDeterminism:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_same_seed_twice_identical(self, engine):
        cfg = CONFIGS["cleartext"]
        a = generate_corpus(cfg, engine=engine)
        b = generate_corpus(cfg, engine=engine)
        assert_corpora_identical(a, b)
