"""Batch feature engine: bit-identity, cache, and fan-out guarantees.

The columnar engine's contract is ``np.array_equal`` equality with the
per-record reference path for *every* input — the property suite here
covers the corpus distributions plus the adversarial shapes (single
chunk, constant series, NaN/inf rows, mixed lengths past the parallel
block floor).  The cache tests pin down the memoization semantics: a
memory hit returns the same object, a disk hit the same bytes, and a
corrupted cache file is a rebuild, never a crash.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.features import (
    REPRESENTATION_METRICS,
    STALL_METRICS,
    _representation_record_series,
    _stall_record_series,
    build_representation_matrix,
    build_stall_matrix,
    get_model_spec,
)
from repro.core.featurex import (
    ENGINES,
    FeatureMatrixCache,
    RaggedBatch,
    batch_key,
    configure_cache,
    get_cache,
    get_default_engine,
    pack_records,
    set_default_engine,
)
from repro.datasets.schema import SessionRecord


# ----------------------------------------------------------------------
# Synthetic records
# ----------------------------------------------------------------------


def _make_record(
    n_chunks: int,
    seed: int = 0,
    session_id: str = "synthetic",
    constant: bool = False,
) -> SessionRecord:
    rng = np.random.default_rng(seed)
    if constant:
        series = lambda lo, hi: np.full(n_chunks, (lo + hi) / 2.0)
    else:
        series = lambda lo, hi: rng.uniform(lo, hi, size=n_chunks)
    timestamps = np.sort(rng.uniform(0.0, 300.0, size=n_chunks))
    if constant:
        timestamps = np.arange(n_chunks, dtype=np.float64)
    return SessionRecord(
        session_id=f"{session_id}-{seed}",
        encrypted=False,
        timestamps=timestamps,
        sizes=series(2e5, 4e6),
        transactions=series(0.05, 4.0),
        rtt_min=series(10.0, 40.0),
        rtt_avg=series(40.0, 90.0),
        rtt_max=series(90.0, 300.0),
        bdp=series(1e4, 1e6),
        bif_avg=series(1e3, 1e5),
        bif_max=series(1e4, 5e5),
        loss_pct=series(0.0, 2.0),
        retx_pct=series(0.0, 3.0),
    )


def _with_nonfinite(record: SessionRecord) -> SessionRecord:
    """A copy with NaN/inf planted in several per-chunk series."""
    sizes = record.sizes.copy()
    rtt_avg = record.rtt_avg.copy()
    bdp = record.bdp.copy()
    sizes[0] = np.nan
    rtt_avg[-1] = np.inf
    bdp[len(bdp) // 2] = -np.inf
    return SessionRecord(
        session_id=record.session_id + "-dirty",
        encrypted=record.encrypted,
        timestamps=record.timestamps,
        sizes=sizes,
        transactions=record.transactions,
        rtt_min=record.rtt_min,
        rtt_avg=rtt_avg,
        rtt_max=record.rtt_max,
        bdp=bdp,
        bif_avg=record.bif_avg,
        bif_max=record.bif_max,
        loss_pct=record.loss_pct,
        retx_pct=record.retx_pct,
    )


def _mixed_batch() -> list:
    """Sessions of many lengths, including single-chunk and >128."""
    lengths = [1, 1, 2, 3, 3, 3, 7, 16, 16, 40, 97, 130, 130, 200]
    records = [
        _make_record(n, seed=i, session_id="mixed")
        for i, n in enumerate(lengths)
    ]
    records.append(_make_record(5, seed=99, constant=True))
    records.append(_with_nonfinite(_make_record(24, seed=41)))
    records.append(_with_nonfinite(_make_record(1, seed=42)))
    return records


@pytest.fixture()
def isolated_cache(tmp_path):
    """Point the process cache at a fresh directory; restore after."""
    cache = get_cache()
    old_directory = cache.directory
    configure_cache(directory=str(tmp_path))
    cache.clear()
    try:
        yield cache
    finally:
        configure_cache(directory=old_directory)
        cache.clear()


def _build(model):
    return build_stall_matrix if model == "stall" else build_representation_matrix


# ----------------------------------------------------------------------
# Bit-identity property suite
# ----------------------------------------------------------------------


@pytest.mark.parametrize("model", ["stall", "representation"])
class TestEngineEquality:
    def test_corpus_records(self, model, stall_records, adaptive_records):
        records = stall_records if model == "stall" else adaptive_records
        columnar, names_c = _build(model)(records, engine="columnar", cache=False)
        reference, names_r = _build(model)(
            records, engine="per-record", cache=False
        )
        assert names_c == names_r
        assert np.array_equal(columnar, reference)

    def test_mixed_lengths_and_dirty_rows(self, model):
        records = _mixed_batch()
        columnar, _ = _build(model)(records, engine="columnar", cache=False)
        reference, _ = _build(model)(records, engine="per-record", cache=False)
        assert np.array_equal(columnar, reference)
        # NaN/inf never leak into the matrix — the per-metric finite
        # filter drops them before any statistic.
        assert np.isfinite(columnar).all()

    def test_single_chunk_sessions(self, model):
        """n=1 sessions make every Δ series empty (the 0.0 rule)."""
        records = [_make_record(1, seed=s) for s in range(5)]
        columnar, _ = _build(model)(records, engine="columnar", cache=False)
        reference, _ = _build(model)(records, engine="per-record", cache=False)
        assert np.array_equal(columnar, reference)

    def test_constant_series(self, model):
        records = [_make_record(6, seed=s, constant=True) for s in range(3)]
        columnar, _ = _build(model)(records, engine="columnar", cache=False)
        reference, _ = _build(model)(records, engine="per-record", cache=False)
        assert np.array_equal(columnar, reference)

    def test_empty_batch(self, model):
        matrix, names = _build(model)([], cache=False)
        assert matrix.shape == (0, len(names))

    def test_parallel_matches_serial(self, model):
        """Row-chunk fan-out past _PARALLEL_MIN_ROWS is value-identical."""
        records = [
            _make_record(3 + (i % 11), seed=i, session_id="par")
            for i in range(300)
        ]
        serial, _ = _build(model)(records, n_jobs=1, cache=False)
        parallel, _ = _build(model)(records, n_jobs=2, cache=False)
        assert np.array_equal(serial, parallel)


class TestRecordSeriesDriftGuard:
    """The shared-base-series builders must track the METRICS dicts."""

    def test_stall_series_match_reference_lambdas(self, stall_records):
        for record in stall_records[:10]:
            fast = _stall_record_series(record)
            assert set(fast) == set(STALL_METRICS)
            for name, fn in STALL_METRICS.items():
                assert np.array_equal(fast[name], fn(record)), name

    def test_representation_series_match_reference_lambdas(
        self, adaptive_records
    ):
        for record in adaptive_records[:10]:
            fast = _representation_record_series(record)
            assert set(fast) == set(REPRESENTATION_METRICS)
            for name, fn in REPRESENTATION_METRICS.items():
                assert np.array_equal(fast[name], fn(record)), name


# ----------------------------------------------------------------------
# Ragged packing
# ----------------------------------------------------------------------


class TestPacking:
    def test_pack_roundtrip(self):
        records = _mixed_batch()
        batch = pack_records(records)
        assert isinstance(batch, RaggedBatch)
        assert batch.n_sessions == len(records)
        assert batch.total_chunks == sum(r.timestamps.size for r in records)
        # every session's chunk series is recoverable from the flats
        for field in ("sizes", "rtt_avg", "loss_pct"):
            for pos, rec_idx in enumerate(batch.order):
                start, stop = batch.offsets[pos], batch.offsets[pos + 1]
                assert np.array_equal(
                    batch.flat[field][start:stop],
                    np.asarray(getattr(records[rec_idx], field), dtype=float),
                    equal_nan=True,
                )

    def test_groups_cover_all_rows(self):
        batch = pack_records(_mixed_batch())
        covered = np.concatenate([g.rows for g in batch.groups])
        assert sorted(covered.tolist()) == list(range(batch.n_sessions))
        for group in batch.groups:
            for matrix in group.base.values():
                assert matrix.shape == (group.rows.size, group.n_chunks)


# ----------------------------------------------------------------------
# Content-addressed cache
# ----------------------------------------------------------------------


class TestBatchKey:
    def test_key_is_content_addressed(self):
        a = [_make_record(8, seed=1), _make_record(12, seed=2)]
        b = [_make_record(8, seed=1), _make_record(12, seed=2)]
        assert batch_key(pack_records(a), "stall") == batch_key(
            pack_records(b), "stall"
        )

    def test_key_differs_by_model(self):
        batch = pack_records([_make_record(8, seed=1)])
        assert batch_key(batch, "stall") != batch_key(batch, "representation")

    def test_mutation_changes_key(self):
        records = [_make_record(8, seed=1)]
        before = batch_key(pack_records(records), "stall")
        records[0].sizes[3] += 1.0
        assert batch_key(pack_records(records), "stall") != before

    def test_permutation_changes_key(self):
        a = [_make_record(8, seed=1), _make_record(12, seed=2)]
        assert batch_key(pack_records(a), "stall") != batch_key(
            pack_records(list(reversed(a))), "stall"
        )


class TestCache:
    def test_memory_hit_returns_same_object(self, isolated_cache):
        records = [_make_record(9, seed=s) for s in range(4)]
        first, _ = build_stall_matrix(records)
        second, _ = build_stall_matrix(records)
        assert second is first

    def test_disk_hit_after_memory_eviction(self, isolated_cache):
        records = [_make_record(9, seed=s) for s in range(4)]
        first, _ = build_stall_matrix(records)
        isolated_cache._entries.clear()   # drop memory, keep disk
        second, _ = build_stall_matrix(records)
        assert second is not first
        assert np.array_equal(second, first)

    def test_corrupted_cache_file_rebuilds(self, isolated_cache, tmp_path):
        records = [_make_record(9, seed=s) for s in range(4)]
        first, _ = build_stall_matrix(records)
        isolated_cache._entries.clear()
        files = list(tmp_path.glob("*.npy"))
        assert len(files) == 1
        files[0].write_bytes(b"not a npy file at all")
        rebuilt, _ = build_stall_matrix(records)
        assert np.array_equal(rebuilt, first)

    def test_cache_off_rebuilds(self, isolated_cache):
        records = [_make_record(9, seed=s) for s in range(4)]
        first, _ = build_stall_matrix(records, cache=False)
        second, _ = build_stall_matrix(records, cache=False)
        assert second is not first
        assert np.array_equal(second, first)

    def test_lru_eviction_is_bounded(self, tmp_path):
        cache = FeatureMatrixCache(capacity=2, directory=None)
        for i in range(5):
            cache.put(f"key-{i}", np.zeros((1, 1)) + i)
        assert len(cache._entries) == 2
        assert cache._memory_get("key-4") is not None
        assert cache._memory_get("key-0") is None

    def test_engine_and_cache_share_values(self, isolated_cache):
        """A matrix cached by one engine serves the other — same bits."""
        records = [_make_record(9, seed=s) for s in range(4)]
        columnar, _ = build_stall_matrix(records, engine="columnar")
        cached, _ = build_stall_matrix(records, engine="per-record")
        assert cached is columnar


class TestWorkspaceCache:
    def test_repeated_workspace_build_hits_cache(self, tmp_path):
        import dataclasses

        from repro.experiments.config import SMALL
        from repro.experiments.workspace import Workspace

        cache = get_cache()
        old_directory = cache.directory
        try:
            config = dataclasses.replace(
                SMALL,
                cleartext_sessions=40,
                adaptive_sessions=20,
                encrypted_sessions=10,
                feature_cache_dir=str(tmp_path),
            )
            workspace = Workspace(config)
            assert cache.directory == str(tmp_path)
            records = workspace.stall_records()
            first, _ = build_stall_matrix(records)
            # a second workspace on the same config re-derives the same
            # records -> same content hash -> zero rebuilds
            second_ws = Workspace(config)
            second, _ = build_stall_matrix(second_ws.stall_records())
            assert second is first
        finally:
            configure_cache(directory=old_directory)
            cache.clear()


# ----------------------------------------------------------------------
# Engine selection + observability
# ----------------------------------------------------------------------


class TestEngineSelection:
    def test_engines_registry(self):
        assert set(ENGINES) == {"columnar", "per-record"}
        assert get_default_engine() in ENGINES

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown feature engine"):
            build_stall_matrix([_make_record(4)], engine="turbo", cache=False)

    def test_set_default_engine(self):
        before = get_default_engine()
        try:
            set_default_engine("per-record")
            assert get_default_engine() == "per-record"
            with pytest.raises(ValueError):
                set_default_engine("turbo")
        finally:
            set_default_engine(before)

    def test_model_specs_are_complete(self):
        for model, width in (("stall", 70), ("representation", 210)):
            spec = get_model_spec(model)
            assert len(spec.feature_names) == width
            assert len(spec.feature_names) == len(spec.metric_names) * len(
                spec.stats
            )
        with pytest.raises(KeyError):
            get_model_spec("nope")

    def test_build_metrics_exported(self, isolated_cache):
        from repro.obs import render_prometheus

        records = [_make_record(6, seed=s) for s in range(3)]
        build_stall_matrix(records)      # miss + build
        build_stall_matrix(records)      # memory hit
        text = render_prometheus()
        for family in (
            "repro_features_cache_hits_total",
            "repro_features_cache_misses_total",
            "repro_features_builds_total",
            "repro_features_build_seconds",
            "repro_features_last_rows_per_second",
        ):
            assert family in text
