"""Unit tests for feature construction (§4.1 / §4.2)."""

import numpy as np
import pytest

from repro.core.features import (
    REPRESENTATION_METRICS,
    STALL_METRICS,
    build_representation_matrix,
    build_stall_matrix,
    representation_feature_names,
    representation_features,
    stall_feature_names,
    stall_features,
)
from repro.datasets.preparation import record_from_video_session


class TestFeatureCounts:
    def test_stall_features_are_70(self):
        """10 metrics x 7 statistics (§4.1)."""
        assert len(STALL_METRICS) == 10
        assert len(stall_feature_names()) == 70

    def test_representation_features_are_210(self):
        """14 metrics x 15 statistics (§4.2)."""
        assert len(REPRESENTATION_METRICS) == 14
        assert len(representation_feature_names()) == 210

    def test_paper_table2_features_present(self):
        names = stall_feature_names()
        for feature in (
            "chunk size min",
            "chunk size std",
            "BDP mean",
            "packet retransmissions max",
        ):
            assert feature in names

    def test_paper_table5_features_present(self):
        names = representation_feature_names()
        for feature in (
            "chunk size p75",
            "chunk avg size mean",
            "cumsum throughput min",
            "chunk Δsize max",
            "chunk Δt p25",
            "BDP p90",
            "BIF maximum min",
            "RTT minimum min",
        ):
            assert feature in names


class TestFeatureValues:
    def test_vector_complete_and_finite(self, one_record):
        features = stall_features(one_record)
        assert set(features) == set(stall_feature_names())
        assert all(np.isfinite(v) for v in features.values())

    def test_representation_vector_complete(self, one_record):
        features = representation_features(one_record)
        assert set(features) == set(representation_feature_names())
        assert all(np.isfinite(v) for v in features.values())

    def test_chunk_size_stats_correct(self, one_record):
        features = stall_features(one_record)
        assert features["chunk size min"] == one_record.sizes.min()
        assert features["chunk size max"] == one_record.sizes.max()
        assert features["chunk size mean"] == pytest.approx(
            one_record.sizes.mean()
        )

    def test_chunk_time_is_relative(self, one_record):
        features = stall_features(one_record)
        assert features["chunk time min"] == 0.0

    def test_delta_features_from_diffs(self, one_record):
        features = representation_features(one_record)
        expected = np.abs(np.diff(one_record.sizes)).max()
        assert features["chunk Δsize max"] == pytest.approx(expected)

    def test_throughput_from_transactions(self, one_record):
        features = representation_features(one_record)
        tput = one_record.sizes * 8 / 1000 / np.maximum(one_record.transactions, 1e-3)
        assert features["throughput mean"] == pytest.approx(tput.mean())


class TestMatrices:
    def test_stall_matrix_shape(self, stall_records):
        X, names = build_stall_matrix(stall_records[:10])
        assert X.shape == (10, 70)
        assert names == stall_feature_names()

    def test_representation_matrix_shape(self, adaptive_records):
        X, names = build_representation_matrix(adaptive_records[:10])
        assert X.shape == (10, 210)
        assert names == representation_feature_names()

    def test_matrix_rows_match_single_extraction(self, stall_records):
        X, names = build_stall_matrix(stall_records[:3])
        single = stall_features(stall_records[0])
        np.testing.assert_allclose(X[0], [single[n] for n in names])
