"""Integration tests for the three detectors on small corpora."""

import numpy as np
import pytest

from repro.core.representation import AvgRepresentationDetector
from repro.core.stall import StallDetector
from repro.core.switching import SwitchDetector
from repro.core.labeling import has_variation


@pytest.fixture(scope="module")
def fitted_stall(stall_records):
    return StallDetector(n_estimators=15, random_state=0).fit(stall_records)


@pytest.fixture(scope="module")
def fitted_representation(adaptive_records):
    return AvgRepresentationDetector(n_estimators=15, random_state=0).fit(
        adaptive_records
    )


class TestStallDetector:
    def test_unfitted_raises(self, stall_records):
        with pytest.raises(RuntimeError):
            StallDetector().predict(stall_records)

    def test_fit_empty_raises(self):
        with pytest.raises(ValueError):
            StallDetector().fit([])

    def test_invalid_selection_mode(self):
        with pytest.raises(ValueError):
            StallDetector(feature_selection="lasso")

    def test_selected_features_small_subset(self, fitted_stall):
        assert 2 <= len(fitted_stall.selected_names_) <= 8

    def test_feature_gains_positive(self, fitted_stall):
        gains = fitted_stall.feature_gains()
        assert gains
        assert all(g >= 0 for _, g in gains)

    def test_train_report_populated(self, fitted_stall):
        assert fitted_stall.train_report_.accuracy > 0.6

    def test_predictions_valid_labels(self, fitted_stall, stall_records):
        predictions = fitted_stall.predict(stall_records[:20])
        assert set(predictions) <= {
            "no stalls",
            "mild stalls",
            "severe stalls",
        }

    def test_evaluate_beats_majority_on_train(self, fitted_stall, stall_records):
        report = fitted_stall.evaluate(stall_records)
        labels = fitted_stall.labels_for(stall_records)
        _, counts = np.unique(labels, return_counts=True)
        majority = counts.max() / counts.sum()
        assert report.accuracy >= majority - 0.05

    def test_infogain_mode(self, stall_records):
        detector = StallDetector(
            n_estimators=10, feature_selection="infogain", n_features=5
        ).fit(stall_records)
        assert len(detector.selected_names_) == 5

    def test_none_mode_uses_all_features(self, stall_records):
        detector = StallDetector(
            n_estimators=5, feature_selection="none"
        ).fit(stall_records)
        assert len(detector.selected_indices_) == 70

    def test_cross_validate_runs(self, fitted_stall, stall_records):
        report = fitted_stall.cross_validate(stall_records, n_splits=3)
        assert 0.5 < report.accuracy <= 1.0


class TestRepresentationDetector:
    def test_fit_and_predict(self, fitted_representation, adaptive_records):
        predictions = fitted_representation.predict(adaptive_records[:10])
        assert set(predictions) <= {"LD", "SD", "HD"}

    def test_chunk_features_dominate_selection(self, fitted_representation):
        """Paper Table 5: chunk-size statistics dominate the subset."""
        names = fitted_representation.selected_names_
        chunky = sum(
            1
            for n in names
            if n.startswith(("chunk", "throughput", "cumsum"))
        )
        assert chunky / len(names) >= 0.5

    def test_evaluation_reasonable(self, fitted_representation, adaptive_records):
        report = fitted_representation.evaluate(adaptive_records)
        assert report.accuracy > 0.6

    def test_label_order_in_report(self, fitted_representation, adaptive_records):
        report = fitted_representation.evaluate(adaptive_records)
        assert report.labels == ["LD", "SD", "HD"]


class TestSwitchDetector:
    def test_scores_nonnegative(self, adaptive_records):
        scores = SwitchDetector().scores(adaptive_records)
        assert (scores >= 0).all()

    def test_calibrate_then_evaluate(self, adaptive_records):
        detector = SwitchDetector()
        truth = np.array([has_variation(r) for r in adaptive_records])
        if truth.any() and not truth.all():
            threshold = detector.calibrate(adaptive_records, truth)
            assert threshold > 0
            evaluation = detector.evaluate(adaptive_records, truth)
            assert evaluation.balanced_accuracy > 0.55

    def test_calibrate_single_class_raises(self, adaptive_records):
        detector = SwitchDetector()
        with pytest.raises(ValueError):
            detector.calibrate(
                adaptive_records, np.ones(len(adaptive_records), dtype=bool)
            )

    def test_switching_sessions_score_higher(self, adaptive_records):
        detector = SwitchDetector()
        truth = np.array([has_variation(r) for r in adaptive_records])
        scores = detector.scores(adaptive_records)
        if truth.any() and not truth.all():
            assert np.median(scores[truth]) > np.median(scores[~truth])

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            SwitchDetector(threshold=0.0)

    def test_score_distributions_split(self, adaptive_records):
        detector = SwitchDetector()
        dists = detector.score_distributions(adaptive_records)
        assert set(dists) == {"without", "with"}
        total = dists["without"].size + dists["with"].size
        assert total == len(adaptive_records)


class TestVariationClassification:
    def test_three_levels_produced(self, adaptive_records):
        detector = SwitchDetector()
        truth = np.array([has_variation(r) for r in adaptive_records])
        if truth.any() and not truth.all():
            detector.calibrate(adaptive_records, truth)
        labels = detector.classify_variation(adaptive_records)
        assert set(labels) <= {"no variation", "mild variation", "high variation"}

    def test_no_variation_below_threshold(self, adaptive_records):
        detector = SwitchDetector(threshold=1e12)
        labels = detector.classify_variation(adaptive_records)
        assert set(labels) == {"no variation"}

    def test_invalid_high_factor(self, adaptive_records):
        with pytest.raises(ValueError):
            SwitchDetector().classify_variation(adaptive_records, high_factor=1.0)

    def test_levels_ordered_by_score(self, adaptive_records):
        detector = SwitchDetector()
        truth = np.array([has_variation(r) for r in adaptive_records])
        if truth.any() and not truth.all():
            detector.calibrate(adaptive_records, truth)
        scores = detector.scores(adaptive_records)
        labels = detector.classify_variation(adaptive_records)
        order = {"no variation": 0, "mild variation": 1, "high variation": 2}
        none_scores = scores[labels == "no variation"]
        high_scores = scores[labels == "high variation"]
        if none_scores.size and high_scores.size:
            assert none_scores.max() < high_scores.min()


class TestPredictProba:
    def test_stall_proba_is_distribution(self, fitted_stall, stall_records):
        proba = fitted_stall.predict_proba(stall_records[:15])
        assert proba.shape[0] == 15
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)
        assert (proba >= 0).all()

    def test_proba_argmax_matches_predict(self, fitted_stall, stall_records):
        proba = fitted_stall.predict_proba(stall_records[:15])
        predicted = fitted_stall.predict(stall_records[:15])
        classes = fitted_stall._model.classes_
        assert (classes[np.argmax(proba, axis=1)] == predicted).all()

    def test_representation_proba(self, fitted_representation, adaptive_records):
        proba = fitted_representation.predict_proba(adaptive_records[:10])
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)
