"""Unit tests for the labelling rules (§4.1-§4.3)."""

import numpy as np
import pytest

from repro.core.labeling import (
    REPRESENTATION_LABELS,
    SEVERE_RR_THRESHOLD,
    STALL_LABELS,
    has_variation,
    label_records,
    representation_label,
    stall_label,
    variation_label,
    variation_score,
)
from repro.datasets.schema import SessionRecord


def _record(**gt):
    n = 4
    return SessionRecord(
        session_id="x",
        encrypted=False,
        timestamps=np.arange(n, dtype=float),
        sizes=np.full(n, 1000.0),
        transactions=np.full(n, 0.5),
        rtt_min=np.zeros(n),
        rtt_avg=np.zeros(n),
        rtt_max=np.zeros(n),
        bdp=np.zeros(n),
        bif_avg=np.zeros(n),
        bif_max=np.zeros(n),
        loss_pct=np.zeros(n),
        retx_pct=np.zeros(n),
        **gt,
    )


class TestStallLabel:
    def test_no_stalls(self):
        record = _record(stall_duration_s=0.0, total_duration_s=100.0)
        assert stall_label(record) == "no stalls"

    def test_mild(self):
        record = _record(stall_duration_s=5.0, total_duration_s=100.0)
        assert stall_label(record) == "mild stalls"

    def test_boundary_exactly_at_threshold_is_mild(self):
        record = _record(stall_duration_s=10.0, total_duration_s=100.0)
        assert stall_label(record) == "mild stalls"

    def test_severe(self):
        record = _record(stall_duration_s=10.1, total_duration_s=100.0)
        assert stall_label(record) == "severe stalls"

    def test_threshold_constant(self):
        assert SEVERE_RR_THRESHOLD == 0.1

    def test_labels_tuple(self):
        assert STALL_LABELS == ("no stalls", "mild stalls", "severe stalls")


class TestRepresentationLabel:
    def test_ld_below_360(self):
        record = _record(resolutions=np.array([240, 240]))
        assert representation_label(record) == "LD"

    def test_sd_boundaries_inclusive(self):
        assert (
            representation_label(_record(resolutions=np.array([360, 360])))
            == "SD"
        )
        assert (
            representation_label(_record(resolutions=np.array([480, 480])))
            == "SD"
        )

    def test_hd_above_480(self):
        record = _record(resolutions=np.array([720, 720]))
        assert representation_label(record) == "HD"

    def test_mixed_session_uses_mean(self):
        # mean of 144 and 720 = 432 -> SD
        record = _record(resolutions=np.array([144, 720]))
        assert representation_label(record) == "SD"

    def test_labels_tuple(self):
        assert REPRESENTATION_LABELS == ("LD", "SD", "HD")


class TestVariation:
    def test_no_switches_scores_zero(self):
        record = _record(resolutions=np.array([360, 360, 360]))
        assert variation_score(record) == 0.0
        assert variation_label(record) == "no variation"
        assert not has_variation(record)

    def test_one_small_switch_is_mild(self):
        record = _record(resolutions=np.array([240, 360, 360]))
        assert variation_label(record) == "mild variation"

    def test_many_switches_are_high(self):
        record = _record(
            resolutions=np.array([144, 480, 144, 480, 144, 480, 144])
        )
        assert variation_label(record) == "high variation"

    def test_score_monotone_in_frequency(self):
        few = _record(resolutions=np.array([240, 360, 360, 360]))
        many = _record(resolutions=np.array([240, 360, 240, 360]))
        assert variation_score(many) > variation_score(few)


class TestLabelRecords:
    def test_vectorised(self):
        records = [
            _record(stall_duration_s=0.0, total_duration_s=10.0),
            _record(stall_duration_s=5.0, total_duration_s=10.0),
        ]
        labels = label_records(records, stall_label)
        assert labels.tolist() == ["no stalls", "severe stalls"]
