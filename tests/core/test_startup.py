"""Unit tests for the startup-delay estimator extension."""

import numpy as np
import pytest

from repro.core.startup import estimate_startup_delay
from repro.datasets.preparation import record_from_video_session


class TestEstimateStartupDelay:
    def test_returns_none_for_single_chunk(self, one_record):
        import copy

        record = copy.deepcopy(one_record)
        for name in (
            "timestamps", "sizes", "transactions", "rtt_min", "rtt_avg",
            "rtt_max", "bdp", "bif_avg", "bif_max", "loss_pct", "retx_pct",
        ):
            setattr(record, name, getattr(record, name)[:1])
        assert estimate_startup_delay(record) is None

    def test_estimate_positive_and_bounded(self, one_record):
        estimate = estimate_startup_delay(one_record)
        assert estimate is not None
        assert estimate.delay_s >= 0.0
        assert estimate.delay_s <= one_record.timestamps[-1]
        assert estimate.bitrate_kbps > 0
        assert 1 <= estimate.chunks_used <= one_record.n_chunks

    def test_tracks_true_startup_on_corpus(self, adaptive_corpus):
        """Median estimation error within a few seconds of ground truth."""
        errors = []
        for session in adaptive_corpus.sessions:
            if session.startup_delay_s is None:
                continue
            record = record_from_video_session(session)
            estimate = estimate_startup_delay(record)
            if estimate is not None:
                errors.append(estimate.delay_s - session.startup_delay_s)
        errors = np.array(errors)
        assert errors.size > 20
        assert abs(np.median(errors)) < 3.0
        assert np.percentile(np.abs(errors), 75) < 8.0

    def test_slower_network_longer_estimate(self):
        """Sessions that buffered slowly get larger estimates."""
        from repro.network.path import NetworkPath
        from repro.streaming.adaptive import AdaptivePlayer
        from repro.streaming.catalog import Video

        delays = {}
        for profile in ("excellent", "bad"):
            rng = np.random.default_rng(3)
            video = Video(video_id="startup-test", duration_s=90.0)
            path = NetworkPath(profile, 600.0, np.random.default_rng(3))
            session = AdaptivePlayer().play(video, path, rng)
            estimate = estimate_startup_delay(
                record_from_video_session(session)
            )
            delays[profile] = estimate.delay_s
        assert delays["bad"] > delays["excellent"]
