"""Unit tests for the MOS estimation extension."""

import numpy as np
import pytest

from repro.core.framework import SessionDiagnosis
from repro.core.mos import (
    BASE_QUALITY_MOS,
    MosBreakdown,
    mos_from_diagnosis,
    mos_from_ground_truth,
)
from repro.datasets.schema import SessionRecord


def _record(resolutions, stall_s=0.0, duration=100.0):
    resolutions = np.asarray(resolutions)
    n = resolutions.size
    return SessionRecord(
        session_id="x",
        encrypted=False,
        timestamps=np.arange(n, dtype=float),
        sizes=np.full(n, 1000.0),
        transactions=np.full(n, 0.5),
        rtt_min=np.zeros(n),
        rtt_avg=np.zeros(n),
        rtt_max=np.zeros(n),
        bdp=np.zeros(n),
        bif_avg=np.zeros(n),
        bif_max=np.zeros(n),
        loss_pct=np.zeros(n),
        retx_pct=np.zeros(n),
        resolutions=resolutions,
        stall_duration_s=stall_s,
        stall_count=1 if stall_s else 0,
        total_duration_s=duration,
    )


def _diagnosis(stall="no stalls", rep="SD", switches=False):
    return SessionDiagnosis(
        session_id="x",
        stall_class=stall,
        representation_class=rep,
        has_quality_switches=switches,
    )


class TestGroundTruthMos:
    def test_perfect_hd_session_scores_high(self):
        breakdown = mos_from_ground_truth(_record([1080, 1080, 1080]))
        assert breakdown.mos > 4.0
        assert breakdown.stall_penalty == 0.0
        assert breakdown.switch_penalty == 0.0

    def test_mos_monotone_in_resolution(self):
        scores = [
            mos_from_ground_truth(_record([r, r])).mos
            for r in (144, 240, 360, 480, 720, 1080)
        ]
        assert scores == sorted(scores)

    def test_stalling_reduces_mos(self):
        clean = mos_from_ground_truth(_record([480, 480])).mos
        stalled = mos_from_ground_truth(_record([480, 480], stall_s=10.0)).mos
        assert stalled < clean

    def test_severe_stalling_costs_over_a_point(self):
        clean = mos_from_ground_truth(_record([480, 480])).mos
        severe = mos_from_ground_truth(_record([480, 480], stall_s=10.0)).mos
        assert clean - severe >= 1.0

    def test_mos_monotone_in_stalling(self):
        scores = [
            mos_from_ground_truth(_record([480, 480], stall_s=s)).mos
            for s in (0.0, 2.0, 5.0, 10.0, 30.0)
        ]
        assert scores == sorted(scores, reverse=True)

    def test_switching_reduces_mos(self):
        steady = mos_from_ground_truth(_record([480, 480, 480, 480])).mos
        switching = mos_from_ground_truth(_record([480, 144, 480, 144])).mos
        assert switching < steady

    def test_mos_bounded(self):
        worst = mos_from_ground_truth(
            _record([144, 1080] * 20, stall_s=90.0)
        )
        assert 1.0 <= worst.mos <= 5.0

    def test_anchor_points_respected(self):
        for resolution, expected in BASE_QUALITY_MOS:
            breakdown = mos_from_ground_truth(_record([resolution] * 2))
            assert breakdown.base_quality == pytest.approx(expected)


class TestDiagnosisMos:
    def test_class_ordering(self):
        ld = mos_from_diagnosis(_diagnosis(rep="LD")).mos
        sd = mos_from_diagnosis(_diagnosis(rep="SD")).mos
        hd = mos_from_diagnosis(_diagnosis(rep="HD")).mos
        assert ld < sd < hd

    def test_stall_class_ordering(self):
        scores = [
            mos_from_diagnosis(_diagnosis(stall=s)).mos
            for s in ("no stalls", "mild stalls", "severe stalls")
        ]
        assert scores == sorted(scores, reverse=True)

    def test_switches_penalised(self):
        without = mos_from_diagnosis(_diagnosis(switches=False)).mos
        with_sw = mos_from_diagnosis(_diagnosis(switches=True)).mos
        assert with_sw < without

    def test_diagnosis_and_truth_agree_on_ordering(self):
        """Predicted-class MOS preserves the ranking of exact MOS."""
        good_truth = mos_from_ground_truth(_record([720, 720])).mos
        bad_truth = mos_from_ground_truth(
            _record([240, 240], stall_s=20.0)
        ).mos
        good_pred = mos_from_diagnosis(
            _diagnosis(stall="no stalls", rep="HD")
        ).mos
        bad_pred = mos_from_diagnosis(
            _diagnosis(stall="severe stalls", rep="LD")
        ).mos
        assert (good_truth > bad_truth) == (good_pred > bad_pred)
