"""Integration tests for the unified QoE framework and evaluation protocol."""

import numpy as np
import pytest

from repro.core.evaluation import balanced_train_full_test, evaluate_model
from repro.core.framework import QoEFramework
from repro.ml.forest import RandomForestClassifier


@pytest.fixture(scope="module")
def framework(stall_records, adaptive_records):
    return QoEFramework(random_state=0, n_estimators=15).fit(
        stall_records, adaptive_records
    )


class TestQoEFramework:
    def test_unfitted_raises(self, stall_records):
        with pytest.raises(RuntimeError):
            QoEFramework().diagnose(stall_records)

    def test_diagnose_all_sessions(self, framework, adaptive_records):
        diagnoses = framework.diagnose(adaptive_records[:15])
        assert len(diagnoses) == 15
        for diagnosis in diagnoses:
            assert diagnosis.stall_class in (
                "no stalls",
                "mild stalls",
                "severe stalls",
            )
            assert diagnosis.representation_class in ("LD", "SD", "HD")
            assert isinstance(diagnosis.has_quality_switches, bool)

    def test_diagnose_non_adaptive_mode(self, framework, stall_records):
        diagnoses = framework.diagnose(stall_records[:5], adaptive=False)
        for diagnosis in diagnoses:
            assert diagnosis.representation_class is None
            assert diagnosis.has_quality_switches is None

    def test_switch_threshold_calibrated(self, framework):
        assert framework.switching.threshold > 0

    def test_diagnosis_ids_match(self, framework, adaptive_records):
        diagnoses = framework.diagnose(adaptive_records[:5])
        assert [d.session_id for d in diagnoses] == [
            r.session_id for r in adaptive_records[:5]
        ]

    def test_fit_derives_adaptive_subset(self, stall_records):
        framework = QoEFramework(random_state=1, n_estimators=5)
        framework.fit(stall_records)    # no explicit adaptive records
        assert framework.stall._model is not None


class TestEvaluationProtocol:
    def _data(self, n=300, seed=0):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, 4))
        y = np.where(X[:, 0] > 0.8, "rare", "common")
        return X, y

    def test_balanced_training_set(self):
        X, y = self._data()
        captured = {}

        class Spy(RandomForestClassifier):
            def fit(self, Xb, yb):
                captured["labels"] = yb.copy()
                return super().fit(Xb, yb)

        balanced_train_full_test(
            lambda: Spy(n_estimators=5, random_state=0), X, y, random_state=0
        )
        _, counts = np.unique(captured["labels"], return_counts=True)
        assert counts.min() == counts.max()

    def test_oversampling_keeps_majority(self):
        X, y = self._data()
        captured = {}

        class Spy(RandomForestClassifier):
            def fit(self, Xb, yb):
                captured["n"] = len(yb)
                return super().fit(Xb, yb)

        balanced_train_full_test(
            lambda: Spy(n_estimators=5, random_state=0),
            X,
            y,
            random_state=0,
            strategy="over",
        )
        majority = max(np.unique(y, return_counts=True)[1])
        assert captured["n"] == 2 * majority

    def test_report_covers_full_set(self):
        X, y = self._data()
        _, report = balanced_train_full_test(
            lambda: RandomForestClassifier(n_estimators=5, random_state=0),
            X,
            y,
            random_state=0,
        )
        assert report.matrix.sum() == len(y)

    def test_evaluate_model_on_new_data(self):
        X, y = self._data()
        model, _ = balanced_train_full_test(
            lambda: RandomForestClassifier(n_estimators=10, random_state=0),
            X,
            y,
            random_state=0,
        )
        X2, y2 = self._data(seed=1)
        report = evaluate_model(model, X2, y2)
        assert report.accuracy > 0.7
