"""Unit/behaviour tests for the adaptive and progressive player sims."""

import numpy as np
import pytest

from repro.network.path import NetworkPath, Outage
from repro.streaming.adaptive import AdaptivePlayer, AdaptivePlayerConfig
from repro.streaming.catalog import DASH_LADDER, PROGRESSIVE_LADDER, Video
from repro.streaming.progressive import (
    ProgressivePlayer,
    ProgressivePlayerConfig,
    select_static_quality,
)


def _video(duration=120.0):
    return Video(video_id="test-video0", duration_s=duration, complexity=1.0)


def _path(profile="good", seed=0, duration=900.0, outages=None):
    return NetworkPath(profile, duration, np.random.default_rng(seed), outages=outages)


class TestProgressivePlayer:
    def test_full_video_downloaded(self):
        rng = np.random.default_rng(1)
        session = ProgressivePlayer().play(_video(), _path(seed=1), rng)
        media = sum(c.media_seconds for c in session.video_chunks)
        assert media == pytest.approx(120.0, abs=0.5)

    def test_single_quality_throughout(self):
        rng = np.random.default_rng(2)
        session = ProgressivePlayer().play(_video(), _path(seed=2), rng)
        assert len({c.resolution_p for c in session.video_chunks}) == 1

    def test_no_stalls_on_excellent_network(self):
        rng = np.random.default_rng(3)
        session = ProgressivePlayer().play(
            _video(), _path("excellent", seed=3), rng
        )
        assert session.stall_count == 0

    def test_outage_causes_stall_and_small_chunks(self):
        rng = np.random.default_rng(4)
        path = _path("good", seed=4, outages=[Outage(20.0, 60.0, 0.03)])
        session = ProgressivePlayer().play(
            _video(240.0), path, rng,
            quality=PROGRESSIVE_LADDER[2],       # 360p on a dying link
        )
        assert session.stall_count >= 1
        sizes = session.chunk_sizes()
        assert sizes.min() < 0.4 * sizes.max()

    def test_chunks_are_time_ordered(self):
        rng = np.random.default_rng(5)
        session = ProgressivePlayer().play(_video(), _path(seed=5), rng)
        times = session.chunk_times()
        assert np.all(np.diff(times) > -1e-9)

    def test_abandonment_on_hopeless_network(self):
        rng = np.random.default_rng(6)
        config = ProgressivePlayerConfig(mean_patience_stall_s=5.0)
        session = ProgressivePlayer(config).play(
            _video(600.0), _path("bad", seed=6, duration=3000.0), rng,
            quality=PROGRESSIVE_LADDER[-1],      # 720p on a bad link
        )
        assert session.abandoned

    def test_session_metadata(self):
        rng = np.random.default_rng(7)
        session = ProgressivePlayer().play(
            _video(), _path(seed=7), rng, place="office"
        )
        assert session.kind == "progressive"
        assert session.place == "office"
        assert len(session.session_id) == 16
        assert session.total_duration_s > 0


class TestSelectStaticQuality:
    def test_fast_network_high_quality(self):
        rng = np.random.default_rng(8)
        picks = [
            select_static_quality(
                PROGRESSIVE_LADDER, _video(), 20_000.0, rng
            ).resolution_p
            for _ in range(30)
        ]
        assert np.median(picks) >= 360

    def test_slow_network_low_quality(self):
        rng = np.random.default_rng(9)
        picks = [
            select_static_quality(
                PROGRESSIVE_LADDER, _video(), 200.0, rng
            ).resolution_p
            for _ in range(30)
        ]
        assert np.median(picks) <= 240


class TestAdaptivePlayer:
    def test_full_video_downloaded(self):
        rng = np.random.default_rng(10)
        session = AdaptivePlayer().play(_video(), _path(seed=10), rng)
        media = sum(c.media_seconds for c in session.video_chunks)
        assert media == pytest.approx(120.0, abs=0.5)

    def test_audio_media_matches_video_media(self):
        rng = np.random.default_rng(11)
        session = AdaptivePlayer().play(_video(), _path(seed=11), rng)
        video_media = sum(c.media_seconds for c in session.video_chunks)
        audio_media = sum(
            c.media_seconds for c in session.chunks if c.kind == "audio"
        )
        assert audio_media == pytest.approx(video_media, abs=0.5)

    def test_audio_disabled(self):
        rng = np.random.default_rng(12)
        config = AdaptivePlayerConfig(include_audio=False)
        session = AdaptivePlayer(config).play(_video(), _path(seed=12), rng)
        assert all(c.kind == "video" for c in session.chunks)

    def test_quality_adapts_down_under_outage(self):
        rng = np.random.default_rng(13)
        path = _path("good", seed=13, outages=[Outage(20.0, 70.0, 0.03)])
        config = AdaptivePlayerConfig(mean_patience_stall_s=300.0)
        session = AdaptivePlayer(config).play(_video(240.0), path, rng)
        resolutions = [c.resolution_p for c in session.video_chunks]
        assert min(resolutions) < max(resolutions)

    def test_ladder_cap_respected(self):
        rng = np.random.default_rng(14)
        ladder = [q for q in DASH_LADDER if q.resolution_p <= 360]
        config = AdaptivePlayerConfig(ladder=ladder)
        session = AdaptivePlayer(config).play(
            _video(), _path("excellent", seed=14), rng
        )
        assert max(c.resolution_p for c in session.video_chunks) <= 360

    def test_no_stalls_on_excellent_network(self):
        rng = np.random.default_rng(15)
        session = AdaptivePlayer().play(
            _video(), _path("excellent", seed=15), rng
        )
        assert session.stall_count == 0

    def test_switch_free_sessions_exist_on_stable_networks(self):
        """Figure 4 needs a population of sessions without any quality
        switch; stable links with a good initial estimate provide it."""
        counts = []
        for seed in range(16, 36):
            rng = np.random.default_rng(seed)
            session = AdaptivePlayer().play(
                _video(), _path("excellent", seed=seed), rng
            )
            counts.append(session.switch_count())
        assert min(counts) == 0
        # and stable sessions never rack up pathological switch counts
        assert np.median(counts) <= 5

    def test_faststart_after_switch(self):
        """After a forced switch the request sizes re-ramp (Figure 3)."""
        rng = np.random.default_rng(17)
        path = _path("good", seed=17, outages=[Outage(30.0, 75.0, 0.03)])
        session = AdaptivePlayer().play(_video(300.0), path, rng)
        video_chunks = session.video_chunks
        media = [c.media_seconds for c in video_chunks]
        # at least one post-start chunk drops back to the fast-start size
        assert min(media[1:]) <= AdaptivePlayerConfig().faststart_media_s + 1e-9

    def test_kind_is_adaptive(self):
        rng = np.random.default_rng(18)
        session = AdaptivePlayer().play(_video(), _path(seed=18), rng)
        assert session.kind == "adaptive"
