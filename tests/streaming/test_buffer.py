"""Unit tests for the playout buffer model."""

import pytest

from repro.streaming.buffer import PlayoutBuffer, StallEvent


class TestStartup:
    def test_playback_waits_for_threshold(self):
        buffer = PlayoutBuffer(startup_threshold_s=4.0)
        buffer.add_media(1.0, 2.0)
        assert not buffer.playback_started
        buffer.add_media(2.0, 3.0)
        assert buffer.playback_started
        assert buffer.startup_delay_s == 2.0

    def test_no_drain_before_start(self):
        buffer = PlayoutBuffer()
        buffer.add_media(1.0, 2.0)
        buffer.advance_to(100.0)
        assert buffer.level_s == 2.0

    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            PlayoutBuffer(startup_threshold_s=0.0)


class TestDrainAndStall:
    def _started(self):
        buffer = PlayoutBuffer(startup_threshold_s=4.0, rebuffer_threshold_s=2.0)
        buffer.add_media(1.0, 10.0)
        assert buffer.playback_started
        return buffer

    def test_real_time_drain(self):
        buffer = self._started()
        buffer.advance_to(5.0)
        assert buffer.level_s == pytest.approx(6.0)
        assert buffer.played_s == pytest.approx(4.0)

    def test_stall_when_buffer_empties(self):
        buffer = self._started()
        buffer.advance_to(20.0)    # needs 19s, has 10
        assert buffer.stalled
        assert buffer.stalled_since == pytest.approx(11.0)

    def test_stall_closed_on_refill(self):
        buffer = self._started()
        buffer.advance_to(20.0)
        buffer.add_media(22.0, 3.0)   # refill above the 2s threshold
        assert not buffer.stalled
        assert len(buffer.stalls) == 1
        stall = buffer.stalls[0]
        assert stall.start_s == pytest.approx(11.0)
        assert stall.duration_s == pytest.approx(11.0)

    def test_small_refill_keeps_stalling(self):
        buffer = self._started()
        buffer.advance_to(20.0)
        buffer.add_media(21.0, 1.0)   # below rebuffer threshold of 2
        assert buffer.stalled

    def test_exact_drain_is_not_a_stall(self):
        buffer = self._started()
        buffer.advance_to(11.0)       # exactly 10s of playback
        buffer.finish(11.0)
        assert buffer.stalls == []

    def test_clock_cannot_go_backwards(self):
        buffer = self._started()
        buffer.advance_to(5.0)
        with pytest.raises(ValueError):
            buffer.advance_to(4.0)

    def test_negative_media_rejected(self):
        buffer = PlayoutBuffer()
        with pytest.raises(ValueError):
            buffer.add_media(0.0, -1.0)

    def test_finish_flushes_open_stall(self):
        buffer = self._started()
        buffer.advance_to(30.0)
        buffer.finish(30.0)
        assert not buffer.stalled
        assert len(buffer.stalls) == 1
        assert buffer.stalls[0].duration_s == pytest.approx(19.0)

    def test_total_stall_time(self):
        buffer = self._started()
        buffer.advance_to(13.0)       # stall from 11
        buffer.add_media(14.0, 5.0)   # stall 11->14 = 3s
        buffer.advance_to(25.0)       # stall again from 19
        buffer.finish(26.0)
        assert buffer.total_stall_s() == pytest.approx(3.0 + 7.0)

    def test_sub_perceptual_stall_ignored(self):
        buffer = self._started()
        buffer.advance_to(11.0001)
        buffer.add_media(11.005, 5.0)
        assert buffer.stalls == []


class TestStallEvent:
    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            StallEvent(start_s=1.0, duration_s=-0.1)
