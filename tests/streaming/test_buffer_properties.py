"""Property-based tests of the playout-buffer invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streaming.buffer import PlayoutBuffer

# A random schedule of (dt_to_next_event, media_delivered) steps.
schedule_st = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=15.0, allow_nan=False),
    ),
    min_size=1,
    max_size=40,
)


def _run(schedule):
    buffer = PlayoutBuffer(startup_threshold_s=4.0, rebuffer_threshold_s=2.0)
    clock = 0.0
    total_media = 0.0
    for dt, media in schedule:
        clock += dt
        buffer.add_media(clock, media)
        total_media += media
    buffer.finish(clock + 5.0)
    return buffer, total_media


@given(schedule_st)
def test_media_conservation(schedule):
    """played + buffered never exceeds what was delivered."""
    buffer, total_media = _run(schedule)
    assert buffer.played_s + buffer.level_s <= total_media + 1e-6


@given(schedule_st)
def test_level_never_negative(schedule):
    buffer, _ = _run(schedule)
    assert buffer.level_s >= -1e-9
    assert buffer.played_s >= -1e-9


@given(schedule_st)
def test_stalls_sorted_and_disjoint(schedule):
    buffer, _ = _run(schedule)
    stalls = buffer.stalls
    for a, b in zip(stalls, stalls[1:]):
        assert a.start_s + a.duration_s <= b.start_s + 1e-6


@given(schedule_st)
def test_stalls_only_after_playback_started(schedule):
    buffer, _ = _run(schedule)
    if buffer.stalls:
        assert buffer.playback_started
        assert buffer.startup_delay_s is not None
        assert buffer.stalls[0].start_s >= buffer.startup_delay_s - 1e-6


@given(schedule_st)
def test_total_stall_bounded_by_wall_clock(schedule):
    buffer, _ = _run(schedule)
    assert buffer.total_stall_s() <= buffer.clock_s + 1e-6


@given(schedule_st)
def test_no_open_stall_after_finish(schedule):
    buffer, _ = _run(schedule)
    assert not buffer.stalled
