"""Unit tests for the video catalog and quality ladder."""

import numpy as np
import pytest

from repro.streaming.catalog import (
    AUDIO_LEVEL,
    DASH_LADDER,
    PROGRESSIVE_LADDER,
    QualityLevel,
    Video,
    VideoCatalog,
    quality_for_itag,
)


class TestLadder:
    def test_dash_ladder_covers_paper_resolutions(self):
        resolutions = {q.resolution_p for q in DASH_LADDER}
        assert resolutions == {144, 240, 360, 480, 720, 1080}

    def test_bitrates_increase_with_resolution(self):
        ordered = sorted(DASH_LADDER, key=lambda q: q.resolution_p)
        bitrates = [q.bitrate_kbps for q in ordered]
        assert bitrates == sorted(bitrates)

    def test_itags_unique(self):
        itags = [q.itag for q in DASH_LADDER + PROGRESSIVE_LADDER] + [AUDIO_LEVEL.itag]
        assert len(itags) == len(set(itags))

    def test_itag_lookup_roundtrip(self):
        for level in DASH_LADDER:
            assert quality_for_itag(level.itag) is level

    def test_unknown_itag_raises(self):
        with pytest.raises(KeyError):
            quality_for_itag(9999)

    def test_audio_level_is_adaptive(self):
        assert AUDIO_LEVEL.adaptive
        assert AUDIO_LEVEL.resolution_p == 0

    def test_invalid_quality_level(self):
        with pytest.raises(ValueError):
            QualityLevel(resolution_p=-1, itag=1, bitrate_kbps=100.0, adaptive=True)


class TestVideo:
    def test_bitrate_scales_with_complexity(self):
        video = Video(video_id="v", duration_s=60.0, complexity=2.0)
        level = DASH_LADDER[2]
        assert video.bitrate_kbps(level) == pytest.approx(2.0 * level.bitrate_kbps)

    def test_audio_bitrate_not_scaled(self):
        video = Video(video_id="v", duration_s=60.0, complexity=2.0)
        assert video.bitrate_kbps(AUDIO_LEVEL) == AUDIO_LEVEL.bitrate_kbps

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            Video(video_id="v", duration_s=0.0)

    def test_invalid_complexity(self):
        with pytest.raises(ValueError):
            Video(video_id="v", duration_s=10.0, complexity=0.0)


class TestCatalog:
    def test_sample_within_bounds(self):
        catalog = VideoCatalog()
        rng = np.random.default_rng(0)
        for _ in range(100):
            video = catalog.sample(rng)
            assert 30.0 <= video.duration_s <= 3600.0
            assert 0.4 <= video.complexity <= 2.5

    def test_mean_duration_roughly_matches(self):
        catalog = VideoCatalog(mean_duration_s=180.0)
        rng = np.random.default_rng(1)
        durations = [catalog.sample(rng).duration_s for _ in range(800)]
        assert 120.0 <= np.mean(durations) <= 260.0

    def test_video_ids_unique_and_11_chars(self):
        catalog = VideoCatalog()
        rng = np.random.default_rng(2)
        ids = [catalog.sample(rng).video_id for _ in range(50)]
        assert all(len(i) == 11 for i in ids)
        assert len(set(ids)) == 50

    def test_sample_many(self):
        catalog = VideoCatalog()
        videos = catalog.sample_many(7, np.random.default_rng(3))
        assert len(videos) == 7

    def test_sample_many_negative_raises(self):
        with pytest.raises(ValueError):
            VideoCatalog().sample_many(-1, np.random.default_rng(0))

    def test_invalid_mean_duration(self):
        with pytest.raises(ValueError):
            VideoCatalog(mean_duration_s=-5.0)
