"""Tests for the playback event timeline."""

import numpy as np
import pytest

from repro.network.path import NetworkPath, Outage
from repro.streaming import AdaptivePlayer, AdaptivePlayerConfig, Video
from repro.streaming.events import PlaybackEvent, build_event_log


class TestPlaybackEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            PlaybackEvent(kind="rewind", time_s=0.0)


class TestEventLog:
    def _session(self, outages=None, seed=0):
        rng = np.random.default_rng(seed)
        video = Video(video_id="evt-video-0", duration_s=150.0)
        path = NetworkPath("good", 900.0, np.random.default_rng(seed), outages=outages)
        config = AdaptivePlayerConfig(mean_patience_stall_s=300.0)
        return AdaptivePlayer(config).play(video, path, rng)

    def test_events_time_ordered(self):
        events = self._session().event_log()
        times = [e.time_s for e in events]
        assert times == sorted(times)

    def test_loaded_then_play_first(self):
        events = self._session().event_log()
        kinds = [e.kind for e in events]
        assert kinds[0] == "loaded"
        assert "play" in kinds
        assert kinds.index("loaded") < kinds.index("play")

    def test_terminal_event_last(self):
        events = self._session().event_log()
        assert events[-1].kind in ("ended", "abandoned")

    def test_stall_events_paired(self):
        session = self._session(outages=[Outage(20.0, 65.0, 0.03)], seed=3)
        events = session.event_log()
        starts = [e for e in events if e.kind == "stall_start"]
        ends = [e for e in events if e.kind == "stall_end"]
        assert len(starts) == len(ends) == session.stall_count

    def test_switch_events_match_switch_count(self):
        session = self._session(outages=[Outage(20.0, 65.0, 0.03)], seed=3)
        events = session.event_log()
        switches = [e for e in events if e.kind == "switch"]
        assert len(switches) == session.switch_count()
        for event in switches:
            assert "->" in event.detail

    def test_healthy_session_has_no_stall_events(self):
        events = self._session(seed=1).event_log()
        assert not any(e.kind.startswith("stall") for e in events)
