"""Unit tests for the ABR algorithms."""

import pytest

from repro.streaming.abr import (
    BufferAbr,
    HybridAbr,
    ThroughputAbr,
    ThroughputEstimator,
)
from repro.streaming.catalog import DASH_LADDER, Video

VIDEO = Video(video_id="v", duration_s=120.0, complexity=1.0)
LADDER = DASH_LADDER


def _rung(resolution):
    return next(q for q in LADDER if q.resolution_p == resolution)


class TestThroughputEstimator:
    def test_first_sample_is_estimate(self):
        est = ThroughputEstimator()
        est.update(1000.0)
        assert est.estimate_kbps == 1000.0

    def test_ewma_moves_toward_new_samples(self):
        est = ThroughputEstimator(alpha=0.5)
        est.update(1000.0)
        est.update(2000.0)
        assert est.estimate_kbps == pytest.approx(1500.0)

    def test_zero_before_samples(self):
        assert ThroughputEstimator().estimate_kbps == 0.0

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            ThroughputEstimator().update(-1.0)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            ThroughputEstimator(alpha=0.0)


class TestThroughputAbr:
    def test_high_throughput_gets_top_rung(self):
        abr = ThroughputAbr(safety=0.8)
        choice = abr.select(LADDER, VIDEO, 100_000.0, 20.0, None)
        assert choice.resolution_p == 1080

    def test_low_throughput_gets_bottom_rung(self):
        abr = ThroughputAbr()
        choice = abr.select(LADDER, VIDEO, 50.0, 20.0, None)
        assert choice.resolution_p == 144

    def test_safety_margin_applied(self):
        abr = ThroughputAbr(safety=0.5)
        # 1000 kbps * 0.5 = 500 -> exactly the 360p rung
        choice = abr.select(LADDER, VIDEO, 1000.0, 20.0, None)
        assert choice.resolution_p == 360


class TestBufferAbr:
    def test_empty_buffer_lowest(self):
        abr = BufferAbr(reservoir_s=5.0, cushion_s=25.0)
        assert abr.select(LADDER, VIDEO, 1e9, 2.0, None).resolution_p == 144

    def test_full_buffer_highest(self):
        abr = BufferAbr(reservoir_s=5.0, cushion_s=25.0)
        assert abr.select(LADDER, VIDEO, 0.0, 30.0, None).resolution_p == 1080

    def test_midpoint_intermediate(self):
        abr = BufferAbr(reservoir_s=5.0, cushion_s=25.0)
        choice = abr.select(LADDER, VIDEO, 0.0, 15.0, None)
        assert 144 < choice.resolution_p < 1080


class TestHybridAbr:
    def test_panic_drops_to_sustainable_rung(self):
        """Panic needs low buffer AND insufficient throughput; it then
        drops straight to the sustainable rung (skipping the one-rung
        downswitch rule)."""
        abr = HybridAbr(panic_s=2.5)
        current = _rung(480)
        choice = abr.select(LADDER, VIDEO, 400.0, 1.0, current, playback_started=True)
        # budget 320 sustains the 240p rung (250 kbps)
        assert choice.resolution_p == 240

    def test_no_panic_when_throughput_sufficient(self):
        abr = HybridAbr(panic_s=2.5)
        current = _rung(480)
        choice = abr.select(LADDER, VIDEO, 1e9, 1.0, current, playback_started=True)
        assert choice.resolution_p >= 480

    def test_no_panic_during_initial_fill(self):
        abr = HybridAbr(panic_s=2.5)
        current = _rung(480)
        choice = abr.select(LADDER, VIDEO, 5000.0, 1.0, current, playback_started=False)
        assert choice.resolution_p >= 480

    def test_upswitch_one_rung_at_a_time(self):
        abr = HybridAbr(upswitch_min_buffer_s=10.0)
        current = _rung(240)
        choice = abr.select(LADDER, VIDEO, 1e9, 20.0, current)
        assert choice.resolution_p == 360

    def test_upswitch_blocked_on_thin_buffer(self):
        abr = HybridAbr(upswitch_min_buffer_s=10.0)
        current = _rung(240)
        choice = abr.select(LADDER, VIDEO, 1e9, 5.0, current)
        assert choice.resolution_p == 240

    def test_downswitch_immediate_when_buffer_thin(self):
        abr = HybridAbr(downswitch_max_buffer_s=15.0)
        current = _rung(1080)
        choice = abr.select(LADDER, VIDEO, 400.0, 8.0, current)
        assert choice.resolution_p == 240

    def test_downswitch_suppressed_on_full_buffer(self):
        abr = HybridAbr(downswitch_max_buffer_s=15.0)
        current = _rung(1080)
        choice = abr.select(LADDER, VIDEO, 400.0, 28.0, current)
        assert choice.resolution_p == 1080

    def test_initial_selection_uses_throughput(self):
        abr = HybridAbr(safety=0.8)
        choice = abr.select(LADDER, VIDEO, 3000.0, 0.0, None, playback_started=False)
        assert choice.resolution_p == 720
