"""Unit tests for the VideoSession record and its derived quantities."""

import numpy as np
import pytest

from repro.network.tcp import TransferResult
from repro.streaming.buffer import StallEvent
from repro.streaming.catalog import AUDIO_LEVEL, DASH_LADDER, Video
from repro.streaming.segments import ChunkDownload
from repro.streaming.session import VideoSession, make_session_id


def _transfer(start, duration=1.0, size=1000):
    return TransferResult(
        bytes=size,
        start_s=start,
        duration_s=duration,
        rtt_min_ms=40.0,
        rtt_avg_ms=50.0,
        rtt_max_ms=60.0,
        loss_pct=0.0,
        retx_pct=0.0,
        bif_avg_bytes=1000.0,
        bif_max_bytes=2000.0,
        bdp_bytes=10_000.0,
    )


def _chunk(index, start, resolution=360, media=5.0, size=100_000, kind="video"):
    quality = (
        AUDIO_LEVEL
        if kind == "audio"
        else next(q for q in DASH_LADDER if q.resolution_p == resolution)
    )
    return ChunkDownload(
        index=index,
        kind=kind,
        quality=quality,
        media_seconds=media,
        size_bytes=size,
        transfer=_transfer(start, size=size),
    )


def _session(chunks, stalls=(), duration=100.0):
    return VideoSession(
        session_id="S" * 16,
        video=Video(video_id="v", duration_s=90.0),
        kind="adaptive",
        place="home",
        chunks=list(chunks),
        stalls=list(stalls),
        startup_delay_s=1.0,
        total_duration_s=duration,
    )


class TestSessionBasics:
    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            VideoSession(
                session_id="x",
                video=Video(video_id="v", duration_s=10.0),
                kind="multicast",
                place="home",
                chunks=[],
                stalls=[],
                startup_delay_s=None,
                total_duration_s=10.0,
            )

    def test_video_chunks_filtered(self):
        session = _session(
            [_chunk(0, 0.0), _chunk(1, 1.0, kind="audio"), _chunk(2, 2.0)]
        )
        assert len(session.video_chunks) == 2

    def test_rebuffering_ratio(self):
        session = _session(
            [_chunk(0, 0.0)],
            stalls=[StallEvent(10.0, 5.0), StallEvent(30.0, 5.0)],
            duration=100.0,
        )
        assert session.rebuffering_ratio == pytest.approx(0.1)

    def test_stall_totals(self):
        session = _session([_chunk(0, 0.0)], stalls=[StallEvent(5.0, 2.5)])
        assert session.stall_count == 1
        assert session.stall_duration_s == 2.5


class TestResolutionMetrics:
    def test_mean_resolution_weighted_by_media(self):
        session = _session(
            [
                _chunk(0, 0.0, resolution=144, media=10.0),
                _chunk(1, 1.0, resolution=480, media=30.0),
            ]
        )
        expected = (144 * 10 + 480 * 30) / 40
        assert session.mean_resolution() == pytest.approx(expected)

    def test_mean_resolution_no_chunks_raises(self):
        session = _session([_chunk(0, 0.0, kind="audio")])
        with pytest.raises(ValueError):
            session.mean_resolution()

    def test_switch_count(self):
        session = _session(
            [
                _chunk(0, 0.0, resolution=144),
                _chunk(1, 1.0, resolution=240),
                _chunk(2, 2.0, resolution=240),
                _chunk(3, 3.0, resolution=144),
            ]
        )
        assert session.switch_count() == 2

    def test_switch_amplitude_eq2(self):
        session = _session(
            [
                _chunk(0, 0.0, resolution=144),
                _chunk(1, 1.0, resolution=480),
                _chunk(2, 2.0, resolution=480),
            ]
        )
        # |480-144| + |480-480| over (K-1)=2
        assert session.switch_amplitude() == pytest.approx(336 / 2)

    def test_switch_amplitude_single_chunk_zero(self):
        session = _session([_chunk(0, 0.0)])
        assert session.switch_amplitude() == 0.0

    def test_resolution_timeline_ordered(self):
        session = _session([_chunk(0, 5.0), _chunk(1, 2.0)])
        timeline = session.resolution_timeline()
        assert len(timeline) == 2


class TestChunkSeries:
    def test_times_and_sizes_aligned(self):
        session = _session([_chunk(0, 0.0, size=111), _chunk(1, 3.0, size=222)])
        assert session.chunk_times().size == session.chunk_sizes().size == 2
        assert session.chunk_sizes().tolist() == [111.0, 222.0]

    def test_kind_none_includes_audio(self):
        session = _session([_chunk(0, 0.0), _chunk(1, 1.0, kind="audio")])
        assert session.chunk_times(kind=None).size == 2
        assert session.chunk_times(kind="video").size == 1


class TestMakeSessionId:
    def test_length_and_uniqueness(self):
        rng = np.random.default_rng(0)
        ids = [make_session_id(rng) for _ in range(100)]
        assert all(len(i) == 16 for i in ids)
        assert len(set(ids)) == 100
