"""Unit tests for the mobility model."""

import numpy as np
import pytest

from repro.network.mobility import COMMUTER_USER, STATIC_USER, MobilityModel


class TestMobilityModel:
    def test_stationary_distribution_sums_to_one(self):
        pi = STATIC_USER.stationary_distribution()
        assert pi.sum() == pytest.approx(1.0)
        assert (pi >= 0).all()

    def test_commuter_more_mobile_than_static(self):
        """The instrumented §5.2 user spends more time moving."""
        static_pi = STATIC_USER.stationary_distribution()
        commuter_pi = COMMUTER_USER.stationary_distribution()
        order = list(STATIC_USER.order)
        mobile = [order.index("commute"), order.index("outdoors")]
        assert commuter_pi[mobile].sum() > static_pi[mobile].sum()

    def test_walk_length(self):
        rng = np.random.default_rng(0)
        walk = STATIC_USER.walk(25, rng)
        assert len(walk) == 25

    def test_walk_zero_steps(self):
        assert STATIC_USER.walk(0, np.random.default_rng(0)) == []

    def test_walk_negative_raises(self):
        with pytest.raises(ValueError):
            STATIC_USER.walk(-1, np.random.default_rng(0))

    def test_walk_places_valid(self):
        rng = np.random.default_rng(1)
        for place in COMMUTER_USER.walk(50, rng):
            assert place.name in COMMUTER_USER.order
            assert place.profile is not None

    def test_walk_visits_match_stationary(self):
        rng = np.random.default_rng(2)
        walk = STATIC_USER.walk(4000, rng)
        home_frac = sum(1 for p in walk if p.name == "home") / len(walk)
        pi = STATIC_USER.stationary_distribution()
        assert abs(home_frac - pi[0]) < 0.05

    def test_non_stochastic_matrix_rejected(self):
        with pytest.raises(ValueError):
            MobilityModel(transition=[[0.5] * 4] * 4)

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            MobilityModel(transition=[[1.0]])

    def test_static_flags(self):
        places = STATIC_USER.places
        assert places["home"].static and places["office"].static
        assert not places["commute"].static
