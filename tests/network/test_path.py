"""Unit tests for the time-varying network path."""

import numpy as np
import pytest

from repro.network.conditions import PROFILES
from repro.network.path import NetworkPath, Outage


class TestOutage:
    def test_valid(self):
        outage = Outage(10.0, 20.0, 0.1)
        assert outage.end_s > outage.start_s

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError):
            Outage(10.0, 10.0)

    def test_factor_bounds(self):
        with pytest.raises(ValueError):
            Outage(0.0, 1.0, factor=0.0)
        with pytest.raises(ValueError):
            Outage(0.0, 1.0, factor=1.5)


class TestNetworkPath:
    def test_profile_by_name(self):
        path = NetworkPath("good", 60.0, np.random.default_rng(0))
        assert path.profile is PROFILES["good"]

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            NetworkPath("good", 0.0, np.random.default_rng(0))

    def test_states_valid_over_time(self):
        path = NetworkPath("poor", 120.0, np.random.default_rng(1))
        for t in np.linspace(0, 120, 50):
            state = path.state_at(float(t))
            assert state.bandwidth_kbps >= 16.0
            assert state.rtt_ms >= 5.0
            assert 0.0 <= state.loss_rate <= 0.5

    def test_lookup_beyond_duration_clamps(self):
        path = NetworkPath("good", 30.0, np.random.default_rng(2))
        assert path.state_at(1000.0) == path.state_at(1e9)

    def test_negative_time_clamps_to_start(self):
        path = NetworkPath("good", 30.0, np.random.default_rng(3))
        assert path.state_at(-5.0) == path.state_at(0.0)

    def test_deterministic_given_seed(self):
        a = NetworkPath("fair", 60.0, np.random.default_rng(7))
        b = NetworkPath("fair", 60.0, np.random.default_rng(7))
        assert a.state_at(30.0) == b.state_at(30.0)

    def test_fading_varies_over_time(self):
        path = NetworkPath("poor", 300.0, np.random.default_rng(4))
        bandwidths = {round(path.state_at(t).bandwidth_kbps) for t in range(0, 300, 10)}
        assert len(bandwidths) > 5

    def test_outage_cuts_bandwidth(self):
        rng = np.random.default_rng(5)
        path = NetworkPath(
            "good", 120.0, rng, outages=[Outage(40.0, 60.0, 0.05)]
        )
        inside = path.state_at(50.0).bandwidth_kbps
        outside = path.state_at(10.0).bandwidth_kbps
        assert inside < 0.3 * outside

    def test_outage_inflates_rtt_and_loss(self):
        rng = np.random.default_rng(6)
        path = NetworkPath("good", 120.0, rng, outages=[Outage(40.0, 60.0, 0.05)])
        assert path.state_at(50.0).loss_rate > path.state_at(10.0).loss_rate

    def test_bandwidth_trace_shape(self):
        path = NetworkPath("good", 60.0, np.random.default_rng(8))
        times, bw = path.bandwidth_trace()
        assert times.size == bw.size
        assert times[0] == 0.0

    def test_mean_bandwidth_positive(self):
        path = NetworkPath("bad", 60.0, np.random.default_rng(9))
        assert path.mean_bandwidth_kbps() > 0
