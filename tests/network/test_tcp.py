"""Unit tests for the round-based TCP transfer model."""

import numpy as np
import pytest

from repro.network.path import NetworkPath, Outage
from repro.network.tcp import MSS_BYTES, TcpConnection, TransferResult


def _conn(profile="good", seed=0, duration=600.0, outages=None):
    rng = np.random.default_rng(seed)
    path = NetworkPath(profile, duration, rng, outages=outages)
    return TcpConnection(path, rng), path


class TestDownload:
    def test_invalid_size(self):
        conn, _ = _conn()
        with pytest.raises(ValueError):
            conn.download(0, 0.0)

    def test_invalid_start(self):
        conn, _ = _conn()
        with pytest.raises(ValueError):
            conn.download(1000, -1.0)

    def test_duration_positive(self):
        conn, _ = _conn()
        result = conn.download(500_000, 1.0)
        assert result.duration_s > 0
        assert result.end_s == pytest.approx(result.start_s + result.duration_s)

    def test_throughput_bounded_by_capacity(self):
        conn, path = _conn("good", seed=1)
        result = conn.download(2_000_000, 1.0)
        # Goodput cannot exceed ~2x the best instantaneous capacity
        # (2x headroom for trace fading between lookups).
        peak = max(path.state_at(t).bandwidth_kbps for t in range(0, 60))
        assert result.throughput_kbps <= 2 * peak

    def test_bigger_transfer_takes_longer(self):
        conn_a, _ = _conn(seed=2)
        conn_b, _ = _conn(seed=2)
        small = conn_a.download(100_000, 1.0)
        large = conn_b.download(5_000_000, 1.0)
        assert large.duration_s > small.duration_s

    def test_slow_network_slower(self):
        fast, _ = _conn("excellent", seed=3)
        slow, _ = _conn("bad", seed=3)
        assert (
            slow.download(500_000, 1.0).duration_s
            > fast.download(500_000, 1.0).duration_s
        )

    def test_rtt_stats_ordered(self):
        conn, _ = _conn(seed=4)
        result = conn.download(1_000_000, 0.0)
        assert result.rtt_min_ms <= result.rtt_avg_ms <= result.rtt_max_ms

    def test_bif_stats_ordered_and_bounded(self):
        conn, _ = _conn(seed=5)
        result = conn.download(1_000_000, 0.0)
        assert 0 < result.bif_avg_bytes <= result.bif_max_bytes

    def test_loss_and_retx_match(self):
        conn, _ = _conn("bad", seed=6)
        result = conn.download(2_000_000, 0.0)
        assert result.loss_pct == result.retx_pct
        assert 0.0 <= result.loss_pct < 50.0

    def test_lossy_network_more_retransmissions(self):
        results_bad, results_good = [], []
        for seed in range(5):
            bad, _ = _conn("bad", seed=seed)
            good, _ = _conn("excellent", seed=seed)
            results_bad.append(bad.download(2_000_000, 0.0).retx_pct)
            results_good.append(good.download(2_000_000, 0.0).retx_pct)
        assert np.mean(results_bad) > np.mean(results_good)

    def test_bdp_reflects_link(self):
        conn, path = _conn("good", seed=7)
        result = conn.download(500_000, 0.0)
        nominal = path.base_state.bdp_bytes
        assert 0.05 * nominal < result.bdp_bytes < 20 * nominal


class TestConnectionState:
    def test_cwnd_grows_across_back_to_back_chunks(self):
        conn, _ = _conn("excellent", seed=8)
        first = conn.download(500_000, 0.0)
        second = conn.download(500_000, first.end_s + 0.01)
        assert second.duration_s <= first.duration_s * 1.5
        assert second.bif_max_bytes >= first.bif_max_bytes * 0.5

    def test_idle_restart_resets_window(self):
        conn, _ = _conn("excellent", seed=9)
        first = conn.download(2_000_000, 0.0)
        # long idle -> slow-start restart -> first rounds small again
        late = conn.download(2_000_000, first.end_s + 120.0)
        assert conn._cwnd > 0     # still sane
        assert late.bif_avg_bytes < first.bif_max_bytes * 1.5

    def test_outage_slows_transfer(self):
        slow, _ = _conn("good", seed=10, outages=[Outage(5.0, 60.0, 0.05)])
        fast, _ = _conn("good", seed=10)
        assert (
            slow.download(1_000_000, 10.0).duration_s
            > fast.download(1_000_000, 10.0).duration_s
        )

    def test_transfer_result_fields_finite(self):
        conn, _ = _conn("fair", seed=11)
        result = conn.download(750_000, 3.0)
        for value in (
            result.duration_s,
            result.rtt_min_ms,
            result.rtt_avg_ms,
            result.rtt_max_ms,
            result.bdp_bytes,
            result.bif_avg_bytes,
            result.bif_max_bytes,
            result.loss_pct,
        ):
            assert np.isfinite(value)


class TestMss:
    def test_mss_constant(self):
        assert MSS_BYTES == 1460

    def test_throughput_property_zero_duration(self):
        result = TransferResult(
            bytes=100,
            start_s=0.0,
            duration_s=0.0,
            rtt_min_ms=1,
            rtt_avg_ms=1,
            rtt_max_ms=1,
            loss_pct=0,
            retx_pct=0,
            bif_avg_bytes=1,
            bif_max_bytes=1,
            bdp_bytes=1,
        )
        assert result.throughput_kbps == 0.0
