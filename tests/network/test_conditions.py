"""Unit tests for link-state and condition profiles."""

import numpy as np
import pytest

from repro.network.conditions import PROFILES, ConditionProfile, LinkState


class TestLinkState:
    def test_bdp_formula(self):
        state = LinkState(bandwidth_kbps=8000.0, rtt_ms=100.0, loss_rate=0.0)
        # 8 Mbit/s = 1 MB/s; 100 ms -> 100 KB
        assert state.bdp_bytes == pytest.approx(100_000.0)

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            LinkState(bandwidth_kbps=0.0, rtt_ms=50.0, loss_rate=0.0)

    def test_invalid_rtt(self):
        with pytest.raises(ValueError):
            LinkState(bandwidth_kbps=100.0, rtt_ms=-1.0, loss_rate=0.0)

    def test_invalid_loss(self):
        with pytest.raises(ValueError):
            LinkState(bandwidth_kbps=100.0, rtt_ms=50.0, loss_rate=1.0)


class TestProfiles:
    def test_all_named_profiles_present(self):
        assert set(PROFILES) == {"excellent", "good", "fair", "poor", "bad"}

    def test_bandwidth_ordering(self):
        order = ["excellent", "good", "fair", "poor", "bad"]
        bandwidths = [PROFILES[name].bandwidth_kbps for name in order]
        assert bandwidths == sorted(bandwidths, reverse=True)

    def test_loss_ordering(self):
        order = ["excellent", "fair", "bad"]
        losses = [PROFILES[name].loss_rate for name in order]
        assert losses == sorted(losses)

    def test_sample_returns_valid_state(self):
        rng = np.random.default_rng(0)
        for profile in PROFILES.values():
            for _ in range(20):
                state = profile.sample(rng)
                assert state.bandwidth_kbps >= 16.0
                assert state.rtt_ms >= 5.0
                assert 0.0 <= state.loss_rate <= 0.5

    def test_sample_centres_near_median(self):
        rng = np.random.default_rng(1)
        profile = PROFILES["good"]
        samples = [profile.sample(rng).bandwidth_kbps for _ in range(500)]
        median = np.median(samples)
        assert 0.7 * profile.bandwidth_kbps <= median <= 1.3 * profile.bandwidth_kbps

    def test_sampling_deterministic_given_seed(self):
        p = PROFILES["fair"]
        a = p.sample(np.random.default_rng(5))
        b = p.sample(np.random.default_rng(5))
        assert a == b
