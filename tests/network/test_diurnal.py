"""Tests for the diurnal load model."""

import numpy as np
import pytest

from repro.network.conditions import PROFILES
from repro.network.diurnal import DEFAULT_HOURLY_LOAD, DiurnalLoadModel


class TestDiurnalLoadModel:
    def test_default_has_24_hours(self):
        assert len(DEFAULT_HOURLY_LOAD) == 24

    def test_invalid_hour_count(self):
        with pytest.raises(ValueError):
            DiurnalLoadModel(hourly_load=(1.0,) * 23)

    def test_invalid_capacity_factor(self):
        with pytest.raises(ValueError):
            DiurnalLoadModel(busy_hour_capacity_factor=0.0)

    def test_load_wraps_around_midnight(self):
        model = DiurnalLoadModel()
        assert model.load_at(0.0) == model.load_at(24 * 3600.0)

    def test_load_interpolates_between_hours(self):
        model = DiurnalLoadModel()
        at_19 = model.load_at(19 * 3600.0)
        at_20 = model.load_at(20 * 3600.0)
        halfway = model.load_at(19.5 * 3600.0)
        assert min(at_19, at_20) <= halfway <= max(at_19, at_20)

    def test_busy_hour_capacity_lowest(self):
        model = DiurnalLoadModel()
        factors = [model.capacity_factor_at(h * 3600.0) for h in range(24)]
        assert int(np.argmin(factors)) in (18, 19, 20, 21)
        assert min(factors) == pytest.approx(
            model.busy_hour_capacity_factor, abs=0.05
        )

    def test_night_capacity_near_nominal(self):
        model = DiurnalLoadModel()
        assert model.capacity_factor_at(3 * 3600.0) > 0.9

    def test_scale_profile_reduces_bandwidth(self):
        model = DiurnalLoadModel()
        base = PROFILES["good"]
        busy = model.scale_profile(base, 19 * 3600.0)
        night = model.scale_profile(base, 3 * 3600.0)
        assert busy.bandwidth_kbps < night.bandwidth_kbps
        assert busy.loss_rate >= night.loss_rate

    def test_scaled_profile_still_valid(self):
        model = DiurnalLoadModel()
        profile = model.scale_profile(PROFILES["bad"], 19 * 3600.0)
        state = profile.sample(np.random.default_rng(0))
        assert state.bandwidth_kbps > 0


class TestDiurnalCorpus:
    def test_busy_hour_sessions_stall_more(self):
        """End-to-end: evening sessions see more QoE issues than night."""
        from repro.datasets import CorpusConfig, generate_corpus

        def stall_rate(start_hour):
            config = CorpusConfig(
                n_sessions=60,
                seed=5,
                adaptive_fraction=0.1,
                diurnal=DiurnalLoadModel(busy_hour_capacity_factor=0.25),
                start_epoch_s=start_hour * 3600.0,
                session_gap_s=(10.0, 30.0),   # stay within the hour band
            )
            corpus = generate_corpus(config)
            ratios = [
                r.rebuffering_ratio()
                for r in corpus.records
                if r.stall_duration_s is not None and r.total_duration_s
            ]
            return np.mean([rr > 0 for rr in ratios])

        assert stall_rate(19) > stall_rate(3)
