"""Tests for the §3.1 anonymisation step."""

import numpy as np
import pytest

from repro.capture.anonymize import KEPT_URI_PARAMS, Anonymizer
from repro.capture.proxy import WebProxy
from repro.capture.uri import ParsedSegment, parse_uri
from repro.datasets.preparation import group_cleartext_sessions


@pytest.fixture()
def entries(one_adaptive_session):
    proxy = WebProxy(np.random.default_rng(0))
    return proxy.observe(one_adaptive_session, "subscriber-12345")


class TestAnonymizer:
    def test_subscriber_ids_pseudonymised(self, entries):
        anonymized = Anonymizer().anonymize(entries)
        ids = {e.subscriber_id for e in anonymized}
        assert ids != {"subscriber-12345"}
        assert all(i.startswith("anon-") for i in ids)

    def test_pseudonyms_stable_within_run(self, entries):
        anonymizer = Anonymizer()
        a = anonymizer.anonymize(entries)
        b = anonymizer.anonymize(entries)
        assert {e.subscriber_id for e in a} == {e.subscriber_id for e in b}

    def test_pseudonyms_unlinkable_across_runs(self, entries):
        a = Anonymizer().anonymize(entries)
        b = Anonymizer().anonymize(entries)
        assert {e.subscriber_id for e in a} != {e.subscriber_id for e in b}

    def test_keyed_pseudonyms_reproducible_with_key(self):
        key = b"secret-key"
        assert (
            Anonymizer(key).pseudonym("x") == Anonymizer(key).pseudonym("x")
        )

    def test_session_id_survives(self, entries, one_adaptive_session):
        """§3.1: 'The only identifier which is preserved is the unique
        16-character video session ID.'"""
        anonymized = Anonymizer().anonymize(entries)
        segments = [
            parse_uri(e.uri)
            for e in anonymized
            if e.uri and "/videoplayback" in e.uri
        ]
        assert segments
        assert {s.session_id for s in segments} == {
            one_adaptive_session.session_id
        }

    def test_ground_truth_still_extractable(self, entries):
        """Grouping + labelling must work identically on anonymised logs."""
        original = group_cleartext_sessions(entries)
        anonymized = group_cleartext_sessions(Anonymizer().anonymize(entries))
        assert len(original) == len(anonymized) == 1
        assert original[0].stall_count == anonymized[0].stall_count
        assert np.array_equal(
            original[0].resolutions, anonymized[0].resolutions
        )

    def test_foreign_params_stripped(self):
        anonymizer = Anonymizer()
        from repro.capture.weblog import WeblogEntry

        entry = WeblogEntry(
            subscriber_id="s",
            timestamp_s=0.0,
            server_name="m.youtube.com",
            server_ip="1.2.3.4",
            server_port=80,
            object_bytes=10,
            transaction_s=0.1,
            rtt_min_ms=1, rtt_avg_ms=2, rtt_max_ms=3,
            bdp_bytes=0, bif_avg_bytes=0, bif_max_bytes=0,
            loss_pct=0, retx_pct=0,
            uri="https://m.youtube.com/watch?v=abc&user_agent=secret&locale=ca",
        )
        scrubbed = anonymizer.anonymize_entry(entry)
        assert "user_agent" not in scrubbed.uri
        assert "locale" not in scrubbed.uri
        assert "v=abc" in scrubbed.uri

    def test_kept_params_cover_ground_truth_channel(self):
        for param in ("itag", "cpn", "rebuf_count", "rebuf_dur", "dur"):
            assert param in KEPT_URI_PARAMS

    def test_transport_stats_untouched(self, entries):
        anonymized = Anonymizer().anonymize(entries)
        for original, scrubbed in zip(entries, anonymized):
            assert scrubbed.object_bytes == original.object_bytes
            assert scrubbed.rtt_avg_ms == original.rtt_avg_ms
            assert scrubbed.timestamp_s == original.timestamp_s
