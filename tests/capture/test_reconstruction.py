"""Unit tests for encrypted session reconstruction (§5.2 heuristic)."""

import numpy as np
import pytest

from repro.capture.proxy import WebProxy, server_ip_for
from repro.capture.reconstruction import (
    ReconstructedSession,
    SessionReconstructor,
    is_youtube_host,
)
from repro.capture.weblog import WeblogEntry


def _noise(timestamp, host="www.facebook.com"):
    return WeblogEntry(
        subscriber_id="s",
        timestamp_s=timestamp,
        server_name=host,
        server_ip=server_ip_for(host),
        server_port=443,
        object_bytes=1000,
        transaction_s=0.1,
        rtt_min_ms=1, rtt_avg_ms=2, rtt_max_ms=3,
        bdp_bytes=0, bif_avg_bytes=0, bif_max_bytes=0,
        loss_pct=0, retx_pct=0,
        encrypted=True,
    )


class TestIsYoutubeHost:
    def test_media_hosts(self):
        assert is_youtube_host("r3---sn-x.googlevideo.com")

    def test_signalling_hosts(self):
        assert is_youtube_host("m.youtube.com")
        assert is_youtube_host("i.ytimg.com")

    def test_foreign_hosts(self):
        assert not is_youtube_host("www.facebook.com")
        assert not is_youtube_host("youtube.com.evil.example")


class TestReconstruction:
    def _entries_for(self, sessions, gaps, seed=0, encrypted=True):
        """Observe sessions sequentially with the given idle gaps."""
        proxy = WebProxy(np.random.default_rng(seed))
        entries = []
        epoch = 0.0
        for session, gap in zip(sessions, gaps):
            entries.extend(
                proxy.observe(session, "s", start_epoch_s=epoch, encrypted=encrypted)
            )
            epoch += session.total_duration_s + gap
        entries.sort(key=lambda e: e.timestamp_s)
        return entries

    def test_two_sessions_with_gap_split(
        self, one_adaptive_session, one_progressive_session
    ):
        entries = self._entries_for(
            [one_adaptive_session, one_progressive_session], [300.0, 300.0]
        )
        sessions = SessionReconstructor().reconstruct(entries)
        assert len(sessions) == 2

    def test_noise_filtered_out(self, one_adaptive_session):
        entries = self._entries_for([one_adaptive_session], [100.0])
        entries += [_noise(t) for t in np.linspace(0, 400, 15)]
        entries.sort(key=lambda e: e.timestamp_s)
        sessions = SessionReconstructor().reconstruct(entries)
        assert len(sessions) == 1
        for session in sessions:
            for entry in session.media + session.signalling:
                assert is_youtube_host(entry.server_name)

    def test_chunk_count_preserved(self, one_adaptive_session):
        entries = self._entries_for([one_adaptive_session], [100.0])
        sessions = SessionReconstructor().reconstruct(entries)
        assert sessions[0].chunk_count == len(one_adaptive_session.chunks)

    def test_back_to_back_sessions_split_by_page_request(
        self, one_adaptive_session, one_progressive_session
    ):
        # nearly zero gap: the watch-page signalling is the only boundary
        entries = self._entries_for(
            [one_adaptive_session, one_progressive_session], [2.0, 2.0]
        )
        sessions = SessionReconstructor(idle_gap_s=1e9).reconstruct(entries)
        assert len(sessions) == 2

    def test_min_media_chunks_filter(self):
        reconstructor = SessionReconstructor(min_media_chunks=3)
        entries = [_noise(1.0, host="m.youtube.com")]
        assert reconstructor.reconstruct(entries) == []

    def test_session_time_bounds(self, one_adaptive_session):
        entries = self._entries_for([one_adaptive_session], [100.0])
        session = SessionReconstructor().reconstruct(entries)[0]
        assert session.start_s <= session.end_s

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SessionReconstructor(idle_gap_s=0.0)
        with pytest.raises(ValueError):
            SessionReconstructor(min_media_chunks=0)

    def test_empty_input(self):
        assert SessionReconstructor().reconstruct([]) == []


class TestEchModeReconstruction:
    """SNI-less (TLS ECH) reconstruction: service filter by IP prefix,
    media/signalling split by transaction size."""

    def _stream(self, sessions, seed=0, gap=250.0):
        proxy = WebProxy(np.random.default_rng(seed))
        entries = []
        epoch = 0.0
        for session in sessions:
            entries.extend(
                proxy.observe(session, "s", start_epoch_s=epoch, encrypted=True)
            )
            epoch += session.total_duration_s + gap
        entries.sort(key=lambda e: e.timestamp_s)
        return entries

    def test_sessions_recovered_without_sni(
        self, one_adaptive_session, one_progressive_session
    ):
        entries = self._stream([one_adaptive_session, one_progressive_session])
        sessions = SessionReconstructor(use_sni=False).reconstruct(entries)
        assert len(sessions) == 2

    def test_ip_filter_excludes_foreign_traffic(self, one_adaptive_session):
        entries = self._stream([one_adaptive_session])
        entries.append(_noise(5.0))                 # facebook IP space
        sessions = SessionReconstructor(use_sni=False).reconstruct(entries)
        total_entries = sum(
            len(s.media) + len(s.signalling) for s in sessions
        )
        youtube_entries = sum(
            1 for e in entries if e.server_ip.startswith("173.194.")
        )
        assert total_entries <= youtube_entries

    def test_ech_media_counts_close_to_sni(self, one_adaptive_session):
        entries = self._stream([one_adaptive_session])
        sni = SessionReconstructor(use_sni=True).reconstruct(entries)
        ech = SessionReconstructor(use_sni=False).reconstruct(entries)
        assert len(sni) == len(ech) == 1
        # the size heuristic may miscount a few small chunks, not more
        assert abs(sni[0].chunk_count - ech[0].chunk_count) <= max(
            3, 0.2 * sni[0].chunk_count
        )

    def test_is_youtube_ip(self):
        from repro.capture.reconstruction import is_youtube_ip

        assert is_youtube_ip("173.194.12.34")
        assert not is_youtube_ip("31.13.92.36")
