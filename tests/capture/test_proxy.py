"""Unit tests for proxy capture, weblog schema and encrypted views."""

import numpy as np
import pytest

from repro.capture.encryption import encrypt_view
from repro.capture.proxy import WebProxy, server_ip_for
from repro.capture.uri import parse_uri, ParsedSegment, ParsedStatsReport
from repro.capture.weblog import WeblogEntry


def _observe(session, encrypted=False, seed=0):
    proxy = WebProxy(np.random.default_rng(seed))
    return proxy.observe(session, "sub-1", start_epoch_s=1000.0, encrypted=encrypted)


class TestWeblogEntry:
    def _entry(self, **kwargs):
        defaults = dict(
            subscriber_id="s",
            timestamp_s=1.0,
            server_name="h",
            server_ip="1.2.3.4",
            server_port=80,
            object_bytes=100,
            transaction_s=0.5,
            rtt_min_ms=1,
            rtt_avg_ms=2,
            rtt_max_ms=3,
            bdp_bytes=4,
            bif_avg_bytes=5,
            bif_max_bytes=6,
            loss_pct=0,
            retx_pct=0,
        )
        defaults.update(kwargs)
        return WeblogEntry(**defaults)

    def test_arrival_is_timestamp_plus_transaction(self):
        entry = self._entry(timestamp_s=10.0, transaction_s=2.5)
        assert entry.arrival_s == 12.5

    def test_chunk_size_alias(self):
        assert self._entry(object_bytes=777).chunk_size == 777

    def test_encrypted_cannot_carry_uri(self):
        with pytest.raises(ValueError):
            self._entry(encrypted=True, uri="https://x")

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            self._entry(object_bytes=-1)


class TestProxyObserve:
    def test_one_media_entry_per_chunk(self, one_adaptive_session):
        entries = _observe(one_adaptive_session)
        media = [e for e in entries if e.server_name.endswith(".googlevideo.com")]
        assert len(media) == len(one_adaptive_session.chunks)

    def test_entries_time_ordered(self, one_adaptive_session):
        entries = _observe(one_adaptive_session)
        times = [e.timestamp_s for e in entries]
        assert times == sorted(times)

    def test_signalling_burst_present(self, one_adaptive_session):
        entries = _observe(one_adaptive_session)
        hosts = {e.server_name for e in entries}
        assert "m.youtube.com" in hosts
        assert any(h.endswith("ytimg.com") for h in hosts)

    def test_stats_reports_carry_stall_truth(self, one_progressive_session):
        entries = _observe(one_progressive_session)
        reports = [
            parse_uri(e.uri)
            for e in entries
            if e.uri and "api/stats" in e.uri
        ]
        assert reports
        last = max(reports, key=lambda r: r.playback_position_s)
        assert last.stall_count == one_progressive_session.stall_count
        assert last.stall_duration_s == pytest.approx(
            one_progressive_session.stall_duration_s, abs=0.05
        )

    def test_segment_uris_roundtrip_session_id(self, one_adaptive_session):
        entries = _observe(one_adaptive_session)
        segments = [
            parse_uri(e.uri)
            for e in entries
            if e.uri and "/videoplayback" in e.uri
        ]
        assert segments
        assert {s.session_id for s in segments} == {
            one_adaptive_session.session_id
        }

    def test_encrypted_entries_have_no_uri(self, one_adaptive_session):
        entries = _observe(one_adaptive_session, encrypted=True)
        assert all(e.uri is None for e in entries)
        assert all(e.encrypted for e in entries)
        assert all(e.server_port == 443 for e in entries)

    def test_transport_stats_copied_from_transfers(self, one_adaptive_session):
        entries = _observe(one_adaptive_session)
        media = [e for e in entries if e.server_name.endswith(".googlevideo.com")]
        first_chunk = one_adaptive_session.chunks[0]
        first_entry = min(media, key=lambda e: e.timestamp_s)
        assert first_entry.object_bytes == first_chunk.size_bytes
        assert first_entry.rtt_avg_ms == first_chunk.transfer.rtt_avg_ms
        assert first_entry.bdp_bytes == first_chunk.transfer.bdp_bytes

    def test_epoch_offset_applied(self, one_adaptive_session):
        entries = _observe(one_adaptive_session)
        assert min(e.timestamp_s for e in entries) >= 1000.0

    def test_invalid_cache_rate(self):
        with pytest.raises(ValueError):
            WebProxy(np.random.default_rng(0), cache_mark_rate=1.5)


class TestEncryptView:
    def test_strips_uri_and_marks_encrypted(self, one_adaptive_session):
        cleartext = _observe(one_adaptive_session)
        encrypted = encrypt_view(cleartext)
        assert len(encrypted) == len(cleartext)
        assert all(e.uri is None and e.encrypted for e in encrypted)

    def test_preserves_sizes_and_timing(self, one_adaptive_session):
        cleartext = _observe(one_adaptive_session)
        encrypted = encrypt_view(cleartext)
        for c, e in zip(cleartext, encrypted):
            assert e.object_bytes == c.object_bytes
            assert e.timestamp_s == c.timestamp_s
            assert e.server_name == c.server_name   # SNI stays visible

    def test_originals_untouched(self, one_adaptive_session):
        cleartext = _observe(one_adaptive_session)
        had_uris = sum(1 for e in cleartext if e.uri)
        encrypt_view(cleartext)
        assert sum(1 for e in cleartext if e.uri) == had_uris


class TestServerIp:
    def test_deterministic(self):
        assert server_ip_for("a.example") == server_ip_for("a.example")

    def test_distinct_hosts_distinct_ips(self):
        assert server_ip_for("a.example") != server_ip_for("b.example")
