"""Tests for the packet-level (proxy-less) capture path."""

import numpy as np
import pytest

from repro.capture.flows import (
    FlowReassembler,
    FlowSynthesizer,
    Packet,
    record_from_packets,
)


@pytest.fixture()
def packets(one_adaptive_session):
    return FlowSynthesizer(np.random.default_rng(0)).synthesize(
        one_adaptive_session
    )


class TestPacket:
    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Packet(timestamp_s=0.0, size_bytes=0, downstream=True)


class TestFlowSynthesizer:
    def test_packets_time_ordered(self, packets):
        times = [p.timestamp_s for p in packets]
        assert times == sorted(times)

    def test_byte_conservation(self, packets, one_adaptive_session):
        downstream = sum(p.size_bytes for p in packets if p.downstream)
        expected = sum(c.size_bytes for c in one_adaptive_session.chunks)
        assert downstream == expected

    def test_one_request_per_chunk(self, packets, one_adaptive_session):
        requests = sum(1 for p in packets if not p.downstream)
        assert requests == len(one_adaptive_session.chunks)

    def test_packets_within_transfer_windows(self, packets, one_adaptive_session):
        last_end = max(c.arrival_s for c in one_adaptive_session.chunks)
        assert max(p.timestamp_s for p in packets) <= last_end + 1e-6


class TestFlowReassembler:
    def test_roundtrip_chunk_count(self, packets, one_adaptive_session):
        transactions = FlowReassembler().reassemble(packets)
        assert len(transactions) == len(one_adaptive_session.chunks)

    def test_roundtrip_chunk_sizes(self, packets, one_adaptive_session):
        transactions = FlowReassembler().reassemble(packets)
        recovered = sorted(t.bytes for t in transactions)
        expected = sorted(c.size_bytes for c in one_adaptive_session.chunks)
        assert recovered == expected

    def test_rtt_estimate_close_to_true_rtt(self, packets, one_adaptive_session):
        transactions = FlowReassembler().reassemble(packets)
        estimates = np.array([t.rtt_estimate_ms for t in transactions])
        true_rtts = np.array(
            [c.transfer.rtt_avg_ms for c in one_adaptive_session.chunks]
        )
        # the first-byte gap is capped at half the duration, so compare
        # medians loosely
        assert np.median(estimates) <= np.median(true_rtts) * 2.0
        assert np.median(estimates) > 0

    def test_empty_stream(self):
        assert FlowReassembler().reassemble([]) == []

    def test_mid_capture_start_without_request(self):
        stream = [
            Packet(timestamp_s=1.0, size_bytes=1400, downstream=True),
            Packet(timestamp_s=1.1, size_bytes=1400, downstream=True),
        ]
        transactions = FlowReassembler().reassemble(stream)
        assert len(transactions) == 1
        assert transactions[0].bytes == 2800


class TestRecordFromPackets:
    def test_record_built(self, packets, one_adaptive_session):
        record = record_from_packets(packets)
        assert record.encrypted
        assert record.n_chunks >= len(one_adaptive_session.video_chunks) * 0.5
        # tap cannot see TCP internals
        assert np.all(record.loss_pct == 0)
        assert np.all(record.bdp == 0)

    def test_small_transactions_filtered(self, packets):
        record = record_from_packets(packets, min_transaction_bytes=2000)
        assert record.sizes.min() >= 2000

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            record_from_packets(
                [Packet(timestamp_s=0.0, size_bytes=100, downstream=False)]
            )

    def test_detector_runs_on_flow_level_record(
        self, packets, stall_records
    ):
        from repro.core.stall import StallDetector

        detector = StallDetector(n_estimators=8, random_state=0).fit(
            stall_records
        )
        record = record_from_packets(packets)
        prediction = detector.predict([record])
        assert prediction[0] in ("no stalls", "mild stalls", "severe stalls")
