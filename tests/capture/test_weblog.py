"""Unit tests for WeblogEntry validation (MalformedRecordError)."""

import math

import pytest

from repro.capture.weblog import MalformedRecordError, WeblogEntry

from tests.faults.conftest import make_entry


class TestValidEntries:
    def test_valid_entry_constructs(self):
        entry = make_entry()
        assert entry.arrival_s == entry.timestamp_s + entry.transaction_s
        assert entry.chunk_size == entry.object_bytes

    def test_zero_metrics_are_valid(self):
        # idle links legitimately report zeros everywhere
        make_entry(
            object_bytes=0,
            transaction_s=0.0,
            rtt_min_ms=0.0,
            rtt_avg_ms=0.0,
            rtt_max_ms=0.0,
            bdp_bytes=0.0,
            bif_avg_bytes=0.0,
            bif_max_bytes=0.0,
            loss_pct=0.0,
            retx_pct=0.0,
        )


class TestConstructionRejects:
    def test_empty_subscriber(self):
        with pytest.raises(MalformedRecordError, match="subscriber_id"):
            make_entry(subscriber="")

    def test_nan_timestamp(self):
        with pytest.raises(MalformedRecordError, match="timestamp"):
            make_entry(timestamp=float("nan"))

    def test_infinite_timestamp(self):
        with pytest.raises(MalformedRecordError, match="timestamp"):
            make_entry(timestamp=math.inf)

    def test_negative_object_size(self):
        with pytest.raises(MalformedRecordError, match="object size"):
            make_entry(object_bytes=-1)

    @pytest.mark.parametrize(
        "field",
        [
            "transaction_s",
            "rtt_min_ms",
            "rtt_avg_ms",
            "rtt_max_ms",
            "bdp_bytes",
            "bif_avg_bytes",
            "bif_max_bytes",
            "loss_pct",
            "retx_pct",
        ],
    )
    def test_metric_fields_must_be_finite_and_non_negative(self, field):
        with pytest.raises(MalformedRecordError, match=field):
            make_entry(**{field: float("nan")})
        with pytest.raises(MalformedRecordError, match=field):
            make_entry(**{field: -1.0})

    def test_encrypted_entry_cannot_carry_uri(self):
        with pytest.raises(MalformedRecordError, match="URI"):
            make_entry(encrypted=True, uri="/watch?v=x")

    def test_error_is_a_value_error(self):
        # backward compatibility: pre-existing except ValueError blocks
        with pytest.raises(ValueError):
            make_entry(object_bytes=-1)


class TestBypassedInstances:
    """Records built past __init__ (deserialisation, fault injection)
    must still be catchable through an explicit validate() call."""

    def _bypass(self, **overrides):
        good = make_entry()
        clone = object.__new__(WeblogEntry)
        clone.__dict__.update(good.__dict__)
        clone.__dict__.update(overrides)
        return clone

    def test_bypassed_garbage_caught_by_validate(self):
        bad = self._bypass(timestamp_s=float("nan"))
        with pytest.raises(MalformedRecordError):
            bad.validate()

    def test_bypassed_valid_clone_passes(self):
        self._bypass().validate()
