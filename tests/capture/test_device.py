"""Unit tests for the instrumented-device ground-truth collector."""

import pytest

from repro.capture.device import DeviceLogger


class TestSegmentRecords:
    def test_one_record_per_chunk(self, one_adaptive_session):
        records = DeviceLogger().segment_records(one_adaptive_session)
        assert len(records) == len(one_adaptive_session.chunks)

    def test_records_carry_session_id(self, one_adaptive_session):
        records = DeviceLogger().segment_records(one_adaptive_session)
        assert {r.session_id for r in records} == {
            one_adaptive_session.session_id
        }

    def test_kinds_match_chunks(self, one_adaptive_session):
        records = DeviceLogger().segment_records(one_adaptive_session)
        for record, chunk in zip(records, one_adaptive_session.chunks):
            assert record.kind == chunk.kind
            assert record.resolution_p == chunk.resolution_p
            assert record.itag == chunk.quality.itag

    def test_epoch_offset(self, one_adaptive_session):
        records = DeviceLogger().segment_records(
            one_adaptive_session, start_epoch_s=5000.0
        )
        assert min(r.timestamp_s for r in records) >= 5000.0

    def test_stall_totals_attached(self, one_progressive_session):
        records = DeviceLogger().segment_records(one_progressive_session)
        for record in records:
            assert record.session_stall_count == one_progressive_session.stall_count


class TestPlaybackSummary:
    def test_summary_fields(self, one_adaptive_session):
        summary = DeviceLogger().playback_summary(one_adaptive_session)
        assert summary.session_id == one_adaptive_session.session_id
        assert summary.video_id == one_adaptive_session.video.video_id
        assert summary.stall_count == one_adaptive_session.stall_count
        assert summary.stall_duration_s == pytest.approx(
            one_adaptive_session.stall_duration_s
        )
        assert summary.total_duration_s == one_adaptive_session.total_duration_s
        assert summary.chunk_count == len(one_adaptive_session.chunks)

    def test_started_flag(self, one_adaptive_session):
        summary = DeviceLogger().playback_summary(one_adaptive_session)
        assert summary.started == (
            one_adaptive_session.startup_delay_s is not None
        )
