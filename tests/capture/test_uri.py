"""Unit tests for URI synthesis and parsing (the ground-truth channel)."""

import numpy as np
import pytest

from repro.capture.uri import (
    ParsedSegment,
    ParsedStatsReport,
    parse_uri,
    pick_video_host,
    segment_uri,
    stats_report_uri,
    thumbnail_uri,
    watch_page_uri,
)
from repro.network.tcp import TransferResult
from repro.streaming.catalog import DASH_LADDER
from repro.streaming.segments import ChunkDownload


def _chunk(resolution=480, kind="video", size=250_000, media=5.0):
    quality = next(q for q in DASH_LADDER if q.resolution_p == resolution)
    transfer = TransferResult(
        bytes=size, start_s=0.0, duration_s=1.0,
        rtt_min_ms=40, rtt_avg_ms=50, rtt_max_ms=60,
        loss_pct=0, retx_pct=0, bif_avg_bytes=1, bif_max_bytes=1, bdp_bytes=1,
    )
    return ChunkDownload(
        index=0, kind=kind, quality=quality,
        media_seconds=media, size_bytes=size, transfer=transfer,
    )


class TestSegmentUri:
    def test_roundtrip(self):
        chunk = _chunk()
        uri = segment_uri("r1---sn-x.googlevideo.com", "videoid0123", "S" * 16, chunk)
        parsed = parse_uri(uri)
        assert isinstance(parsed, ParsedSegment)
        assert parsed.video_id == "videoid0123"
        assert parsed.session_id == "S" * 16
        assert parsed.resolution_p == 480
        assert parsed.size_bytes == 250_000
        assert parsed.media_seconds == pytest.approx(5.0, abs=0.001)
        assert parsed.kind == "video"

    def test_itag_carries_quality(self):
        for level in DASH_LADDER:
            chunk = _chunk(resolution=level.resolution_p)
            uri = segment_uri("h.googlevideo.com", "v", "c" * 16, chunk)
            assert parse_uri(uri).itag == level.itag

    def test_range_param_present(self):
        uri = segment_uri("h.googlevideo.com", "v", "c" * 16, _chunk(), range_start=100)
        assert "range=100-" in uri


class TestStatsReportUri:
    def test_roundtrip(self):
        uri = stats_report_uri(
            "c" * 16, "vid", playback_position_s=62.5,
            stall_count=2, stall_duration_s=7.25, state="playing",
        )
        parsed = parse_uri(uri)
        assert isinstance(parsed, ParsedStatsReport)
        assert parsed.session_id == "c" * 16
        assert parsed.stall_count == 2
        assert parsed.stall_duration_s == pytest.approx(7.25)
        assert parsed.playback_position_s == pytest.approx(62.5)
        assert parsed.state == "playing"


class TestSignallingUris:
    def test_watch_page_host(self):
        assert watch_page_uri("abc").startswith("https://m.youtube.com/watch")

    def test_thumbnail_host(self):
        assert "i.ytimg.com" in thumbnail_uri("abc")

    def test_signalling_parses_to_none(self):
        assert parse_uri(watch_page_uri("abc")) is None
        assert parse_uri(thumbnail_uri("abc")) is None

    def test_foreign_uri_parses_to_none(self):
        assert parse_uri("https://example.com/index.html") is None

    def test_pick_video_host_is_googlevideo(self):
        host = pick_video_host(np.random.default_rng(0))
        assert host.endswith(".googlevideo.com")
