"""Tests for the documented limitations of the reconstruction heuristic.

§5.2: "it can be limited in scenarios were the same subscriber launches
multiple videos in parallel and not sequentially.  Although such cases
are quite rare, it can be challenging to identify the segments that
belong to the same video session."  The reproduction preserves that
failure mode — these tests pin it down.
"""

import numpy as np

from repro.capture.proxy import WebProxy
from repro.capture.reconstruction import SessionReconstructor


def _observe(session, seed, epoch):
    proxy = WebProxy(np.random.default_rng(seed))
    return proxy.observe(session, "sub", start_epoch_s=epoch, encrypted=True)


class TestParallelSessionLimitation:
    def test_sequential_sessions_reconstruct_cleanly(
        self, one_adaptive_session, one_progressive_session
    ):
        entries = _observe(one_adaptive_session, 0, 0.0)
        entries += _observe(
            one_progressive_session,
            1,
            one_adaptive_session.total_duration_s + 120.0,
        )
        entries.sort(key=lambda e: e.timestamp_s)
        sessions = SessionReconstructor().reconstruct(entries)
        assert len(sessions) == 2
        expected = len(one_adaptive_session.chunks) + len(
            one_progressive_session.chunks
        )
        assert sum(s.chunk_count for s in sessions) == expected

    def test_parallel_sessions_merge_or_fragment(
        self, one_adaptive_session, one_progressive_session
    ):
        """Two sessions launched at the same time interleave; the
        heuristic cannot recover two clean sessions (the paper's stated
        limitation)."""
        entries = _observe(one_adaptive_session, 0, 0.0)
        entries += _observe(one_progressive_session, 1, 1.0)   # parallel!
        entries.sort(key=lambda e: e.timestamp_s)
        sessions = SessionReconstructor().reconstruct(entries)
        # either everything merges into fewer groups, or the mid-stream
        # watch page splits one session's chunks across groups — both
        # are wrong answers, and at least one must occur
        chunk_counts = sorted(s.chunk_count for s in sessions)
        true_counts = sorted(
            [
                len(one_adaptive_session.chunks),
                len(one_progressive_session.chunks),
            ]
        )
        assert chunk_counts != true_counts

    def test_parallel_sessions_lose_no_chunks(
        self, one_adaptive_session, one_progressive_session
    ):
        """Even when grouping is wrong, no media entry disappears."""
        entries = _observe(one_adaptive_session, 0, 0.0)
        entries += _observe(one_progressive_session, 1, 1.0)
        entries.sort(key=lambda e: e.timestamp_s)
        # min_media_chunks=1 so the aborted-visit filter does not also
        # discard small fragments created by the wrong grouping
        sessions = SessionReconstructor(min_media_chunks=1).reconstruct(entries)
        total = sum(s.chunk_count for s in sessions)
        expected = len(one_adaptive_session.chunks) + len(
            one_progressive_session.chunks
        )
        assert total == expected
