"""Tests for the ASCII plotting helpers."""

import numpy as np
import pytest

from repro.experiments.plots import ascii_cdfs, ascii_series
from repro.timeseries.stats import ecdf


class TestAsciiSeries:
    def test_empty(self):
        assert ascii_series([]) == "(empty series)"

    def test_dimensions(self):
        out = ascii_series(np.arange(100.0), width=40, height=8)
        lines = out.split("\n")
        assert len(lines) == 10                # 8 rows + axis + footer
        assert all(len(line) <= 40 for line in lines[:-1])

    def test_monotone_series_renders_staircase(self):
        out = ascii_series(np.arange(10.0), width=10, height=5)
        rows = out.split("\n")[:-2]
        # the top row must have fewer marks than the bottom row
        assert rows[0].count("#") < rows[-2].count("#")

    def test_title_included(self):
        out = ascii_series([1.0, 2.0], title="my plot")
        assert out.startswith("my plot")

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            ascii_series([1.0], width=0)

    def test_peaks_survive_binning(self):
        values = np.ones(1000)
        values[500] = 100.0
        out = ascii_series(values, width=50, height=5)
        assert "max=100" in out


class TestAsciiCdfs:
    def test_empty(self):
        assert ascii_cdfs([]) == "(no curves)"

    def test_single_curve(self):
        out = ascii_cdfs([("sizes", ecdf(np.arange(1, 101, dtype=float)))])
        assert "* sizes" in out
        assert "+" + "-" * 60 in out

    def test_two_curves_distinct_glyphs(self):
        a = ecdf(np.arange(1, 50, dtype=float))
        b = ecdf(np.arange(30, 120, dtype=float))
        out = ascii_cdfs([("a", a), ("b", b)])
        assert "* a" in out and "o b" in out
        assert "*" in out and "o" in out

    def test_log_scale_annotated(self):
        out = ascii_cdfs(
            [("x", ecdf(np.logspace(0, 4, 50)))], log_x=True
        )
        assert "(log x)" in out

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            ascii_cdfs([("x", ecdf([1.0, 2.0]))], width=1)

    def test_shifted_curves_visibly_separate(self):
        """A curve over larger values sits to the right: at the midpoint
        of the range, its probability is lower."""
        small = ecdf(np.random.default_rng(0).uniform(0, 10, 200))
        large = ecdf(np.random.default_rng(1).uniform(50, 60, 200))
        midpoint = 30.0
        assert small(midpoint) > large(midpoint)
