"""Integration tests for the experiment harness (tiny config)."""

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import (
    figure1_chunk_sizes,
    figure2_stall_ecdfs,
    figure3_switch_session,
    figure4_score_cdfs,
    figure5_dataset_comparison,
)
from repro.experiments.report import (
    render_classifier_table,
    render_confusion_matrix,
    render_feature_gains,
)
from repro.experiments.runner import EXPERIMENT_IDS, run_experiment
from repro.experiments.tables import (
    baseline_comparison,
    table2_stall_features,
    tables3_4_stall_classifier,
    tables8_9_encrypted_stall,
)
from repro.experiments.workspace import Workspace

TINY = ExperimentConfig(
    cleartext_sessions=150,
    adaptive_sessions=120,
    encrypted_sessions=60,
    seed=3,
    n_estimators=12,
)


@pytest.fixture(scope="module")
def workspace():
    return Workspace(TINY)


class TestWorkspace:
    def test_corpora_cached(self, workspace):
        assert workspace.cleartext_corpus() is workspace.cleartext_corpus()

    def test_detector_cached(self, workspace):
        assert workspace.stall_detector() is workspace.stall_detector()

    def test_record_views_nonempty(self, workspace):
        assert workspace.stall_records()
        assert workspace.representation_records()
        assert workspace.encrypted_stall_records()


class TestFigures:
    def test_fig1_has_stalls_and_dip(self):
        data = figure1_chunk_sizes()
        assert data.stall_starts_s
        assert data.sizes_dip_after_stalls()

    def test_fig2_fractions_consistent(self, workspace):
        data = figure2_stall_ecdfs(workspace)
        assert 0.0 <= data.frac_severe <= data.frac_with_stalls <= 1.0
        assert data.frac_more_than_one <= data.frac_with_stalls

    def test_fig3_shows_upswitch(self):
        data = figure3_switch_session()
        assert data.has_upswitch()
        assert data.switch_times_s

    def test_fig4_threshold_separates(self, workspace):
        data = figure4_score_cdfs(workspace)
        assert data.threshold > 0
        assert data.accuracy_without > 0.5
        assert data.accuracy_with > 0.4

    def test_fig5_encrypted_shifted_lower(self, workspace):
        data = figure5_dataset_comparison(workspace)
        # §5.3: encrypted inter-arrivals slightly lower / sizes smaller
        assert (
            data.size_cdf_encrypted.quantile(0.5)
            <= data.size_cdf_clear.quantile(0.5) * 1.5
        )


class TestTables:
    def test_table2_chunk_features_selected(self, workspace):
        table = table2_stall_features(workspace)
        assert table.rows
        assert table.chunk_feature_share() > 0.0

    def test_tables3_4_better_than_majority(self, workspace):
        table = tables3_4_stall_classifier(workspace)
        assert table.accuracy > 0.6
        matrix = table.confusion_percent()
        np.testing.assert_allclose(matrix.sum(axis=1), 100.0)

    def test_tables8_9_cross_dataset(self, workspace):
        table = tables8_9_encrypted_stall(workspace)
        assert table.protocol == "cross-dataset"
        assert 0.3 < table.accuracy <= 1.0

    def test_baseline_comparison_model_wins(self, workspace):
        comparison = baseline_comparison(workspace)
        assert comparison.model_wins()


class TestEarlyCurve:
    def test_early_vs_final_curve(self, workspace):
        from repro.experiments.early import (
            DEFAULT_KS,
            early_vs_final_curve,
            render_early_curve,
        )

        curve = early_vs_final_curve(workspace)
        assert curve.ks == DEFAULT_KS
        assert curve.sessions > 0
        assert len(curve.stall_agreement) == len(DEFAULT_KS)
        for rate in curve.stall_agreement:
            assert 0.0 <= rate <= 1.0
        for frac in curve.coverage:
            assert 0.0 <= frac <= 1.0
        # Coverage can only shrink as k grows (fewer sessions have k chunks).
        assert list(curve.coverage) == sorted(curve.coverage, reverse=True)
        text = render_early_curve(curve, "early")
        assert "early" in text and str(DEFAULT_KS[0]) in text


class TestRunner:
    def test_all_ids_registered(self):
        assert set(EXPERIMENT_IDS) == {
            "fig1", "fig2", "fig3", "fig4", "fig5",
            "tab2", "tab3_4", "tab5", "tab6_7",
            "tab8_9", "tab10_11", "sec56", "baseline", "early",
        }

    def test_unknown_id_raises(self, workspace):
        with pytest.raises(KeyError):
            run_experiment("tab99", workspace)

    def test_run_single_experiment(self, workspace):
        table = run_experiment("tab2", workspace)
        assert table.rows


class TestRendering:
    def test_render_classifier_table(self, workspace):
        table = tables3_4_stall_classifier(workspace)
        text = render_classifier_table(table, "Table 3")
        assert "weighted avg." in text
        assert "overall accuracy" in text

    def test_render_confusion(self, workspace):
        table = tables3_4_stall_classifier(workspace)
        text = render_confusion_matrix(table, "Table 4")
        assert "no stalls" in text

    def test_render_gains(self, workspace):
        text = render_feature_gains(table2_stall_features(workspace), "Table 2")
        assert "info. gain" in text


class TestRenderingExtras:
    def test_render_switch_evaluation(self, workspace):
        from repro.experiments.report import render_switch_evaluation
        from repro.experiments.tables import section56_encrypted_switching

        evaluation = section56_encrypted_switching(workspace)
        text = render_switch_evaluation(evaluation, "§5.6")
        assert "threshold" in text
        assert "%" in text

    def test_render_baseline_comparison(self, workspace):
        from repro.experiments.report import render_baseline_comparison
        from repro.experiments.tables import baseline_comparison

        text = render_baseline_comparison(
            baseline_comparison(workspace), "Baseline"
        )
        assert "Prometheus" in text
        assert "binary" in text

    def test_feature_gain_table_render_sorted(self, workspace):
        from repro.experiments.report import render_feature_gains
        from repro.experiments.tables import table2_stall_features

        text = render_feature_gains(table2_stall_features(workspace), "T2")
        lines = [l for l in text.split("\n")[2:-1] if l.strip()]
        gains = [float(l.split()[0]) for l in lines]
        assert gains == sorted(gains, reverse=True)


class TestPaperProtocol:
    def test_paper_protocol_variant(self, workspace):
        """The optimistic balanced-train/full-test protocol remains
        available and scores at least as high as honest CV."""
        from repro.experiments.tables import tables3_4_stall_classifier

        paper = tables3_4_stall_classifier(
            workspace, protocol="balanced-train/full-test"
        )
        cv = tables3_4_stall_classifier(workspace)
        assert paper.protocol == "balanced-train/full-test"
        assert paper.accuracy >= cv.accuracy - 0.01
