"""Tests for the §7 generalisation extension."""

import numpy as np
import pytest

from repro.experiments.generalization import (
    OTHER_SERVICES,
    ServiceProfile,
    evaluate_generalization,
    generate_service_records,
)
from repro.core.stall import StallDetector
from repro.core.switching import SwitchDetector
from repro.core.labeling import has_variation


class TestServiceProfiles:
    def test_two_services_defined(self):
        assert set(OTHER_SERVICES) == {"vimeo-like", "dailymotion-like"}

    def test_itags_disjoint_from_youtube(self):
        from repro.streaming.catalog import DASH_LADDER, PROGRESSIVE_LADDER

        youtube_itags = {q.itag for q in DASH_LADDER + PROGRESSIVE_LADDER}
        for service in OTHER_SERVICES.values():
            assert not youtube_itags & {q.itag for q in service.ladder}

    def test_ladders_differ_from_youtube(self):
        from repro.streaming.catalog import DASH_LADDER

        youtube = {(q.resolution_p, q.bitrate_kbps) for q in DASH_LADDER}
        for service in OTHER_SERVICES.values():
            theirs = {(q.resolution_p, q.bitrate_kbps) for q in service.ladder}
            assert theirs != youtube


class TestServiceCorpus:
    def test_records_generated(self):
        service = OTHER_SERVICES["vimeo-like"]
        records = generate_service_records(service, 20, seed=1)
        assert len(records) == 20
        assert all(r.n_chunks > 0 for r in records)

    def test_resolutions_come_from_service_ladder(self):
        service = OTHER_SERVICES["dailymotion-like"]
        records = generate_service_records(service, 15, seed=2)
        allowed = {q.resolution_p for q in service.ladder} | {0}
        for record in records:
            assert set(record.resolutions.tolist()) <= allowed

    def test_deterministic(self):
        service = OTHER_SERVICES["vimeo-like"]
        a = generate_service_records(service, 5, seed=3)
        b = generate_service_records(service, 5, seed=3)
        assert [r.session_id for r in a] == [r.session_id for r in b]


class TestTransfer:
    def test_detectors_transfer_above_chance(self, stall_records, adaptive_records):
        detector = StallDetector(n_estimators=12, random_state=0).fit(stall_records)
        switch = SwitchDetector()
        truth = np.array([has_variation(r) for r in adaptive_records])
        if truth.any() and not truth.all():
            switch.calibrate(adaptive_records, truth)
        results = evaluate_generalization(
            detector, switch, n_sessions=60, seed=5
        )
        assert len(results) == len(OTHER_SERVICES)
        for result in results:
            assert result.stall_accuracy > 0.45
