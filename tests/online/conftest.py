"""Shared fixture for the online/early tests: one small fitted framework."""

from __future__ import annotations

import pytest

from repro import QoEFramework


@pytest.fixture(scope="session")
def early_framework(stall_records, adaptive_records):
    return QoEFramework(random_state=0, n_estimators=12).fit(
        stall_records, adaptive_records
    )
