"""StreamingSessionState: exact-regime bit-identity and streaming shape.

The exact-regime contract is the load-bearing one for serving: while a
session sits at or below the chunk cutover, partial feature vectors
must be *bit-identical* to what the batch pipeline
(:func:`repro.core.features.stall_features` /
:func:`~repro.core.features.representation_features`) would produce on
the same chunk prefix — including the record-level sort-by-arrival
normalisation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.capture.weblog import WeblogEntry
from repro.core.features import (
    representation_feature_names,
    representation_features,
    stall_feature_names,
    stall_features,
)
from repro.datasets.schema import SessionRecord
from repro.online import StreamingSessionState, state_from_record_prefix


def _prefix_record(record: SessionRecord, k: int) -> SessionRecord:
    """First ``k`` chunks of a record, rebuilt the batch way."""
    return SessionRecord(
        session_id=record.session_id,
        encrypted=True,
        timestamps=record.timestamps[:k].astype(float),
        sizes=record.sizes[:k].astype(float),
        transactions=record.transactions[:k].astype(float),
        rtt_min=record.rtt_min[:k].astype(float),
        rtt_avg=record.rtt_avg[:k].astype(float),
        rtt_max=record.rtt_max[:k].astype(float),
        bdp=record.bdp[:k].astype(float),
        bif_avg=record.bif_avg[:k].astype(float),
        bif_max=record.bif_max[:k].astype(float),
        loss_pct=record.loss_pct[:k].astype(float),
        retx_pct=record.retx_pct[:k].astype(float),
    )


def _records_with_chunks(corpus, minimum: int, limit: int = 20):
    records = [r for r in corpus.records if r.n_chunks >= minimum]
    assert records, f"corpus has no record with >= {minimum} chunks"
    return records[:limit]


class TestExactRegime:
    @pytest.mark.parametrize("k", [1, 2, 5, 12])
    def test_stall_vector_bit_identical_to_batch(self, encrypted_corpus, k):
        names = stall_feature_names()
        for record in _records_with_chunks(encrypted_corpus, k):
            state = state_from_record_prefix(record, k)
            assert state.exact and state.n_chunks == k
            oracle = stall_features(_prefix_record(record, k))
            want = np.array([oracle[n] for n in names], dtype=float)
            assert np.array_equal(state.stall_vector(), want)

    @pytest.mark.parametrize("k", [1, 2, 5, 12])
    def test_representation_vector_bit_identical_to_batch(
        self, encrypted_corpus, k
    ):
        names = representation_feature_names()
        for record in _records_with_chunks(encrypted_corpus, k):
            state = state_from_record_prefix(record, k)
            oracle = representation_features(_prefix_record(record, k))
            want = np.array([oracle[n] for n in names], dtype=float)
            assert np.array_equal(state.representation_vector(), want)

    def test_partial_record_round_trips_chunk_fields(self, encrypted_corpus):
        record = _records_with_chunks(encrypted_corpus, 6)[0]
        state = state_from_record_prefix(record, 6)
        partial = state.partial_record(session_id="p")
        assert partial is not None and partial.n_chunks == 6
        assert np.array_equal(partial.timestamps, record.timestamps[:6])
        assert np.array_equal(partial.sizes, record.sizes[:6])
        assert np.array_equal(partial.retx_pct, record.retx_pct[:6])

    def test_buffer_dropped_past_cutover(self, encrypted_corpus):
        record = _records_with_chunks(encrypted_corpus, 5)[0]
        state = state_from_record_prefix(record, 5, exact_cutover=4)
        assert not state.exact
        assert state.partial_record() is None


class TestStreamingRegime:
    def test_vector_shapes_and_finiteness(self, encrypted_corpus):
        record = max(encrypted_corpus.records, key=lambda r: r.n_chunks)
        state = state_from_record_prefix(
            record, record.n_chunks, exact_cutover=0
        )
        stall = state.stall_vector()
        representation = state.representation_vector()
        assert stall.shape == (len(stall_feature_names()),)
        assert representation.shape == (len(representation_feature_names()),)
        assert np.isfinite(stall).all()
        assert np.isfinite(representation).all()

    def test_streamed_close_to_batch_on_long_prefix(self, encrypted_corpus):
        """Streaming estimates track the batch vector on mature sessions.

        Only the percentile positions are approximate (P²); count-free
        stats (min/max/mean) should agree tightly, so compare the whole
        vector with a loose relative tolerance plus an absolute floor
        for near-zero features.
        """
        record = max(encrypted_corpus.records, key=lambda r: r.n_chunks)
        k = record.n_chunks
        state = state_from_record_prefix(record, k, exact_cutover=0)
        oracle = stall_features(_prefix_record(record, k))
        want = np.array(
            [oracle[n] for n in stall_feature_names()], dtype=float
        )
        got = state.stall_vector()
        spread = np.abs(want).max()
        assert np.allclose(got, want, rtol=0.25, atol=0.05 * spread)

    def test_zero_chunks_snapshot_to_zeros(self):
        state = StreamingSessionState()
        assert np.array_equal(
            state.stall_vector(), np.zeros(len(stall_feature_names()))
        )
        assert np.array_equal(
            state.representation_vector(),
            np.zeros(len(representation_feature_names())),
        )
        assert state.partial_record() is None


class TestEntryFeed:
    def _entry(self, i: int) -> WeblogEntry:
        return WeblogEntry(
            subscriber_id="s1",
            timestamp_s=10.0 * i,
            server_name="r1---sn.googlevideo.com",
            server_ip="10.0.0.1",
            server_port=443,
            object_bytes=500_000 + 10_000 * i,
            transaction_s=1.5,
            rtt_min_ms=20.0,
            rtt_avg_ms=30.0 + i,
            rtt_max_ms=55.0,
            bdp_bytes=60_000.0,
            bif_avg_bytes=30_000.0,
            bif_max_bytes=80_000.0,
            loss_pct=0.1,
            retx_pct=0.2,
            encrypted=True,
        )

    def test_add_entry_equivalent_to_add_chunk(self):
        via_entry = StreamingSessionState()
        via_chunk = StreamingSessionState()
        for i in range(6):
            entry = self._entry(i)
            via_entry.add_entry(entry)
            via_chunk.add_chunk(
                arrival_s=entry.arrival_s,
                size_bytes=float(entry.object_bytes),
                transaction_s=entry.transaction_s,
                rtt_min_ms=entry.rtt_min_ms,
                rtt_avg_ms=entry.rtt_avg_ms,
                rtt_max_ms=entry.rtt_max_ms,
                bdp_bytes=entry.bdp_bytes,
                bif_avg_bytes=entry.bif_avg_bytes,
                bif_max_bytes=entry.bif_max_bytes,
                loss_pct=entry.loss_pct,
                retx_pct=entry.retx_pct,
            )
        assert np.array_equal(
            via_entry.stall_vector(), via_chunk.stall_vector()
        )
        assert np.array_equal(
            via_entry.representation_vector(),
            via_chunk.representation_vector(),
        )

    def test_entry_chunk_time_uses_arrival_not_request(self):
        state = StreamingSessionState()
        state.add_entry(self._entry(0))
        partial = state.partial_record()
        assert partial is not None
        # arrival_s = timestamp_s + transaction_s
        assert partial.timestamps[0] == pytest.approx(1.5)


class TestValidation:
    def test_negative_cutover_rejected(self):
        with pytest.raises(ValueError):
            StreamingSessionState(exact_cutover=-1)

    def test_prefix_clamps_to_record_length(self, encrypted_corpus):
        record = encrypted_corpus.records[0]
        state = state_from_record_prefix(record, record.n_chunks + 50)
        assert state.n_chunks == record.n_chunks
