"""EarlyPredictor: gating, confidence semantics, convergence accounting."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.framework import SessionDiagnosis
from repro.online import (
    ConvergenceReport,
    EarlyPredictor,
    ProvisionalDiagnosis,
    state_from_record_prefix,
)


@pytest.fixture()
def long_record(encrypted_corpus):
    record = max(encrypted_corpus.records, key=lambda r: r.n_chunks)
    assert record.n_chunks >= 12
    return record


def _feed(predictor, record, up_to, session_id="sub/online-1", sub="sub"):
    """Replay a record chunk-by-chunk through observe(); returns emissions."""
    out = []
    for k in range(1, up_to + 1):
        state = state_from_record_prefix(record, k)
        emitted = predictor.observe(state, session_id, sub)
        if emitted is not None:
            out.append(emitted)
    return out


class TestGatingAndConfidence:
    def test_no_emission_below_after_chunks(self, early_framework, long_record):
        predictor = EarlyPredictor(early_framework, after_chunks=4)
        assert _feed(predictor, long_record, up_to=3) == []

    def test_emits_from_after_chunks_each_new_chunk(
        self, early_framework, long_record
    ):
        predictor = EarlyPredictor(early_framework, after_chunks=4)
        emitted = _feed(predictor, long_record, up_to=8)
        assert [p.n_chunks for p in emitted] == [4, 5, 6, 7, 8]
        for p in emitted:
            assert isinstance(p, ProvisionalDiagnosis)
            assert p.session_id == "sub/online-1"
            assert p.subscriber_id == "sub"
            assert isinstance(p.stall_class, str)
            assert 0.0 <= p.confidence <= 1.0

    def test_confidence_is_age_ramped_vote_agreement(
        self, early_framework, long_record
    ):
        predictor = EarlyPredictor(
            early_framework, after_chunks=4, age_full_chunks=20
        )
        state = state_from_record_prefix(long_record, 4)
        p = predictor.predict_partial(state, "s", "sub")
        agreement = p.stall_confidence
        if p.representation_confidence is not None:
            agreement = min(agreement, p.representation_confidence)
        assert p.confidence == pytest.approx(agreement * 4 / 20)
        assert p.confidence <= 4 / 20  # the ramp caps young sessions

    def test_cadence_predict_every(self, early_framework, long_record):
        predictor = EarlyPredictor(
            early_framework, after_chunks=4, predict_every=3
        )
        emitted = _feed(predictor, long_record, up_to=12)
        assert [p.n_chunks for p in emitted] == [4, 7, 10]

    def test_unchanged_chunk_count_is_skipped(
        self, early_framework, long_record
    ):
        predictor = EarlyPredictor(early_framework, after_chunks=4)
        state = state_from_record_prefix(long_record, 5)
        assert predictor.observe(state, "sub/online-1", "sub") is not None
        # A signalling entry updates the session without a new chunk.
        assert predictor.observe(state, "sub/online-1", "sub") is None

    def test_min_confidence_suppresses_but_still_tracks(
        self, early_framework, long_record
    ):
        predictor = EarlyPredictor(
            early_framework, after_chunks=4, min_confidence=1.0
        )
        assert _feed(predictor, long_record, up_to=8) == []
        final = SessionDiagnosis(
            session_id="sub/online-1",
            stall_class="no stalls",
            representation_class=None,
            has_quality_switches=None,
        )
        record = dataclasses.replace(long_record, session_id="sub/online-1")
        predictor.note_final(record, final)
        report = predictor.report()
        assert report.sessions == 1
        assert report.predictions == 5  # tracked despite suppression


class TestConvergenceAccounting:
    def _close(self, predictor, record, stall_class, session_id="sub/online-1"):
        final = SessionDiagnosis(
            session_id=session_id,
            stall_class=stall_class,
            representation_class=None,
            has_quality_switches=None,
        )
        predictor.note_final(
            dataclasses.replace(record, session_id=session_id), final
        )

    def test_agreement_counted_on_close(self, early_framework, long_record):
        predictor = EarlyPredictor(early_framework, after_chunks=4)
        last = _feed(predictor, long_record, up_to=8)[-1]
        self._close(predictor, long_record, last.stall_class)
        report = predictor.report()
        assert report.sessions == 1
        assert report.stall_agreements == 1
        assert report.stall_agreement_rate == 1.0
        assert len(report.chunks_to_stable) == 1

    def test_disagreement_counted_on_close(self, early_framework, long_record):
        predictor = EarlyPredictor(early_framework, after_chunks=4)
        last = _feed(predictor, long_record, up_to=8)[-1]
        wrong = "severe stalls" if last.stall_class != "severe stalls" else "no stalls"
        self._close(predictor, long_record, wrong)
        assert predictor.report().stall_agreements == 0

    def test_session_without_predictions_is_ignored(
        self, early_framework, long_record
    ):
        predictor = EarlyPredictor(early_framework, after_chunks=4)
        self._close(predictor, long_record, "no stalls")
        assert predictor.report().sessions == 0

    def test_late_final_after_successor_started(
        self, early_framework, long_record
    ):
        """Micro-batched finals can arrive after the next session's first
        provisional; the retired track must still be accounted."""
        predictor = EarlyPredictor(early_framework, after_chunks=4)
        _feed(predictor, long_record, up_to=6, session_id="sub/online-1")
        # Successor session starts before online-1's final lands.
        _feed(predictor, long_record, up_to=5, session_id="sub/online-2")
        self._close(predictor, long_record, "no stalls", "sub/online-1")
        assert predictor.report().sessions == 1
        # The live online-2 track keeps accumulating afterwards.
        self._close(predictor, long_record, "no stalls", "sub/online-2")
        assert predictor.report().sessions == 2

    def test_report_merge_is_commutative(self):
        a = ConvergenceReport(
            sessions=2,
            predictions=7,
            stall_agreements=1,
            stall_flips=3,
            chunks_to_stable=(4, 9),
        )
        b = ConvergenceReport(
            sessions=1, predictions=2, stall_agreements=1, chunks_to_stable=(5,)
        )
        ab, ba = a.merge(b), b.merge(a)
        assert ab.sessions == ba.sessions == 3
        assert ab.predictions == ba.predictions == 9
        assert sorted(ab.chunks_to_stable) == sorted(ba.chunks_to_stable)
        assert "sessions=3" in ab.describe()

    def test_flip_rate_and_median(self):
        report = ConvergenceReport(
            sessions=2,
            predictions=10,
            stall_flips=1,
            representation_flips=1,
            chunks_to_stable=(4, 8),
        )
        assert report.flip_rate == pytest.approx(0.2)
        assert report.median_chunks_to_stable == pytest.approx(6.0)
        assert ConvergenceReport().flip_rate == 0.0
        assert ConvergenceReport().median_chunks_to_stable == 0.0


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"after_chunks": 0},
            {"min_confidence": -0.1},
            {"min_confidence": 1.1},
            {"age_full_chunks": 0},
            {"predict_every": 0},
        ],
    )
    def test_constructor_rejects_bad_params(self, early_framework, kwargs):
        with pytest.raises(ValueError):
            EarlyPredictor(early_framework, **kwargs)
