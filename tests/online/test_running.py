"""Property suite for the streaming accumulators (satellite: hypothesis).

The contracts under test, as documented in ``repro.online.running``:

* below the exact-buffer cutover, snapshots are *bit-identical* to the
  batch ``summary_statistics`` oracle on the same values;
* above it, count/min/max stay exact, mean/std match Welford-vs-batch
  to floating-point tolerance, and every P² percentile estimate lies
  within the observed ``[min, max]`` spread;
* NaN/inf inputs are dropped exactly like the batch ``isfinite``
  filter.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.online.running import EXACT_CUTOVER, P2Quantile, RunningStats
from repro.timeseries.stats import (
    SUMMARY_STATS_BASIC,
    SUMMARY_STATS_EXTENDED,
    summary_statistics,
)

_FINITE = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
_ANY = st.one_of(
    _FINITE,
    st.just(float("nan")),
    st.just(float("inf")),
    st.just(float("-inf")),
)

_BASIC_PCTS = (25.0, 50.0, 75.0)
_EXTENDED_PCTS = (5, 10, 15, 20, 25, 50, 75, 80, 85, 90, 95)


class TestExactRegime:
    @given(st.lists(_ANY, max_size=EXACT_CUTOVER))
    @settings(max_examples=200, deadline=None)
    def test_bit_identical_to_batch_below_cutover(self, values):
        rs = RunningStats(percentiles=_BASIC_PCTS)
        rs.update_many(values)
        assert rs.exact
        got = rs.snapshot(SUMMARY_STATS_BASIC)
        want = summary_statistics(values, stats=SUMMARY_STATS_BASIC)
        assert got == want  # == on floats: bit-identical, NaNs excluded

    @given(st.lists(_ANY, max_size=EXACT_CUTOVER))
    @settings(max_examples=100, deadline=None)
    def test_extended_stats_bit_identical(self, values):
        rs = RunningStats(percentiles=_EXTENDED_PCTS)
        rs.update_many(values)
        got = rs.snapshot(SUMMARY_STATS_EXTENDED)
        want = summary_statistics(values, stats=SUMMARY_STATS_EXTENDED)
        assert got == want

    def test_buffer_dropped_past_cutover_for_good(self):
        rs = RunningStats(percentiles=(50,), exact_cutover=4)
        rs.update_many([1.0, 2.0, 3.0, 4.0])
        assert rs.exact
        rs.update(5.0)
        assert not rs.exact
        rs2 = RunningStats(percentiles=(50,), exact_cutover=4)
        rs2.update_many([1.0, 2.0, 3.0, 4.0, float("nan")])
        assert rs2.exact  # non-finite values never consume the buffer


class TestStreamingRegime:
    @given(st.lists(_ANY, min_size=EXACT_CUTOVER + 1, max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_exact_moments_and_percentile_bounds(self, values):
        rs = RunningStats(percentiles=_BASIC_PCTS)
        rs.update_many(values)
        finite = [v for v in values if math.isfinite(v)]
        assert rs.dropped == len(values) - len(finite)
        if not finite:
            assert rs.snapshot(SUMMARY_STATS_BASIC) == {
                s: 0.0 for s in SUMMARY_STATS_BASIC
            }
            return
        batch = summary_statistics(finite, stats=SUMMARY_STATS_BASIC)
        got = rs.snapshot(SUMMARY_STATS_BASIC)
        assert rs.count == len(finite)
        assert got["min"] == batch["min"]
        assert got["max"] == batch["max"]
        assert math.isclose(
            got["mean"], batch["mean"], rel_tol=1e-9, abs_tol=1e-6
        )
        assert math.isclose(
            got["std"], batch["std"], rel_tol=1e-6, abs_tol=1e-6
        )
        # The documented P2 guarantee: estimates within [min, max].
        for stat in ("p25", "p50", "p75"):
            assert got["min"] <= got[stat] <= got["max"]

    @given(st.lists(_FINITE, min_size=1, max_size=300))
    @settings(max_examples=100, deadline=None)
    def test_streaming_from_first_value_stays_bounded(self, values):
        rs = RunningStats(percentiles=(50,), exact_cutover=0)
        rs.update_many(values)
        assert not rs.exact
        snap = rs.snapshot(("min", "p50", "max"))
        assert snap["min"] <= snap["p50"] <= snap["max"]

    @pytest.mark.parametrize(
        "sampler",
        [
            lambda rng, n: rng.uniform(0.0, 100.0, n),
            lambda rng, n: rng.normal(50.0, 10.0, n),
            lambda rng, n: rng.exponential(5.0, n),
        ],
        ids=["uniform", "normal", "exponential"],
    )
    def test_p2_accuracy_on_smooth_distributions(self, sampler):
        rng = np.random.default_rng(7)
        values = sampler(rng, 10_000)
        rs = RunningStats(percentiles=_BASIC_PCTS, exact_cutover=0)
        rs.update_many(values)
        spread = float(values.max() - values.min())
        for p in _BASIC_PCTS:
            true = float(np.percentile(values, p))
            assert abs(rs.quantile(p) - true) < 0.02 * spread

    def test_all_nonfinite_stream_snapshots_to_zero(self):
        rs = RunningStats(percentiles=(50,), exact_cutover=0)
        rs.update_many([float("nan"), float("inf"), float("-inf")] * 30)
        assert rs.count == 0 and rs.dropped == 90
        assert rs.snapshot(SUMMARY_STATS_BASIC) == {
            s: 0.0 for s in SUMMARY_STATS_BASIC
        }


class TestP2Quantile:
    def test_exact_below_five_observations(self):
        est = P2Quantile(0.5)
        for v in (5.0, 1.0, 3.0):
            est.update(v)
        assert est.value() == float(np.percentile([5.0, 1.0, 3.0], 50))

    def test_rejects_degenerate_quantiles(self):
        for q in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                P2Quantile(q)

    def test_empty_value_is_zero(self):
        assert P2Quantile(0.5).value() == 0.0

    @given(st.lists(_FINITE, min_size=5, max_size=500), st.sampled_from(
        [0.05, 0.25, 0.5, 0.75, 0.95]
    ))
    @settings(max_examples=150, deadline=None)
    def test_estimate_always_within_observed_range(self, values, q):
        est = P2Quantile(q)
        for v in values:
            est.update(v)
        assert min(values) <= est.value() <= max(values)


class TestValidation:
    def test_unknown_stat_raises(self):
        rs = RunningStats(percentiles=(), exact_cutover=0)
        rs.update(1.0)
        with pytest.raises(ValueError, match="unknown statistic"):
            rs.snapshot(("median",))

    def test_undeclared_percentile_raises(self):
        rs = RunningStats(percentiles=(50,), exact_cutover=0)
        rs.update(1.0)
        with pytest.raises(KeyError, match="declared"):
            rs.quantile(90)

    def test_negative_cutover_rejected(self):
        with pytest.raises(ValueError):
            RunningStats(exact_cutover=-1)
