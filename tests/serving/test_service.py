"""QoEService: lifecycle, determinism vs the serial monitor, health.

The headline guarantee under test: replaying a multi-subscriber trace
through N concurrent shards produces exactly the diagnosis multiset,
alarm multiset and per-subscriber health a serial
:class:`RealTimeMonitor` produces on the same trace.
"""

from __future__ import annotations

import threading

import pytest

from repro.realtime.monitor import RealTimeMonitor
from repro.realtime.tracker import OnlineSessionTracker
from repro.serving.models import ModelManager
from repro.serving.service import QoEService

from tests.serving.conftest import alarm_multiset, diagnosis_multiset


def _serial_run(framework, trace):
    monitor = RealTimeMonitor(framework, tracker=OnlineSessionTracker())
    monitor.feed_many(trace)
    monitor.drain()
    return monitor


def _service_run(framework, trace, n_shards, **kwargs):
    service = QoEService(framework, n_shards=n_shards, **kwargs)
    with service:
        service.submit_many(trace)
    return service


class TestDeterminism:
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_sharded_matches_serial(
        self, serving_framework, serving_trace, n_shards
    ):
        serial = _serial_run(serving_framework, serving_trace)
        service = _service_run(serving_framework, serving_trace, n_shards)
        assert diagnosis_multiset(service.diagnoses) == diagnosis_multiset(
            serial.diagnoses
        )
        assert alarm_multiset(service.alarms) == alarm_multiset(serial.alarms)

    def test_health_matches_serial(self, serving_framework, serving_trace):
        serial = _serial_run(serving_framework, serving_trace)
        service = _service_run(serving_framework, serving_trace, 4)
        merged = service.health_by_subscriber
        assert set(merged) == set(serial.health)
        for subscriber, health in serial.health.items():
            assert merged[subscriber] == health

    def test_batch_size_does_not_change_results(
        self, serving_framework, serving_trace
    ):
        """Micro-batching is result-invisible: per-row forest outputs do
        not depend on which rows share a batch."""
        small = _service_run(
            serving_framework, serving_trace, 2, max_batch=1
        )
        large = _service_run(
            serving_framework, serving_trace, 2, max_batch=128, max_delay_s=5.0
        )
        assert diagnosis_multiset(small.diagnoses) == diagnosis_multiset(
            large.diagnoses
        )

    def test_repeat_runs_identical(self, serving_framework, serving_trace):
        first = _service_run(serving_framework, serving_trace, 4)
        second = _service_run(serving_framework, serving_trace, 4)
        assert diagnosis_multiset(first.diagnoses) == diagnosis_multiset(
            second.diagnoses
        )


class TestLifecycle:
    def test_states(self, serving_framework, serving_trace):
        service = QoEService(serving_framework, n_shards=2)
        assert service.state == "created"
        assert not service.ready
        service.start()
        assert service.state == "running"
        assert service.ready
        service.submit_many(serving_trace[:50])
        service.drain()
        assert service.state == "stopped"
        assert not service.ready

    def test_submit_before_start_raises(self, serving_framework, serving_trace):
        service = QoEService(serving_framework, n_shards=2)
        with pytest.raises(RuntimeError):
            service.submit(serving_trace[0])

    def test_start_twice_raises(self, serving_framework):
        service = QoEService(serving_framework, n_shards=1)
        service.start()
        with pytest.raises(RuntimeError):
            service.start()
        service.stop()

    def test_submit_after_drain_raises(self, serving_framework, serving_trace):
        service = QoEService(serving_framework, n_shards=1)
        service.start()
        service.drain()
        with pytest.raises(RuntimeError):
            service.submit(serving_trace[0])

    def test_drain_idempotent(self, serving_framework, serving_trace):
        service = QoEService(serving_framework, n_shards=2)
        service.start()
        service.submit_many(serving_trace)
        first = service.drain()
        second = service.drain()
        assert first == second
        service.stop()  # no-op on a stopped service

    def test_invalid_shard_count(self, serving_framework):
        with pytest.raises(ValueError):
            QoEService(serving_framework, n_shards=0)

    def test_context_manager_drains(self, serving_framework, serving_trace):
        with QoEService(serving_framework, n_shards=2) as service:
            service.submit_many(serving_trace)
        assert service.state == "stopped"
        assert len(service.diagnoses) > 0

    def test_accepts_model_manager(self, serving_framework, serving_trace):
        manager = ModelManager(serving_framework)
        with QoEService(manager, n_shards=1) as service:
            assert service.models is manager
            service.submit_many(serving_trace[:50])


class TestBackpressureAccounting:
    def test_shed_newest_counts_sheds(self, serving_framework, serving_trace):
        """A tiny shed_newest queue under an unpaced burst must shed, and
        submitted == accepted + shed."""
        service = QoEService(
            serving_framework,
            n_shards=1,
            queue_capacity=1,
            policy="shed_newest",
            max_batch=64,
            max_delay_s=5.0,
        )
        # keep the worker from draining the queue so sheds are forced
        hold = threading.Event()
        original_observe = service._shards[0].monitor.tracker.observe

        def slow_observe(entry):
            hold.wait(timeout=5.0)
            return original_observe(entry)

        service._shards[0].monitor.tracker.observe = slow_observe
        service.start()
        accepted = service.submit_many(serving_trace[:100])
        hold.set()
        service.drain()
        assert service.submitted == 100
        assert service.shed == 100 - accepted
        assert service.shed > 0

    def test_block_policy_loses_nothing(self, serving_framework, serving_trace):
        service = _service_run(
            serving_framework, serving_trace, 2, queue_capacity=2, policy="block"
        )
        assert service.shed == 0
        processed = sum(s.entries_processed for s in service._shards)
        assert processed == len(serving_trace)


class TestCallbacksAndHealth:
    def test_callbacks_fire_per_event(self, serving_framework, serving_trace):
        lock = threading.Lock()
        seen_diagnoses, seen_alarms = [], []

        def on_diagnosis(d):
            with lock:
                seen_diagnoses.append(d)

        def on_alarm(a):
            with lock:
                seen_alarms.append(a)

        service = QoEService(
            serving_framework,
            n_shards=4,
            on_diagnosis=on_diagnosis,
            on_alarm=on_alarm,
        )
        with service:
            service.submit_many(serving_trace)
        assert len(seen_diagnoses) == len(service.diagnoses)
        assert len(seen_alarms) == len(service.alarms)
        assert service.callback_errors == 0

    def test_callback_errors_isolated_and_counted(
        self, serving_framework, serving_trace
    ):
        def broken(_):
            raise RuntimeError("subscriber bug")

        service = QoEService(
            serving_framework, n_shards=2, on_diagnosis=broken
        )
        with service:
            service.submit_many(serving_trace)
        assert len(service.diagnoses) > 0        # loop survived
        assert service.callback_errors == len(service.diagnoses)

    def test_health_snapshot_shape(self, serving_framework, serving_trace):
        service = QoEService(serving_framework, n_shards=3)
        with service:
            service.submit_many(serving_trace)
        snapshot = service.health()
        assert snapshot["state"] == "stopped"
        assert snapshot["ready"] is False
        assert snapshot["model_version"] == 1
        assert snapshot["submitted"] == len(serving_trace)
        assert len(snapshot["shards"]) == 3
        for shard in snapshot["shards"]:
            assert shard["queue_depth"] == 0
            assert shard["open_sessions"] == 0
            assert shard["pending_batch"] == 0
        assert sum(s["entries_processed"] for s in snapshot["shards"]) == len(
            serving_trace
        )
        assert sum(s["diagnoses"] for s in snapshot["shards"]) == len(
            service.diagnoses
        )
