"""End-to-end chaos acceptance: the ISSUE's headline scenario.

Kill one shard worker mid-replay and corrupt 2% of the records.  The
service must finish with zero unhandled exceptions, the restart must be
visible in metrics and health, every malformed record must sit in the
dead-letter queue — and the sessions of subscribers the chaos plan
never touched must be diagnosed *bit-identically* to a fault-free run.
"""

from __future__ import annotations

import pytest

from repro.faults import FaultInjector, FaultPlan
from repro.obs import get_registry
from repro.realtime.monitor import RealTimeMonitor
from repro.realtime.tracker import OnlineSessionTracker
from repro.serving import (
    ModelManager,
    QoEService,
    TraceReplayer,
    synthetic_trace,
)
from repro.serving.shard import shard_index

from tests.serving.conftest import alarm_multiset, diagnosis_multiset


@pytest.fixture(scope="module")
def chaos_trace():
    """Same corpus as serving_trace, folded onto 20 subscribers.

    2% corruption on an 8-subscriber fold touches essentially every
    subscriber (>200 entries each), which would make the
    untouched-subscriber determinism check vacuous; 20 subscribers
    leave a verifiable untouched population.
    """
    return synthetic_trace(40, seed=17, subscribers=20)


def _subscriber(session_id):
    return session_id.rsplit("/online-", 1)[0]


def _filtered(diagnoses, excluded):
    return diagnosis_multiset(
        d for d in diagnoses if _subscriber(d.session_id) not in excluded
    )


def _counter_total(snapshot_name):
    total = 0.0
    for family in get_registry().collect():
        if family.name == snapshot_name:
            for _labels, child in family.samples():
                total += child.value
    return total


class TestChaosScenario:
    def test_kill_one_shard_and_corrupt_two_percent(
        self, serving_framework, chaos_trace
    ):
        victim = shard_index(chaos_trace[0].subscriber_id, 4)
        plan = FaultPlan(
            seed=23, corrupt_fraction=0.02, kill_shard=victim, kill_at_entry=25
        )
        faults = FaultInjector(plan)

        restarts_before = _counter_total("repro_serving_shard_restarts_total")
        dead_before = _counter_total("repro_serving_dead_letter_total")

        service = QoEService(serving_framework, n_shards=4, faults=faults)
        service.start()
        TraceReplayer(service, faults=faults).replay(chaos_trace)
        diagnoses = service.drain()
        health = service.health()

        # the kill fired, the supervisor healed, nothing crashed the run
        assert faults.kills_fired == 1
        assert health["restarts"] >= 1
        assert health["shards"][victim]["restarts"] >= 1
        assert health["state"] == "stopped"
        assert not service.degraded  # restarted within budget
        assert service.supervisor.open_circuits == []

        # corruption was quarantined, not crashed on and not diagnosed
        corrupted = [i for i in faults.injections if i.kind == "corrupt"]
        assert corrupted, "2% of 1700+ records must corrupt some"
        assert health["dead_letter"]["quarantined"] == len(corrupted)
        assert health["dead_letter"]["by_reason"] == {
            "malformed": len(corrupted)
        }
        assert service.dead_letters.quarantined == len(corrupted)

        # both recovery events are visible on the metrics registry
        assert (
            _counter_total("repro_serving_shard_restarts_total")
            - restarts_before
            >= 1
        )
        assert (
            _counter_total("repro_serving_dead_letter_total") - dead_before
            == len(corrupted)
        )

        # determinism under fire: subscribers the plan never touched
        # diagnose bit-identically to a fault-free serial run
        serial = RealTimeMonitor(
            serving_framework, tracker=OnlineSessionTracker()
        )
        serial.feed_many(chaos_trace)
        serial.drain()
        affected = faults.affected_subscribers
        assert affected  # the plan did touch someone
        assert len(affected) < 20  # ...but not everyone
        untouched_serial = _filtered(serial.diagnoses, affected)
        assert untouched_serial  # the comparison is not vacuous
        assert _filtered(diagnoses, affected) == untouched_serial

    def test_noop_plan_is_bit_identical_to_no_fault_layer(
        self, serving_framework, serving_trace
    ):
        """Running with a no-op FaultPlan wired all the way through must
        equal running with no fault layer at all — the PR-3 baseline."""
        baseline = QoEService(serving_framework, n_shards=4)
        baseline.start()
        TraceReplayer(baseline).replay(serving_trace)
        baseline_diagnoses = baseline.drain()

        noop = FaultInjector(FaultPlan())
        wired = QoEService(serving_framework, n_shards=4, faults=noop)
        wired.start()
        TraceReplayer(wired, faults=noop).replay(serving_trace)
        wired_diagnoses = wired.drain()

        assert noop.injections == []
        assert wired.supervisor.total_restarts == 0
        assert wired.dead_letters.quarantined == 0
        assert diagnosis_multiset(wired_diagnoses) == diagnosis_multiset(
            baseline_diagnoses
        )
        assert alarm_multiset(wired.alarms) == alarm_multiset(baseline.alarms)

    def test_skewed_clocks_are_quarantined_as_non_monotonic(
        self, serving_framework, serving_trace
    ):
        """Backwards clock jumps beyond the tolerance must land in the
        dead-letter queue under their own reason, not corrupt sessions."""
        faults = FaultInjector(FaultPlan(seed=3, skew_fraction=0.02, skew_s=500.0))
        service = QoEService(
            serving_framework, n_shards=4, clock_skew_tolerance_s=5.0,
            faults=faults,
        )
        service.start()
        TraceReplayer(service, faults=faults).replay(serving_trace)
        service.drain()
        by_reason = service.dead_letters.by_reason
        assert by_reason.get("non_monotonic", 0) > 0


class TestReloadResilience:
    def test_reload_heals_through_transient_failures(
        self, serving_framework, tmp_path
    ):
        from repro.persistence import save_framework

        path = tmp_path / "model.json"
        save_framework(serving_framework, path)
        faults = FaultInjector(FaultPlan(reload_failures=2))
        manager = ModelManager(path, reload_retries=2, retry_base_delay_s=0.001)
        manager.fault_gate = faults.reload_gate
        assert manager.reload() is True  # 2 failures absorbed by 2 retries
        assert manager.version == 2

    def test_reload_fails_closed_past_retry_budget(
        self, serving_framework, tmp_path
    ):
        from repro.persistence import save_framework

        path = tmp_path / "model.json"
        save_framework(serving_framework, path)
        faults = FaultInjector(FaultPlan(reload_failures=5))
        manager = ModelManager(path, reload_retries=1, retry_base_delay_s=0.001)
        manager.fault_gate = faults.reload_gate
        before = manager.current
        assert manager.reload() is False
        assert manager.current is before  # serving model untouched
        assert manager.version == 1
