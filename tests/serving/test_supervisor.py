"""Supervision tests: restarts, circuit breaker, shutdown under failure."""

from __future__ import annotations

import time

import pytest

from repro.faults import FaultInjector, FaultPlan, InjectedFault
from repro.realtime.monitor import RealTimeMonitor
from repro.realtime.tracker import OnlineSessionTracker
from repro.serving import (
    DeadLetterQueue,
    ModelManager,
    QoEService,
    ShardSupervisor,
)
from repro.serving.batcher import MicroBatcher
from repro.serving.queue import BoundedQueue
from repro.serving.shard import ShardWorker, shard_index

from tests.serving.conftest import diagnosis_multiset


def _wait_for(predicate, timeout_s=10.0, interval_s=0.01):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


def _single_shard(framework, faults=None, name="t-sup", **kwargs):
    return ShardWorker(
        index=0,
        models=ModelManager(framework),
        queue=BoundedQueue(4096, name=name),
        batcher=MicroBatcher(max_batch=8, max_delay_s=0.05),
        fault_hook=faults.shard_fault_hook if faults is not None else None,
        **kwargs,
    )


class TestWorkerRestart:
    def test_restart_resumes_over_surviving_state(
        self, serving_framework, serving_trace
    ):
        """Kill the worker mid-trace; the supervisor-restarted thread
        drains the same queue and the only loss is the in-flight entry."""
        faults = FaultInjector(FaultPlan(kill_shard=0, kill_at_entry=20))
        dlq = DeadLetterQueue()
        shard = _single_shard(serving_framework, faults, name="t-restart")
        supervisor = ShardSupervisor(
            [shard], dlq, max_restarts=3, backoff_base_s=0.01
        )
        shard.start()
        supervisor.start()
        for entry in serving_trace:
            shard.queue.put(entry)
        shard.queue.close()

        assert _wait_for(lambda: shard.state == "stopped")
        supervisor.stop()
        assert shard.restarts == 1
        assert supervisor.total_restarts == 1
        assert not supervisor.circuit_open(0)
        assert not supervisor.degraded
        # exactly one entry (the in-flight one at kill time) was lost
        assert shard.entries_processed == len(serving_trace)
        assert len(faults.injections) == 1
        assert faults.injections[0].kind == "kill_worker"

    def test_restart_refused_while_alive(self, serving_framework, serving_trace):
        shard = _single_shard(serving_framework, name="t-alive")
        shard.start()
        with pytest.raises(RuntimeError, match="alive"):
            shard.restart()
        shard.queue.close()
        shard.join(timeout=30.0)


class TestCircuitBreaker:
    def test_budget_exhaustion_trips_circuit_and_quarantines(
        self, serving_framework, serving_trace
    ):
        """A crash-looping shard opens its breaker; the stranded backlog
        lands in the dead-letter queue with reason circuit_open."""
        faults = FaultInjector(
            FaultPlan(kill_shard=0, kill_at_entry=1, kill_times=100)
        )
        dlq = DeadLetterQueue()
        shard = _single_shard(serving_framework, faults, name="t-circuit")
        supervisor = ShardSupervisor(
            [shard], dlq, max_restarts=2, backoff_base_s=0.005
        )
        shard.start()
        supervisor.start()
        for entry in serving_trace:
            shard.queue.put(entry)

        assert _wait_for(lambda: supervisor.circuit_open(0))
        supervisor.stop()
        assert supervisor.open_circuits == [0]
        assert supervisor.degraded
        assert shard.restarts == 2  # the full budget was spent first
        assert dlq.quarantined > 0
        assert set(dlq.by_reason) == {"circuit_open"}
        # the queue was emptied so blocked producers cannot hang
        assert shard.queue.depth == 0

    def test_service_rejects_submits_to_open_circuit(
        self, serving_framework, serving_trace
    ):
        """Once a shard's circuit opens, its subscribers are refused at
        submit() while other shards keep accepting; stop() still works."""
        victim = shard_index(serving_trace[0].subscriber_id, 2)
        faults = FaultInjector(
            FaultPlan(kill_shard=victim, kill_at_entry=1, kill_times=100)
        )
        service = QoEService(
            serving_framework,
            n_shards=2,
            max_restarts=1,
            restart_backoff_s=0.005,
            supervisor_poll_s=0.005,
            faults=faults,
        )
        service.start()
        # feed until the victim's circuit trips
        for entry in serving_trace:
            service.submit(entry)
        assert _wait_for(lambda: service.supervisor.circuit_open(victim))
        assert not service.ready
        assert service.degraded

        rejected_before = service.rejected
        assert service.submit(serving_trace[0]) is False
        assert service.rejected == rejected_before + 1

        # the healthy shard still accepts
        other = next(
            e
            for e in serving_trace
            if shard_index(e.subscriber_id, 2) != victim
        )
        assert service.submit(other) is True

        service.stop()  # must not raise despite the tripped breaker
        assert service.state == "stopped"
        health = service.health()
        assert health["degraded"] is True
        assert health["shards"][victim]["circuit_open"] is True
        assert health["dead_letter"]["by_reason"].get("circuit_open", 0) > 0


class TestDrainUnderFailure:
    def test_drain_mid_restart_still_flushes_backlog(
        self, serving_framework, serving_trace
    ):
        """drain() arriving while the shard is dead and waiting out its
        restart backoff must revive it immediately and lose nothing but
        the in-flight entry."""
        victim = shard_index(serving_trace[0].subscriber_id, 2)
        faults = FaultInjector(FaultPlan(kill_shard=victim, kill_at_entry=5))
        service = QoEService(
            serving_framework,
            n_shards=2,
            # Room for the whole backlog: the victim's consumer stays
            # dead until drain(), so submits must never block on it.
            queue_capacity=4096,
            max_restarts=3,
            # Backoff far beyond the test: the watchdog alone would
            # never restart in time, so drain() must do it.
            restart_backoff_s=600.0,
            faults=faults,
        )
        service.start()
        for entry in serving_trace:
            service.submit(entry)
        assert _wait_for(lambda: faults.kills_fired == 1)
        diagnoses = service.drain()

        assert service.state == "stopped"
        assert service.supervisor.total_restarts == 1
        assert not service.degraded
        # one in-flight entry died with the worker; everything queued
        # behind it was still processed after the forced restart
        total_processed = sum(
            s["entries_processed"] for s in service.health()["shards"]
        )
        assert total_processed == len(serving_trace)
        assert len(diagnoses) > 0

    def test_fault_free_supervised_run_matches_serial(
        self, serving_framework, serving_trace
    ):
        """Supervision machinery at rest must not perturb results: a
        fault-free supervised service equals the serial monitor."""
        serial = RealTimeMonitor(
            serving_framework, tracker=OnlineSessionTracker()
        )
        serial.feed_many(serving_trace)
        serial.drain()

        service = QoEService(serving_framework, n_shards=4)
        service.start()
        for entry in serving_trace:
            service.submit(entry)
        diagnoses = service.drain()

        assert service.supervisor.total_restarts == 0
        assert not service.degraded
        assert diagnosis_multiset(diagnoses) == diagnosis_multiset(
            serial.diagnoses
        )


class TestHeartbeat:
    def test_stalled_worker_flagged_and_recovers(self, serving_framework):
        """A live worker whose heartbeat goes stale is flagged degraded
        after the enter hysteresis, and the flag clears after the exit
        hysteresis once the heartbeat catches up (the clock is
        injected: no real wedged thread needed)."""
        shard = _single_shard(serving_framework, name="t-stall")
        dlq = DeadLetterQueue()
        offset = [0.0]
        supervisor = ShardSupervisor(
            [shard],
            dlq,
            heartbeat_timeout_s=5.0,
            partition_enter_ticks=3,
            partition_exit_ticks=2,
            clock=lambda: time.monotonic() + offset[0],
        )
        shard.start()
        try:
            supervisor._tick()
            assert supervisor.stalled_shards == []
            assert supervisor.shard_state(0) == "healthy"
            offset[0] = 100.0  # heartbeat now looks 100 s stale
            # Two stale polls are still within hysteresis...
            supervisor._tick()
            supervisor._tick()
            assert supervisor.stalled_shards == []
            assert not supervisor.degraded
            # ...the third declares the partition.
            supervisor._tick()
            assert supervisor.stalled_shards == [0]
            assert supervisor.degraded
            assert supervisor.shard_state(0) == "partitioned"
            offset[0] = 0.0
            # One fresh poll is not yet recovery...
            supervisor._tick()
            assert supervisor.stalled_shards == [0]
            # ...the second is.
            supervisor._tick()
            assert supervisor.stalled_shards == []
            assert not supervisor.degraded
            assert supervisor.shard_state(0) == "healthy"
        finally:
            shard.queue.close()
            shard.join(timeout=30.0)

    def test_single_stale_poll_does_not_flap(self, serving_framework):
        """One delayed heartbeat (a GC pause, a long batch) must not
        enter the partition machinery at all."""
        shard = _single_shard(serving_framework, name="t-flap")
        offset = [0.0]
        supervisor = ShardSupervisor(
            [shard],
            DeadLetterQueue(),
            heartbeat_timeout_s=5.0,
            partition_enter_ticks=3,
            partition_exit_ticks=2,
            clock=lambda: time.monotonic() + offset[0],
        )
        shard.start()
        try:
            for _round in range(4):
                offset[0] = 100.0
                supervisor._tick()  # one stale poll per round
                offset[0] = 0.0
                supervisor._tick()  # fresh again: counter resets
            assert supervisor.stalled_shards == []
            assert supervisor.shard_state(0) == "healthy"
        finally:
            shard.queue.close()
            shard.join(timeout=30.0)

    def test_dead_transport_is_not_a_partition(self, serving_framework):
        """Stale heartbeat + dead connection means a reconnect is in
        flight — the shard must NOT be classified partitioned (that
        would shed its backlog while the resume handshake is about to
        re-deliver it)."""
        shard = _single_shard(serving_framework, name="t-conn")
        shard.connection_alive = False  # duck-typed transport signal
        offset = [0.0]
        supervisor = ShardSupervisor(
            [shard],
            DeadLetterQueue(),
            heartbeat_timeout_s=5.0,
            partition_enter_ticks=1,
            clock=lambda: time.monotonic() + offset[0],
        )
        shard.start()
        try:
            offset[0] = 100.0
            for _ in range(5):
                supervisor._tick()
            assert supervisor.stalled_shards == []
            assert supervisor.shard_state(0) == "healthy"
        finally:
            shard.queue.close()
            shard.join(timeout=30.0)

    def test_hysteresis_ticks_validated(self, serving_framework):
        with pytest.raises(ValueError, match="hysteresis"):
            ShardSupervisor(
                [], DeadLetterQueue(), partition_enter_ticks=0
            )
        with pytest.raises(ValueError, match="hysteresis"):
            ShardSupervisor(
                [], DeadLetterQueue(), partition_exit_ticks=0
            )


class TestTypedStates:
    def test_circuit_open_classifies_dead(self, serving_framework, serving_trace):
        faults = FaultInjector(
            FaultPlan(kill_shard=0, kill_at_entry=1, kill_times=100)
        )
        dlq = DeadLetterQueue()
        shard = _single_shard(serving_framework, faults, name="t-dead")
        supervisor = ShardSupervisor(
            [shard], dlq, max_restarts=1, backoff_base_s=0.005
        )
        shard.start()
        supervisor.start()
        for entry in serving_trace:
            shard.queue.put(entry)
        assert _wait_for(lambda: supervisor.circuit_open(0))
        supervisor.stop()
        assert supervisor.shard_state(0) == "dead"
        assert supervisor.shard_states == {0: "dead"}
