"""Shard partitioning stability and single-worker equivalence."""

from __future__ import annotations

import time

import pytest

from repro.realtime.monitor import RealTimeMonitor
from repro.realtime.tracker import OnlineSessionTracker
from repro.serving.batcher import MicroBatcher
from repro.serving.models import ModelManager
from repro.serving.queue import BoundedQueue
from repro.serving.shard import ShardWorker, shard_index

from tests.serving.conftest import diagnosis_multiset


class TestShardIndex:
    def test_deterministic(self):
        assert shard_index("sub-0001", 4) == shard_index("sub-0001", 4)

    def test_in_range(self):
        for n_shards in (1, 2, 4, 7):
            for i in range(100):
                assert 0 <= shard_index(f"sub-{i:04d}", n_shards) < n_shards

    def test_known_values_are_stable(self):
        """CRC32 partition must never change between runs or versions —
        a silent change would re-home subscribers across restarts."""
        assert shard_index("sub-0000", 4) == 0
        assert shard_index("alice", 4) == 3
        assert shard_index("bob", 4) == 0

    def test_roughly_balanced(self):
        counts = [0, 0, 0, 0]
        for i in range(400):
            counts[shard_index(f"sub-{i:04d}", 4)] += 1
        # no shard should be empty or hog everything
        assert min(counts) > 40
        assert max(counts) < 200

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            shard_index("x", 0)


class TestShardWorker:
    def _make_worker(self, framework, **kwargs):
        return ShardWorker(
            index=0,
            models=ModelManager(framework),
            queue=BoundedQueue(256, name="t-worker"),
            batcher=MicroBatcher(max_batch=8, max_delay_s=0.05),
            **kwargs,
        )

    def test_single_worker_matches_serial_monitor(
        self, serving_framework, serving_trace
    ):
        """One worker fed the whole trace == one serial monitor."""
        serial = RealTimeMonitor(
            serving_framework, tracker=OnlineSessionTracker()
        )
        serial.feed_many(serving_trace)
        serial.drain()

        worker = self._make_worker(serving_framework)
        worker.start()
        for entry in serving_trace:
            worker.queue.put(entry)
        worker.queue.close()
        worker.join(timeout=30.0)
        assert not worker.alive
        assert worker.error is None

        assert diagnosis_multiset(worker.diagnoses) == diagnosis_multiset(
            serial.diagnoses
        )
        assert worker.entries_processed == len(serving_trace)

    def test_worker_flushes_open_sessions_on_close(
        self, serving_framework, serving_trace
    ):
        """Closing the queue mid-trace still diagnoses what was queued,
        including sessions the tracker had not yet idled out."""
        worker = self._make_worker(serving_framework)
        worker.start()
        subset = serving_trace[: len(serving_trace) // 2]
        for entry in subset:
            worker.queue.put(entry)
        worker.queue.close()
        worker.join(timeout=30.0)
        assert worker.error is None
        assert worker.entries_processed == len(subset)
        # every record the tracker saw was diagnosed: nothing pending
        assert worker.batcher.pending == 0
        assert worker.monitor.tracker.open_sessions == 0
        assert len(worker.diagnoses) > 0

    def test_deadline_releases_batch_without_more_traffic(
        self, serving_framework, serving_trace
    ):
        """A partial batch must be diagnosed after max_delay_s even when
        the queue goes quiet — no drain, no size trigger."""
        worker = ShardWorker(
            index=0,
            models=ModelManager(serving_framework),
            # max_batch far above the trace's session count: only the
            # deadline can ever release a batch here.
            queue=BoundedQueue(8192, name="t-deadline"),
            batcher=MicroBatcher(max_batch=1000, max_delay_s=0.05),
        )
        worker.start()
        for entry in serving_trace:
            worker.queue.put(entry)
        deadline = time.perf_counter() + 10.0
        while not worker.diagnoses and time.perf_counter() < deadline:
            time.sleep(0.02)
        assert worker.diagnoses, "deadline trigger never diagnosed the batch"
        worker.queue.close()
        worker.join(timeout=30.0)
        assert worker.error is None
