"""Property tests for BoundedQueue close/drain semantics.

The process-shard router leans on one contract hard: the parent-side
queue is closed at drain time while ``block``-policy producers may
still be waiting for space, and the pipe pump keeps consuming until
``get`` raises ``QueueClosed``.  For that hand-off to be lossless the
queue must guarantee, under arbitrary producer/consumer interleavings:

* a ``put`` that returns normally means the entry IS delivered to a
  consumer (no loss);
* a ``put`` that raises ``QueueClosed`` means the entry is NOT
  delivered (no duplication, and the producer knows to re-route);
* ``close`` wakes every blocked producer promptly (no deadlock);
* consumers see every admitted entry exactly once, then
  ``QueueClosed`` once the backlog is drained.

Hypothesis drives the shape (capacity, producer count, stream
lengths, when the closer fires); threads provide the interleaving.
"""

from __future__ import annotations

import threading
from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.serving.queue import BoundedQueue, QueueClosed, QueueEmpty


@st.composite
def _scenarios(draw):
    capacity = draw(st.integers(min_value=1, max_value=4))
    n_producers = draw(st.integers(min_value=1, max_value=4))
    per_producer = draw(st.integers(min_value=1, max_value=25))
    # Close after this many consumed items (possibly mid-stream, with
    # producers still blocked on a full queue).
    close_after = draw(
        st.integers(min_value=0, max_value=n_producers * per_producer)
    )
    return capacity, n_producers, per_producer, close_after


@settings(max_examples=25, deadline=None)
@given(_scenarios())
def test_no_loss_no_duplication_across_close(scenario):
    capacity, n_producers, per_producer, close_after = scenario
    queue = BoundedQueue(capacity=capacity, policy="block", name="prop")

    accepted = [set() for _ in range(n_producers)]
    rejected = [set() for _ in range(n_producers)]

    def produce(pid: int) -> None:
        for i in range(per_producer):
            item = (pid, i)
            try:
                queue.put(item)
            except QueueClosed:
                # Not admitted — and everything later in this stream is
                # refused too; record and stop like the router's submit
                # path does.
                rejected[pid].update((pid, j) for j in range(i, per_producer))
                return
            accepted[pid].add(item)

    consumed = []
    closed_seen = threading.Event()

    def consume() -> None:
        while True:
            try:
                consumed.append(queue.get(timeout=0.05))
            except QueueEmpty:
                continue
            except QueueClosed:
                closed_seen.set()
                return
            if len(consumed) == close_after and not queue.closed:
                queue.close()

    producers = [
        threading.Thread(target=produce, args=(pid,))
        for pid in range(n_producers)
    ]
    consumer = threading.Thread(target=consume)
    for thread in producers:
        thread.start()
    consumer.start()
    for thread in producers:
        thread.join(timeout=10.0)
    # All producers have returned (admitted or refused) — nothing can
    # block forever across a close.
    assert not any(t.is_alive() for t in producers), "producer deadlocked"
    if not queue.closed:
        queue.close()
    consumer.join(timeout=10.0)
    assert closed_seen.is_set(), "consumer never saw QueueClosed"

    all_accepted = set().union(*accepted)
    all_rejected = set().union(*rejected)
    counts = Counter(consumed)
    # Exactly-once delivery of everything admitted...
    assert set(counts) == all_accepted
    assert all(c == 1 for c in counts.values()), "duplicated entries"
    # ...and nothing that was refused ever surfaces.
    assert not all_rejected & set(counts)
    assert all_accepted | all_rejected == {
        (pid, i) for pid in range(n_producers) for i in range(per_producer)
    }


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=1, max_value=3))
def test_close_releases_blocked_producers(capacity):
    """close() while puts are waiting: every waiter raises QueueClosed."""
    queue = BoundedQueue(capacity=capacity, policy="block", name="prop2")
    for i in range(capacity):
        queue.put(("fill", i))

    outcomes = []
    barrier = threading.Barrier(3)

    def blocked_put(tag: str) -> None:
        barrier.wait()
        try:
            queue.put(("late", tag))
            outcomes.append(("admitted", tag))
        except QueueClosed:
            outcomes.append(("closed", tag))

    threads = [
        threading.Thread(target=blocked_put, args=(str(i),)) for i in range(2)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()          # both producers past the gate, heading into put
    queue.close()
    for thread in threads:
        thread.join(timeout=5.0)
    assert not any(t.is_alive() for t in threads), "blocked put never woke"
    assert [kind for kind, _ in outcomes] == ["closed", "closed"]
    # The pre-close backlog is still fully drainable.
    drained = [queue.get(timeout=0.1) for _ in range(capacity)]
    assert drained == [("fill", i) for i in range(capacity)]
    try:
        queue.get(timeout=0.05)
        raise AssertionError("expected QueueClosed after drain")
    except QueueClosed:
        pass
