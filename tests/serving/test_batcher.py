"""Micro-batcher: size and deadline bounds, order preservation."""

from __future__ import annotations

import pytest

from repro.obs import get_registry
from repro.serving.batcher import MicroBatcher


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


class TestValidation:
    def test_max_batch_validated(self):
        with pytest.raises(ValueError):
            MicroBatcher(max_batch=0)

    def test_max_delay_validated(self):
        with pytest.raises(ValueError):
            MicroBatcher(max_delay_s=-1.0)


class TestSizeTrigger:
    def test_full_batches_released_in_order(self):
        batcher = MicroBatcher(max_batch=3, max_delay_s=100.0)
        ready = batcher.add(list(range(8)))
        assert ready == [[0, 1, 2], [3, 4, 5]]
        assert batcher.pending == 2
        assert batcher.flush() == [6, 7]
        assert batcher.pending == 0

    def test_max_batch_one_degenerates_to_per_record(self):
        batcher = MicroBatcher(max_batch=1, max_delay_s=100.0)
        assert batcher.add(["a", "b"]) == [["a"], ["b"]]
        assert batcher.pending == 0


class TestDeadlineTrigger:
    def test_partial_batch_released_after_delay(self):
        clock = FakeClock()
        batcher = MicroBatcher(max_batch=100, max_delay_s=0.5, clock=clock)
        batcher.add(["a", "b"])
        assert batcher.take_due() is None           # fresh
        assert batcher.seconds_until_due() == pytest.approx(0.5)
        clock.now = 0.4
        assert batcher.take_due() is None           # not yet
        clock.now = 0.6
        assert batcher.take_due() == ["a", "b"]     # overdue
        assert batcher.take_due() is None           # nothing pending now
        assert batcher.seconds_until_due() is None

    def test_deadline_anchored_to_oldest_record(self):
        clock = FakeClock()
        batcher = MicroBatcher(max_batch=100, max_delay_s=1.0, clock=clock)
        batcher.add(["old"])
        clock.now = 0.9
        batcher.add(["young"])                      # must not reset the clock
        clock.now = 1.1
        assert batcher.take_due() == ["old", "young"]

    def test_empty_batcher_has_no_deadline(self):
        batcher = MicroBatcher()
        assert batcher.seconds_until_due() is None
        assert batcher.take_due() is None
        assert batcher.flush() == []


class TestObservability:
    def test_batches_counted_by_reason(self):
        batches = get_registry().counter(
            "repro_serving_batches_total", labelnames=("reason",)
        )
        before_size = batches.labels(reason="size").value
        before_drain = batches.labels(reason="drain").value
        batcher = MicroBatcher(max_batch=2, max_delay_s=100.0)
        batcher.add([1, 2, 3])
        batcher.flush()
        assert batches.labels(reason="size").value == before_size + 1
        assert batches.labels(reason="drain").value == before_drain + 1

    def test_batch_size_histogram_observes(self):
        histogram = get_registry().histogram("repro_serving_batch_size")
        before = histogram.count
        MicroBatcher(max_batch=4, max_delay_s=100.0).add([1, 2, 3, 4])
        assert histogram.count == before + 1
