"""Early prediction through the serving layer: determinism and invariance.

Two guarantees under test, extending the serving determinism contract:

* the *provisional* diagnosis multiset of an N-shard service (thread or
  process backend) at a given ``early_after_chunks`` is bit-identical
  to the serial monitor's with the same :class:`EarlyPredictor`
  settings — per-field, confidences included;
* turning early prediction ON changes nothing about the *final*
  diagnoses, alarms or health (the streaming state rides along; the
  close path still extracts features from the closed record).
"""

from __future__ import annotations

import pytest

from repro.online import EarlyPredictor
from repro.realtime.monitor import RealTimeMonitor
from repro.realtime.tracker import OnlineSessionTracker
from repro.serving.service import QoEService

from tests.serving.conftest import alarm_multiset, diagnosis_multiset

AFTER_CHUNKS = 4


def provisional_multiset(provisional):
    """Order-insensitive canonical form, confidences included."""
    return sorted(
        (
            p.session_id,
            p.n_chunks,
            p.stall_class,
            p.stall_confidence,
            p.representation_class,
            p.representation_confidence,
        )
        for p in provisional
    )


@pytest.fixture(scope="module")
def serial_early(serving_framework, serving_trace):
    monitor = RealTimeMonitor(
        serving_framework,
        tracker=OnlineSessionTracker(),
        early=EarlyPredictor(serving_framework, after_chunks=AFTER_CHUNKS),
    )
    monitor.feed_many(serving_trace)
    monitor.drain()
    return monitor


def _early_service(framework, trace, n_shards, **kwargs):
    service = QoEService(
        framework,
        n_shards=n_shards,
        early_after_chunks=AFTER_CHUNKS,
        **kwargs,
    )
    with service:
        service.submit_many(trace)
    return service


class TestProvisionalDeterminism:
    def test_serial_emits_provisionals(self, serial_early):
        assert len(serial_early.provisional) > 0
        report = serial_early.early.report()
        assert report.sessions > 0
        assert report.predictions >= len(serial_early.provisional)

    @pytest.mark.parametrize("n_shards", [1, 4])
    def test_thread_shards_match_serial(
        self, serving_framework, serving_trace, serial_early, n_shards
    ):
        service = _early_service(serving_framework, serving_trace, n_shards)
        assert provisional_multiset(service.provisional) == (
            provisional_multiset(serial_early.provisional)
        )
        report = service.early_report()
        serial_report = serial_early.early.report()
        assert report.sessions == serial_report.sessions
        assert report.predictions == serial_report.predictions
        assert sorted(report.chunks_to_stable) == sorted(
            serial_report.chunks_to_stable
        )

    def test_process_shards_match_serial(
        self, serving_framework, serving_trace, serial_early
    ):
        service = _early_service(
            serving_framework, serving_trace, 2, shard_backend="process"
        )
        assert provisional_multiset(service.provisional) == (
            provisional_multiset(serial_early.provisional)
        )
        report = service.early_report()
        assert report.sessions == serial_early.early.report().sessions


class TestFinalInvariance:
    def test_early_does_not_change_finals_serial(
        self, serving_framework, serving_trace, serial_early
    ):
        plain = RealTimeMonitor(
            serving_framework, tracker=OnlineSessionTracker()
        )
        plain.feed_many(serving_trace)
        plain.drain()
        assert diagnosis_multiset(serial_early.diagnoses) == (
            diagnosis_multiset(plain.diagnoses)
        )
        assert alarm_multiset(serial_early.alarms) == alarm_multiset(
            plain.alarms
        )

    def test_early_does_not_change_finals_sharded(
        self, serving_framework, serving_trace, serial_early
    ):
        service = _early_service(serving_framework, serving_trace, 4)
        assert diagnosis_multiset(service.diagnoses) == diagnosis_multiset(
            serial_early.diagnoses
        )


class TestServiceSurface:
    def test_confidence_threshold_filters_emission(
        self, serving_framework, serving_trace, serial_early
    ):
        threshold = 0.9
        service = _early_service(
            serving_framework, serving_trace, 2, early_confidence=threshold
        )
        # Emitted set is exactly the serial run's above-threshold subset.
        assert provisional_multiset(service.provisional) == (
            provisional_multiset(
                p
                for p in serial_early.provisional
                if p.confidence >= threshold
            )
        )
        assert len(service.provisional) < len(serial_early.provisional)
        # Convergence accounting still sees the suppressed predictions.
        assert (
            service.early_report().predictions
            == serial_early.early.report().predictions
        )

    def test_provisional_callback_fires(self, serving_framework, serving_trace):
        seen = []
        service = QoEService(
            serving_framework,
            n_shards=2,
            early_after_chunks=AFTER_CHUNKS,
            on_provisional=seen.append,
        )
        with service:
            service.submit_many(serving_trace)
        assert provisional_multiset(seen) == provisional_multiset(
            service.provisional
        )

    def test_health_counts_provisionals(self, serving_framework, serving_trace):
        service = _early_service(serving_framework, serving_trace, 2)
        snapshot = service.health()
        assert sum(s["provisional"] for s in snapshot["shards"]) == len(
            service.provisional
        )

    def test_no_early_by_default(self, serving_framework, serving_trace):
        service = QoEService(serving_framework, n_shards=2)
        with service:
            service.submit_many(serving_trace)
        assert service.provisional == []
        assert service.early_report() is None
