"""Socket-transport chaos: partitions, slow links, total network loss.

The partition is the failure mode the socket backend exists for — a
shard that stops answering while its TCP connection stays open, which
no amount of process supervision can see.  The contracts under test:

* the supervisor classifies the shard *partitioned* (typed state, with
  hysteresis), never restarts it, and quarantines its parent-side
  backlog to the DLQ with reason ``partitioned``;
* when the partition heals the shard returns to *healthy* and its
  circuit never opened;
* subscribers the fault never touched still diagnose bit-identically
  to the serial monitor;
* a uniformly slow link delays wall-clock but changes no result;
* when *every* remote shard is unreachable the service degrades to the
  in-process serial monitor instead of refusing the tap.
"""

from __future__ import annotations

import time

import pytest

from repro.faults import FaultInjector, FaultPlan
from repro.realtime.monitor import RealTimeMonitor
from repro.realtime.tracker import OnlineSessionTracker
from repro.serving import QoEService
from repro.serving.replay import synthetic_trace

from tests.serving.conftest import diagnosis_multiset


def _subscriber(session_id):
    return session_id.rsplit("/online-", 1)[0]


def _filtered(diagnoses, excluded):
    return diagnosis_multiset(
        d for d in diagnoses if _subscriber(d.session_id) not in excluded
    )


@pytest.fixture(scope="module")
def chaos_trace():
    return synthetic_trace(40, seed=17, subscribers=20)


@pytest.fixture(scope="module")
def chaos_serial(serving_framework, chaos_trace):
    monitor = RealTimeMonitor(serving_framework, tracker=OnlineSessionTracker())
    monitor.feed_many(chaos_trace)
    monitor.drain()
    return monitor


class TestPartition:
    def test_partition_quarantines_without_restart_then_heals(
        self, serving_framework, chaos_trace, chaos_serial
    ):
        plan = FaultPlan.parse("partition_shard=1@5:1.2,seed=3")
        faults = FaultInjector(plan)
        service = QoEService(
            serving_framework,
            n_shards=2,
            shard_backend="socket",
            placement="inproc:2",
            faults=faults,
            heartbeat_timeout_s=0.25,
            supervisor_poll_s=0.05,
            partition_enter_ticks=2,
            partition_exit_ticks=1,
            socket_opts=dict(max_unacked=8),
        )
        observed = []
        with service:
            service.submit_many(chaos_trace)
            # Watch the typed state walk healthy -> partitioned ->
            # healthy before draining; the partition lasts 1.2s.
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline:
                state = service.supervisor.shard_state(1)
                if not observed or observed[-1] != state:
                    observed.append(state)
                if observed[-1] == "healthy" and "partitioned" in observed:
                    break
                time.sleep(0.02)

        assert "partitioned" in observed, f"state walk was {observed}"
        assert observed[-1] == "healthy", f"state walk was {observed}"

        health = service.health()
        # Partition tolerance is precisely NOT restarting: the shard's
        # worker (and its tracker state) survived untouched.
        assert health["restarts"] == 0
        assert service.supervisor.open_circuits == []
        assert health["shards"][1]["health_state"] == "healthy"

        # The stale shard's parent-side backlog went to the DLQ under
        # its own reason, visible in the per-reason rollup.
        by_reason = health["dead_letter"]["by_reason"]
        assert by_reason.get("partitioned", 0) > 0
        assert service.supervisor.quarantined_by_partition > 0

        # Everyone the fault never touched is still bit-identical.
        affected = faults.affected_subscribers
        assert affected
        assert len(affected) < 20
        untouched = _filtered(chaos_serial.diagnoses, affected)
        assert untouched
        assert _filtered(service.diagnoses, affected) == untouched

        summary = faults.summary()
        assert summary["by_kind"].get("partition") == 1

    def test_partition_writes_postmortem(
        self, serving_framework, chaos_trace, tmp_path
    ):
        plan = FaultPlan.parse("partition_shard=0@5:0.8,seed=11")
        faults = FaultInjector(plan)
        service = QoEService(
            serving_framework,
            n_shards=2,
            shard_backend="socket",
            placement="inproc:2",
            faults=faults,
            heartbeat_timeout_s=0.25,
            supervisor_poll_s=0.05,
            partition_enter_ticks=2,
            partition_exit_ticks=1,
            postmortem_dir=str(tmp_path),
            socket_opts=dict(max_unacked=8),
        )
        with service:
            service.submit_many(chaos_trace)
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline:
                if service.supervisor.shard_state(0) == "partitioned":
                    break
                time.sleep(0.02)
        assert any(
            "shard_partitioned" in path.name for path in tmp_path.iterdir()
        ), [p.name for p in tmp_path.iterdir()]


class TestSlowLink:
    def test_slow_link_changes_no_result(
        self, serving_framework, chaos_trace, chaos_serial
    ):
        plan = FaultPlan.parse("slow_link=1.0:2,seed=5")
        faults = FaultInjector(plan)
        service = QoEService(
            serving_framework,
            n_shards=2,
            shard_backend="socket",
            placement="inproc:2",
            faults=faults,
        )
        with service:
            service.submit_many(chaos_trace)
        assert diagnosis_multiset(service.diagnoses) == diagnosis_multiset(
            chaos_serial.diagnoses
        )
        summary = faults.summary()
        assert summary["slow_sends"] > 0
        # A slow link is latency, not loss: nobody is fault-affected.
        assert not faults.affected_subscribers

    def test_fractional_slow_link_is_deterministic(self, serving_framework):
        plan = FaultPlan.parse("slow_link=0.5:1,seed=9")
        injector = FaultInjector(plan)
        delays_a = [injector.slow_link_delay_s(seq) for seq in range(64)]
        injector_b = FaultInjector(FaultPlan.parse("slow_link=0.5:1,seed=9"))
        delays_b = [injector_b.slow_link_delay_s(seq) for seq in range(64)]
        assert delays_a == delays_b
        assert any(d > 0 for d in delays_a)
        assert any(d == 0 for d in delays_a)


class TestTotalPartition:
    def test_all_circuits_open_degrades_to_serial_fallback(
        self, serving_framework, chaos_trace, chaos_serial
    ):
        """Every shard address is a black hole: connect attempts burn
        the restart budget, every circuit opens, and the service falls
        back to the in-process serial monitor — same results, one
        core."""
        service = QoEService(
            serving_framework,
            n_shards=2,
            shard_backend="socket",
            # TEST-NET-1 addresses: guaranteed unreachable, and the
            # tiny connect deadline keeps each attempt short.
            placement="0=192.0.2.1:9,1=192.0.2.2:9",
            max_restarts=1,
            restart_backoff_s=0.01,
            supervisor_poll_s=0.02,
            socket_opts=dict(connect_deadline_s=0.2, connect_backoff_s=0.05),
        )
        with service:
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if len(service.supervisor.open_circuits) >= 2:
                    break
                time.sleep(0.05)
            assert len(service.supervisor.open_circuits) == 2
            service.submit_many(chaos_trace)

        health = service.health()
        assert health["serial_fallback"]["engaged"]
        assert health["serial_fallback"]["entries_processed"] == len(
            chaos_trace
        )
        assert all(
            s["health_state"] == "dead" for s in health["shards"]
        )
        assert diagnosis_multiset(service.diagnoses) == diagnosis_multiset(
            chaos_serial.diagnoses
        )
