"""Unit tests for the dead-letter quarantine."""

import pytest

from repro.serving import DeadLetterQueue

from tests.faults.conftest import make_entry


class TestDeadLetterQueue:
    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            DeadLetterQueue(capacity=0)

    def test_put_records_reason_shard_and_detail(self):
        dlq = DeadLetterQueue()
        entry = make_entry(subscriber="sub-bad")
        letter = dlq.put(entry, "malformed", shard=2, detail="nan timestamp")
        assert letter.entry is entry
        assert letter.reason == "malformed"
        assert letter.shard == 2
        assert len(dlq) == 1
        assert dlq.quarantined == 1
        assert dlq.by_reason == {"malformed": 1}
        assert dlq.items() == [letter]

    def test_eviction_drops_oldest_keeps_counting(self):
        dlq = DeadLetterQueue(capacity=3)
        entries = [make_entry(timestamp=100.0 + i) for i in range(5)]
        for entry in entries:
            dlq.put(entry, "malformed", shard=0)
        assert len(dlq) == 3
        assert dlq.quarantined == 5
        assert dlq.evicted == 2
        held = [letter.entry.timestamp_s for letter in dlq.items()]
        assert held == [102.0, 103.0, 104.0]  # newest evidence survives

    def test_by_reason_accumulates_independently(self):
        dlq = DeadLetterQueue()
        dlq.put(make_entry(), "malformed", shard=0)
        dlq.put(make_entry(), "non_monotonic", shard=1)
        dlq.put(make_entry(), "malformed", shard=0)
        assert dlq.by_reason == {"malformed": 2, "non_monotonic": 1}

    def test_stats_rollup(self):
        """stats() answers "why are records dropping" in one call:
        totals plus per-reason counts, no snapshot depth noise."""
        dlq = DeadLetterQueue(capacity=2)
        dlq.put(make_entry(), "partitioned", shard=1)
        dlq.put(make_entry(), "partitioned", shard=1)
        dlq.put(make_entry(), "malformed", shard=0)
        assert dlq.stats() == {
            "quarantined": 3,
            "evicted": 1,
            "by_reason": {"partitioned": 2, "malformed": 1},
        }

    def test_stats_is_a_copy(self):
        dlq = DeadLetterQueue()
        dlq.put(make_entry(), "partitioned", shard=0)
        stats = dlq.stats()
        stats["by_reason"]["partitioned"] = 99
        assert dlq.stats()["by_reason"] == {"partitioned": 1}

    def test_snapshot_shape(self):
        dlq = DeadLetterQueue(capacity=8)
        dlq.put(make_entry(), "circuit_open", shard=3)
        snapshot = dlq.snapshot()
        assert snapshot == {
            "depth": 1,
            "capacity": 8,
            "quarantined": 1,
            "evicted": 0,
            "by_reason": {"circuit_open": 1},
        }
