"""Socket-backed shard tests: determinism, reconnect, placement modes.

The socket backend must be observationally identical to the thread and
process backends — and therefore to the serial monitor — with faults
off, on every placement shape (in-process loopback threads, spawned
loopback processes, standalone workers connected by address).  On top
of that it must survive what pipes never face: a dropped connection
mid-stream.  The reconnect handshake's session-sequence watermark has
to make that loss-free — no duplicated entries, no lost entries, no
worker restart — so the diagnosis multiset stays bit-identical even
when the transport flapped.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.faults import FaultInjector, FaultPlan
from repro.obs import get_registry
from repro.realtime.monitor import RealTimeMonitor
from repro.realtime.tracker import OnlineSessionTracker
from repro.serving import QoEService, run_worker
from repro.serving.replay import synthetic_trace
from repro.serving.shard import shard_index

from tests.serving.conftest import alarm_multiset, diagnosis_multiset


def _subscriber(session_id):
    return session_id.rsplit("/online-", 1)[0]


def _filtered(diagnoses, excluded):
    return diagnosis_multiset(
        d for d in diagnoses if _subscriber(d.session_id) not in excluded
    )


def _provisional_multiset(provisional):
    return sorted(
        (
            p.session_id,
            p.n_chunks,
            p.stall_class,
            p.stall_confidence,
            p.representation_class,
            p.representation_confidence,
        )
        for p in provisional
    )


def _counter_total(name):
    total = 0.0
    for family in get_registry().collect():
        if family.name == name:
            for _labels, child in family.samples():
                total += child.value
    return total


@pytest.fixture(scope="module")
def serial(serving_framework, serving_trace):
    monitor = RealTimeMonitor(serving_framework, tracker=OnlineSessionTracker())
    monitor.feed_many(serving_trace)
    monitor.drain()
    return monitor


class TestSocketDeterminism:
    def test_four_inproc_shards_match_serial(
        self, serving_framework, serving_trace, serial
    ):
        entries_before = _counter_total("repro_serving_entries_total")
        service = QoEService(
            serving_framework,
            n_shards=4,
            shard_backend="socket",
            placement="inproc:4",
        )
        with service:
            service.submit_many(serving_trace)

        assert diagnosis_multiset(service.diagnoses) == diagnosis_multiset(
            serial.diagnoses
        )
        assert alarm_multiset(service.alarms) == alarm_multiset(serial.alarms)

        health = service.health()
        assert health["backend"] == "socket"
        assert health["state"] == "stopped"
        assert health["restarts"] == 0
        assert health["router"]["placement"] == "inproc:4"
        assert all(
            s["health_state"] == "healthy" for s in health["shards"]
        )
        # In-process workers share the parent registry directly, so the
        # per-entry counters must land exactly once — not twice via a
        # redundant registry-delta fold.
        assert _counter_total(
            "repro_serving_entries_total"
        ) - entries_before == len(serving_trace)

    def test_single_socket_shard_matches_serial(
        self, serving_framework, serving_trace, serial
    ):
        """n_shards=1 removes partitioning: a mismatch here is wire
        protocol loss, not routing."""
        service = QoEService(
            serving_framework,
            n_shards=1,
            shard_backend="socket",
            placement="inproc:1",
        )
        with service:
            service.submit_many(serving_trace)
        assert diagnosis_multiset(service.diagnoses) == diagnosis_multiset(
            serial.diagnoses
        )

    def test_early_provisional_match_serial_over_socket(
        self, serving_framework, serving_trace
    ):
        from repro.online import EarlyPredictor

        reference = RealTimeMonitor(
            serving_framework,
            tracker=OnlineSessionTracker(),
            early=EarlyPredictor(serving_framework, after_chunks=4),
        )
        reference.feed_many(serving_trace)
        reference.drain()

        service = QoEService(
            serving_framework,
            n_shards=2,
            shard_backend="socket",
            placement="inproc:2",
            early_after_chunks=4,
        )
        with service:
            service.submit_many(serving_trace)
        assert _provisional_multiset(service.provisional) == (
            _provisional_multiset(reference.provisional)
        )


class TestSpawnedPlacement:
    def test_local_processes_match_serial_and_fold_registries(
        self, serving_framework, serving_trace, serial
    ):
        service = QoEService(
            serving_framework,
            n_shards=2,
            shard_backend="socket",
            placement="local:2",
        )
        with service:
            service.submit_many(serving_trace)
        assert diagnosis_multiset(service.diagnoses) == diagnosis_multiset(
            serial.diagnoses
        )
        health = service.health()
        assert health["router"]["placement"] == "local:2"
        folds = health["router"]["registry_folds"]
        assert folds["errors"] == 0
        assert folds["folds"] >= 2  # at least the final per-shard delta

    def test_killed_spawned_worker_restarts_and_untouched_identical(
        self, serving_framework
    ):
        trace = synthetic_trace(40, seed=17, subscribers=20)
        victim = shard_index(trace[0].subscriber_id, 2)
        plan = FaultPlan(
            seed=23, kill_shard=victim, kill_at_entry=25, kill_times=1
        )
        faults = FaultInjector(plan)
        service = QoEService(
            serving_framework,
            n_shards=2,
            shard_backend="socket",
            placement="local:2",
            faults=faults,
        )
        with service:
            service.submit_many(trace)
        health = service.health()

        assert faults.kills_fired == 1
        assert health["restarts"] >= 1
        assert health["shards"][victim]["restarts"] >= 1
        assert not service.degraded
        assert service.supervisor.open_circuits == []

        affected = faults.affected_subscribers
        assert affected
        assert len(affected) < 20

        reference = RealTimeMonitor(
            serving_framework, tracker=OnlineSessionTracker()
        )
        reference.feed_many(trace)
        reference.drain()
        untouched_serial = _filtered(reference.diagnoses, affected)
        assert untouched_serial
        assert _filtered(service.diagnoses, affected) == untouched_serial


class TestReconnectResume:
    def test_dropped_connection_resumes_at_watermark(
        self, serving_framework, serving_trace, serial
    ):
        """Sever shard 0's socket mid-stream: the parent reconnects,
        the resume handshake replays only the unacknowledged suffix,
        and the final multiset is bit-identical — zero restarts, so the
        worker-side tracker state provably survived the flap."""
        service = QoEService(
            serving_framework,
            n_shards=2,
            shard_backend="socket",
            placement="inproc:2",
        )
        with service:
            for i, entry in enumerate(serving_trace):
                service.submit(entry)
                if i == len(serving_trace) // 2:
                    service.router.shards[0].drop_connection_for_test()

        shard0 = service.router.shards[0]
        assert shard0.reconnects >= 1
        assert shard0.restarts == 0
        assert diagnosis_multiset(service.diagnoses) == diagnosis_multiset(
            serial.diagnoses
        )
        assert alarm_multiset(service.alarms) == alarm_multiset(serial.alarms)

    def test_repeated_drops_still_lossless(
        self, serving_framework, serving_trace, serial
    ):
        service = QoEService(
            serving_framework,
            n_shards=2,
            shard_backend="socket",
            placement="inproc:2",
        )
        drop_points = {len(serving_trace) // 4, len(serving_trace) // 2,
                       3 * len(serving_trace) // 4}
        with service:
            for i, entry in enumerate(serving_trace):
                service.submit(entry)
                if i in drop_points:
                    for shard in service.router.shards:
                        shard.drop_connection_for_test()
        # Drops landing before the previous reconnect completes
        # coalesce into one recovery, so the floor is conservative.
        assert sum(s.reconnects for s in service.router.shards) >= 2
        assert all(s.restarts == 0 for s in service.router.shards)
        assert diagnosis_multiset(service.diagnoses) == diagnosis_multiset(
            serial.diagnoses
        )


class TestStandaloneWorker:
    def test_remote_placement_against_standalone_worker(
        self, serving_framework, serving_trace, serial
    ):
        """A worker started the way the CLI starts one — no config, no
        model; everything arrives in the hello — serves a remote
        placement bit-identically."""
        ports = []
        ready = threading.Event()

        def on_port(port):
            ports.append(port)
            ready.set()

        worker = threading.Thread(
            target=run_worker,
            kwargs={
                "host": "127.0.0.1",
                "port": 0,
                "config": None,
                "on_port": on_port,
            },
            daemon=True,
        )
        worker.start()
        assert ready.wait(timeout=10.0), "standalone worker never bound"

        service = QoEService(
            serving_framework,
            n_shards=1,
            shard_backend="socket",
            placement=f"0=127.0.0.1:{ports[0]}",
        )
        with service:
            service.submit_many(serving_trace)
        assert diagnosis_multiset(service.diagnoses) == diagnosis_multiset(
            serial.diagnoses
        )
        assert service.health()["router"]["placement"] == (
            f"0=127.0.0.1:{ports[0]}"
        )
        worker.join(timeout=10.0)
        assert not worker.is_alive(), "worker should exit after drain"


class TestPlacementValidation:
    def test_placement_requires_socket_backend(self, serving_framework):
        with pytest.raises(ValueError, match="socket"):
            QoEService(
                serving_framework, n_shards=2, shard_backend="thread",
                placement="inproc:2",
            )

    def test_placement_count_must_match_shards(self, serving_framework):
        with pytest.raises(ValueError, match="names 4 shards"):
            QoEService(
                serving_framework, n_shards=2, shard_backend="socket",
                placement="inproc:4",
            )

    def test_socket_backend_defaults_to_local_placement(
        self, serving_framework
    ):
        service = QoEService(
            serving_framework, n_shards=2, shard_backend="socket"
        )
        assert service.router.placement.describe() == "local:2"
