"""Socket-backed shard tests: determinism, reconnect, placement modes.

The socket backend must be observationally identical to the thread and
process backends — and therefore to the serial monitor — with faults
off, on every placement shape (in-process loopback threads, spawned
loopback processes, standalone workers connected by address).  On top
of that it must survive what pipes never face: a dropped connection
mid-stream.  The reconnect handshake's session-sequence watermark has
to make that loss-free — no duplicated entries, no lost entries, no
worker restart — so the diagnosis multiset stays bit-identical even
when the transport flapped.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.faults import FaultInjector, FaultPlan
from repro.obs import get_registry
from repro.realtime.monitor import RealTimeMonitor
from repro.realtime.tracker import OnlineSessionTracker
from repro.serving import QoEService, run_worker
from repro.serving.replay import synthetic_trace
from repro.serving.shard import shard_index

from tests.serving.conftest import alarm_multiset, diagnosis_multiset


def _subscriber(session_id):
    return session_id.rsplit("/online-", 1)[0]


def _filtered(diagnoses, excluded):
    return diagnosis_multiset(
        d for d in diagnoses if _subscriber(d.session_id) not in excluded
    )


def _provisional_multiset(provisional):
    return sorted(
        (
            p.session_id,
            p.n_chunks,
            p.stall_class,
            p.stall_confidence,
            p.representation_class,
            p.representation_confidence,
        )
        for p in provisional
    )


def _counter_total(name):
    total = 0.0
    for family in get_registry().collect():
        if family.name == name:
            for _labels, child in family.samples():
                total += child.value
    return total


@pytest.fixture(scope="module")
def serial(serving_framework, serving_trace):
    monitor = RealTimeMonitor(serving_framework, tracker=OnlineSessionTracker())
    monitor.feed_many(serving_trace)
    monitor.drain()
    return monitor


class TestSocketDeterminism:
    def test_four_inproc_shards_match_serial(
        self, serving_framework, serving_trace, serial
    ):
        entries_before = _counter_total("repro_serving_entries_total")
        service = QoEService(
            serving_framework,
            n_shards=4,
            shard_backend="socket",
            placement="inproc:4",
        )
        with service:
            service.submit_many(serving_trace)

        assert diagnosis_multiset(service.diagnoses) == diagnosis_multiset(
            serial.diagnoses
        )
        assert alarm_multiset(service.alarms) == alarm_multiset(serial.alarms)

        health = service.health()
        assert health["backend"] == "socket"
        assert health["state"] == "stopped"
        assert health["restarts"] == 0
        assert health["router"]["placement"] == "inproc:4"
        assert all(
            s["health_state"] == "healthy" for s in health["shards"]
        )
        # In-process workers share the parent registry directly, so the
        # per-entry counters must land exactly once — not twice via a
        # redundant registry-delta fold.
        assert _counter_total(
            "repro_serving_entries_total"
        ) - entries_before == len(serving_trace)

    def test_single_socket_shard_matches_serial(
        self, serving_framework, serving_trace, serial
    ):
        """n_shards=1 removes partitioning: a mismatch here is wire
        protocol loss, not routing."""
        service = QoEService(
            serving_framework,
            n_shards=1,
            shard_backend="socket",
            placement="inproc:1",
        )
        with service:
            service.submit_many(serving_trace)
        assert diagnosis_multiset(service.diagnoses) == diagnosis_multiset(
            serial.diagnoses
        )

    def test_early_provisional_match_serial_over_socket(
        self, serving_framework, serving_trace
    ):
        from repro.online import EarlyPredictor

        reference = RealTimeMonitor(
            serving_framework,
            tracker=OnlineSessionTracker(),
            early=EarlyPredictor(serving_framework, after_chunks=4),
        )
        reference.feed_many(serving_trace)
        reference.drain()

        service = QoEService(
            serving_framework,
            n_shards=2,
            shard_backend="socket",
            placement="inproc:2",
            early_after_chunks=4,
        )
        with service:
            service.submit_many(serving_trace)
        assert _provisional_multiset(service.provisional) == (
            _provisional_multiset(reference.provisional)
        )


class TestSpawnedPlacement:
    def test_local_processes_match_serial_and_fold_registries(
        self, serving_framework, serving_trace, serial
    ):
        service = QoEService(
            serving_framework,
            n_shards=2,
            shard_backend="socket",
            placement="local:2",
        )
        with service:
            service.submit_many(serving_trace)
        assert diagnosis_multiset(service.diagnoses) == diagnosis_multiset(
            serial.diagnoses
        )
        health = service.health()
        assert health["router"]["placement"] == "local:2"
        folds = health["router"]["registry_folds"]
        assert folds["errors"] == 0
        assert folds["folds"] >= 2  # at least the final per-shard delta

    def test_killed_spawned_worker_restarts_and_untouched_identical(
        self, serving_framework
    ):
        trace = synthetic_trace(40, seed=17, subscribers=20)
        victim = shard_index(trace[0].subscriber_id, 2)
        plan = FaultPlan(
            seed=23, kill_shard=victim, kill_at_entry=25, kill_times=1
        )
        faults = FaultInjector(plan)
        service = QoEService(
            serving_framework,
            n_shards=2,
            shard_backend="socket",
            placement="local:2",
            faults=faults,
        )
        with service:
            service.submit_many(trace)
        health = service.health()

        assert faults.kills_fired == 1
        assert health["restarts"] >= 1
        assert health["shards"][victim]["restarts"] >= 1
        assert not service.degraded
        assert service.supervisor.open_circuits == []

        affected = faults.affected_subscribers
        assert affected
        assert len(affected) < 20

        reference = RealTimeMonitor(
            serving_framework, tracker=OnlineSessionTracker()
        )
        reference.feed_many(trace)
        reference.drain()
        untouched_serial = _filtered(reference.diagnoses, affected)
        assert untouched_serial
        assert _filtered(service.diagnoses, affected) == untouched_serial


class TestReconnectResume:
    def test_dropped_connection_resumes_at_watermark(
        self, serving_framework, serving_trace, serial
    ):
        """Sever shard 0's socket mid-stream: the parent reconnects,
        the resume handshake replays only the unacknowledged suffix,
        and the final multiset is bit-identical — zero restarts, so the
        worker-side tracker state provably survived the flap."""
        service = QoEService(
            serving_framework,
            n_shards=2,
            shard_backend="socket",
            placement="inproc:2",
        )
        with service:
            for i, entry in enumerate(serving_trace):
                service.submit(entry)
                if i == len(serving_trace) // 2:
                    service.router.shards[0].drop_connection_for_test()

        shard0 = service.router.shards[0]
        assert shard0.reconnects >= 1
        assert shard0.restarts == 0
        assert diagnosis_multiset(service.diagnoses) == diagnosis_multiset(
            serial.diagnoses
        )
        assert alarm_multiset(service.alarms) == alarm_multiset(serial.alarms)

    def test_repeated_drops_still_lossless(
        self, serving_framework, serving_trace, serial
    ):
        service = QoEService(
            serving_framework,
            n_shards=2,
            shard_backend="socket",
            placement="inproc:2",
        )
        drop_points = {len(serving_trace) // 4, len(serving_trace) // 2,
                       3 * len(serving_trace) // 4}
        with service:
            for i, entry in enumerate(serving_trace):
                service.submit(entry)
                if i in drop_points:
                    for shard in service.router.shards:
                        shard.drop_connection_for_test()
        # Drops landing before the previous reconnect completes
        # coalesce into one recovery, so the floor is conservative.
        assert sum(s.reconnects for s in service.router.shards) >= 2
        assert all(s.restarts == 0 for s in service.router.shards)
        assert diagnosis_multiset(service.diagnoses) == diagnosis_multiset(
            serial.diagnoses
        )


class TestStandaloneWorker:
    def test_remote_placement_against_standalone_worker(
        self, serving_framework, serving_trace, serial
    ):
        """A worker started the way the CLI starts one — no config, no
        model; everything arrives in the hello — serves a remote
        placement bit-identically."""
        ports = []
        ready = threading.Event()

        def on_port(port):
            ports.append(port)
            ready.set()

        worker = threading.Thread(
            target=run_worker,
            kwargs={
                "host": "127.0.0.1",
                "port": 0,
                "config": None,
                "on_port": on_port,
            },
            daemon=True,
        )
        worker.start()
        assert ready.wait(timeout=10.0), "standalone worker never bound"

        service = QoEService(
            serving_framework,
            n_shards=1,
            shard_backend="socket",
            placement=f"0=127.0.0.1:{ports[0]}",
        )
        with service:
            service.submit_many(serving_trace)
        assert diagnosis_multiset(service.diagnoses) == diagnosis_multiset(
            serial.diagnoses
        )
        assert service.health()["router"]["placement"] == (
            f"0=127.0.0.1:{ports[0]}"
        )
        worker.join(timeout=10.0)
        assert not worker.is_alive(), "worker should exit after drain"


class TestAuthentication:
    """The HMAC handshake guards the unpickler on both ends, and the
    hello token pins a worker session to one parent across reconnects."""

    @staticmethod
    def _standalone_worker(auth_key, config=None):
        ports = []
        ready = threading.Event()

        def on_port(port):
            ports.append(port)
            ready.set()

        thread = threading.Thread(
            target=run_worker,
            kwargs={
                "host": "127.0.0.1",
                "port": 0,
                "config": config,
                "on_port": on_port,
                "auth_key": auth_key,
            },
            daemon=True,
        )
        thread.start()
        assert ready.wait(timeout=10.0), "worker never bound"
        return thread, ports[0]

    def test_keyed_standalone_worker_end_to_end(
        self, serving_framework, serving_trace, serial
    ):
        key = b"pr9-review-shared-secret"
        worker, port = self._standalone_worker(key)
        service = QoEService(
            serving_framework,
            n_shards=1,
            shard_backend="socket",
            placement=f"0=127.0.0.1:{port}",
            socket_opts={"auth_key": key},
        )
        with service:
            service.submit_many(serving_trace)
        assert diagnosis_multiset(service.diagnoses) == diagnosis_multiset(
            serial.diagnoses
        )
        worker.join(timeout=10.0)

    def test_wrong_key_is_a_supervised_failure(self, serving_framework):
        from repro.serving.dlq import DeadLetterQueue
        from repro.serving.netshard import (
            NetShardConfig,
            ShardUnreachable,
            SocketOpts,
            SocketShardWorker,
        )
        from repro.serving.queue import BoundedQueue

        worker, port = self._standalone_worker(b"right-key")
        handle = SocketShardWorker(
            config=NetShardConfig(index=0, framework=serving_framework),
            queue=BoundedQueue(capacity=8, policy="block", name="auth-test"),
            dead_letters=DeadLetterQueue(),
            mode="remote",
            address=("127.0.0.1", port),
            opts=SocketOpts(auth_key=b"wrong-key", connect_deadline_s=2.0),
        )
        handle.start()
        assert handle.state == "failed"
        assert isinstance(handle.error, ShardUnreachable)
        assert "authentication" in str(handle.error)

    def test_unauthenticated_peer_rejected_keyed_worker_survives(
        self, serving_framework, serving_trace, serial
    ):
        """A peer that skips (or fails) the challenge is dropped before
        any frame is unpickled, and the worker keeps serving the real
        parent afterwards."""
        import socket as socket_mod

        from repro.serving.framing import encode_frame

        key = b"only-the-parent-knows"
        worker, port = self._standalone_worker(key)

        hostile = socket_mod.create_connection(("127.0.0.1", port), timeout=5.0)
        try:
            # Speak the old unauthenticated protocol straight away: a
            # pickled hello that must never reach the unpickler.
            hostile.sendall(encode_frame(("hello", {"token": "evil"})))
            hostile.settimeout(5.0)
            leftover = b""
            try:
                while True:
                    chunk = hostile.recv(4096)
                    if not chunk:
                        break
                    leftover += chunk
            except OSError:
                pass
            # Whatever arrived is the fixed-size challenge, never a
            # hello_ack frame.
            assert not leftover.startswith(b"RQ\x01")
        finally:
            hostile.close()

        service = QoEService(
            serving_framework,
            n_shards=1,
            shard_backend="socket",
            placement=f"0=127.0.0.1:{port}",
            socket_opts={"auth_key": key},
        )
        with service:
            service.submit_many(serving_trace)
        assert diagnosis_multiset(service.diagnoses) == diagnosis_multiset(
            serial.diagnoses
        )
        worker.join(timeout=10.0)

    def test_hello_token_pins_session_to_one_parent(self, serving_framework):
        from repro.serving.framing import (
            FrameClosed,
            FrameStream,
            answer_challenge,
        )
        from repro.serving.netshard import NetShardConfig
        import socket as socket_mod

        config = NetShardConfig(index=0, framework=serving_framework)
        worker, port = self._standalone_worker(b"", config=config)

        def hello(token):
            sock = socket_mod.create_connection(("127.0.0.1", port), timeout=5.0)
            answer_challenge(sock, b"")
            stream = FrameStream(sock)
            stream.send("hello", {"token": token, "shard": 0, "resume": False})
            return stream

        first = hello("parent-a")
        ack = first.recv(timeout=5.0)
        assert ack is not None and ack[0] == "hello_ack"
        first.close()

        # A different parent presenting a different token is rejected
        # before it can touch the session: the worker drops the
        # connection without ever sending hello_ack.
        impostor = hello("parent-b")
        with pytest.raises(FrameClosed):
            while True:
                if impostor.recv(timeout=5.0) is None:
                    raise AssertionError("worker neither acked nor closed")
        impostor.close()

        # The pinned parent still reconnects fine.
        again = hello("parent-a")
        ack = again.recv(timeout=5.0)
        assert ack is not None and ack[0] == "hello_ack"
        again.close()


class TestLetterLogBounds:
    def _entry(self):
        return object()  # the log never inspects the entry

    def test_trim_keeps_absolute_cursors_valid(self):
        from repro.serving.netshard import _LetterLog

        log = _LetterLog()
        for i in range(10):
            log.put(self._entry(), f"r{i}", shard=0)
        assert log.end == 10
        tail = log.slice(7, 10)
        log.trim_to(7)
        assert log.base == 7
        assert log.trimmed == 7
        assert log.slice(7, 10) == tail
        # Trimming below base is a no-op, never an index error.
        log.trim_to(3)
        assert log.base == 7

    def test_flush_trims_to_retention_window(self, serving_framework):
        from repro.serving import netshard
        from repro.serving.netshard import _LetterLog, _LETTER_RETAIN

        log = _LetterLog()
        total = _LETTER_RETAIN + 500
        for i in range(total):
            log.put(self._entry(), "validation", shard=0)
        # Simulate what flush_outputs does after a successful send.
        log.trim_to(max(log.base, total - _LETTER_RETAIN))
        assert log.end == total
        assert log.end - log.base == _LETTER_RETAIN
        assert log.trimmed == 500
        assert netshard._LETTER_RETAIN >= 256  # rewind window stays useful

    def test_rewind_clamps_to_retained_base(self):
        from repro.serving.netshard import _LetterLog, _WorkerState

        st = _WorkerState.__new__(_WorkerState)
        st.letters = _LetterLog()
        for i in range(10):
            st.letters.put(self._entry(), "validation", shard=0)
        st.letters.trim_to(6)
        st.sent_diagnoses = st.sent_alarms = st.sent_provisional = 0
        st.rewind({"out_letters": 2})  # parent asks below the window
        assert st.sent_letters == 6  # clamped, not an index error
        assert st.sent_entries == -1


class TestRestartResetsWatermarks:
    def test_restart_clears_sequence_state(self, serving_framework):
        from repro.serving.dlq import DeadLetterQueue
        from repro.serving.netshard import NetShardConfig, SocketShardWorker
        from repro.serving.queue import BoundedQueue

        handle = SocketShardWorker(
            config=NetShardConfig(index=0, framework=serving_framework),
            queue=BoundedQueue(capacity=8, policy="block", name="rs-test"),
            dead_letters=DeadLetterQueue(),
            mode="inproc",
        )
        # Simulate a worker that lived, acked, then died.
        handle._seq = 41
        handle._acked_seq = 37
        handle._worker_incarnation = 1234
        handle._seen_subscribers.update({"s1", "s2"})
        handle._unacked.entries.append((41, object()))
        handle._launch_worker = lambda: None
        handle._establish = lambda resume: {}
        handle._start_threads = lambda: None

        handle.restart()

        assert handle.restarts == 1
        assert handle._seq == 0
        assert handle._acked_seq == 0
        assert handle._worker_incarnation is None
        assert not handle._seen_subscribers
        assert not handle._unacked.entries
        # A replacement worker's first reconnect (recv_seq 0) must not
        # read as state loss against the dead worker's watermark.
        assert handle._acked_seq <= 0


class TestPlacementValidation:
    def test_placement_requires_socket_backend(self, serving_framework):
        with pytest.raises(ValueError, match="socket"):
            QoEService(
                serving_framework, n_shards=2, shard_backend="thread",
                placement="inproc:2",
            )

    def test_placement_count_must_match_shards(self, serving_framework):
        with pytest.raises(ValueError, match="names 4 shards"):
            QoEService(
                serving_framework, n_shards=2, shard_backend="socket",
                placement="inproc:4",
            )

    def test_socket_backend_defaults_to_local_placement(
        self, serving_framework
    ):
        service = QoEService(
            serving_framework, n_shards=2, shard_backend="socket"
        )
        assert service.router.placement.describe() == "local:2"
