"""Trace replay: synthetic traces, pacing, and run accounting."""

from __future__ import annotations

import time

import pytest

from repro.serving.replay import ReplayStats, TraceReplayer, synthetic_trace
from repro.serving.service import QoEService


class TestSyntheticTrace:
    def test_time_ordered(self, serving_trace):
        timestamps = [entry.timestamp_s for entry in serving_trace]
        assert timestamps == sorted(timestamps)

    def test_deterministic_for_seed(self):
        first = synthetic_trace(10, seed=3, subscribers=4)
        second = synthetic_trace(10, seed=3, subscribers=4)
        assert first == second
        different = synthetic_trace(10, seed=4, subscribers=4)
        assert first != different

    def test_folds_onto_subscriber_population(self, serving_trace):
        subscribers = {entry.subscriber_id for entry in serving_trace}
        assert len(subscribers) == 8
        assert all(s.startswith("sub-") for s in subscribers)

    def test_fold_preserves_per_subscriber_order(self, serving_trace):
        last_seen = {}
        for entry in serving_trace:
            previous = last_seen.get(entry.subscriber_id)
            assert previous is None or entry.timestamp_s >= previous
            last_seen[entry.subscriber_id] = entry.timestamp_s

    def test_unfolded_trace_keeps_original_subscribers(self):
        trace = synthetic_trace(6, seed=1)
        assert len({entry.subscriber_id for entry in trace}) == 6

    def test_invalid_subscriber_count(self):
        with pytest.raises(ValueError):
            synthetic_trace(4, subscribers=0)


class TestTraceReplayer:
    def test_speedup_validated(self, serving_framework):
        service = QoEService(serving_framework, n_shards=1)
        with pytest.raises(ValueError):
            TraceReplayer(service, speedup=-1.0)

    def test_unpaced_replay_stats(self, serving_framework, serving_trace):
        with QoEService(serving_framework, n_shards=2) as service:
            stats = TraceReplayer(service, speedup=0.0).replay(serving_trace)
        assert isinstance(stats, ReplayStats)
        assert stats.entries == len(serving_trace)
        assert stats.accepted == len(serving_trace)
        assert stats.shed == 0
        assert stats.trace_span_s > 0
        assert stats.entries_per_s > 0

    def test_paced_replay_honours_speedup(self, serving_framework):
        """With a finite speedup the replay must take at least
        trace_span / speedup of wall clock."""
        trace = synthetic_trace(3, seed=5, subscribers=2)
        span = trace[-1].timestamp_s - trace[0].timestamp_s
        speedup = span / 0.2  # ~0.2 s of pacing however long the trace is
        with QoEService(serving_framework, n_shards=1) as service:
            started = time.perf_counter()
            stats = TraceReplayer(service, speedup=speedup).replay(trace)
            elapsed = time.perf_counter() - started
        assert elapsed >= 0.15
        assert stats.wall_s >= 0.15

    def test_empty_trace(self, serving_framework):
        with QoEService(serving_framework, n_shards=1) as service:
            stats = TraceReplayer(service).replay([])
        assert stats.entries == 0
        assert stats.trace_span_s == 0.0
        assert stats.entries_per_s == float("inf") or stats.entries_per_s == 0.0
