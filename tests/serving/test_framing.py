"""Socket frame protocol tests: round-trips, corruption, hostile input.

The framing layer is the only thing standing between the unpickler and
arbitrary network bytes, so the properties here are adversarial:
whatever message round-trips must round-trip bit-identically, and
*every* malformed byte string must raise a typed :class:`FrameError`
subclass — truncation is retryable (:class:`FrameClosed`), garbage is
terminal (:class:`FrameCorrupted` / :class:`FrameTooLarge`) — without
ever feeding junk into ``pickle.loads`` or wedging the reader.
"""

from __future__ import annotations

import socket
import struct
import threading
import zlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.serving.framing import (
    DEFAULT_MAX_FRAME_BYTES,
    FRAME_MAGIC,
    FRAME_VERSION,
    HEADER_LEN,
    FrameClosed,
    FrameCorrupted,
    FrameStream,
    FrameTooLarge,
    decode_frame,
    encode_frame,
)

_HEADER = struct.Struct(">2sBBII")


# Messages shaped like the real shard vocabulary: a kind string plus a
# picklable body of nested primitives.
_bodies = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**40), max_value=2**40)
    | st.floats(allow_nan=False)
    | st.binary(max_size=64)
    | st.text(max_size=32),
    lambda inner: st.lists(inner, max_size=4)
    | st.dictionaries(st.text(max_size=8), inner, max_size=4),
    max_leaves=12,
)
_messages = st.tuples(
    st.sampled_from(["hello", "entries", "out", "hb", "drain", "dying"]),
    _bodies,
)


class TestRoundTrip:
    @settings(max_examples=100, deadline=None)
    @given(_messages)
    def test_encode_decode_round_trip(self, message):
        frame = encode_frame(message)
        decoded, consumed = decode_frame(frame)
        assert decoded == message
        assert consumed == len(frame)

    @settings(max_examples=50, deadline=None)
    @given(_messages, _messages)
    def test_concatenated_frames_decode_in_order(self, first, second):
        data = encode_frame(first) + encode_frame(second)
        decoded_first, consumed = decode_frame(data)
        decoded_second, rest = decode_frame(data[consumed:])
        assert decoded_first == first
        assert decoded_second == second
        assert consumed + rest == len(data)


class TestTruncation:
    @settings(max_examples=50, deadline=None)
    @given(_messages, st.data())
    def test_every_proper_prefix_raises_frame_closed(self, message, data):
        """Truncation at any byte is retryable, never corruption."""
        frame = encode_frame(message)
        cut = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
        with pytest.raises(FrameClosed):
            decode_frame(frame[:cut])


class TestCorruption:
    def test_bad_magic_rejected(self):
        frame = bytearray(encode_frame(("hb", None)))
        frame[0:2] = b"GE"  # a stray HTTP GET
        with pytest.raises(FrameCorrupted, match="magic"):
            decode_frame(bytes(frame))

    def test_unsupported_version_rejected(self):
        frame = bytearray(encode_frame(("hb", None)))
        frame[2] = FRAME_VERSION + 1
        with pytest.raises(FrameCorrupted, match="version"):
            decode_frame(bytes(frame))

    @settings(max_examples=50, deadline=None)
    @given(_messages, st.data())
    def test_payload_bit_flip_fails_crc(self, message, data):
        frame = bytearray(encode_frame(message))
        index = data.draw(
            st.integers(min_value=HEADER_LEN, max_value=len(frame) - 1)
        )
        bit = data.draw(st.integers(min_value=0, max_value=7))
        frame[index] ^= 1 << bit
        with pytest.raises(FrameCorrupted, match="CRC"):
            decode_frame(bytes(frame))

    def test_hostile_length_prefix_rejected_before_allocation(self):
        """A 4 GiB length claim is refused from the header alone —
        no waiting for (or allocating) the claimed payload."""
        header = _HEADER.pack(FRAME_MAGIC, FRAME_VERSION, 0, 2**32 - 1, 0)
        with pytest.raises(FrameTooLarge):
            decode_frame(header)

    def test_oversized_payload_refused_at_encode_time(self):
        with pytest.raises(FrameTooLarge):
            encode_frame(("entries", b"x" * 1024), max_frame_bytes=64)

    def test_undecodable_payload_is_corrupted_not_crash(self):
        payload = b"\x80\x05not-a-pickle"
        header = _HEADER.pack(
            FRAME_MAGIC, FRAME_VERSION, 0, len(payload), zlib.crc32(payload)
        )
        stream = _stream_pair()[0]
        stream._recv_buf = header + payload
        with pytest.raises(FrameCorrupted):
            stream._try_decode_buffered()


def _stream_pair():
    left, right = socket.socketpair()
    return FrameStream(left), FrameStream(right)


class TestFrameStream:
    def test_send_recv_over_socketpair(self):
        a, b = _stream_pair()
        try:
            a.send("hello", {"shard": 3, "resume": False})
            kind, body = b.recv(timeout=5.0)
            assert kind == "hello"
            assert body == {"shard": 3, "resume": False}
        finally:
            a.close()
            b.close()

    def test_recv_timeout_returns_none(self):
        a, b = _stream_pair()
        try:
            assert b.recv(timeout=0.05) is None
        finally:
            a.close()
            b.close()

    def test_peer_close_raises_frame_closed(self):
        a, b = _stream_pair()
        try:
            a.close()
            with pytest.raises(FrameClosed):
                b.recv(timeout=5.0)
        finally:
            b.close()

    def test_byte_dribble_reassembles_frames(self):
        """Frames split across arbitrary TCP segment boundaries still
        decode whole — the buffered reader waits for completion."""
        left, right = socket.socketpair()
        stream = FrameStream(right)
        frame = encode_frame(("entries", {"base_seq": 7, "entries": [1, 2]}))
        frame += encode_frame(("hb", {"recv_seq": 9}))

        def dribble():
            for i in range(0, len(frame), 3):
                left.sendall(frame[i : i + 3])
            left.close()

        writer = threading.Thread(target=dribble, daemon=True)
        writer.start()
        try:
            first = stream.recv(timeout=5.0)
            while first is None:
                first = stream.recv(timeout=5.0)
            second = stream.recv(timeout=5.0)
            while second is None:
                second = stream.recv(timeout=5.0)
            assert first == ("entries", {"base_seq": 7, "entries": [1, 2]})
            assert second == ("hb", {"recv_seq": 9})
            writer.join(timeout=5.0)
        finally:
            stream.close()

    def test_corrupt_frame_does_not_wedge_reader(self):
        """A garbage frame raises on the reader, and the stream stays
        usable as an object (close is clean) — no hang, no partial
        consume loop."""
        left, right = socket.socketpair()
        stream = FrameStream(right)
        bad = bytearray(encode_frame(("out", [1, 2, 3])))
        bad[HEADER_LEN] ^= 0xFF
        left.sendall(bytes(bad))
        try:
            with pytest.raises(FrameCorrupted):
                while True:
                    if stream.recv(timeout=5.0) is not None:
                        raise AssertionError("corrupt frame decoded")
        finally:
            left.close()
            stream.close()

    def test_send_on_closed_stream_raises(self):
        a, b = _stream_pair()
        b.close()
        a.close()
        with pytest.raises(FrameClosed):
            a.send("hb", {})

    def test_max_frame_bytes_default(self):
        a, b = _stream_pair()
        try:
            assert a.max_frame_bytes == DEFAULT_MAX_FRAME_BYTES
        finally:
            a.close()
            b.close()
