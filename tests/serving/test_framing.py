"""Socket frame protocol tests: round-trips, corruption, hostile input.

The framing layer is the only thing standing between the unpickler and
arbitrary network bytes, so the properties here are adversarial:
whatever message round-trips must round-trip bit-identically, and
*every* malformed byte string must raise a typed :class:`FrameError`
subclass — truncation is retryable (:class:`FrameClosed`), garbage is
terminal (:class:`FrameCorrupted` / :class:`FrameTooLarge`) — without
ever feeding junk into ``pickle.loads`` or wedging the reader.
"""

from __future__ import annotations

import socket
import struct
import threading
import zlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.serving.framing import (
    AUTH_CHALLENGE_MAGIC,
    DEFAULT_MAX_FRAME_BYTES,
    FRAME_MAGIC,
    FRAME_VERSION,
    HEADER_LEN,
    FrameAuthFailed,
    FrameClosed,
    FrameCorrupted,
    FrameError,
    FrameStream,
    FrameTooLarge,
    answer_challenge,
    decode_frame,
    deliver_challenge,
    encode_frame,
)

_HEADER = struct.Struct(">2sBBII")


# Messages shaped like the real shard vocabulary: a kind string plus a
# picklable body of nested primitives.
_bodies = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**40), max_value=2**40)
    | st.floats(allow_nan=False)
    | st.binary(max_size=64)
    | st.text(max_size=32),
    lambda inner: st.lists(inner, max_size=4)
    | st.dictionaries(st.text(max_size=8), inner, max_size=4),
    max_leaves=12,
)
_messages = st.tuples(
    st.sampled_from(["hello", "entries", "out", "hb", "drain", "dying"]),
    _bodies,
)


class TestRoundTrip:
    @settings(max_examples=100, deadline=None)
    @given(_messages)
    def test_encode_decode_round_trip(self, message):
        frame = encode_frame(message)
        decoded, consumed = decode_frame(frame)
        assert decoded == message
        assert consumed == len(frame)

    @settings(max_examples=50, deadline=None)
    @given(_messages, _messages)
    def test_concatenated_frames_decode_in_order(self, first, second):
        data = encode_frame(first) + encode_frame(second)
        decoded_first, consumed = decode_frame(data)
        decoded_second, rest = decode_frame(data[consumed:])
        assert decoded_first == first
        assert decoded_second == second
        assert consumed + rest == len(data)


class TestTruncation:
    @settings(max_examples=50, deadline=None)
    @given(_messages, st.data())
    def test_every_proper_prefix_raises_frame_closed(self, message, data):
        """Truncation at any byte is retryable, never corruption."""
        frame = encode_frame(message)
        cut = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
        with pytest.raises(FrameClosed):
            decode_frame(frame[:cut])


class TestCorruption:
    def test_bad_magic_rejected(self):
        frame = bytearray(encode_frame(("hb", None)))
        frame[0:2] = b"GE"  # a stray HTTP GET
        with pytest.raises(FrameCorrupted, match="magic"):
            decode_frame(bytes(frame))

    def test_unsupported_version_rejected(self):
        frame = bytearray(encode_frame(("hb", None)))
        frame[2] = FRAME_VERSION + 1
        with pytest.raises(FrameCorrupted, match="version"):
            decode_frame(bytes(frame))

    @settings(max_examples=50, deadline=None)
    @given(_messages, st.data())
    def test_payload_bit_flip_fails_crc(self, message, data):
        frame = bytearray(encode_frame(message))
        index = data.draw(
            st.integers(min_value=HEADER_LEN, max_value=len(frame) - 1)
        )
        bit = data.draw(st.integers(min_value=0, max_value=7))
        frame[index] ^= 1 << bit
        with pytest.raises(FrameCorrupted, match="CRC"):
            decode_frame(bytes(frame))

    def test_hostile_length_prefix_rejected_before_allocation(self):
        """A 4 GiB length claim is refused from the header alone —
        no waiting for (or allocating) the claimed payload."""
        header = _HEADER.pack(FRAME_MAGIC, FRAME_VERSION, 0, 2**32 - 1, 0)
        with pytest.raises(FrameTooLarge):
            decode_frame(header)

    def test_oversized_payload_refused_at_encode_time(self):
        with pytest.raises(FrameTooLarge):
            encode_frame(("entries", b"x" * 1024), max_frame_bytes=64)

    def test_undecodable_payload_is_corrupted_not_crash(self):
        payload = b"\x80\x05not-a-pickle"
        header = _HEADER.pack(
            FRAME_MAGIC, FRAME_VERSION, 0, len(payload), zlib.crc32(payload)
        )
        stream = _stream_pair()[0]
        stream._recv_buf = header + payload
        with pytest.raises(FrameCorrupted):
            stream._try_decode_buffered()


def _stream_pair():
    left, right = socket.socketpair()
    return FrameStream(left), FrameStream(right)


class TestFrameStream:
    def test_send_recv_over_socketpair(self):
        a, b = _stream_pair()
        try:
            a.send("hello", {"shard": 3, "resume": False})
            kind, body = b.recv(timeout=5.0)
            assert kind == "hello"
            assert body == {"shard": 3, "resume": False}
        finally:
            a.close()
            b.close()

    def test_recv_timeout_returns_none(self):
        a, b = _stream_pair()
        try:
            assert b.recv(timeout=0.05) is None
        finally:
            a.close()
            b.close()

    def test_peer_close_raises_frame_closed(self):
        a, b = _stream_pair()
        try:
            a.close()
            with pytest.raises(FrameClosed):
                b.recv(timeout=5.0)
        finally:
            b.close()

    def test_byte_dribble_reassembles_frames(self):
        """Frames split across arbitrary TCP segment boundaries still
        decode whole — the buffered reader waits for completion."""
        left, right = socket.socketpair()
        stream = FrameStream(right)
        frame = encode_frame(("entries", {"base_seq": 7, "entries": [1, 2]}))
        frame += encode_frame(("hb", {"recv_seq": 9}))

        def dribble():
            for i in range(0, len(frame), 3):
                left.sendall(frame[i : i + 3])
            left.close()

        writer = threading.Thread(target=dribble, daemon=True)
        writer.start()
        try:
            first = stream.recv(timeout=5.0)
            while first is None:
                first = stream.recv(timeout=5.0)
            second = stream.recv(timeout=5.0)
            while second is None:
                second = stream.recv(timeout=5.0)
            assert first == ("entries", {"base_seq": 7, "entries": [1, 2]})
            assert second == ("hb", {"recv_seq": 9})
            writer.join(timeout=5.0)
        finally:
            stream.close()

    def test_corrupt_frame_does_not_wedge_reader(self):
        """A garbage frame raises on the reader, and the stream stays
        usable as an object (close is clean) — no hang, no partial
        consume loop."""
        left, right = socket.socketpair()
        stream = FrameStream(right)
        bad = bytearray(encode_frame(("out", [1, 2, 3])))
        bad[HEADER_LEN] ^= 0xFF
        left.sendall(bytes(bad))
        try:
            with pytest.raises(FrameCorrupted):
                while True:
                    if stream.recv(timeout=5.0) is not None:
                        raise AssertionError("corrupt frame decoded")
        finally:
            left.close()
            stream.close()

    def test_send_on_closed_stream_raises(self):
        a, b = _stream_pair()
        b.close()
        a.close()
        with pytest.raises(FrameClosed):
            a.send("hb", {})

    def test_max_frame_bytes_default(self):
        a, b = _stream_pair()
        try:
            assert a.max_frame_bytes == DEFAULT_MAX_FRAME_BYTES
        finally:
            a.close()
            b.close()

    def test_concurrent_send_and_recv_timeouts_do_not_interfere(self):
        """A sender thread must not perturb the receiver's deadline
        (and vice versa): reads wait via select, the socket timeout is
        fixed to the send ceiling once at construction."""
        a, b = _stream_pair()
        received = []
        errors = []

        def pump_recv():
            try:
                for _ in range(200):
                    msg = b.recv(timeout=0.01)
                    if msg is not None:
                        received.append(msg)
            except FrameError as exc:
                errors.append(exc)

        reader = threading.Thread(target=pump_recv, daemon=True)
        reader.start()
        try:
            for i in range(50):
                a.send("hb", {"i": i})
            reader.join(timeout=10.0)
            assert not errors
            assert [m[1]["i"] for m in received] == sorted(
                m[1]["i"] for m in received
            )
        finally:
            a.close()
            b.close()


class TestAuthHandshake:
    """The HMAC challenge is the trust boundary in front of the
    unpickler: no frame (hence no pickle) is read from a peer that has
    not proven key possession, and the dialer equally refuses to ship
    anything to a listener that cannot prove it back."""

    def _handshake(self, server_key, client_key):
        left, right = socket.socketpair()
        results = {}

        def server():
            try:
                deliver_challenge(left, server_key, timeout_s=5.0)
                results["server"] = "ok"
            except FrameError as exc:
                results["server"] = exc

        thread = threading.Thread(target=server, daemon=True)
        thread.start()
        try:
            answer_challenge(right, client_key, timeout_s=5.0)
            results["client"] = "ok"
        except FrameError as exc:
            results["client"] = exc
        thread.join(timeout=5.0)
        left.close()
        right.close()
        return results

    def test_matching_keys_pass_both_directions(self):
        assert self._handshake(b"secret", b"secret") == {
            "server": "ok",
            "client": "ok",
        }

    def test_matching_empty_keys_pass(self):
        """The documented loopback/trusted-link degradation."""
        assert self._handshake(b"", b"") == {"server": "ok", "client": "ok"}

    def test_wrong_key_rejected_by_server(self):
        results = self._handshake(b"secret", b"wrong")
        assert isinstance(results["server"], FrameAuthFailed)
        assert results["client"] != "ok"

    def test_keyless_client_rejected_by_keyed_server(self):
        results = self._handshake(b"secret", b"")
        assert isinstance(results["server"], FrameAuthFailed)

    def test_client_rejects_listener_without_the_key(self):
        """Mutual: the parent ships the model (a pickle the worker
        executes) in its hello, so it must not hello an impostor."""
        results = self._handshake(b"", b"secret")
        assert isinstance(results["client"], FrameAuthFailed)

    def test_raw_frame_sender_never_reaches_the_challenge(self):
        """A peer that skips auth and immediately sends a pickled
        frame (today's unauthenticated protocol) must be rejected —
        its bytes are read as a digest, compared, and thrown away."""
        left, right = socket.socketpair()

        def hostile_client():
            try:
                right.sendall(encode_frame(("hello", {"token": "x"})) * 2)
            except OSError:
                pass

        thread = threading.Thread(target=hostile_client, daemon=True)
        thread.start()
        try:
            with pytest.raises(FrameAuthFailed):
                deliver_challenge(left, b"secret", timeout_s=5.0)
            thread.join(timeout=5.0)
        finally:
            left.close()
            right.close()

    def test_client_rejects_non_challenge_greeting(self):
        left, right = socket.socketpair()
        left.sendall(b"HTTP/1.1 200 OK\r\n" + b"\x00" * 16)
        try:
            with pytest.raises(FrameAuthFailed):
                answer_challenge(right, b"secret", timeout_s=5.0)
        finally:
            left.close()
            right.close()

    def test_silent_peer_times_out(self):
        left, right = socket.socketpair()
        try:
            with pytest.raises(FrameAuthFailed, match="timed out"):
                answer_challenge(right, b"secret", timeout_s=0.2)
        finally:
            left.close()
            right.close()

    def test_challenge_misread_as_frame_fails_typed(self):
        """An old-protocol peer that misreads the challenge preamble
        as a frame header gets a typed version rejection — fast and
        diagnosable, never silent garbage."""
        challenge = AUTH_CHALLENGE_MAGIC + b"\x00" * 16
        with pytest.raises(FrameCorrupted, match="version"):
            decode_frame(challenge)
