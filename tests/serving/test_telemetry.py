"""Service-level telemetry: traces, SLOs, postmortems — and determinism.

The tentpole contract: with full telemetry enabled (trace contexts on
every record, staged histograms, SLO windows, flight recorder armed),
the sharded service's diagnosis multiset is still bit-identical to the
serial monitor's, shard deaths dump postmortems containing the
circuit-transition events and the per-stage latency + SLO snapshots,
and ``health()`` exposes the whole picture.
"""

from __future__ import annotations

import json

import pytest

from repro.faults import FaultInjector, FaultPlan
from repro.obs import DEFAULT_SLOS, PipelineTelemetry, MetricsRegistry
from repro.obs.pipeline import STAGES
from repro.realtime.monitor import RealTimeMonitor
from repro.serving import QoEService, TraceReplayer
from repro.serving.shard import shard_index

from tests.serving.conftest import alarm_multiset, diagnosis_multiset


def _replay(service, trace):
    service.start()
    TraceReplayer(service).replay(trace)
    return service.drain()


class TestTelemetryDeterminism:
    def test_sharded_with_telemetry_matches_serial(
        self, serving_framework, serving_trace
    ):
        telemetry = PipelineTelemetry(
            registry=MetricsRegistry(), sample_every=16
        )
        service = QoEService(
            serving_framework,
            n_shards=4,
            telemetry=telemetry,
            slos=DEFAULT_SLOS,
        )
        diagnoses = _replay(service, serving_trace)

        monitor = RealTimeMonitor(serving_framework)
        monitor.feed_many(serving_trace)
        monitor.drain()

        assert diagnosis_multiset(diagnoses) == diagnosis_multiset(
            monitor.diagnoses
        )
        assert alarm_multiset(service.alarms) == alarm_multiset(
            monitor.alarms
        )

    def test_telemetry_can_be_disabled(self, serving_framework, serving_trace):
        service = QoEService(serving_framework, n_shards=2, telemetry=False)
        diagnoses = _replay(service, serving_trace)
        assert diagnoses
        health = service.health()
        assert "telemetry" not in health
        assert "slo" not in health

    def test_slos_require_telemetry(self, serving_framework):
        with pytest.raises(ValueError):
            QoEService(
                serving_framework, telemetry=False, slos=DEFAULT_SLOS
            )


class TestStagedLatencies:
    def test_every_stage_observed(self, serving_framework, serving_trace):
        registry = MetricsRegistry()
        telemetry = PipelineTelemetry(registry=registry, sample_every=8)
        service = QoEService(
            serving_framework, n_shards=4, telemetry=telemetry
        )
        diagnoses = _replay(service, serving_trace)

        snapshot = telemetry.stage_snapshot()
        stages = snapshot["stages"]
        processed = sum(
            shard.entries_processed for shard in service._shards
        )
        # Every submitted record crosses submit/queue_wait; every
        # processed record crosses validate/track.
        assert stages["submit"]["count"] == len(serving_trace)
        assert stages["queue_wait"]["count"] == len(serving_trace)
        assert stages["validate"]["count"] == processed
        assert stages["track"]["count"] == processed
        # Closed sessions cross batch_wait and land in the e2e series
        # (force-closed drain leftovers carry no context).
        assert 0 < stages["batch_wait"]["count"] <= len(diagnoses)
        assert stages["diagnose"]["count"] >= 1
        assert stages["alarm_sweep"]["count"] == 4    # one sweep per shard
        assert snapshot["e2e"]["count"] == stages["batch_wait"]["count"]
        assert snapshot["e2e"]["p99_s"] > 0

    def test_exemplars_sampled_with_stage_children(
        self, serving_framework, serving_trace
    ):
        telemetry = PipelineTelemetry(
            registry=MetricsRegistry(), sample_every=1, max_exemplars=8
        )
        service = QoEService(
            serving_framework, n_shards=2, telemetry=telemetry
        )
        _replay(service, serving_trace)
        exemplars = telemetry.exemplars()
        assert exemplars
        for exemplar in exemplars:
            assert exemplar["name"] == "e2e"
            assert exemplar["duration_s"] > 0
            child_names = [c["name"] for c in exemplar["children"]]
            assert child_names == [
                s for s in STAGES if s in set(child_names)
            ], "children must come out in pipeline stage order"
            assert "queue_wait" in child_names

    def test_health_exposes_telemetry_and_slo(
        self, serving_framework, serving_trace
    ):
        service = QoEService(
            serving_framework,
            n_shards=2,
            telemetry=PipelineTelemetry(registry=MetricsRegistry()),
            slos=DEFAULT_SLOS,
        )
        _replay(service, serving_trace)
        health = service.health()
        assert set(health["telemetry"]["stages"]) == set(STAGES)
        assert health["slo"]["ok"] in (True, False)
        names = {o["name"] for o in health["slo"]["objectives"]}
        assert names == {"p99_e2e", "success"}
        json.dumps(health)    # the whole payload must be JSON-safe

    def test_slo_windows_finalized_at_drain(
        self, serving_framework, serving_trace
    ):
        service = QoEService(
            serving_framework,
            n_shards=2,
            telemetry=PipelineTelemetry(registry=MetricsRegistry()),
            slos=("p50:e2e<=60s@3600s",),    # generous: must hold
        )
        _replay(service, serving_trace)
        (objective,) = service.health()["slo"]["objectives"]
        # The hour-long window cannot have expired; finalize() at
        # drain must still have evaluated it exactly once.
        assert objective["windows"] == 1
        assert objective["ok"] is True
        assert objective["value"] is not None


class TestPostmortems:
    def test_shard_death_dumps_postmortem(
        self, serving_framework, serving_trace, tmp_path
    ):
        victim = shard_index(serving_trace[0].subscriber_id, 4)
        faults = FaultInjector(
            FaultPlan(seed=5, kill_shard=victim, kill_at_entry=10)
        )
        service = QoEService(
            serving_framework,
            n_shards=4,
            faults=faults,
            telemetry=PipelineTelemetry(registry=MetricsRegistry()),
            slos=DEFAULT_SLOS,
            postmortem_dir=str(tmp_path),
        )
        service.start()
        TraceReplayer(service, faults=faults).replay(serving_trace)
        service.drain()

        assert service.recorder.postmortems
        payload = json.loads(
            open(service.recorder.postmortems[0], encoding="utf-8").read()
        )
        assert payload["schema"] == "repro.obs.postmortem/1"
        assert payload["trigger"] == "shard_failed"
        assert payload["detail"]["shard"] == victim
        kinds = {e["kind"] for e in payload["events"]}
        assert "shard_worker_died" in kinds
        assert "fault_injected" in kinds
        snapshots = payload["snapshots"]
        assert set(snapshots["stages"]["stages"]) == set(STAGES)
        assert {o["name"] for o in snapshots["slo"]["objectives"]} == {
            "p99_e2e", "success",
        }
        assert "dead_letter" in snapshots
        assert snapshots["service"]["restarts"] >= 0

    def test_circuit_open_dumps_postmortem_with_transition(
        self, serving_framework, serving_trace, tmp_path
    ):
        """The ISSUE's acceptance scenario: budget-exhausting kills trip
        the circuit, and the postmortem documents the transition."""
        victim = shard_index(serving_trace[0].subscriber_id, 4)
        faults = FaultInjector(
            FaultPlan(
                seed=5, kill_shard=victim, kill_at_entry=5, kill_times=2
            )
        )
        service = QoEService(
            serving_framework,
            n_shards=4,
            faults=faults,
            max_restarts=1,    # second kill exhausts the budget
            telemetry=PipelineTelemetry(registry=MetricsRegistry()),
            slos=DEFAULT_SLOS,
            postmortem_dir=str(tmp_path),
        )
        service.start()
        TraceReplayer(service, faults=faults).replay(serving_trace)
        service.drain()

        assert victim in service.supervisor.open_circuits
        triggers = {
            json.loads(open(p, encoding="utf-8").read())["trigger"]: p
            for p in service.recorder.postmortems
        }
        assert "circuit_open" in triggers
        payload = json.loads(
            open(triggers["circuit_open"], encoding="utf-8").read()
        )
        kinds = [e["kind"] for e in payload["events"]]
        assert "circuit_open" in kinds
        assert "shard_worker_died" in kinds
        assert "shard_restarted" in kinds
        # Per-stage latency snapshot and SLO burn state ride along.
        assert payload["snapshots"]["stages"]["e2e"]["count"] >= 0
        for objective in payload["snapshots"]["slo"]["objectives"]:
            assert "burn_rate" in objective

    def test_no_postmortem_dir_records_but_writes_nothing(
        self, serving_framework, serving_trace
    ):
        victim = shard_index(serving_trace[0].subscriber_id, 4)
        faults = FaultInjector(
            FaultPlan(seed=5, kill_shard=victim, kill_at_entry=10)
        )
        service = QoEService(
            serving_framework,
            n_shards=4,
            faults=faults,
            telemetry=PipelineTelemetry(registry=MetricsRegistry()),
        )
        service.start()
        TraceReplayer(service, faults=faults).replay(serving_trace)
        service.drain()
        assert service.recorder.postmortems == []
        kinds = {e["kind"] for e in service.recorder.events()}
        assert "postmortem_trigger" in kinds    # dump was still triggered
