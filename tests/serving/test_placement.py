"""Shard placement spec parsing: the three shapes and their validation.

The placement grammar is the deployment interface (`--placement` on
the CLI), so the error cases matter as much as the happy paths — a
typo'd spec must fail loudly at parse time, not strand a shard index
with no worker at runtime.
"""

from __future__ import annotations

import pytest

from repro.serving.placement import ShardPlacement


class TestSelfLaunchingModes:
    @pytest.mark.parametrize("mode", ["local", "inproc"])
    def test_parse_mode_count(self, mode):
        placement = ShardPlacement.parse(f"{mode}:3")
        assert placement.mode == mode
        assert placement.n_shards == 3
        assert placement.addresses == {}

    @pytest.mark.parametrize("mode", ["local", "inproc"])
    def test_describe_round_trips(self, mode):
        spec = f"{mode}:5"
        assert ShardPlacement.parse(spec).describe() == spec

    def test_count_cross_check(self):
        assert ShardPlacement.parse("local:4", n_shards=4).n_shards == 4
        with pytest.raises(ValueError, match="names 4 shards"):
            ShardPlacement.parse("local:4", n_shards=2)

    @pytest.mark.parametrize("spec", ["local:0", "inproc:-1"])
    def test_at_least_one_shard(self, spec):
        with pytest.raises(ValueError, match="at least 1"):
            ShardPlacement.parse(spec)

    @pytest.mark.parametrize("spec", ["local:", "local:x", "inproc:2.5"])
    def test_bad_count_token(self, spec):
        with pytest.raises(ValueError, match="expected"):
            ShardPlacement.parse(spec)


class TestRemoteMaps:
    def test_parse_address_map(self):
        placement = ShardPlacement.parse("0=hosta:7000,1=hostb:7001")
        assert placement.mode == "remote"
        assert placement.n_shards == 2
        assert placement.addresses == {
            0: ("hosta", 7000),
            1: ("hostb", 7001),
        }

    def test_describe_round_trips_sorted(self):
        spec = "0=a:1,1=b:2,2=c:3"
        placement = ShardPlacement.parse("2=c:3,0=a:1,1=b:2")
        assert placement.describe() == spec

    def test_ipv6ish_host_uses_last_colon(self):
        placement = ShardPlacement.parse("0=fe80::1:7000")
        assert placement.addresses[0] == ("fe80::1", 7000)

    @pytest.mark.parametrize(
        "spec",
        ["0=host", "0=:7000", "zero=host:7000", "0=host:port", "0"],
    )
    def test_bad_token_shapes(self, spec):
        with pytest.raises(ValueError, match="expected IDX=HOST:PORT|names no shards"):
            ShardPlacement.parse(spec)

    def test_duplicate_index_rejected(self):
        with pytest.raises(ValueError, match="duplicate shard index 0"):
            ShardPlacement.parse("0=a:1,0=b:2")

    def test_gap_in_indices_rejected(self):
        with pytest.raises(ValueError, match="cover shard indices"):
            ShardPlacement.parse("0=a:1,2=c:3")

    def test_map_size_cross_checked_against_service(self):
        with pytest.raises(ValueError, match="names 2 shards"):
            ShardPlacement.parse("0=a:1,1=b:2", n_shards=3)

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError, match="empty placement"):
            ShardPlacement.parse("   ")
