"""Backpressure invariants of the bounded ingest queue.

Property-style over randomized arrival bursts (the satellite spec):

* ``block`` loses no entries — everything put is eventually got, in
  FIFO order, even with a slow consumer;
* ``drop_oldest`` and ``shed_newest`` keep the depth bounded by
  capacity for *any* arrival pattern;
* every drop is visible both on the instance counters and in the
  ``repro_serving_queue_dropped_total`` obs series.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.obs import get_registry
from repro.serving.queue import (
    POLICIES,
    BoundedQueue,
    QueueClosed,
    QueueEmpty,
    QueueFull,
)


def _drain_all(queue):
    items = []
    while True:
        try:
            items.append(queue.get(timeout=0.0))
        except (QueueEmpty, QueueClosed):
            return items


class TestValidation:
    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            BoundedQueue(0)

    def test_policy_validated(self):
        with pytest.raises(ValueError):
            BoundedQueue(4, policy="explode")

    def test_policies_constant_is_exhaustive(self):
        assert set(POLICIES) == {"block", "drop_oldest", "shed_newest"}


class TestBlockPolicy:
    def test_fifo_within_capacity(self):
        queue = BoundedQueue(8, policy="block", name="t-fifo")
        for i in range(5):
            queue.put(i)
        assert _drain_all(queue) == [0, 1, 2, 3, 4]

    def test_block_loses_nothing_under_random_bursts(self):
        """Producer bursts vs a deliberately slow consumer: every entry
        survives, in order."""
        rng = np.random.default_rng(0)
        queue = BoundedQueue(4, policy="block", name="t-block")
        n_items = 300
        consumed = []

        def consume():
            while len(consumed) < n_items:
                try:
                    consumed.append(queue.get(timeout=1.0))
                except QueueEmpty:  # pragma: no cover - timing slack
                    return

        thread = threading.Thread(target=consume)
        thread.start()
        sent = 0
        while sent < n_items:
            for _ in range(int(rng.integers(1, 20))):  # burst
                if sent >= n_items:
                    break
                queue.put(sent)  # blocks when full; must never drop
                sent += 1
        thread.join(timeout=10.0)
        assert consumed == list(range(n_items))
        assert queue.dropped == 0
        assert queue.enqueued == n_items

    def test_block_with_timeout_raises_full(self):
        queue = BoundedQueue(1, policy="block", name="t-timeout")
        queue.put("a")
        with pytest.raises(QueueFull):
            queue.put("b", timeout=0.01)
        # the queued entry is untouched
        assert queue.get(timeout=0.0) == "a"


class TestDropPolicies:
    @pytest.mark.parametrize("policy", ["drop_oldest", "shed_newest"])
    def test_depth_bounded_under_random_bursts(self, policy):
        rng = np.random.default_rng(1)
        capacity = 8
        queue = BoundedQueue(capacity, policy=policy, name=f"t-{policy}")
        put = 0
        for _ in range(50):
            for _ in range(int(rng.integers(1, 30))):
                queue.put(put)
                put += 1
                assert queue.depth <= capacity
            # drain a random amount
            for _ in range(int(rng.integers(0, 10))):
                try:
                    queue.get(timeout=0.0)
                except QueueEmpty:
                    break
        assert queue.depth <= capacity
        _drain_all(queue)
        if policy == "shed_newest":
            # rejected at the door: admitted + shed == offered
            assert queue.enqueued + queue.dropped == put
        else:
            # drop_oldest admits everything, evicting from the middle
            assert queue.enqueued == put

    def test_drop_oldest_keeps_newest(self):
        queue = BoundedQueue(3, policy="drop_oldest", name="t-oldkeep")
        for i in range(10):
            assert queue.put(i) is True  # always admitted
        assert _drain_all(queue) == [7, 8, 9]
        assert queue.dropped == 7

    def test_shed_newest_keeps_oldest(self):
        queue = BoundedQueue(3, policy="shed_newest", name="t-newkeep")
        results = [queue.put(i) for i in range(10)]
        assert results == [True] * 3 + [False] * 7
        assert _drain_all(queue) == [0, 1, 2]
        assert queue.dropped == 7

    def test_drops_counted_in_obs(self):
        dropped = get_registry().counter(
            "repro_serving_queue_dropped_total", labelnames=("queue", "policy")
        )
        enqueued = get_registry().counter(
            "repro_serving_queue_enqueued_total", labelnames=("queue",)
        )
        name = "t-obs-drops"
        before_d = dropped.labels(queue=name, policy="drop_oldest").value
        before_e = enqueued.labels(queue=name).value
        queue = BoundedQueue(2, policy="drop_oldest", name=name)
        for i in range(5):
            queue.put(i)
        assert dropped.labels(queue=name, policy="drop_oldest").value == before_d + 3
        assert enqueued.labels(queue=name).value == before_e + 5

    def test_depth_gauge_tracks(self):
        depth = get_registry().gauge(
            "repro_serving_queue_depth", labelnames=("queue",)
        )
        name = "t-obs-depth"
        queue = BoundedQueue(4, policy="block", name=name)
        queue.put("a")
        queue.put("b")
        assert depth.labels(queue=name).value == 2
        queue.get(timeout=0.0)
        assert depth.labels(queue=name).value == 1


class TestClose:
    def test_put_after_close_raises(self):
        queue = BoundedQueue(2, name="t-close-put")
        queue.close()
        with pytest.raises(QueueClosed):
            queue.put("x")

    def test_close_drains_then_raises(self):
        queue = BoundedQueue(4, name="t-close-drain")
        queue.put("a")
        queue.put("b")
        queue.close()
        assert queue.get(timeout=0.0) == "a"
        assert queue.get(timeout=0.0) == "b"
        with pytest.raises(QueueClosed):
            queue.get(timeout=0.0)

    def test_close_wakes_blocked_getter(self):
        queue = BoundedQueue(2, name="t-close-wake")
        outcome = {}

        def wait():
            started = time.perf_counter()
            try:
                queue.get(timeout=5.0)
            except QueueClosed:
                outcome["closed_after"] = time.perf_counter() - started

        thread = threading.Thread(target=wait)
        thread.start()
        time.sleep(0.05)
        queue.close()
        thread.join(timeout=5.0)
        assert outcome["closed_after"] < 4.0  # woke on close, not timeout
