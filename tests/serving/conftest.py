"""Shared fixtures for the serving-layer tests.

One small fitted framework and one multi-subscriber synthetic trace
are enough for the whole suite; both are module-expensive, so they are
session-scoped.  Tests must not mutate them.
"""

from __future__ import annotations

import pytest

from repro import QoEFramework
from repro.serving.replay import synthetic_trace


@pytest.fixture(scope="session")
def serving_framework(stall_records, adaptive_records):
    return QoEFramework(random_state=0, n_estimators=12).fit(
        stall_records, adaptive_records
    )


@pytest.fixture(scope="session")
def serving_trace():
    """~40 sessions folded onto 8 subscribers, time-ordered."""
    return synthetic_trace(40, seed=17, subscribers=8)


def diagnosis_multiset(diagnoses):
    """Order-insensitive canonical form of a diagnosis list."""
    return sorted(
        (
            d.session_id,
            d.stall_class,
            d.representation_class,
            d.has_quality_switches,
        )
        for d in diagnoses
    )


def alarm_multiset(alarms):
    return sorted(
        (a.subscriber_id, a.reason, a.sessions_observed) for a in alarms
    )
