"""Process-backed shard tests: determinism, death handling, folding.

The process backend must be observationally identical to the thread
backend (and therefore to the serial monitor) with faults off; with a
shard *process* killed mid-replay the supervisor must restart it and
the untouched subscribers must still diagnose bit-identically.  The
child registries must fold into the parent's so ``/metrics`` stays a
single scrape surface.
"""

from __future__ import annotations

import time

import pytest

from repro.faults import FaultInjector, FaultPlan
from repro.obs import get_registry
from repro.realtime.monitor import RealTimeMonitor
from repro.realtime.tracker import OnlineSessionTracker
from repro.serving import QoEService
from repro.serving.replay import synthetic_trace
from repro.serving.shard import shard_index

from tests.serving.conftest import alarm_multiset, diagnosis_multiset


def _subscriber(session_id):
    return session_id.rsplit("/online-", 1)[0]


def _filtered(diagnoses, excluded):
    return diagnosis_multiset(
        d for d in diagnoses if _subscriber(d.session_id) not in excluded
    )


def _counter_total(name):
    total = 0.0
    for family in get_registry().collect():
        if family.name == name:
            for _labels, child in family.samples():
                total += child.value
    return total


@pytest.fixture(scope="module")
def serial(serving_framework, serving_trace):
    monitor = RealTimeMonitor(serving_framework, tracker=OnlineSessionTracker())
    monitor.feed_many(serving_trace)
    monitor.drain()
    return monitor


class TestProcessDeterminism:
    def test_four_process_shards_match_serial(
        self, serving_framework, serving_trace, serial
    ):
        entries_before = _counter_total("repro_serving_entries_total")
        service = QoEService(
            serving_framework, n_shards=4, shard_backend="process"
        )
        with service:
            service.submit_many(serving_trace)

        assert diagnosis_multiset(service.diagnoses) == diagnosis_multiset(
            serial.diagnoses
        )
        assert alarm_multiset(service.alarms) == alarm_multiset(serial.alarms)

        health = service.health()
        assert health["backend"] == "process"
        assert health["state"] == "stopped"
        assert health["restarts"] == 0
        assert sum(
            s["entries_processed"] for s in health["shards"]
        ) == len(serving_trace)

        # Child registries folded into the parent's: the per-entry
        # counters incremented inside the shard *processes* are visible
        # on this (parent) registry after the drain handshake.
        folds = health["router"]["registry_folds"]
        assert folds["errors"] == 0
        assert folds["folds"] >= 4  # at least the final per-shard delta
        assert _counter_total(
            "repro_serving_entries_total"
        ) - entries_before == len(serving_trace)

    def test_single_process_shard_matches_serial(
        self, serving_framework, serving_trace, serial
    ):
        """n_shards=1 removes partitioning from the picture: any
        mismatch here is protocol loss, not routing."""
        service = QoEService(
            serving_framework, n_shards=1, shard_backend="process"
        )
        with service:
            service.submit_many(serving_trace)
        assert diagnosis_multiset(service.diagnoses) == diagnosis_multiset(
            serial.diagnoses
        )


class TestProcessDeath:
    def test_killed_process_restarts_and_untouched_are_identical(
        self, serving_framework
    ):
        trace = synthetic_trace(40, seed=17, subscribers=20)
        victim = shard_index(trace[0].subscriber_id, 4)
        plan = FaultPlan(
            seed=23, kill_shard=victim, kill_at_entry=25, kill_times=1
        )
        faults = FaultInjector(plan)
        service = QoEService(
            serving_framework, n_shards=4, shard_backend="process",
            faults=faults,
        )
        with service:
            service.submit_many(trace)
        health = service.health()

        assert faults.kills_fired == 1
        assert health["restarts"] >= 1
        assert health["shards"][victim]["restarts"] >= 1
        assert health["state"] == "stopped"
        assert not service.degraded
        assert service.supervisor.open_circuits == []

        # A dead process loses the whole shard state, so every
        # subscriber ever routed there is affected — but only those.
        affected = faults.affected_subscribers
        assert affected
        assert len(affected) < 20

        serial = RealTimeMonitor(
            serving_framework, tracker=OnlineSessionTracker()
        )
        serial.feed_many(trace)
        serial.drain()
        untouched_serial = _filtered(serial.diagnoses, affected)
        assert untouched_serial  # the comparison is not vacuous
        assert _filtered(service.diagnoses, affected) == untouched_serial

    def test_kill_budget_exhaustion_opens_circuit(self, serving_framework):
        trace = synthetic_trace(10, seed=3, subscribers=6)
        victim = shard_index(trace[0].subscriber_id, 2)
        plan = FaultPlan(
            seed=5, kill_shard=victim, kill_at_entry=1, kill_times=10
        )
        faults = FaultInjector(plan)
        service = QoEService(
            serving_framework, n_shards=2, shard_backend="process",
            faults=faults, max_restarts=1, restart_backoff_s=0.01,
        )
        with service:
            # Keep feeding so every restarted child also picks up an
            # entry (and dies on it) until the budget trips the breaker.
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                service.submit_many(trace)
                if service.supervisor.open_circuits:
                    break
                time.sleep(0.05)

        assert victim in service.supervisor.open_circuits
        assert service.degraded
        assert service.health()["shards"][victim]["circuit_open"]
        # initial child + the one restart both died on the injected kill
        assert faults.kills_fired >= 2
        # anything stranded on the broken shard's ingest queue was
        # quarantined, never silently dropped (re-fed waves also rack
        # up legitimate non_monotonic quarantines on the live shard)
        by_reason = service.dead_letters.snapshot()["by_reason"]
        assert set(by_reason) <= {"circuit_open", "non_monotonic"}
        assert service.dead_letters.quarantined > 0
