"""Model hot-reload: versioning, atomic swap, corrupt-file resilience."""

from __future__ import annotations

import json

import pytest

from repro.obs import get_registry
from repro.persistence import save_framework
from repro.serving.models import ModelManager


@pytest.fixture()
def model_path(serving_framework, tmp_path):
    path = tmp_path / "model.json"
    save_framework(serving_framework, path)
    return path


class TestConstruction:
    def test_from_file(self, model_path):
        manager = ModelManager(model_path)
        assert manager.version == 1
        assert manager.reloadable
        assert manager.current._fitted

    def test_from_framework(self, serving_framework):
        manager = ModelManager(serving_framework)
        assert manager.version == 1
        assert not manager.reloadable
        assert manager.current is serving_framework

    def test_unfitted_framework_rejected(self):
        from repro import QoEFramework

        with pytest.raises(ValueError):
            ModelManager(QoEFramework())

    def test_in_memory_manager_cannot_reload(self, serving_framework):
        with pytest.raises(RuntimeError):
            ModelManager(serving_framework).reload()


class TestReload:
    def test_successful_reload_bumps_version(self, serving_framework, model_path):
        reloads = get_registry().counter(
            "repro_serving_model_reloads_total", labelnames=("status",)
        )
        before = reloads.labels(status="ok").value
        manager = ModelManager(model_path)
        save_framework(serving_framework, model_path)  # "new" model arrives
        old = manager.current
        assert manager.reload() is True
        assert manager.version == 2
        assert manager.current is not old              # swapped, not mutated
        assert reloads.labels(status="ok").value == before + 1

    def test_version_gauge_tracks(self, serving_framework, model_path):
        gauge = get_registry().gauge("repro_serving_model_version")
        manager = ModelManager(model_path)
        save_framework(serving_framework, model_path)
        manager.reload()
        assert gauge.value == manager.version

    def test_corrupt_file_keeps_current_model(self, model_path):
        errors = get_registry().counter(
            "repro_serving_model_reloads_total", labelnames=("status",)
        )
        before = errors.labels(status="error").value
        manager = ModelManager(model_path)
        serving_before = manager.current
        model_path.write_text("{definitely not json")
        assert manager.reload() is False
        assert manager.version == 1
        assert manager.current is serving_before
        assert errors.labels(status="error").value == before + 1

    def test_tampered_checksum_rejected_on_reload(self, model_path):
        manager = ModelManager(model_path)
        payload = json.loads(model_path.read_text())
        payload["switching"]["threshold"] = 123.0      # bit-flip a field
        model_path.write_text(json.dumps(payload))
        assert manager.reload() is False
        assert manager.version == 1

    def test_missing_file_keeps_current_model(self, model_path):
        manager = ModelManager(model_path)
        model_path.unlink()
        assert manager.reload() is False
        assert manager.current is not None

    def test_reloaded_model_predicts_identically(
        self, serving_framework, model_path, stall_records
    ):
        """Round-tripped model must diagnose exactly like the original."""
        manager = ModelManager(model_path)
        manager.reload()
        sample = list(stall_records[:5])
        original = serving_framework.diagnose(sample, adaptive=False)
        reloaded = manager.current.diagnose(sample, adaptive=False)
        assert [d.stall_class for d in original] == [
            d.stall_class for d in reloaded
        ]
