"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "tab3_4" in out
        assert "fig4" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_experiment_id(self):
        with pytest.raises(KeyError):
            main(["experiments", "--id", "tab99"])

    def test_unknown_log_level_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiments", "--id", "fig1", "--log-level", "LOUD"])


class TestCliObservability:
    """--metrics-out / --log-level and the root timing tree."""

    def test_metrics_out_writes_valid_snapshot(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        # fig1 needs no corpus, so this stays fast.
        assert main(["experiments", "--id", "fig1", "--metrics-out", str(path)]) == 0
        snapshot = json.loads(path.read_text())
        assert snapshot["schema"].startswith("repro.obs/")
        names = {m["name"] for m in snapshot["metrics"]}
        assert "repro_experiments_runs_total" in names
        assert "repro_span_duration_seconds" in names

    def test_root_span_tree_printed_to_stderr(self, capsys):
        assert main(["experiments", "--id", "fig1"]) == 0
        err = capsys.readouterr().err
        assert "repro.experiments:" in err
        assert "experiments.fig1:" in err

    def test_log_level_flag_accepted(self, capsys):
        assert main(
            ["experiments", "--id", "fig1", "--log-level", "ERROR"]
        ) == 0


class TestServeReplay:
    """``python -m repro serve-replay`` — the online serving loop."""

    @pytest.fixture(scope="class")
    def model_file(self, tmp_path_factory, stall_records, adaptive_records):
        """A saved model so the CLI skips its (slow) training path."""
        from repro import QoEFramework
        from repro.persistence import save_framework

        framework = QoEFramework(random_state=0, n_estimators=12).fit(
            stall_records, adaptive_records
        )
        path = tmp_path_factory.mktemp("serve") / "model.json"
        save_framework(framework, path)
        return str(path)

    def _run(self, model_file, *extra):
        return main(
            [
                "serve-replay",
                "--model", model_file,
                "--sessions", "20",
                "--subscribers", "6",
                "--shards", "2",
                *extra,
            ]
        )

    def test_replay_summary_printed(self, model_file, capsys):
        assert self._run(model_file) == 0
        out = capsys.readouterr().out
        assert "replayed" in out
        assert "2 thread shard(s)" in out
        assert "diagnoses" in out

    def test_check_serial_passes(self, model_file, capsys):
        assert self._run(model_file, "--check-serial") == 0
        out = capsys.readouterr().out
        assert "serving determinism check ok" in out

    def test_metrics_out_includes_serving_families(
        self, model_file, tmp_path, capsys
    ):
        path = tmp_path / "metrics.json"
        assert self._run(model_file, "--metrics-out", str(path)) == 0
        snapshot = json.loads(path.read_text())
        names = {m["name"] for m in snapshot["metrics"]}
        assert "repro_serving_queue_depth" in names
        assert "repro_serving_replay_entries_total" in names

    def test_metrics_port_serves_during_run(self, model_file, capsys):
        assert self._run(model_file, "--metrics-port", "0") == 0
        err = capsys.readouterr().err
        assert "serving metrics on http://127.0.0.1:" in err

    def test_bad_policy_rejected(self, model_file):
        with pytest.raises(SystemExit):
            self._run(model_file, "--policy", "yolo")

    def test_missing_model_file_fails_loudly(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(
                [
                    "serve-replay",
                    "--model", str(tmp_path / "nope.json"),
                    "--sessions", "5",
                ]
            )
