"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "tab3_4" in out
        assert "fig4" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_experiment_id(self):
        with pytest.raises(KeyError):
            main(["experiments", "--id", "tab99"])

    def test_unknown_log_level_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiments", "--id", "fig1", "--log-level", "LOUD"])


class TestCliObservability:
    """--metrics-out / --log-level and the root timing tree."""

    def test_metrics_out_writes_valid_snapshot(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        # fig1 needs no corpus, so this stays fast.
        assert main(["experiments", "--id", "fig1", "--metrics-out", str(path)]) == 0
        snapshot = json.loads(path.read_text())
        assert snapshot["schema"].startswith("repro.obs/")
        names = {m["name"] for m in snapshot["metrics"]}
        assert "repro_experiments_runs_total" in names
        assert "repro_span_duration_seconds" in names

    def test_root_span_tree_printed_to_stderr(self, capsys):
        assert main(["experiments", "--id", "fig1"]) == 0
        err = capsys.readouterr().err
        assert "repro.experiments:" in err
        assert "experiments.fig1:" in err

    def test_log_level_flag_accepted(self, capsys):
        assert main(
            ["experiments", "--id", "fig1", "--log-level", "ERROR"]
        ) == 0
