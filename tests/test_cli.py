"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "tab3_4" in out
        assert "fig4" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_experiment_id(self):
        with pytest.raises(KeyError):
            main(["experiments", "--id", "tab99"])
