"""Unit tests for FaultPlan: validation, the three spec forms, describe."""

import json

import pytest

from repro.faults import FaultPlan


class TestDefaults:
    def test_default_plan_is_noop(self):
        assert FaultPlan().is_noop

    def test_parse_none_and_empty_are_noop(self):
        assert FaultPlan.parse(None).is_noop
        assert FaultPlan.parse("").is_noop
        assert FaultPlan.parse("   ").is_noop

    def test_any_knob_defeats_noop(self):
        assert not FaultPlan(corrupt_fraction=0.1).is_noop
        assert not FaultPlan(kill_shard=0).is_noop
        assert not FaultPlan(reload_failures=1).is_noop
        assert not FaultPlan(reload_delay_s=0.1).is_noop
        assert not FaultPlan(partition_shard=0).is_noop
        assert not FaultPlan(slow_link_fraction=0.1).is_noop


class TestValidation:
    @pytest.mark.parametrize(
        "field",
        [
            "corrupt_fraction",
            "drop_fraction",
            "duplicate_fraction",
            "reorder_fraction",
            "skew_fraction",
        ],
    )
    def test_fractions_bounded(self, field):
        with pytest.raises(ValueError, match="must be in"):
            FaultPlan(**{field: 1.5})
        with pytest.raises(ValueError, match="must be in"):
            FaultPlan(**{field: -0.1})

    def test_negative_knobs_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(skew_s=-1)
        with pytest.raises(ValueError):
            FaultPlan(kill_shard=-1)
        with pytest.raises(ValueError):
            FaultPlan(kill_at_entry=0)
        with pytest.raises(ValueError):
            FaultPlan(kill_times=0)
        with pytest.raises(ValueError):
            FaultPlan(reload_failures=-1)
        with pytest.raises(ValueError):
            FaultPlan(reload_delay_s=-0.5)

    def test_partition_knobs_validated(self):
        with pytest.raises(ValueError, match="partition_shard"):
            FaultPlan(partition_shard=-1)
        with pytest.raises(ValueError, match="partition_at_entry"):
            FaultPlan(partition_shard=0, partition_at_entry=0)
        with pytest.raises(ValueError, match="partition_secs"):
            FaultPlan(partition_shard=0, partition_secs=0.0)

    def test_slow_link_knobs_validated(self):
        with pytest.raises(ValueError, match="slow_link_fraction"):
            FaultPlan(slow_link_fraction=1.5)
        with pytest.raises(ValueError, match="slow_link_fraction"):
            FaultPlan(slow_link_fraction=-0.1)
        with pytest.raises(ValueError, match="slow_link_ms"):
            FaultPlan(slow_link_fraction=0.5, slow_link_ms=-1.0)


class TestCompactSpec:
    def test_full_compact_form(self):
        plan = FaultPlan.parse(
            "corrupt=0.02,kill_shard=1@100,seed=7,reload_fail=2,"
            "reload_delay=0.5,kill_times=3,drop=0.01,duplicate=0.03,"
            "reorder=0.04"
        )
        assert plan.corrupt_fraction == 0.02
        assert plan.kill_shard == 1
        assert plan.kill_at_entry == 100
        assert plan.seed == 7
        assert plan.reload_failures == 2
        assert plan.reload_delay_s == 0.5
        assert plan.kill_times == 3
        assert plan.drop_fraction == 0.01
        assert plan.duplicate_fraction == 0.03
        assert plan.reorder_fraction == 0.04

    def test_kill_shard_without_at(self):
        plan = FaultPlan.parse("kill_shard=2")
        assert plan.kill_shard == 2
        assert plan.kill_at_entry == 1

    def test_skew_with_magnitude(self):
        plan = FaultPlan.parse("skew=0.01:120")
        assert plan.skew_fraction == 0.01
        assert plan.skew_s == 120.0

    def test_skew_fraction_only(self):
        plan = FaultPlan.parse("skew=0.05")
        assert plan.skew_fraction == 0.05
        assert plan.skew_s == 120.0  # default magnitude

    def test_partition_full_form(self):
        plan = FaultPlan.parse("partition_shard=1@10:0.5")
        assert plan.partition_shard == 1
        assert plan.partition_at_entry == 10
        assert plan.partition_secs == 0.5

    def test_partition_shard_only_uses_defaults(self):
        plan = FaultPlan.parse("partition_shard=2")
        assert plan.partition_shard == 2
        assert plan.partition_at_entry == 1
        assert plan.partition_secs == 2.0

    def test_partition_without_secs(self):
        plan = FaultPlan.parse("partition_shard=0@25")
        assert plan.partition_shard == 0
        assert plan.partition_at_entry == 25
        assert plan.partition_secs == 2.0

    def test_slow_link_full_form(self):
        plan = FaultPlan.parse("slow_link=0.25:2")
        assert plan.slow_link_fraction == 0.25
        assert plan.slow_link_ms == 2.0

    def test_slow_link_fraction_only(self):
        plan = FaultPlan.parse("slow_link=0.5")
        assert plan.slow_link_fraction == 0.5
        assert plan.slow_link_ms == 5.0  # default magnitude

    def test_partition_and_slow_link_compose_with_others(self):
        plan = FaultPlan.parse(
            "partition_shard=1@10:0.5,slow_link=0.25:2,corrupt=0.01,seed=9"
        )
        assert plan.partition_shard == 1
        assert plan.slow_link_fraction == 0.25
        assert plan.corrupt_fraction == 0.01
        assert plan.seed == 9

    def test_bad_partition_value_rejected(self):
        with pytest.raises(ValueError, match="partition_shard"):
            FaultPlan.parse("partition_shard=one@10:0.5")

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown fault spec key"):
            FaultPlan.parse("frobnicate=1")

    def test_bad_value_named_in_error(self):
        with pytest.raises(ValueError, match="bad value for fault spec key"):
            FaultPlan.parse("corrupt=lots")
        with pytest.raises(ValueError, match="kill_shard"):
            FaultPlan.parse("kill_shard=one")

    def test_missing_equals_rejected(self):
        with pytest.raises(ValueError, match="expected key=value"):
            FaultPlan.parse("corrupt")


class TestJsonSpec:
    def test_inline_json(self):
        plan = FaultPlan.parse('{"corrupt_fraction": 0.02, "kill_shard": 1}')
        assert plan.corrupt_fraction == 0.02
        assert plan.kill_shard == 1

    def test_invalid_json_rejected(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            FaultPlan.parse('{"corrupt_fraction": ')

    def test_unknown_json_key_rejected(self):
        with pytest.raises(ValueError, match="unknown fault plan key"):
            FaultPlan.parse('{"corrupt": 0.02}')

    def test_json_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({"drop_fraction": 0.1, "seed": 3}))
        plan = FaultPlan.parse(str(path))
        assert plan.drop_fraction == 0.1
        assert plan.seed == 3

    def test_round_trip_through_dict(self):
        plan = FaultPlan(corrupt_fraction=0.1, kill_shard=2, kill_times=4)
        assert FaultPlan.from_dict(plan.to_dict()) == plan


class TestDescribe:
    def test_noop_description(self):
        assert FaultPlan().describe() == "no faults"

    def test_describe_names_active_knobs(self):
        text = FaultPlan.parse("corrupt=0.02,kill_shard=1@100,kill_times=3").describe()
        assert "corrupt=0.02" in text
        assert "kill shard 1@100 x3" in text

    def test_describe_partition_and_slow_link(self):
        text = FaultPlan.parse(
            "partition_shard=1@10:0.5,slow_link=0.25:2"
        ).describe()
        assert "partition shard 1@10 for 0.5s" in text
        assert "slow_link=0.25:2ms" in text
