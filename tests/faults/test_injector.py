"""Unit tests for FaultInjector: determinism, record faults, hooks."""

import pytest

from repro.capture.weblog import MalformedRecordError
from repro.faults import FaultInjector, FaultPlan, InjectedFault

from tests.faults.conftest import make_entry


def _key(entry):
    # repr() so NaN (a corruption mode) compares equal to itself
    return (entry.subscriber_id, repr(entry.timestamp_s), entry.object_bytes)


class TestNoopPlan:
    def test_trace_passes_through_same_objects(self, small_trace):
        injector = FaultInjector(FaultPlan())
        out = injector.plan_trace(small_trace)
        assert out == small_trace
        assert all(a is b for a, b in zip(out, small_trace))
        assert injector.injections == []
        assert injector.affected_subscribers == set()

    def test_kill_only_plan_leaves_records_alone(self, small_trace):
        # Worker kills are not record faults; the trace is untouched.
        injector = FaultInjector(FaultPlan(kill_shard=0))
        out = injector.plan_trace(small_trace)
        assert all(a is b for a, b in zip(out, small_trace))


class TestDeterminism:
    def test_equal_plans_inject_equal_faults(self, small_trace):
        plan = FaultPlan(
            seed=11,
            corrupt_fraction=0.1,
            drop_fraction=0.05,
            duplicate_fraction=0.05,
            skew_fraction=0.05,
        )
        one = FaultInjector(plan)
        two = FaultInjector(plan)
        assert list(map(_key, one.plan_trace(small_trace))) == list(
            map(_key, two.plan_trace(small_trace))
        )
        assert one.injections == two.injections

    def test_different_seeds_differ(self, small_trace):
        plan = FaultPlan(seed=1, corrupt_fraction=0.2)
        other = FaultPlan(seed=2, corrupt_fraction=0.2)
        one = FaultInjector(plan).plan_trace(small_trace)
        two = FaultInjector(other).plan_trace(small_trace)
        assert list(map(_key, one)) != list(map(_key, two))


class TestRecordFaults:
    def test_corrupted_records_fail_validation(self, small_trace):
        injector = FaultInjector(FaultPlan(seed=5, corrupt_fraction=0.3))
        out = injector.plan_trace(small_trace)
        corrupted = [i for i in injector.injections if i.kind == "corrupt"]
        assert corrupted
        bad = 0
        for entry in out:
            try:
                entry.validate()
            except MalformedRecordError:
                bad += 1
        assert bad == len(corrupted)
        assert {i.subscriber_id for i in corrupted} <= injector.affected_subscribers

    def test_drop_shrinks_and_duplicate_grows(self, small_trace):
        dropped = FaultInjector(FaultPlan(seed=5, drop_fraction=0.5))
        assert len(dropped.plan_trace(small_trace)) < len(small_trace)
        doubled = FaultInjector(FaultPlan(seed=5, duplicate_fraction=0.5))
        assert len(doubled.plan_trace(small_trace)) > len(small_trace)

    def test_skew_moves_timestamps_backwards(self, small_trace):
        # skew larger than the whole trace span, so every skewed
        # timestamp lands strictly before the trace start
        injector = FaultInjector(
            FaultPlan(seed=5, skew_fraction=0.5, skew_s=500.0)
        )
        out = injector.plan_trace(small_trace)
        skewed = [i for i in injector.injections if i.kind == "skew"]
        assert skewed
        shifted = sum(1 for e in out if e.timestamp_s < 100.0)
        assert shifted == len(skewed)

    def test_reorder_marks_only_same_subscriber_swaps(self):
        # Alternating subscribers: any single adjacent swap crosses
        # subscribers, which the service is insensitive to — no
        # injection should be recorded for those.
        trace = [
            make_entry(subscriber=f"sub-{i % 2}", timestamp=100.0 + i)
            for i in range(40)
        ]
        injector = FaultInjector(FaultPlan(seed=5, reorder_fraction=0.4))
        out = injector.plan_trace(trace)
        assert sorted(map(_key, out)) == sorted(map(_key, trace))
        for injection in injector.injections:
            assert injection.kind == "reorder"


class TestShardFaultHook:
    def test_kills_matching_shard_at_entry(self):
        injector = FaultInjector(FaultPlan(kill_shard=1, kill_at_entry=3))
        entry = make_entry()
        # wrong shard: never fires
        for n in range(1, 10):
            injector.shard_fault_hook(0, entry, n)
        # right shard, before the planned index: no fire
        injector.shard_fault_hook(1, entry, 2)
        with pytest.raises(InjectedFault):
            injector.shard_fault_hook(1, entry, 3)
        assert injector.kills_fired == 1
        assert entry.subscriber_id in injector.affected_subscribers

    def test_kill_budget_respected(self):
        injector = FaultInjector(
            FaultPlan(kill_shard=0, kill_at_entry=1, kill_times=2)
        )
        entry = make_entry()
        for _ in range(2):
            with pytest.raises(InjectedFault):
                injector.shard_fault_hook(0, entry, 5)
        # budget spent: the shard lives from here on
        injector.shard_fault_hook(0, entry, 6)
        assert injector.kills_fired == 2


class TestReloadGate:
    def test_fails_planned_number_of_times(self):
        injector = FaultInjector(FaultPlan(reload_failures=2))
        for _ in range(2):
            with pytest.raises(OSError):
                injector.reload_gate()
        injector.reload_gate()  # third call passes
        kinds = [i.kind for i in injector.injections]
        assert kinds.count("reload_failure") == 2


class TestSummary:
    def test_summary_counts_by_kind(self, small_trace):
        injector = FaultInjector(FaultPlan(seed=3, corrupt_fraction=0.2))
        injector.plan_trace(small_trace)
        summary = injector.summary()
        assert summary["injected"] == len(injector.injections)
        assert summary["by_kind"].get("corrupt") == len(injector.injections)
        assert summary["affected_subscribers"] == len(
            injector.affected_subscribers
        )
