"""Unit tests for retry_with_backoff."""

import pytest

from repro.faults import retry_with_backoff


class _Flaky:
    """Fails the first ``failures`` calls with ``exc``, then returns 42."""

    def __init__(self, failures, exc=OSError):
        self.failures = failures
        self.exc = exc
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc(f"transient #{self.calls}")
        return 42


class TestRetryWithBackoff:
    def test_success_first_try_never_sleeps(self):
        sleeps = []
        assert retry_with_backoff(lambda: 7, sleep=sleeps.append) == 7
        assert sleeps == []

    def test_retries_with_exponential_schedule(self):
        sleeps = []
        flaky = _Flaky(2)
        result = retry_with_backoff(
            flaky, retries=3, base_delay_s=0.05, factor=2.0, sleep=sleeps.append
        )
        assert result == 42
        assert flaky.calls == 3
        assert sleeps == [0.05, 0.1]

    def test_delay_capped(self):
        sleeps = []
        flaky = _Flaky(4)
        retry_with_backoff(
            flaky,
            retries=4,
            base_delay_s=1.0,
            factor=10.0,
            max_delay_s=2.0,
            sleep=sleeps.append,
        )
        assert sleeps == [1.0, 2.0, 2.0, 2.0]

    def test_budget_exhausted_reraises_last(self):
        flaky = _Flaky(10)
        with pytest.raises(OSError, match="transient #3"):
            retry_with_backoff(flaky, retries=2, sleep=lambda _: None)
        assert flaky.calls == 3

    def test_non_retryable_propagates_immediately(self):
        flaky = _Flaky(1, exc=KeyError)
        with pytest.raises(KeyError):
            retry_with_backoff(
                flaky, retries=5, retry_on=(OSError,), sleep=lambda _: None
            )
        assert flaky.calls == 1

    def test_zero_retries_is_a_plain_call(self):
        flaky = _Flaky(1)
        with pytest.raises(OSError):
            retry_with_backoff(flaky, retries=0, sleep=lambda _: None)
        assert flaky.calls == 1

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            retry_with_backoff(lambda: 1, retries=-1)

    def test_on_retry_hook_sees_attempt_and_error(self):
        seen = []
        retry_with_backoff(
            _Flaky(2),
            retries=2,
            sleep=lambda _: None,
            on_retry=lambda attempt, exc: seen.append((attempt, str(exc))),
        )
        assert seen == [(1, "transient #1"), (2, "transient #2")]

    def test_custom_retry_on_tuple(self):
        flaky = _Flaky(1, exc=ValueError)
        assert (
            retry_with_backoff(
                flaky,
                retries=1,
                retry_on=(ValueError, OSError),
                sleep=lambda _: None,
            )
            == 42
        )
