"""Unit tests for retry_with_backoff."""

import pytest

from repro.faults import retry_with_backoff


class _Flaky:
    """Fails the first ``failures`` calls with ``exc``, then returns 42."""

    def __init__(self, failures, exc=OSError):
        self.failures = failures
        self.exc = exc
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc(f"transient #{self.calls}")
        return 42


class TestRetryWithBackoff:
    def test_success_first_try_never_sleeps(self):
        sleeps = []
        assert retry_with_backoff(lambda: 7, sleep=sleeps.append) == 7
        assert sleeps == []

    def test_retries_with_exponential_schedule(self):
        sleeps = []
        flaky = _Flaky(2)
        result = retry_with_backoff(
            flaky, retries=3, base_delay_s=0.05, factor=2.0, sleep=sleeps.append
        )
        assert result == 42
        assert flaky.calls == 3
        assert sleeps == [0.05, 0.1]

    def test_delay_capped(self):
        sleeps = []
        flaky = _Flaky(4)
        retry_with_backoff(
            flaky,
            retries=4,
            base_delay_s=1.0,
            factor=10.0,
            max_delay_s=2.0,
            sleep=sleeps.append,
        )
        assert sleeps == [1.0, 2.0, 2.0, 2.0]

    def test_budget_exhausted_reraises_last(self):
        flaky = _Flaky(10)
        with pytest.raises(OSError, match="transient #3"):
            retry_with_backoff(flaky, retries=2, sleep=lambda _: None)
        assert flaky.calls == 3

    def test_non_retryable_propagates_immediately(self):
        flaky = _Flaky(1, exc=KeyError)
        with pytest.raises(KeyError):
            retry_with_backoff(
                flaky, retries=5, retry_on=(OSError,), sleep=lambda _: None
            )
        assert flaky.calls == 1

    def test_zero_retries_is_a_plain_call(self):
        flaky = _Flaky(1)
        with pytest.raises(OSError):
            retry_with_backoff(flaky, retries=0, sleep=lambda _: None)
        assert flaky.calls == 1

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            retry_with_backoff(lambda: 1, retries=-1)

    def test_on_retry_hook_sees_attempt_and_error(self):
        seen = []
        retry_with_backoff(
            _Flaky(2),
            retries=2,
            sleep=lambda _: None,
            on_retry=lambda attempt, exc: seen.append((attempt, str(exc))),
        )
        assert seen == [(1, "transient #1"), (2, "transient #2")]

    def test_custom_retry_on_tuple(self):
        flaky = _Flaky(1, exc=ValueError)
        assert (
            retry_with_backoff(
                flaky,
                retries=1,
                retry_on=(ValueError, OSError),
                sleep=lambda _: None,
            )
            == 42
        )


class TestTotalDeadline:
    """max_elapsed_s caps wall-clock across attempts AND backoff."""

    @staticmethod
    def _fake_time():
        """An injectable clock advanced by the injectable sleep."""
        now = [0.0]

        def clock():
            return now[0]

        def sleep(seconds):
            now[0] += seconds

        return now, clock, sleep

    def test_deadline_exhaustion_reraises_despite_attempt_budget(self):
        now, clock, sleep = self._fake_time()
        flaky = _Flaky(100)
        with pytest.raises(OSError):
            retry_with_backoff(
                flaky,
                retries=1_000_000,  # the attempt budget is NOT the bound
                base_delay_s=0.1,
                factor=1.0,
                max_elapsed_s=1.0,
                sleep=sleep,
                clock=clock,
            )
        # 0.1s per retry, 1.0s budget: ~11 calls, nowhere near 1e6.
        assert flaky.calls < 20
        assert now[0] <= 1.2

    def test_sleep_clamped_to_remaining_budget(self):
        """The last backoff never overshoots the deadline."""
        now, clock, sleep = self._fake_time()
        sleeps = []

        def recording_sleep(seconds):
            sleeps.append(seconds)
            sleep(seconds)

        with pytest.raises(OSError):
            retry_with_backoff(
                _Flaky(100),
                retries=100,
                base_delay_s=0.4,
                factor=2.0,
                max_delay_s=10.0,
                max_elapsed_s=1.0,
                sleep=recording_sleep,
                clock=clock,
            )
        assert sum(sleeps) <= 1.0
        # schedule would be 0.4, 0.8, ... — the second is clamped to
        # the 0.6s remaining instead of overshooting
        assert sleeps == [0.4, pytest.approx(0.6)]

    def test_success_within_deadline_passes_through(self):
        now, clock, sleep = self._fake_time()
        flaky = _Flaky(2)
        assert (
            retry_with_backoff(
                flaky,
                retries=5,
                base_delay_s=0.1,
                max_elapsed_s=10.0,
                sleep=sleep,
                clock=clock,
            )
            == 42
        )
        assert flaky.calls == 3

    def test_non_positive_deadline_rejected(self):
        with pytest.raises(ValueError, match="max_elapsed_s"):
            retry_with_backoff(lambda: 1, max_elapsed_s=0.0)

    def test_deterministic_no_jitter(self):
        """Two identical runs sleep the identical schedule."""
        schedules = []
        for _ in range(2):
            now, clock, sleep = self._fake_time()
            sleeps = []

            def recording_sleep(seconds, sleeps=sleeps, sleep=sleep):
                sleeps.append(seconds)
                sleep(seconds)

            with pytest.raises(OSError):
                retry_with_backoff(
                    _Flaky(100),
                    retries=50,
                    base_delay_s=0.05,
                    max_elapsed_s=0.5,
                    sleep=recording_sleep,
                    clock=clock,
                )
            schedules.append(sleeps)
        assert schedules[0] == schedules[1]
