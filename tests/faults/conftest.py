"""Shared helpers for the fault-injection tests."""

from __future__ import annotations

import pytest

from repro.capture.weblog import WeblogEntry


def make_entry(subscriber="sub-a", timestamp=100.0, **overrides):
    """A minimal valid encrypted weblog entry."""
    defaults = dict(
        subscriber_id=subscriber,
        timestamp_s=timestamp,
        server_name="r1---sn-abc.googlevideo.com",
        server_ip="10.0.0.1",
        server_port=443,
        object_bytes=500_000,
        transaction_s=0.5,
        rtt_min_ms=10.0,
        rtt_avg_ms=20.0,
        rtt_max_ms=30.0,
        bdp_bytes=1000.0,
        bif_avg_bytes=500.0,
        bif_max_bytes=900.0,
        loss_pct=0.1,
        retx_pct=0.05,
        encrypted=True,
    )
    defaults.update(overrides)
    return WeblogEntry(**defaults)


@pytest.fixture
def small_trace():
    """60 valid entries over 6 subscribers, time-ordered."""
    return [
        make_entry(subscriber=f"sub-{i % 6}", timestamp=100.0 + i)
        for i in range(60)
    ]
