"""Tests for the Prometheus-style binary baseline."""

import numpy as np
import pytest

from repro.baselines.prometheus import BINARY_LABELS, PrometheusBaseline


@pytest.fixture(scope="module")
def fitted(stall_records):
    return PrometheusBaseline(n_estimators=15, random_state=0).fit(stall_records)


class TestPrometheusBaseline:
    def test_unfitted_raises(self, stall_records):
        with pytest.raises(RuntimeError):
            PrometheusBaseline().predict(stall_records)

    def test_binary_labels(self, fitted, stall_records):
        labels = fitted.labels_for(stall_records)
        assert set(labels) <= set(BINARY_LABELS)

    def test_uses_only_qos_features(self, fitted):
        """No chunk-size/time features — the point of the comparison."""
        from repro.core.features import stall_feature_names

        names = stall_feature_names()
        used = [names[i] for i in fitted._indices]
        assert used
        assert not any(name.startswith("chunk") for name in used)

    def test_predictions_binary(self, fitted, stall_records):
        predictions = fitted.predict(stall_records[:20])
        assert set(predictions) <= set(BINARY_LABELS)

    def test_evaluate_report(self, fitted, stall_records):
        report = fitted.evaluate(stall_records)
        assert report.labels == list(BINARY_LABELS)
        assert 0.4 < report.accuracy <= 1.0

    def test_cross_validate_not_perfect(self, fitted, stall_records):
        report = fitted.cross_validate(stall_records, n_splits=3)
        assert report.accuracy < 1.0
