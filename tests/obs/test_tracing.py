"""Span tracer: nested trees, aggregation, counters, decorator, threads."""

import threading

import pytest

from repro.obs import MetricsRegistry, Tracer, current_span, trace, traced
from repro.obs.tracing import get_tracer, set_tracer


@pytest.fixture
def tracer():
    """Install a fresh default tracer for the test, restore after."""
    fresh = Tracer(registry=MetricsRegistry())
    previous = set_tracer(fresh)
    yield fresh
    set_tracer(previous)


class TestSpanTrees:
    def test_nested_spans_build_a_tree(self, tracer):
        with trace("outer"):
            with trace("inner.a"):
                pass
            with trace("inner.b"):
                pass
        roots = tracer.roots()
        assert [r.name for r in roots] == ["outer"]
        assert sorted(roots[0].children) == ["inner.a", "inner.b"]

    def test_repeated_spans_aggregate_by_name(self, tracer):
        with trace("outer"):
            for _ in range(5):
                with trace("inner"):
                    pass
        inner = tracer.roots()[0].children["inner"]
        assert inner.count == 5
        assert inner.min_s <= inner.max_s
        assert inner.total_s >= 5 * inner.min_s

    def test_parent_duration_covers_children(self, tracer):
        with trace("outer"):
            with trace("inner"):
                pass
        outer = tracer.roots()[0]
        assert outer.total_s >= outer.children["inner"].total_s

    def test_per_span_counters(self, tracer):
        with trace("work") as span:
            span.add("rows", 100)
            span.add("rows", 50)
            span.add("errors")
        node = tracer.roots()[0]
        assert node.counters == {"rows": 150.0, "errors": 1.0}

    def test_counters_aggregate_across_repeats(self, tracer):
        for _ in range(3):
            with trace("work") as span:
                span.add("rows", 10)
        node = tracer.roots()[0]
        assert node.count == 3
        assert node.counters["rows"] == 30.0

    def test_duration_recorded_on_span_after_close(self, tracer):
        with trace("work") as span:
            assert span.duration_s is None
        assert span.duration_s is not None
        assert span.duration_s >= 0.0

    def test_current_span(self, tracer):
        assert current_span() is None
        with trace("outer"):
            assert current_span().name == "outer"
            with trace("inner"):
                assert current_span().name == "inner"
            assert current_span().name == "outer"
        assert current_span() is None

    def test_exception_still_closes_span(self, tracer):
        with pytest.raises(RuntimeError):
            with trace("boom"):
                raise RuntimeError("x")
        assert [r.name for r in tracer.roots()] == ["boom"]

    def test_reset(self, tracer):
        with trace("x"):
            pass
        tracer.reset()
        assert tracer.roots() == []


class TestTracedDecorator:
    def test_named(self, tracer):
        @traced("ml.fit")
        def fit():
            return 42

        assert fit() == 42
        assert [r.name for r in tracer.roots()] == ["ml.fit"]

    def test_bare_uses_module_and_function(self, tracer):
        @traced
        def compute():
            return 1

        compute()
        (root,) = tracer.roots()
        assert root.name.endswith(".compute")


class TestRendering:
    def test_render_tree_text(self, tracer):
        with trace("outer") as span:
            span.add("rows", 7)
            with trace("inner"):
                pass
        text = tracer.render()
        assert "outer:" in text
        assert "  inner:" in text
        assert "rows=7" in text
        assert "(n=1" in text

    def test_to_dict_round_trips(self, tracer):
        with trace("outer") as span:
            span.add("rows", 3)
            with trace("inner"):
                pass
        (data,) = tracer.to_dict()
        assert data["name"] == "outer"
        assert data["count"] == 1
        assert data["counters"] == {"rows": 3.0}
        assert data["children"][0]["name"] == "inner"


class TestSpanHistogram:
    def test_closed_spans_feed_duration_histogram(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry=registry)
        with tracer.span("layer.op"):
            pass
        family = registry.get("repro_span_duration_seconds")
        assert family is not None
        assert family.labels(span="layer.op").count == 1


class TestThreading:
    def test_threads_have_independent_stacks(self, tracer):
        errors = []

        def work(tag):
            try:
                for _ in range(200):
                    with trace(f"root.{tag}"):
                        with trace("child"):
                            assert current_span().name == "child"
            except Exception as exc:    # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=work, args=(t,)) for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        roots = {r.name: r for r in tracer.roots()}
        assert len(roots) == 4
        for tag in range(4):
            node = roots[f"root.{tag}"]
            assert node.count == 200
            assert node.children["child"].count == 200


def test_default_tracer_is_process_wide():
    assert get_tracer() is get_tracer()


class TestConcurrentSpanTrees:
    def test_deep_nesting_does_not_cross_threads(self):
        """Concurrent `trace()` trees stay per-thread, even deeply nested.

        Each thread builds root.<t> → mid → leaf repeatedly; if the
        per-thread stacks ever interleaved, a leaf would attach under
        another thread's mid (child counts would drift) or
        `current_span()` would name a foreign span.
        """
        import threading as _threading

        tracer = Tracer(registry=MetricsRegistry())
        previous = set_tracer(tracer)
        errors = []
        barrier = _threading.Barrier(4)

        def work(tag):
            try:
                barrier.wait(timeout=10)
                for _ in range(100):
                    with trace(f"root.{tag}") as root_span:
                        with trace("mid"):
                            with trace("leaf") as leaf:
                                leaf.add("thread", 0)
                                assert current_span() is leaf
                        assert current_span() is root_span
                    assert current_span() is None
            except Exception as exc:    # pragma: no cover
                errors.append(exc)

        try:
            threads = [
                _threading.Thread(target=work, args=(t,)) for t in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            set_tracer(previous)
        assert not errors
        roots = {r.name: r for r in tracer.roots()}
        assert len(roots) == 4
        for tag in range(4):
            node = roots[f"root.{tag}"]
            assert node.count == 100
            mid = node.children["mid"]
            assert mid.count == 100
            assert mid.children["leaf"].count == 100
