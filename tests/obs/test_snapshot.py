"""JSON snapshot exporter."""

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    Tracer,
    registry_snapshot,
    write_snapshot,
)
from repro.obs.snapshot import SNAPSHOT_SCHEMA


def _small_registry():
    registry = MetricsRegistry()
    registry.counter("c_total", "C.", labelnames=("k",)).labels(k="a").inc(4)
    registry.gauge("g", "G.").set(1.25)
    hist = registry.histogram("h_seconds", "H.", buckets=[1.0, 2.0])
    hist.observe(0.5)
    hist.observe(5.0)
    return registry


class TestSnapshotShape:
    def test_schema_and_sections(self):
        snapshot = registry_snapshot(_small_registry(), Tracer())
        assert snapshot["schema"] == SNAPSHOT_SCHEMA
        assert {m["name"] for m in snapshot["metrics"]} == {
            "c_total", "g", "h_seconds",
        }
        assert snapshot["spans"] == []

    def test_counter_and_gauge_samples(self):
        snapshot = registry_snapshot(_small_registry(), Tracer())
        by_name = {m["name"]: m for m in snapshot["metrics"]}
        assert by_name["c_total"]["samples"] == [
            {"labels": {"k": "a"}, "value": 4.0}
        ]
        assert by_name["g"]["samples"] == [{"labels": {}, "value": 1.25}]

    def test_histogram_sample_payload(self):
        snapshot = registry_snapshot(_small_registry(), Tracer())
        by_name = {m["name"]: m for m in snapshot["metrics"]}
        (sample,) = by_name["h_seconds"]["samples"]
        assert sample["count"] == 2
        assert sample["sum"] == 5.5
        assert sample["min"] == 0.5
        assert sample["max"] == 5.0
        assert sample["buckets"][-1]["le"] == "+Inf"
        assert sample["buckets"][-1]["count"] == 2
        assert set(sample["quantiles"]) == {"p50", "p90", "p99"}

    def test_spans_included(self):
        tracer = Tracer(registry=MetricsRegistry())
        with tracer.span("layer.op") as span:
            span.add("rows", 3)
        snapshot = registry_snapshot(MetricsRegistry(), tracer)
        (root,) = snapshot["spans"]
        assert root["name"] == "layer.op"
        assert root["counters"] == {"rows": 3.0}


class TestWriteSnapshot:
    def test_writes_valid_json(self, tmp_path):
        path = tmp_path / "metrics.json"
        written = write_snapshot(str(path), _small_registry(), Tracer())
        loaded = json.loads(path.read_text())
        assert loaded == written
        assert loaded["schema"] == SNAPSHOT_SCHEMA

    def test_empty_histogram_serialises_finite(self, tmp_path):
        registry = MetricsRegistry()
        registry.histogram("h", "empty")
        path = tmp_path / "m.json"
        write_snapshot(str(path), registry, Tracer())
        # json.load (strict JSON has no Infinity) must not choke.
        loaded = json.loads(path.read_text())
        (sample,) = loaded["metrics"][0]["samples"]
        assert sample["min"] == 0.0
        assert sample["max"] == 0.0


class TestMergeSnapshots:
    def _two_registries(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c_total", "C.").inc(2)
        b.counter("c_total", "C.").inc(3)
        a.gauge("g", "G.").set(1.0)
        b.gauge("g", "G.").set(2.0)
        ha = a.histogram("h_seconds", "H.", buckets=[1.0, 2.0])
        hb = b.histogram("h_seconds", "H.", buckets=[1.0, 2.0])
        ha.observe(0.5)
        hb.observe(1.5)
        hb.observe(5.0)
        return a, b

    def test_counters_and_gauges_sum(self):
        from repro.obs import merge_snapshots

        a, b = self._two_registries()
        merged = merge_snapshots(
            registry_snapshot(a, Tracer()), registry_snapshot(b, Tracer())
        )
        by_name = {m["name"]: m for m in merged["metrics"]}
        assert by_name["c_total"]["samples"][0]["value"] == 5.0
        assert by_name["g"]["samples"][0]["value"] == 3.0

    def test_histograms_fold_and_requantile(self):
        from repro.obs import merge_snapshots

        a, b = self._two_registries()
        merged = merge_snapshots(
            registry_snapshot(a, Tracer()), registry_snapshot(b, Tracer())
        )
        by_name = {m["name"]: m for m in merged["metrics"]}
        (sample,) = by_name["h_seconds"]["samples"]
        assert sample["count"] == 3
        assert sample["sum"] == pytest.approx(7.0)
        assert sample["min"] == 0.5
        assert sample["max"] == 5.0
        assert sample["buckets"][-1]["count"] == 3
        # Quantiles are recomputed from the merged buckets, not copied.
        assert 0.5 <= sample["quantiles"]["p50"] <= 2.0
        assert sample["quantiles"]["p99"] <= 5.0

    def test_single_snapshot_round_trips(self):
        from repro.obs import merge_snapshots

        a, _ = self._two_registries()
        snapshot = registry_snapshot(a, Tracer())
        merged = merge_snapshots(snapshot)
        assert {m["name"] for m in merged["metrics"]} == {
            m["name"] for m in snapshot["metrics"]
        }

    def test_merged_output_is_json_safe(self):
        from repro.obs import merge_snapshots

        a, b = self._two_registries()
        merged = merge_snapshots(
            registry_snapshot(a, Tracer()), registry_snapshot(b, Tracer())
        )
        json.dumps(merged)

    def test_merge_requires_a_snapshot(self):
        from repro.obs import merge_snapshots

        with pytest.raises(ValueError):
            merge_snapshots()

    def test_merge_rejects_foreign_schema(self):
        from repro.obs import merge_snapshots

        with pytest.raises(ValueError):
            merge_snapshots({"schema": "something/else", "metrics": []})

    def test_merge_rejects_bucket_mismatch(self):
        from repro.obs import merge_snapshots

        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", "H.", buckets=[1.0]).observe(0.5)
        b.histogram("h", "H.", buckets=[1.0, 2.0]).observe(0.5)
        with pytest.raises(ValueError):
            merge_snapshots(
                registry_snapshot(a, Tracer()),
                registry_snapshot(b, Tracer()),
            )

    def test_spans_concatenate(self):
        from repro.obs import merge_snapshots

        t1, t2 = Tracer(registry=MetricsRegistry()), Tracer(
            registry=MetricsRegistry()
        )
        with t1.span("a"):
            pass
        with t2.span("b"):
            pass
        merged = merge_snapshots(
            registry_snapshot(MetricsRegistry(), t1),
            registry_snapshot(MetricsRegistry(), t2),
        )
        assert [s["name"] for s in merged["spans"]] == ["a", "b"]
