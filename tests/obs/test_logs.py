"""Structured key=value logging."""

import io
import logging

import pytest

from repro.obs import configure_logging, get_logger
from repro.obs.logs import format_event


@pytest.fixture
def stream():
    buffer = io.StringIO()
    configure_logging("DEBUG", stream=buffer)
    yield buffer
    # Restore a quiet default so other tests are unaffected.
    configure_logging("WARNING", stream=io.StringIO())


class TestFormatEvent:
    def test_plain_fields(self):
        assert (
            format_event("session_closed", {"subscriber": "s1", "chunks": 12})
            == "event=session_closed subscriber=s1 chunks=12"
        )

    def test_values_with_spaces_are_quoted(self):
        assert (
            format_event("alarm", {"reason": "stall ratio 60%"})
            == 'event=alarm reason="stall ratio 60%"'
        )

    def test_floats_are_compact(self):
        assert format_event("x", {"ratio": 0.3333333333}) == (
            "event=x ratio=0.333333"
        )

    def test_none_and_bool(self):
        assert format_event("x", {"a": None, "b": True}) == (
            "event=x a=none b=true"
        )


class TestLogger:
    def test_emits_key_value_line(self, stream):
        get_logger("capture").info("session_observed", chunks=3)
        line = stream.getvalue().strip()
        assert "logger=repro.capture" in line
        assert "level=info" in line
        assert "event=session_observed" in line
        assert "chunks=3" in line
        assert line.startswith("ts=")

    def test_level_filtering(self, stream):
        configure_logging("WARNING", stream=stream)
        logger = get_logger("x")
        logger.debug("quiet")
        logger.info("quiet_too")
        logger.warning("loud")
        output = stream.getvalue()
        assert "quiet" not in output
        assert "event=loud" in output

    def test_exception_appends_traceback(self, stream):
        logger = get_logger("y")
        try:
            raise ValueError("boom")
        except ValueError:
            logger.exception("callback_failed", callback="alarm")
        output = stream.getvalue()
        assert "event=callback_failed" in output
        assert "ValueError: boom" in output

    def test_exception_value_quotes_are_escaped(self, stream):
        logger = get_logger("y")
        try:
            raise ValueError('path "/tmp/x" missing')
        except ValueError:
            logger.exception("callback_failed", callback="alarm")
        line = stream.getvalue().strip()
        # The exc="..." payload embeds file paths quoted by the
        # traceback itself; they must be escaped so the line still
        # splits on spaces outside (unescaped) quotes.
        exc_part = line.split(' exc="', 1)[1]
        assert exc_part.endswith('"')
        body = exc_part[:-1]
        assert '"' not in body.replace('\\"', "")

    def test_configure_is_idempotent(self, stream):
        configure_logging("INFO", stream=stream)
        configure_logging("INFO", stream=stream)
        root = logging.getLogger("repro")
        handlers = [
            h for h in root.handlers if getattr(h, "_repro_obs", False)
        ]
        assert len(handlers) == 1

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            configure_logging("LOUD")

    def test_does_not_propagate_to_root(self, stream):
        assert logging.getLogger("repro").propagate is False
