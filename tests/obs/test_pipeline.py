"""Trace propagation layer: contexts, staged buffers, exemplars."""

import zlib

import pytest

from repro.obs import (
    LATENCY_BUCKETS,
    STAGES,
    MetricsRegistry,
    PipelineTelemetry,
    TraceContext,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


@pytest.fixture
def telemetry(registry):
    return PipelineTelemetry(registry=registry, sample_every=1)


class TestTraceContext:
    def test_trace_id_is_deterministic(self):
        a = TraceContext("sub-007", 42, sampled=False)
        b = TraceContext("sub-007", 42, sampled=True)
        assert a.trace_id == b.trace_id
        expected = f"{zlib.crc32(b'sub-007'):08x}-00000042"
        assert a.trace_id == expected

    def test_different_subscribers_differ(self):
        assert (
            TraceContext("sub-001", 5, False).trace_id
            != TraceContext("sub-002", 5, False).trace_id
        )

    def test_unsampled_context_has_no_stage_dict(self):
        assert TraceContext("s", 0, sampled=False).stages is None
        assert TraceContext("s", 0, sampled=True).stages == {}

    def test_sampling_cadence(self, registry):
        telemetry = PipelineTelemetry(registry=registry, sample_every=4)
        sampled = [
            telemetry.trace_context("s", seq).sampled for seq in range(8)
        ]
        assert sampled == [True, False, False, False] * 2

    def test_sample_every_must_be_positive(self, registry):
        with pytest.raises(ValueError):
            PipelineTelemetry(registry=registry, sample_every=0)


class TestShardTelemetry:
    def test_notes_are_buffered_until_flush(self, telemetry, registry):
        shard = telemetry.for_shard(0)
        shard.note("validate", 0.001)
        shard.note("validate", 0.002)
        family = registry.get("repro_serving_stage_seconds")
        assert family.labels(stage="validate").count == 0
        shard.flush()
        assert family.labels(stage="validate").count == 2

    def test_note_mirrors_onto_sampled_context(self, telemetry):
        ctx = telemetry.trace_context("s", 0)
        shard = telemetry.for_shard(0)
        shard.note("track", 0.5, ctx)
        shard.note("track", 0.25, ctx)
        assert ctx.stages["track"] == pytest.approx(0.75)

    def test_unsampled_context_not_written(self, registry):
        telemetry = PipelineTelemetry(registry=registry, sample_every=2)
        ctx = telemetry.trace_context("s", 1)
        telemetry.for_shard(0).note("track", 0.5, ctx)
        assert ctx.stages is None

    def test_high_water_forces_flush(self, telemetry, registry):
        from repro.obs.pipeline import _FLUSH_HIGH_WATER

        shard = telemetry.for_shard(0)
        for _ in range(_FLUSH_HIGH_WATER):
            shard.note("queue_wait", 0.001)
        family = registry.get("repro_serving_stage_seconds")
        assert family.labels(stage="queue_wait").count == _FLUSH_HIGH_WATER

    def test_complete_records_e2e_and_exemplar(self, telemetry, registry):
        ctx = telemetry.trace_context("sub-001", 0)
        ctx.t_submit = 10.0
        shard = telemetry.for_shard(3)
        shard.note("validate", 0.25, ctx)
        shard.complete(ctx, 10.5)
        shard.flush()
        assert registry.get("repro_serving_e2e_seconds").count == 1
        (exemplar,) = telemetry.exemplars()
        assert exemplar["trace_id"] == ctx.trace_id
        assert exemplar["shard"] == 3
        assert exemplar["name"] == "e2e"
        assert exemplar["duration_s"] == pytest.approx(0.5)
        assert exemplar["children"] == [
            {"name": "validate", "duration_s": pytest.approx(0.25)}
        ]

    def test_exemplar_children_in_stage_order(self, telemetry):
        ctx = telemetry.trace_context("s", 0)
        shard = telemetry.for_shard(0)
        # Note in reverse order; the span tree must come out in STAGES order.
        shard.note("diagnose", 0.004, ctx)
        shard.note("queue_wait", 0.001, ctx)
        shard.note("validate", 0.002, ctx)
        shard.complete(ctx, 1.0)
        (exemplar,) = telemetry.exemplars()
        assert [c["name"] for c in exemplar["children"]] == [
            "queue_wait", "validate", "diagnose",
        ]


class TestPipelineTelemetry:
    def test_note_submit_buffers_and_flushes(self, telemetry, registry):
        ctx = telemetry.trace_context("s", 0)
        ctx.t_submit, ctx.t_enqueued = 1.0, 1.5
        telemetry.note_submit(ctx)
        family = registry.get("repro_serving_stage_seconds")
        assert family.labels(stage="submit").count == 0
        telemetry.flush()
        assert family.labels(stage="submit").count == 1
        assert family.labels(stage="submit").sum == pytest.approx(0.5)
        assert ctx.stages["submit"] == pytest.approx(0.5)

    def test_exemplar_pool_is_bounded(self, registry):
        telemetry = PipelineTelemetry(
            registry=registry, sample_every=1, max_exemplars=4
        )
        shard = telemetry.for_shard(0)
        for seq in range(10):
            ctx = telemetry.trace_context("s", seq)
            shard.complete(ctx, 1.0)
        assert len(telemetry.exemplars()) == 4
        assert [e["seq"] for e in telemetry.exemplars()] == [6, 7, 8, 9]

    def test_stage_histogram_rejects_unknown(self, telemetry):
        with pytest.raises(KeyError):
            telemetry.stage_histogram("not_a_stage")

    def test_stage_snapshot_shape(self, telemetry):
        shard = telemetry.for_shard(0)
        shard.note("validate", 0.002)
        ctx = telemetry.trace_context("s", 0)
        ctx.t_submit = 0.0
        shard.complete(ctx, 0.040)
        shard.flush()
        snapshot = telemetry.stage_snapshot()
        assert set(snapshot["stages"]) == set(STAGES)
        assert snapshot["stages"]["validate"]["count"] == 1
        assert snapshot["stages"]["validate"]["mean_s"] == pytest.approx(0.002)
        assert snapshot["e2e"]["count"] == 1
        assert snapshot["e2e"]["p99_s"] == pytest.approx(0.040)
        assert snapshot["exemplars_retained"] == 1
        assert snapshot["exemplars_sampled"] == 1
        assert snapshot["sample_every"] == 1

    def test_empty_snapshot_is_finite(self, telemetry):
        snapshot = telemetry.stage_snapshot()
        for stage in snapshot["stages"].values():
            assert stage["count"] == 0
            assert stage["mean_s"] == 0.0
            assert stage["p99_s"] == 0.0
        assert snapshot["e2e"]["count"] == 0

    def test_buckets_cover_sub_millisecond(self):
        assert min(LATENCY_BUCKETS) < 0.001
