"""Exact Prometheus text-exposition format."""

import re

import pytest

from repro.obs import MetricsRegistry, render_prometheus
from repro.obs.exposition import escape_label_value, format_sample_line

#: One sample line: name, optional {labels}, then a number / +Inf / NaN.
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\")*\})?"
    r" (\+Inf|-Inf|NaN|-?[0-9.e+-]+)$"
)


def _assert_parses(text: str) -> None:
    """Line-by-line validation of the text format."""
    for line in text.splitlines():
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            continue
        assert _SAMPLE_RE.match(line), f"unparseable line: {line!r}"


class TestExactOutput:
    def test_counter_exact(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", "Jobs processed.").inc(3)
        assert render_prometheus(registry) == (
            "# HELP jobs_total Jobs processed.\n"
            "# TYPE jobs_total counter\n"
            "jobs_total 3\n"
        )

    def test_labelled_counter_exact(self):
        registry = MetricsRegistry()
        family = registry.counter("jobs_total", "Jobs.", labelnames=("kind",))
        family.labels(kind="fast").inc(2)
        family.labels(kind="slow").inc()
        assert render_prometheus(registry) == (
            "# HELP jobs_total Jobs.\n"
            "# TYPE jobs_total counter\n"
            'jobs_total{kind="fast"} 2\n'
            'jobs_total{kind="slow"} 1\n'
        )

    def test_gauge_exact(self):
        registry = MetricsRegistry()
        registry.gauge("queue_depth", "Depth.").set(1.5)
        assert render_prometheus(registry) == (
            "# HELP queue_depth Depth.\n"
            "# TYPE queue_depth gauge\n"
            "queue_depth 1.5\n"
        )

    def test_histogram_exact(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "latency_seconds", "Latency.", buckets=[0.5, 1.0]
        )
        for v in (0.2, 0.7, 3.0):
            hist.observe(v)
        assert render_prometheus(registry) == (
            "# HELP latency_seconds Latency.\n"
            "# TYPE latency_seconds histogram\n"
            'latency_seconds_bucket{le="0.5"} 1\n'
            'latency_seconds_bucket{le="1"} 2\n'
            'latency_seconds_bucket{le="+Inf"} 3\n'
            "latency_seconds_sum 3.9\n"
            "latency_seconds_count 3\n"
        )

    def test_labelled_histogram_puts_le_last(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "latency_seconds", labelnames=("op",), buckets=[1.0]
        )
        hist.labels(op="read").observe(0.4)
        text = render_prometheus(registry)
        assert 'latency_seconds_bucket{op="read",le="1"} 1' in text
        assert 'latency_seconds_sum{op="read"} 0.4' in text
        assert 'latency_seconds_count{op="read"} 1' in text


class TestEscaping:
    def test_label_value_escapes(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"

    def test_escaped_values_render_and_parse(self):
        registry = MetricsRegistry()
        family = registry.counter("c_total", labelnames=("path",))
        family.labels(path='with "quotes" and\nnewline').inc()
        text = render_prometheus(registry)
        _assert_parses(text)

    def test_format_sample_line_without_labels(self):
        assert format_sample_line("x", {}, 2.0) == "x 2"


class TestWholeRegistryParses:
    def test_every_line_parses(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "A.", labelnames=("x",)).labels(x="1").inc()
        registry.gauge("b", "B gauge.").set(-2.25)
        hist = registry.histogram("c_seconds", "C.", buckets=[0.1, 1, 10])
        hist.observe(0.05)
        hist.observe(5)
        text = render_prometheus(registry)
        _assert_parses(text)
        assert text.endswith("\n")

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_default_process_registry_parses(self):
        # The real, instrumented process registry must also expose cleanly.
        import repro.core.framework    # noqa: F401  (registers metrics)
        import repro.realtime.monitor  # noqa: F401

        text = render_prometheus()
        _assert_parses(text)
        assert "# TYPE repro_realtime_open_sessions gauge" in text
        assert "# TYPE repro_ml_predictions_total counter" in text


class TestEscapingExhaustive:
    def test_all_three_escapes_in_one_value_exact(self):
        registry = MetricsRegistry()
        family = registry.counter("c_total", "C.", labelnames=("v",))
        family.labels(v='q"q \\ back\nnext').inc()
        text = render_prometheus(registry)
        assert (
            'c_total{v="q\\"q \\\\ back\\nnext"} 1\n' in text
        )
        _assert_parses(text)

    def test_histogram_label_values_escaped(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "h_seconds", "H.", labelnames=("op",), buckets=[1.0]
        )
        hist.labels(op='read "raw"\n').observe(0.5)
        text = render_prometheus(registry)
        assert 'op="read \\"raw\\"\\n"' in text
        _assert_parses(text)

    def test_escape_is_idempotent_on_clean_values(self):
        assert escape_label_value("plain value_1.2") == "plain value_1.2"

    def test_render_is_consistent_under_concurrent_writes(self):
        # The snapshot-first renderer must produce parseable output
        # while other threads are mutating the registry.
        import threading

        registry = MetricsRegistry()
        hist = registry.histogram("h_seconds", "H.", buckets=[0.5, 1.0])
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                hist.observe(0.7)

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(50):
                text = render_prometheus(registry)
                _assert_parses(text)
                # Internal consistency of each scrape: +Inf bucket,
                # sum and count all come from one locked snapshot.
                for line in text.splitlines():
                    if line.startswith('h_seconds_bucket{le="+Inf"}'):
                        inf_count = float(line.rsplit(" ", 1)[1])
                    elif line.startswith("h_seconds_count"):
                        count = float(line.rsplit(" ", 1)[1])
                assert inf_count == count
        finally:
            stop.set()
            thread.join()
