"""Metrics HTTP endpoint: scrape semantics over the stdlib server."""

from __future__ import annotations

import urllib.error
import urllib.request

import pytest

from repro.obs import get_registry, start_metrics_server
from repro.obs.httpd import CONTENT_TYPE, MetricsServer


@pytest.fixture()
def server():
    server = start_metrics_server(port=0)
    yield server
    server.close()


def _get(url):
    with urllib.request.urlopen(url, timeout=5.0) as response:
        return response.status, dict(response.headers), response.read().decode()


class TestScrape:
    def test_metrics_path_serves_exposition(self, server):
        get_registry().counter(
            "repro_test_httpd_scrapes_total", "Test family."
        ).inc()
        status, headers, body = _get(server.url)
        assert status == 200
        assert headers["Content-Type"] == CONTENT_TYPE
        assert "# TYPE repro_test_httpd_scrapes_total counter" in body
        assert "repro_test_httpd_scrapes_total" in body

    def test_root_path_serves_exposition_too(self, server):
        status, _, body = _get(f"http://127.0.0.1:{server.port}/")
        assert status == 200
        assert "# TYPE" in body

    def test_other_paths_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"http://127.0.0.1:{server.port}/not-metrics")
        assert excinfo.value.code == 404

    def test_scrape_reflects_live_updates(self, server):
        counter = get_registry().counter(
            "repro_test_httpd_live_total", "Test family."
        )
        counter.inc(3)
        _, _, before = _get(server.url)
        counter.inc(2)
        _, _, after = _get(server.url)
        assert before != after
        assert "repro_test_httpd_live_total 5" in after


class TestLifecycle:
    def test_ephemeral_port_resolved(self, server):
        assert server.port > 0
        assert str(server.port) in server.url

    def test_close_releases_port(self):
        server = start_metrics_server(port=0)
        url = server.url
        server.close()
        with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
            _get(url)

    def test_context_manager(self):
        with start_metrics_server(port=0) as server:
            status, _, _ = _get(server.url)
            assert status == 200

    def test_two_servers_coexist(self):
        with MetricsServer(port=0) as first, MetricsServer(port=0) as second:
            assert first.port != second.port
            assert _get(first.url)[0] == 200
            assert _get(second.url)[0] == 200


class TestHealthEndpoint:
    def test_health_serves_provider_json(self):
        import json

        payload = {"state": "running", "shards": 4, "slo": {"ok": True}}
        with start_metrics_server(port=0, health=lambda: payload) as server:
            status, headers, body = _get(
                f"http://127.0.0.1:{server.port}/health"
            )
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        assert json.loads(body) == payload

    def test_health_404_without_provider(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"http://127.0.0.1:{server.port}/health")
        assert excinfo.value.code == 404

    def test_health_reflects_live_state(self):
        state = {"n": 0}
        with start_metrics_server(port=0, health=lambda: state) as server:
            import json

            url = f"http://127.0.0.1:{server.port}/health"
            assert json.loads(_get(url)[2]) == {"n": 0}
            state["n"] = 7
            assert json.loads(_get(url)[2]) == {"n": 7}

    def test_provider_exception_is_500_not_crash(self):
        def broken():
            raise RuntimeError("boom")

        with start_metrics_server(port=0, health=broken) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(f"http://127.0.0.1:{server.port}/health")
            assert excinfo.value.code == 500
            # The server survives: /metrics still answers.
            assert _get(server.url)[0] == 200
