"""Counter/gauge/histogram semantics, labels, quantiles, thread-safety."""

import threading

import numpy as np
import pytest

from repro.obs import MetricsRegistry
from repro.obs.registry import DEFAULT_BUCKETS, Histogram


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_increments(self, registry):
        counter = registry.counter("c_total", "help")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative_increment(self, registry):
        counter = registry.counter("c_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labelled_children_are_independent(self, registry):
        family = registry.counter("c_total", labelnames=("kind",))
        family.labels(kind="a").inc(5)
        family.labels(kind="b").inc(7)
        assert family.labels(kind="a").value == 5
        assert family.labels(kind="b").value == 7

    def test_same_labels_return_same_child(self, registry):
        family = registry.counter("c_total", labelnames=("kind",))
        assert family.labels(kind="x") is family.labels(kind="x")

    def test_wrong_label_names_rejected(self, registry):
        family = registry.counter("c_total", labelnames=("kind",))
        with pytest.raises(ValueError):
            family.labels(wrong="x")
        with pytest.raises(ValueError):
            family.labels()

    def test_unlabelled_family_rejects_bare_calls_when_labelled(self, registry):
        family = registry.counter("c_total", labelnames=("kind",))
        with pytest.raises(ValueError):
            family.inc()


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("g")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(7)
        assert gauge.value == 5.0

    def test_can_go_negative(self, registry):
        gauge = registry.gauge("g")
        gauge.dec(3)
        assert gauge.value == -3.0


class TestHistogram:
    def test_count_sum_mean(self, registry):
        hist = registry.histogram("h", buckets=[1, 2, 4])
        for v in (0.5, 1.5, 3.0, 8.0):
            hist.observe(v)
        assert hist.count == 4
        assert hist.sum == pytest.approx(13.0)
        assert hist._require_default().mean == pytest.approx(3.25)

    def test_cumulative_buckets(self, registry):
        hist = registry.histogram("h", buckets=[1, 2, 4])
        for v in (0.5, 1.5, 3.0, 8.0):
            hist.observe(v)
        child = hist._require_default()
        assert child.bounds == (1.0, 2.0, 4.0, float("inf"))
        assert child.cumulative_counts() == [1, 2, 3, 4]

    def test_quantiles_on_uniform_distribution(self, registry):
        # Uniform values over [0, 100) with bucket bounds every 5:
        # interpolation should recover quantiles within one bucket width.
        hist = registry.histogram(
            "h", buckets=[5 * i for i in range(1, 21)]
        )
        rng = np.random.default_rng(42)
        for v in rng.uniform(0, 100, size=20_000):
            hist.observe(float(v))
        assert hist.quantile(0.5) == pytest.approx(50.0, abs=2.5)
        assert hist.quantile(0.9) == pytest.approx(90.0, abs=2.5)
        assert hist.quantile(0.99) == pytest.approx(99.0, abs=2.5)

    def test_quantiles_on_exponential_distribution(self, registry):
        hist = registry.histogram(
            "h", buckets=[0.1 * i for i in range(1, 101)]
        )
        rng = np.random.default_rng(7)
        for v in rng.exponential(1.0, size=20_000):
            hist.observe(float(v))
        # Median of Exp(1) is ln 2 ≈ 0.693.
        assert hist.quantile(0.5) == pytest.approx(0.693, abs=0.06)

    def test_quantile_edge_cases(self, registry):
        hist = registry.histogram("h", buckets=[1, 10])
        assert np.isnan(hist.quantile(0.5))    # empty
        hist.observe(3.0)
        assert hist.quantile(0.0) == pytest.approx(3.0, abs=7.0)
        assert hist.quantile(1.0) == pytest.approx(3.0, abs=7.0)
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_overflow_bucket_clamps_to_observed_range(self, registry):
        # Everything lands in the +Inf bucket: interpolation falls back
        # to the observed [min, max] window instead of exploding.
        hist = registry.histogram("h", buckets=[1])
        hist.observe(50.0)
        hist.observe(99.0)
        assert 50.0 <= hist.quantile(0.5) <= 99.0
        assert hist.quantile(1.0) == 99.0

    def test_invalid_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=[])
        with pytest.raises(ValueError):
            Histogram(buckets=[1, 1])

    def test_default_buckets_end_with_inf(self):
        hist = Histogram()
        assert hist.bounds[-1] == float("inf")
        assert hist.bounds[:-1] == DEFAULT_BUCKETS


class TestRegistry:
    def test_declaration_is_idempotent(self, registry):
        first = registry.counter("c_total", "help")
        second = registry.counter("c_total", "help")
        assert first is second

    def test_type_mismatch_rejected(self, registry):
        registry.counter("m")
        with pytest.raises(ValueError):
            registry.gauge("m")

    def test_labelset_mismatch_rejected(self, registry):
        registry.counter("m", labelnames=("a",))
        with pytest.raises(ValueError):
            registry.counter("m", labelnames=("b",))

    def test_invalid_names_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.counter("bad-name")
        with pytest.raises(ValueError):
            registry.counter("0starts_with_digit")
        with pytest.raises(ValueError):
            registry.counter("ok", labelnames=("bad-label",))

    def test_collect_preserves_registration_order(self, registry):
        registry.counter("first")
        registry.gauge("second")
        registry.histogram("third")
        assert [f.name for f in registry.collect()] == [
            "first", "second", "third",
        ]

    def test_reset_zeroes_but_keeps_families(self, registry):
        counter = registry.counter("c_total", labelnames=("k",))
        counter.labels(k="a").inc(9)
        gauge = registry.gauge("g")
        gauge.set(4)
        registry.reset()
        assert counter.labels(k="a").value == 0.0
        assert gauge.value == 0.0
        assert registry.get("c_total") is counter


class TestThreadSafety:
    def test_concurrent_counter_increments_are_exact(self, registry):
        counter = registry.counter("c_total")
        n_threads, per_thread = 8, 10_000

        def work():
            for _ in range(per_thread):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == n_threads * per_thread

    def test_concurrent_histogram_observations_are_exact(self, registry):
        hist = registry.histogram("h", buckets=[0.5, 1.0])
        n_threads, per_thread = 8, 5_000

        def work():
            for i in range(per_thread):
                hist.observe((i % 3) * 0.4)

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert hist.count == n_threads * per_thread
        assert sum(hist._require_default()._counts) == n_threads * per_thread

    def test_concurrent_label_creation(self, registry):
        family = registry.counter("c_total", labelnames=("k",))

        def work(tag):
            for i in range(1_000):
                family.labels(k=str(i % 20)).inc()

        threads = [
            threading.Thread(target=work, args=(t,)) for t in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = sum(child.value for _, child in family.samples())
        assert total == 8 * 1_000
        assert len(family.samples()) == 20
