"""Counter/gauge/histogram semantics, labels, quantiles, thread-safety."""

import threading

import numpy as np
import pytest

from repro.obs import MetricsRegistry
from repro.obs.registry import DEFAULT_BUCKETS, Histogram


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_increments(self, registry):
        counter = registry.counter("c_total", "help")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative_increment(self, registry):
        counter = registry.counter("c_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labelled_children_are_independent(self, registry):
        family = registry.counter("c_total", labelnames=("kind",))
        family.labels(kind="a").inc(5)
        family.labels(kind="b").inc(7)
        assert family.labels(kind="a").value == 5
        assert family.labels(kind="b").value == 7

    def test_same_labels_return_same_child(self, registry):
        family = registry.counter("c_total", labelnames=("kind",))
        assert family.labels(kind="x") is family.labels(kind="x")

    def test_wrong_label_names_rejected(self, registry):
        family = registry.counter("c_total", labelnames=("kind",))
        with pytest.raises(ValueError):
            family.labels(wrong="x")
        with pytest.raises(ValueError):
            family.labels()

    def test_unlabelled_family_rejects_bare_calls_when_labelled(self, registry):
        family = registry.counter("c_total", labelnames=("kind",))
        with pytest.raises(ValueError):
            family.inc()


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("g")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(7)
        assert gauge.value == 5.0

    def test_can_go_negative(self, registry):
        gauge = registry.gauge("g")
        gauge.dec(3)
        assert gauge.value == -3.0


class TestHistogram:
    def test_count_sum_mean(self, registry):
        hist = registry.histogram("h", buckets=[1, 2, 4])
        for v in (0.5, 1.5, 3.0, 8.0):
            hist.observe(v)
        assert hist.count == 4
        assert hist.sum == pytest.approx(13.0)
        assert hist._require_default().mean == pytest.approx(3.25)

    def test_cumulative_buckets(self, registry):
        hist = registry.histogram("h", buckets=[1, 2, 4])
        for v in (0.5, 1.5, 3.0, 8.0):
            hist.observe(v)
        child = hist._require_default()
        assert child.bounds == (1.0, 2.0, 4.0, float("inf"))
        assert child.cumulative_counts() == [1, 2, 3, 4]

    def test_quantiles_on_uniform_distribution(self, registry):
        # Uniform values over [0, 100) with bucket bounds every 5:
        # interpolation should recover quantiles within one bucket width.
        hist = registry.histogram(
            "h", buckets=[5 * i for i in range(1, 21)]
        )
        rng = np.random.default_rng(42)
        for v in rng.uniform(0, 100, size=20_000):
            hist.observe(float(v))
        assert hist.quantile(0.5) == pytest.approx(50.0, abs=2.5)
        assert hist.quantile(0.9) == pytest.approx(90.0, abs=2.5)
        assert hist.quantile(0.99) == pytest.approx(99.0, abs=2.5)

    def test_quantiles_on_exponential_distribution(self, registry):
        hist = registry.histogram(
            "h", buckets=[0.1 * i for i in range(1, 101)]
        )
        rng = np.random.default_rng(7)
        for v in rng.exponential(1.0, size=20_000):
            hist.observe(float(v))
        # Median of Exp(1) is ln 2 ≈ 0.693.
        assert hist.quantile(0.5) == pytest.approx(0.693, abs=0.06)

    def test_quantile_edge_cases(self, registry):
        hist = registry.histogram("h", buckets=[1, 10])
        assert np.isnan(hist.quantile(0.5))    # empty
        hist.observe(3.0)
        assert hist.quantile(0.0) == pytest.approx(3.0, abs=7.0)
        assert hist.quantile(1.0) == pytest.approx(3.0, abs=7.0)
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_overflow_bucket_clamps_to_observed_range(self, registry):
        # Everything lands in the +Inf bucket: interpolation falls back
        # to the observed [min, max] window instead of exploding.
        hist = registry.histogram("h", buckets=[1])
        hist.observe(50.0)
        hist.observe(99.0)
        assert 50.0 <= hist.quantile(0.5) <= 99.0
        assert hist.quantile(1.0) == 99.0

    def test_invalid_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=[])
        with pytest.raises(ValueError):
            Histogram(buckets=[1, 1])

    def test_default_buckets_end_with_inf(self):
        hist = Histogram()
        assert hist.bounds[-1] == float("inf")
        assert hist.bounds[:-1] == DEFAULT_BUCKETS


class TestRegistry:
    def test_declaration_is_idempotent(self, registry):
        first = registry.counter("c_total", "help")
        second = registry.counter("c_total", "help")
        assert first is second

    def test_type_mismatch_rejected(self, registry):
        registry.counter("m")
        with pytest.raises(ValueError):
            registry.gauge("m")

    def test_labelset_mismatch_rejected(self, registry):
        registry.counter("m", labelnames=("a",))
        with pytest.raises(ValueError):
            registry.counter("m", labelnames=("b",))

    def test_invalid_names_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.counter("bad-name")
        with pytest.raises(ValueError):
            registry.counter("0starts_with_digit")
        with pytest.raises(ValueError):
            registry.counter("ok", labelnames=("bad-label",))

    def test_collect_preserves_registration_order(self, registry):
        registry.counter("first")
        registry.gauge("second")
        registry.histogram("third")
        assert [f.name for f in registry.collect()] == [
            "first", "second", "third",
        ]

    def test_reset_zeroes_but_keeps_families(self, registry):
        counter = registry.counter("c_total", labelnames=("k",))
        counter.labels(k="a").inc(9)
        gauge = registry.gauge("g")
        gauge.set(4)
        registry.reset()
        assert counter.labels(k="a").value == 0.0
        assert gauge.value == 0.0
        assert registry.get("c_total") is counter


class TestThreadSafety:
    def test_concurrent_counter_increments_are_exact(self, registry):
        counter = registry.counter("c_total")
        n_threads, per_thread = 8, 10_000

        def work():
            for _ in range(per_thread):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == n_threads * per_thread

    def test_concurrent_histogram_observations_are_exact(self, registry):
        hist = registry.histogram("h", buckets=[0.5, 1.0])
        n_threads, per_thread = 8, 5_000

        def work():
            for i in range(per_thread):
                hist.observe((i % 3) * 0.4)

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert hist.count == n_threads * per_thread
        assert sum(hist._require_default()._counts) == n_threads * per_thread

    def test_concurrent_label_creation(self, registry):
        family = registry.counter("c_total", labelnames=("k",))

        def work(tag):
            for i in range(1_000):
                family.labels(k=str(i % 20)).inc()

        threads = [
            threading.Thread(target=work, args=(t,)) for t in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = sum(child.value for _, child in family.samples())
        assert total == 8 * 1_000
        assert len(family.samples()) == 20


class TestQuantileExactness:
    def test_point_mass_bucket_is_exact(self, registry):
        # 0.5 in bucket (0,1], three observations of exactly 2.0 in
        # (1,2]: any quantile landing in the second bucket must return
        # 2.0 exactly, not an interpolation across [1, 2].
        hist = registry.histogram("h", buckets=[1, 2, 4])
        for v in (0.5, 2.0, 2.0, 2.0):
            hist.observe(v)
        assert hist.quantile(0.75) == 2.0
        assert hist.quantile(0.99) == 2.0

    def test_single_value_histogram_is_exact_everywhere(self, registry):
        hist = registry.histogram("h", buckets=[1, 10])
        for _ in range(5):
            hist.observe(7.0)
        for q in (0.0, 0.25, 0.5, 0.9, 1.0):
            assert hist.quantile(q) == 7.0

    def test_boundary_observation_is_exact(self, registry):
        # An observation exactly on a bucket boundary used to smear
        # across the whole bucket; per-bucket clamps pin it.
        hist = registry.histogram("h", buckets=[1, 2, 4])
        hist.observe(2.0)
        assert hist.quantile(0.5) == 2.0


class TestObserveMany:
    def test_equivalent_to_repeated_observe(self, registry):
        many = registry.histogram("many", buckets=[1, 2, 4])
        single = registry.histogram("single", buckets=[1, 2, 4])
        values = [0.5, 1.5, 3.0, 8.0, 2.0]
        many.observe_many(values)
        for v in values:
            single.observe(v)
        assert many._require_default().state() == (
            single._require_default().state()
        )

    def test_empty_iterable_is_noop(self, registry):
        hist = registry.histogram("h")
        hist.observe_many([])
        assert hist.count == 0


class TestWindows:
    def test_window_view_reflects_recent_observations(self, registry):
        hist = registry.histogram("h", buckets=[1, 2, 4])
        hist.observe(0.5)
        window = hist.window_view()
        assert window.count == 1
        assert window.quantile(0.5) == 0.5

    def test_reset_window_returns_closed_window(self, registry):
        hist = registry.histogram("h", buckets=[1, 2, 4])
        hist.observe(0.5)
        hist.observe(3.0)
        window = hist.reset_window()
        assert window.count == 2
        assert window.sum == pytest.approx(3.5)
        # The cumulative series is untouched...
        assert hist.count == 2
        # ...but the next window starts empty.
        assert hist.window_view().count == 0
        assert hist.reset_window().count == 0

    def test_windows_tumble_independently(self, registry):
        hist = registry.histogram("h", buckets=[1, 2, 4])
        hist.observe(10.0)
        hist.reset_window()
        hist.observe(0.5)
        window = hist.reset_window()
        assert window.count == 1
        assert window.quantile(0.9) <= 1.0     # the 10.0 is long gone
        assert hist.count == 2                 # cumulative remembers both

    def test_fraction_over(self, registry):
        hist = registry.histogram("h", buckets=[1, 2, 4])
        for v in (0.5, 0.6, 3.0, 3.5):
            hist.observe(v)
        window = hist.window_view()
        assert window.fraction_over(2.0) == pytest.approx(0.5)
        assert window.fraction_over(100.0) == 0.0
        assert window.fraction_over(0.0) == 1.0

    def test_empty_window_quantile_is_nan(self, registry):
        window = registry.histogram("h").window_view()
        assert np.isnan(window.quantile(0.5))
        assert window.fraction_over(1.0) == 0.0

    def test_window_mean(self, registry):
        hist = registry.histogram("h", buckets=[1, 2])
        hist.observe(1.0)
        hist.observe(3.0)
        assert hist.window_view().mean == pytest.approx(2.0)


class TestMerge:
    def test_merges_counters_gauges_histograms(self):
        from repro.obs import MetricsRegistry

        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c_total", "C.", labelnames=("k",)).labels(k="x").inc(2)
        b.counter("c_total", "C.", labelnames=("k",)).labels(k="x").inc(3)
        b.counter("c_total", "C.", labelnames=("k",)).labels(k="y").inc(1)
        a.gauge("g", "G.").set(4)
        b.gauge("g", "G.").set(6)
        ha = a.histogram("h", "H.", buckets=[1, 2])
        hb = b.histogram("h", "H.", buckets=[1, 2])
        ha.observe(0.5)
        hb.observe(1.5)
        hb.observe(5.0)
        a.merge(b)
        assert a.get("c_total").labels(k="x").value == 5
        assert a.get("c_total").labels(k="y").value == 1
        assert a.get("g").value == 10
        assert ha.count == 3
        assert ha.sum == pytest.approx(7.0)
        state = ha._require_default().state()
        assert state["min"] == 0.5
        assert state["max"] == 5.0

    def test_merge_creates_missing_families(self):
        from repro.obs import MetricsRegistry

        a, b = MetricsRegistry(), MetricsRegistry()
        b.counter("only_in_b_total", "B.").inc(7)
        a.merge(b)
        assert a.get("only_in_b_total").value == 7

    def test_merge_rejects_bucket_mismatch(self):
        from repro.obs import MetricsRegistry

        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", "H.", buckets=[1, 2])
        hb = b.histogram("h", "H.", buckets=[1, 2, 4])
        hb.observe(1.0)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_folds_windows_too(self):
        from repro.obs import MetricsRegistry

        a, b = MetricsRegistry(), MetricsRegistry()
        ha = a.histogram("h", "H.", buckets=[1, 2])
        hb = b.histogram("h", "H.", buckets=[1, 2])
        ha.observe(0.5)
        hb.observe(1.5)
        a.merge(b)
        assert ha.window_view().count == 2
