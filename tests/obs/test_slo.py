"""SLO spec grammar, tumbling-window evaluation, burn rates."""

import pytest

from repro.obs import (
    DEFAULT_SLOS,
    MetricsRegistry,
    PipelineTelemetry,
    SLOEngine,
    parse_slo,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def registry():
    return MetricsRegistry()


@pytest.fixture
def telemetry(registry):
    return PipelineTelemetry(registry=registry, sample_every=1)


class TestParse:
    def test_latency_spec(self):
        slo = parse_slo("p99:e2e<=250ms@60s")
        assert slo.kind == "latency"
        assert slo.name == "p99_e2e"
        assert slo.quantile == pytest.approx(0.99)
        assert slo.target == "e2e"
        assert slo.threshold_s == pytest.approx(0.25)
        assert slo.window_s == 60.0

    def test_latency_stage_target_and_seconds_unit(self):
        slo = parse_slo("p95:diagnose<=2s@30s")
        assert slo.target == "diagnose"
        assert slo.threshold_s == 2.0
        assert slo.name == "p95_diagnose"

    def test_fractional_percentile(self):
        slo = parse_slo("p99.9:e2e<=1s@10s")
        assert slo.quantile == pytest.approx(0.999)
        assert slo.name == "p99.9_e2e"

    def test_ratio_spec(self):
        slo = parse_slo("success>=99.9%@120s")
        assert slo.kind == "ratio"
        assert slo.name == "success"
        assert slo.target_ratio == pytest.approx(0.999)
        assert slo.window_s == 120.0

    def test_ratio_window_defaults_to_60s(self):
        assert parse_slo("success>=99%").window_s == 60.0

    def test_allowed_fraction(self):
        assert parse_slo("p99:e2e<=1s@1s").allowed_fraction == pytest.approx(
            0.01
        )
        assert parse_slo("success>=99.9%").allowed_fraction == pytest.approx(
            0.001
        )

    @pytest.mark.parametrize(
        "bad",
        [
            "p99:nope<=1ms@1s",        # unknown target
            "p0:e2e<=1ms@1s",          # percentile out of range
            "p100:e2e<=1ms@1s",        # percentile out of range
            "p99:e2e<=1ms@0s",         # zero window
            "p99:e2e<=1m@1s",          # bad unit
            "success>=0%",             # percentage out of range
            "success>=101%",           # percentage out of range
            "latency<=250ms",          # not the grammar at all
            "",
        ],
    )
    def test_rejects_bad_specs(self, bad):
        with pytest.raises(ValueError):
            parse_slo(bad)

    def test_defaults_parse(self):
        for spec in DEFAULT_SLOS:
            parse_slo(spec)


class TestEngineConstruction:
    def test_needs_at_least_one_slo(self, telemetry, registry):
        with pytest.raises(ValueError):
            SLOEngine([], telemetry, registry=registry)

    def test_rejects_duplicate_names(self, telemetry, registry):
        with pytest.raises(ValueError, match="duplicate"):
            SLOEngine(
                ["p99:e2e<=1ms@1s", "p99:e2e<=2ms@5s"],
                telemetry,
                registry=registry,
            )

    def test_ratio_needs_providers(self, telemetry, registry):
        with pytest.raises(ValueError, match="providers"):
            SLOEngine(["success>=99%"], telemetry, registry=registry)


class TestLatencyEvaluation:
    def _engine(self, telemetry, registry, spec, clock):
        return SLOEngine(
            [spec], telemetry, registry=registry, clock=clock
        )

    def test_ok_window(self, telemetry, registry):
        clock = FakeClock()
        engine = self._engine(
            telemetry, registry, "p99:e2e<=100ms@10s", clock
        )
        engine.start()
        shard = telemetry.for_shard(0)
        for _ in range(20):
            ctx = telemetry.trace_context("s", 0)
            ctx.t_submit = 0.0
            shard.complete(ctx, 0.01)   # all 10 ms
        shard.flush()
        clock.advance(11)
        assert engine.maybe_roll() is True
        (state,) = engine.snapshot()
        assert state["ok"] is True
        assert state["value"] == pytest.approx(0.01, rel=0.2)
        assert state["burn_rate"] == 0.0
        assert state["windows"] == 1
        assert engine.ok

    def test_breached_window_and_burn_rate(self, telemetry, registry):
        clock = FakeClock()
        engine = self._engine(
            telemetry, registry, "p90:e2e<=100ms@10s", clock
        )
        engine.start()
        shard = telemetry.for_shard(0)
        # 50% of observations violate the 100 ms threshold against a
        # 10% allowance: burn rate 0.5 / 0.1 = 5.
        for i in range(20):
            ctx = telemetry.trace_context("s", 0)
            ctx.t_submit = 0.0
            shard.complete(ctx, 0.01 if i % 2 == 0 else 1.0)
        shard.flush()
        clock.advance(11)
        engine.maybe_roll()
        (state,) = engine.snapshot()
        assert state["ok"] is False
        assert state["breaches"] == 1
        assert state["burn_rate"] == pytest.approx(5.0, rel=0.05)
        assert not engine.ok
        assert registry.get("repro_slo_ok").labels(slo="p90_e2e").value == 0.0
        assert registry.get("repro_slo_burn_rate").labels(
            slo="p90_e2e"
        ).value == pytest.approx(5.0, rel=0.05)

    def test_empty_window_is_vacuously_ok(self, telemetry, registry):
        clock = FakeClock()
        engine = self._engine(
            telemetry, registry, "p99:e2e<=100ms@10s", clock
        )
        engine.start()
        clock.advance(11)
        engine.maybe_roll()
        (state,) = engine.snapshot()
        assert state["ok"] is True
        assert state["burn_rate"] == 0.0
        assert state["windows"] == 0
        assert state["value"] is None

    def test_window_does_not_roll_early(self, telemetry, registry):
        clock = FakeClock()
        engine = self._engine(
            telemetry, registry, "p99:e2e<=100ms@10s", clock
        )
        engine.start()
        clock.advance(5)
        assert engine.maybe_roll() is False

    def test_maybe_roll_auto_starts(self, telemetry, registry):
        engine = self._engine(
            telemetry, registry, "p99:e2e<=100ms@10s", FakeClock()
        )
        assert engine.maybe_roll() is False    # first call anchors windows

    def test_tumbling_windows_are_independent(self, telemetry, registry):
        clock = FakeClock()
        engine = self._engine(
            telemetry, registry, "p99:e2e<=100ms@10s", clock
        )
        engine.start()
        shard = telemetry.for_shard(0)
        ctx = telemetry.trace_context("s", 0)
        ctx.t_submit = 0.0
        shard.complete(ctx, 1.0)    # breach in window 1
        shard.flush()
        clock.advance(11)
        engine.maybe_roll()
        assert not engine.ok
        # Window 2 sees only fast traffic: the breach does not linger.
        ctx = telemetry.trace_context("s", 1)
        ctx.t_submit = 0.0
        shard.complete(ctx, 0.001)
        shard.flush()
        clock.advance(11)
        engine.maybe_roll()
        (state,) = engine.snapshot()
        assert state["ok"] is True
        assert state["windows"] == 2
        assert state["breaches"] == 1

    def test_finalize_closes_inflight_window(self, telemetry, registry):
        clock = FakeClock()
        engine = self._engine(
            telemetry, registry, "p99:e2e<=100ms@3600s", clock
        )
        engine.start()
        shard = telemetry.for_shard(0)
        ctx = telemetry.trace_context("s", 0)
        ctx.t_submit = 0.0
        shard.complete(ctx, 0.002)
        shard.flush()
        engine.finalize()   # far before the hour-long deadline
        (state,) = engine.snapshot()
        assert state["windows"] == 1
        assert state["ok"] is True

    def test_stage_target_reads_stage_histogram(self, telemetry, registry):
        clock = FakeClock()
        engine = self._engine(
            telemetry, registry, "p99:validate<=1ms@10s", clock
        )
        engine.start()
        shard = telemetry.for_shard(0)
        shard.note("validate", 0.5)
        shard.flush()
        clock.advance(11)
        engine.maybe_roll()
        (state,) = engine.snapshot()
        assert state["ok"] is False


class TestRatioEvaluation:
    def test_ratio_from_counter_deltas(self, telemetry, registry):
        clock = FakeClock()
        totals = {"processed": 0.0, "failed": 0.0}
        engine = SLOEngine(
            ["success>=99%@10s"],
            telemetry,
            processed=lambda: totals["processed"],
            failed=lambda: totals["failed"],
            registry=registry,
            clock=clock,
        )
        engine.start()
        totals["processed"] = 1000.0
        totals["failed"] = 50.0    # 95% < 99%: breach, burn 5%/1% = 5
        clock.advance(11)
        engine.maybe_roll()
        (state,) = engine.snapshot()
        assert state["ok"] is False
        assert state["value"] == pytest.approx(0.95)
        assert state["burn_rate"] == pytest.approx(5.0)
        # Next window only counts NEW failures (deltas, not totals).
        totals["processed"] = 2000.0
        clock.advance(11)
        engine.maybe_roll()
        (state,) = engine.snapshot()
        assert state["ok"] is True
        assert state["value"] == pytest.approx(1.0)
        assert state["burn_rate"] == 0.0

    def test_no_traffic_window_is_ok(self, telemetry, registry):
        clock = FakeClock()
        engine = SLOEngine(
            ["success>=99%@10s"],
            telemetry,
            processed=lambda: 0.0,
            failed=lambda: 0.0,
            registry=registry,
            clock=clock,
        )
        engine.start()
        clock.advance(11)
        engine.maybe_roll()
        (state,) = engine.snapshot()
        assert state["ok"] is True
        assert state["windows"] == 0
