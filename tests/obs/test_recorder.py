"""Flight recorder: event ring, providers, postmortem dumps."""

import json

import pytest

from repro.obs import (
    POSTMORTEM_SCHEMA,
    FlightRecorder,
    get_recorder,
    set_recorder,
)


class TestEventRing:
    def test_events_oldest_first(self):
        recorder = FlightRecorder(capacity=16)
        recorder.record("a", x=1)
        recorder.record("b", y="two")
        events = recorder.events()
        assert [e["kind"] for e in events] == ["a", "b"]
        assert events[0]["x"] == 1
        assert events[1]["y"] == "two"
        assert all("ts_unix_s" in e for e in events)

    def test_ring_is_bounded(self):
        recorder = FlightRecorder(capacity=4)
        for i in range(10):
            recorder.record("e", i=i)
        events = recorder.events()
        assert len(events) == 4
        assert [e["i"] for e in events] == [6, 7, 8, 9]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_detail_jsonified(self):
        recorder = FlightRecorder()
        recorder.record("e", obj=object(), nested={"k": (1, 2)})
        (event,) = recorder.events()
        json.dumps(event)    # everything JSON-serialisable
        assert event["nested"] == {"k": [1, 2]}


class TestProviders:
    def test_snapshots_collected_by_name(self):
        recorder = FlightRecorder()
        recorder.add_provider("stats", lambda: {"n": 3})
        assert recorder.snapshots() == {"stats": {"n": 3}}

    def test_provider_errors_inlined_not_raised(self):
        recorder = FlightRecorder()
        recorder.add_provider("bad", lambda: 1 / 0)
        recorder.add_provider("good", lambda: "fine")
        snapshots = recorder.snapshots()
        assert snapshots["good"] == "fine"
        assert "ZeroDivisionError" in snapshots["bad"]["error"]

    def test_remove_provider(self):
        recorder = FlightRecorder()
        recorder.add_provider("x", lambda: 1)
        recorder.remove_provider("x")
        recorder.remove_provider("never-added")    # no-op, no raise
        assert recorder.snapshots() == {}


class TestDump:
    def test_no_dir_returns_none_but_records_trigger(self):
        recorder = FlightRecorder()
        assert recorder.dump("circuit_open", shard=2) is None
        (event,) = recorder.events()
        assert event["kind"] == "postmortem_trigger"
        assert event["trigger"] == "circuit_open"
        assert recorder.postmortems == []

    def test_dump_writes_schema_valid_json(self, tmp_path):
        clock = lambda: 1234.5
        recorder = FlightRecorder(
            postmortem_dir=tmp_path / "pm", clock=clock
        )
        recorder.record("shard_worker_died", shard=1)
        recorder.add_provider("stats", lambda: {"n": 1})
        path = recorder.dump("shard_failed", shard=1, error="boom")
        assert path is not None
        assert recorder.postmortems == [path]
        payload = json.loads((tmp_path / "pm").joinpath(
            "postmortem-001-shard_failed.json"
        ).read_text())
        assert payload["schema"] == POSTMORTEM_SCHEMA
        assert payload["trigger"] == "shard_failed"
        assert payload["detail"] == {"shard": 1, "error": "boom"}
        assert payload["written_at_unix_s"] == 1234.5
        kinds = [e["kind"] for e in payload["events"]]
        assert kinds == ["shard_worker_died", "postmortem_trigger"]
        assert payload["snapshots"] == {"stats": {"n": 1}}

    def test_sequential_dumps_numbered(self, tmp_path):
        recorder = FlightRecorder(postmortem_dir=tmp_path)
        first = recorder.dump("a")
        second = recorder.dump("b")
        assert first.endswith("postmortem-001-a.json")
        assert second.endswith("postmortem-002-b.json")
        assert recorder.postmortems == [first, second]

    def test_unwritable_dir_never_raises(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where the dir should go")
        recorder = FlightRecorder(postmortem_dir=blocker / "sub")
        assert recorder.dump("trigger") is None
        assert recorder.postmortems == []


class TestProcessDefault:
    def test_get_returns_a_recorder(self):
        assert isinstance(get_recorder(), FlightRecorder)

    def test_set_swaps_and_returns_previous(self):
        mine = FlightRecorder()
        previous = set_recorder(mine)
        try:
            assert get_recorder() is mine
        finally:
            set_recorder(previous)
        assert get_recorder() is previous
