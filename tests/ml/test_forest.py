"""Unit tests for the Random Forest classifier."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestClassifier


def _dataset(n=300, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 6))
    y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(int)
    return X, y


class TestFit:
    def test_basic_accuracy(self):
        X, y = _dataset()
        forest = RandomForestClassifier(n_estimators=20, random_state=0).fit(X, y)
        assert (forest.predict(X) == y).mean() > 0.95

    def test_n_estimators_created(self):
        X, y = _dataset()
        forest = RandomForestClassifier(n_estimators=7, random_state=0).fit(X, y)
        assert len(forest.estimators_) == 7

    def test_invalid_n_estimators(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            RandomForestClassifier().fit(np.empty((0, 2)), np.empty(0))

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            RandomForestClassifier().fit(np.zeros((5, 2)), np.zeros(6))

    def test_deterministic_given_seed(self):
        X, y = _dataset(seed=2)
        f1 = RandomForestClassifier(n_estimators=10, random_state=3).fit(X, y)
        f2 = RandomForestClassifier(n_estimators=10, random_state=3).fit(X, y)
        assert (f1.predict(X) == f2.predict(X)).all()

    def test_string_labels(self):
        X, y = _dataset()
        labels = np.where(y == 0, "healthy", "stalled")
        forest = RandomForestClassifier(n_estimators=10, random_state=0).fit(
            X, labels
        )
        assert set(forest.predict(X)) <= {"healthy", "stalled"}

    def test_no_bootstrap_mode(self):
        X, y = _dataset(seed=4)
        forest = RandomForestClassifier(
            n_estimators=5, bootstrap=False, random_state=0
        ).fit(X, y)
        assert (forest.predict(X) == y).mean() > 0.95


class TestOob:
    def test_oob_score_in_unit_interval(self):
        X, y = _dataset(seed=5)
        forest = RandomForestClassifier(
            n_estimators=25, oob_score=True, random_state=0
        ).fit(X, y)
        assert 0.0 <= forest.oob_score_ <= 1.0

    def test_oob_reasonable_on_learnable_data(self):
        X, y = _dataset(n=500, seed=6)
        forest = RandomForestClassifier(
            n_estimators=30, oob_score=True, random_state=0
        ).fit(X, y)
        assert forest.oob_score_ > 0.8


class TestPredict:
    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RandomForestClassifier().predict(np.zeros((2, 3)))

    def test_proba_rows_sum_to_one(self):
        X, y = _dataset()
        forest = RandomForestClassifier(n_estimators=10, random_state=0).fit(X, y)
        proba = forest.predict_proba(X)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_three_class_bootstrap_may_miss_class(self):
        """Tiny classes can be absent from a bootstrap sample; the
        column alignment must still produce full-width probabilities."""
        rng = np.random.default_rng(7)
        X = rng.normal(size=(60, 3))
        y = np.array([0] * 28 + [1] * 28 + [2] * 4)
        X[y == 2] += 5.0
        forest = RandomForestClassifier(n_estimators=12, random_state=1).fit(X, y)
        proba = forest.predict_proba(X)
        assert proba.shape == (60, 3)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_one_dimensional_input_rejected(self):
        X, y = _dataset()
        forest = RandomForestClassifier(n_estimators=5, random_state=0).fit(X, y)
        with pytest.raises(ValueError, match="2-dimensional"):
            forest.predict_proba(X[0])
        with pytest.raises(ValueError, match="2-dimensional"):
            forest.predict(X[0])

    def test_feature_count_mismatch_rejected(self):
        X, y = _dataset()
        forest = RandomForestClassifier(n_estimators=5, random_state=0).fit(X, y)
        with pytest.raises(ValueError, match="features"):
            forest.predict_proba(X[:, :4])
        with pytest.raises(ValueError, match="features"):
            forest.predict(np.zeros((3, X.shape[1] + 2)))

    def test_single_row_2d_accepted(self):
        X, y = _dataset()
        forest = RandomForestClassifier(n_estimators=5, random_state=0).fit(X, y)
        assert forest.predict_proba(X[:1]).shape == (1, 2)

    def test_generalises_to_held_out(self):
        X, y = _dataset(n=600, seed=8)
        forest = RandomForestClassifier(n_estimators=25, random_state=0).fit(
            X[:400], y[:400]
        )
        assert (forest.predict(X[400:]) == y[400:]).mean() > 0.85


class TestImportances:
    def test_sum_to_one(self):
        X, y = _dataset(seed=9)
        forest = RandomForestClassifier(n_estimators=10, random_state=0).fit(X, y)
        assert forest.feature_importances().sum() == pytest.approx(1.0)

    def test_informative_features_lead(self):
        X, y = _dataset(n=500, seed=10)
        forest = RandomForestClassifier(n_estimators=20, random_state=0).fit(X, y)
        importances = forest.feature_importances()
        assert importances[0] + importances[1] > 0.6
