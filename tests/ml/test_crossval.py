"""Unit tests for stratified k-fold CV and splitting."""

import numpy as np
import pytest

from repro.ml.crossval import cross_validate, stratified_kfold, train_test_split
from repro.ml.forest import RandomForestClassifier


class TestStratifiedKfold:
    def test_every_index_tested_once(self):
        y = np.array([0] * 30 + [1] * 20)
        seen = []
        for _, test in stratified_kfold(y, n_splits=5, random_state=0):
            seen.extend(test.tolist())
        assert sorted(seen) == list(range(50))

    def test_folds_disjoint_from_train(self):
        y = np.array([0] * 30 + [1] * 20)
        for train, test in stratified_kfold(y, n_splits=5, random_state=0):
            assert not set(train) & set(test)

    def test_stratification_preserved(self):
        y = np.array([0] * 40 + [1] * 10)
        for _, test in stratified_kfold(y, n_splits=5, random_state=1):
            labels, counts = np.unique(y[test], return_counts=True)
            assert set(labels) == {0, 1}
            ratio = counts[0] / counts[1]
            assert 2.0 <= ratio <= 8.0

    def test_too_many_splits_raises(self):
        y = np.array([0] * 10 + [1] * 3)
        with pytest.raises(ValueError):
            list(stratified_kfold(y, n_splits=5))

    def test_min_two_splits(self):
        with pytest.raises(ValueError):
            list(stratified_kfold(np.zeros(10), n_splits=1))


class TestTrainTestSplit:
    def test_sizes(self):
        X = np.arange(100).reshape(50, 2).astype(float)
        y = np.array([0, 1] * 25)
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, test_size=0.2, random_state=0)
        assert len(y_te) == 10
        assert len(y_tr) == 40

    def test_stratified_keeps_both_classes(self):
        X = np.zeros((60, 1))
        y = np.array([0] * 50 + [1] * 10)
        _, __, ___, y_te = train_test_split(X, y, test_size=0.3, random_state=0)
        assert set(y_te) == {0, 1}

    def test_singleton_class_stays_in_training(self):
        """A class with one sample must not be swallowed whole by the
        test split — training would then never see that class."""
        X = np.zeros((21, 1))
        y = np.array([0] * 20 + [1])
        _, __, y_tr, y_te = train_test_split(X, y, test_size=0.3, random_state=0)
        assert 1 in y_tr
        assert 1 not in y_te

    def test_every_class_keeps_a_training_sample(self):
        X = np.zeros((12, 1))
        y = np.array([0] * 8 + [1] * 2 + [2] * 2)
        for seed in range(5):
            _, __, y_tr, ___ = train_test_split(
                X, y, test_size=0.5, random_state=seed
            )
            assert set(y_tr) == {0, 1, 2}

    def test_invalid_test_size(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((5, 1)), np.zeros(5), test_size=1.5)

    def test_no_overlap(self):
        X = np.arange(40).reshape(40, 1).astype(float)
        y = np.array([0, 1] * 20)
        X_tr, X_te, _, __ = train_test_split(X, y, test_size=0.25, random_state=1)
        assert not set(X_tr[:, 0]) & set(X_te[:, 0])


class TestCrossValidate:
    def test_learnable_problem_scores_high(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 4))
        y = (X[:, 0] > 0).astype(int)
        report = cross_validate(
            lambda: RandomForestClassifier(n_estimators=10, random_state=0),
            X,
            y,
            n_splits=5,
            random_state=0,
        )
        assert report.accuracy > 0.85

    def test_balance_hook_called_on_train_only(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(100, 3))
        y = np.array([0] * 80 + [1] * 20)
        calls = []

        def balance(Xb, yb):
            calls.append(len(yb))
            return Xb, yb

        cross_validate(
            lambda: RandomForestClassifier(n_estimators=5, random_state=0),
            X,
            y,
            n_splits=5,
            random_state=0,
            balance=balance,
        )
        assert len(calls) == 5
        assert all(n == 80 for n in calls)   # train folds of 100 * 4/5

    def test_labels_order_respected(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(60, 2))
        y = np.array(["b", "a"] * 30)
        report = cross_validate(
            lambda: RandomForestClassifier(n_estimators=5, random_state=0),
            X,
            y,
            n_splits=3,
            random_state=0,
            labels=["b", "a"],
        )
        assert report.labels == ["b", "a"]
