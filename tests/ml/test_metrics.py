"""Unit tests for classification metrics in the paper's format."""

import numpy as np
import pytest

from repro.ml.metrics import accuracy, classification_report, confusion_matrix


class TestConfusionMatrix:
    def test_perfect_predictions_diagonal(self):
        y = np.array(["a", "b", "a", "c"])
        matrix = confusion_matrix(y, y)
        assert np.trace(matrix) == 4
        assert matrix.sum() == 4

    def test_label_order_respected(self):
        y_true = np.array(["x", "y"])
        y_pred = np.array(["y", "y"])
        matrix = confusion_matrix(y_true, y_pred, labels=["y", "x"])
        # truth "x" predicted "y": row of x (index 1), col of y (index 0)
        assert matrix[1, 0] == 1

    def test_rows_are_truth(self):
        y_true = np.array([0, 0, 0, 1])
        y_pred = np.array([1, 1, 0, 1])
        matrix = confusion_matrix(y_true, y_pred)
        assert matrix[0].sum() == 3     # three true 0s
        assert matrix[0, 1] == 2        # two of them predicted 1

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([1]), np.array([1, 2]))


class TestAccuracy:
    def test_perfect(self):
        assert accuracy(np.array([1, 2]), np.array([1, 2])) == 1.0

    def test_half(self):
        assert accuracy(np.array([1, 2]), np.array([1, 3])) == 0.5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))


class TestClassificationReport:
    def _report(self):
        y_true = np.array(["no"] * 8 + ["mild"] * 4 + ["severe"] * 4)
        y_pred = np.array(
            ["no"] * 7 + ["mild"]          # one no -> mild
            + ["mild"] * 3 + ["severe"]     # one mild -> severe
            + ["severe"] * 3 + ["mild"]     # one severe -> mild
        )
        return classification_report(
            y_true, y_pred, labels=["no", "mild", "severe"]
        )

    def test_accuracy(self):
        report = self._report()
        assert report.accuracy == pytest.approx(13 / 16)

    def test_tp_rate_equals_recall(self):
        report = self._report()
        for row in report.classes:
            assert row.tp_rate == row.recall

    def test_recall_values(self):
        report = self._report()
        by_label = report.by_label()
        assert by_label["no"].recall == pytest.approx(7 / 8)
        assert by_label["mild"].recall == pytest.approx(3 / 4)
        assert by_label["severe"].recall == pytest.approx(3 / 4)

    def test_precision_values(self):
        report = self._report()
        by_label = report.by_label()
        # "mild" predicted 5 times, 3 correct
        assert by_label["mild"].precision == pytest.approx(3 / 5)

    def test_fp_rate(self):
        report = self._report()
        by_label = report.by_label()
        # "mild": 2 FP out of 12 negatives
        assert by_label["mild"].fp_rate == pytest.approx(2 / 12)

    def test_weighted_recall_matches_accuracy(self):
        report = self._report()
        assert report.weighted_recall == pytest.approx(report.accuracy)

    def test_row_percentages_sum_to_100(self):
        report = self._report()
        rows = report.row_percentages()
        np.testing.assert_allclose(rows.sum(axis=1), 100.0)

    def test_supports(self):
        report = self._report()
        assert [r.support for r in report.classes] == [8, 4, 4]

    def test_unpredicted_class_zero_precision(self):
        y_true = np.array(["a", "b", "b"])
        y_pred = np.array(["a", "a", "a"])
        report = classification_report(y_true, y_pred, labels=["a", "b"])
        assert report.by_label()["b"].precision == 0.0
        assert report.by_label()["b"].recall == 0.0


class TestLabelSubset:
    def test_out_of_label_pairs_are_skipped(self):
        y_true = np.array(["a", "a", "b", "c", "c"])
        y_pred = np.array(["a", "b", "b", "c", "a"])
        matrix = confusion_matrix(y_true, y_pred, labels=["a", "b"])
        # pairs touching "c" (two of them) are dropped, like sklearn
        assert matrix.sum() == 3
        assert matrix[0, 0] == 1        # a -> a
        assert matrix[0, 1] == 1        # a -> b
        assert matrix[1, 1] == 1        # b -> b

    def test_report_on_label_subset_does_not_raise(self):
        y_true = np.array(["a", "a", "b", "c", "c", "b"])
        y_pred = np.array(["a", "c", "b", "c", "b", "b"])
        report = classification_report(y_true, y_pred, labels=["a", "b"])
        assert report.labels == ["a", "b"]
        assert report.matrix.shape == (2, 2)
        by_label = report.by_label()
        assert by_label["b"].support == 2
        assert 0.0 <= report.accuracy <= 1.0

    def test_all_pairs_out_of_labels(self):
        y_true = np.array(["x", "y"])
        y_pred = np.array(["y", "x"])
        report = classification_report(y_true, y_pred, labels=["z"])
        assert report.matrix.sum() == 0
        assert report.accuracy == 0.0
