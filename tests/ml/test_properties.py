"""Property-based tests (hypothesis) for the ML substrate invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.ml.information import (
    entropy,
    information_gain,
    symmetrical_uncertainty,
)
from repro.ml.metrics import classification_report, confusion_matrix
from repro.ml.tree import DecisionTreeClassifier

labels_st = arrays(
    np.int64,
    st.integers(min_value=2, max_value=60),
    elements=st.integers(min_value=0, max_value=4),
)


@given(labels_st)
def test_entropy_nonnegative_and_bounded(y):
    h = entropy(y)
    assert 0.0 <= h <= np.log2(max(2, np.unique(y).size)) + 1e-9


@given(labels_st, st.integers(min_value=0, max_value=4))
def test_entropy_invariant_to_label_renaming(y, offset):
    assert entropy(y) == entropy(y + offset)


@given(labels_st)
def test_information_gain_self_is_entropy(y):
    assert information_gain(y, y) == np.float64(entropy(y)) or abs(
        information_gain(y, y) - entropy(y)
    ) < 1e-9


@given(labels_st, labels_st)
def test_information_gain_bounded_by_entropy(y, x):
    n = min(y.size, x.size)
    y, x = y[:n], x[:n]
    assert information_gain(y, x) <= entropy(y) + 1e-9


@given(labels_st, labels_st)
def test_su_symmetric_and_bounded(x, y):
    n = min(x.size, y.size)
    x, y = x[:n], y[:n]
    su_xy = symmetrical_uncertainty(x, y)
    su_yx = symmetrical_uncertainty(y, x)
    assert abs(su_xy - su_yx) < 1e-9
    assert 0.0 <= su_xy <= 1.0


@given(
    arrays(
        np.int64,
        st.integers(min_value=2, max_value=40),
        elements=st.integers(min_value=0, max_value=3),
    ),
    arrays(
        np.int64,
        st.integers(min_value=2, max_value=40),
        elements=st.integers(min_value=0, max_value=3),
    ),
)
def test_confusion_matrix_total_and_marginals(y_true, y_pred):
    n = min(y_true.size, y_pred.size)
    y_true, y_pred = y_true[:n], y_pred[:n]
    labels = sorted(set(y_true.tolist()) | set(y_pred.tolist()))
    matrix = confusion_matrix(y_true, y_pred, labels=labels)
    assert matrix.sum() == n
    for i, label in enumerate(labels):
        assert matrix[i].sum() == int(np.sum(y_true == label))
        assert matrix[:, i].sum() == int(np.sum(y_pred == label))


@given(
    arrays(
        np.int64,
        st.integers(min_value=4, max_value=40),
        elements=st.integers(min_value=0, max_value=2),
    )
)
def test_report_weighted_recall_equals_accuracy(y):
    rng = np.random.default_rng(0)
    y_pred = rng.permutation(y)
    report = classification_report(y, y_pred)
    assert abs(report.weighted_recall - report.accuracy) < 1e-9


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=10, max_value=80),
    st.integers(min_value=2, max_value=5),
    st.integers(min_value=0, max_value=1000),
)
def test_tree_training_accuracy_perfect_on_unique_rows(n, n_features, seed):
    """With unbounded depth and unique feature rows the tree must
    reproduce its training labels exactly."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, n_features))
    # ensure rows are unique in at least one feature by adding index
    X[:, 0] += np.arange(n) * 10.0
    y = rng.integers(0, 3, n)
    tree = DecisionTreeClassifier().fit(X, y)
    assert (tree.predict(X) == y).all()


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_tree_proba_is_distribution(seed):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(50, 3))
    y = rng.integers(0, 3, 50)
    tree = DecisionTreeClassifier(max_depth=4, random_state=seed).fit(X, y)
    proba = tree.predict_proba(X)
    assert np.all(proba >= 0)
    np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)
