"""Unit tests for entropy / information-gain / discretisation utilities."""

import numpy as np
import pytest

from repro.ml.information import (
    conditional_entropy,
    discretize,
    entropy,
    entropy_from_counts,
    equal_frequency_bins,
    information_gain,
    mdl_discretize,
    symmetrical_uncertainty,
)


class TestEntropy:
    def test_uniform_binary_is_one_bit(self):
        assert entropy(np.array([0, 1, 0, 1])) == pytest.approx(1.0)

    def test_pure_vector_is_zero(self):
        assert entropy(np.array([3, 3, 3, 3])) == 0.0

    def test_empty_vector_is_zero(self):
        assert entropy(np.array([])) == 0.0

    def test_uniform_k_classes(self):
        y = np.repeat(np.arange(8), 5)
        assert entropy(y) == pytest.approx(3.0)

    def test_counts_ignore_zero_cells(self):
        assert entropy_from_counts(np.array([5, 0, 5])) == pytest.approx(1.0)

    def test_all_zero_counts(self):
        assert entropy_from_counts(np.zeros(4)) == 0.0

    def test_string_labels_supported(self):
        assert entropy(np.array(["a", "b", "a", "b"])) == pytest.approx(1.0)


class TestConditionalEntropyAndGain:
    def test_perfect_predictor_gain_equals_entropy(self):
        y = np.array([0, 0, 1, 1, 2, 2])
        x = np.array([9, 9, 5, 5, 7, 7])
        assert conditional_entropy(y, x) == pytest.approx(0.0)
        assert information_gain(y, x) == pytest.approx(entropy(y))

    def test_independent_predictor_gain_zero(self):
        y = np.array([0, 1, 0, 1])
        x = np.array([0, 0, 0, 0])
        assert information_gain(y, x) == pytest.approx(0.0)

    def test_gain_never_negative(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            y = rng.integers(0, 3, 50)
            x = rng.integers(0, 4, 50)
            assert information_gain(y, x) >= 0.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            conditional_entropy(np.array([1, 2]), np.array([1, 2, 3]))


class TestSymmetricalUncertainty:
    def test_identical_vectors_su_one(self):
        x = np.array([0, 1, 2, 0, 1, 2])
        assert symmetrical_uncertainty(x, x) == pytest.approx(1.0)

    def test_independent_su_zero(self):
        x = np.array([0, 0, 1, 1])
        y = np.array([0, 1, 0, 1])
        assert symmetrical_uncertainty(x, y) == pytest.approx(0.0)

    def test_constant_vectors_su_zero(self):
        x = np.zeros(10)
        assert symmetrical_uncertainty(x, x) == 0.0

    def test_symmetry(self):
        rng = np.random.default_rng(1)
        x = rng.integers(0, 3, 100)
        y = rng.integers(0, 3, 100)
        assert symmetrical_uncertainty(x, y) == pytest.approx(
            symmetrical_uncertainty(y, x)
        )

    def test_bounded_in_unit_interval(self):
        rng = np.random.default_rng(2)
        for _ in range(20):
            x = rng.integers(0, 5, 60)
            y = rng.integers(0, 5, 60)
            assert 0.0 <= symmetrical_uncertainty(x, y) <= 1.0


class TestBinning:
    def test_equal_frequency_cut_count(self):
        values = np.arange(100, dtype=float)
        cuts = equal_frequency_bins(values, n_bins=4)
        assert cuts.size == 3

    def test_equal_frequency_balanced(self):
        values = np.arange(1000, dtype=float)
        cuts = equal_frequency_bins(values, n_bins=10)
        bins = discretize(values, cuts)
        _, counts = np.unique(bins, return_counts=True)
        assert counts.max() - counts.min() <= 2

    def test_single_bin_no_cuts(self):
        assert equal_frequency_bins(np.arange(10.0), n_bins=1).size == 0

    def test_invalid_bins_raises(self):
        with pytest.raises(ValueError):
            equal_frequency_bins(np.arange(10.0), n_bins=0)

    def test_discretize_nan_gets_own_bin(self):
        values = np.array([1.0, 2.0, np.nan])
        cuts = np.array([1.5])
        bins = discretize(values, cuts)
        assert bins[2] not in (bins[0], bins[1])

    def test_discretize_monotone(self):
        values = np.array([0.0, 1.0, 2.0, 3.0])
        cuts = np.array([0.5, 2.5])
        assert discretize(values, cuts).tolist() == [0, 1, 1, 2]


class TestMdlDiscretize:
    def test_finds_obvious_boundary(self):
        values = np.concatenate([np.linspace(0, 1, 50), np.linspace(10, 11, 50)])
        labels = np.array([0] * 50 + [1] * 50)
        cuts = mdl_discretize(values, labels, fallback_bins=None)
        assert cuts.size >= 1
        assert np.any((cuts > 1) & (cuts < 10))

    def test_no_signal_falls_back_to_equal_frequency(self):
        rng = np.random.default_rng(3)
        values = rng.normal(size=40)
        labels = rng.integers(0, 2, 40)
        cuts = mdl_discretize(values, labels, fallback_bins=5)
        # With pure noise MDL rejects cuts; fallback returns quantiles.
        assert cuts.size >= 1

    def test_no_signal_without_fallback_empty(self):
        values = np.ones(30)
        labels = np.array([0, 1] * 15)
        cuts = mdl_discretize(values, labels, fallback_bins=None)
        assert cuts.size == 0

    def test_cuts_sorted_unique(self):
        rng = np.random.default_rng(4)
        values = rng.normal(size=200)
        labels = (values > 0).astype(int)
        cuts = mdl_discretize(values, labels)
        assert np.all(np.diff(cuts) > 0)
