"""Tests for the ML worker-pool helper and the n_jobs determinism
guarantee (serial and parallel runs must be bit-identical)."""

import numpy as np
import pytest

from repro.ml.crossval import cross_validate
from repro.ml.forest import RandomForestClassifier
from repro.ml.parallel import block_ranges, effective_n_jobs, run_tasks


def _square(x):
    return x * x


def _boom(x):
    raise RuntimeError(f"task {x} failed")


class TestEffectiveNJobs:
    def test_none_is_serial(self):
        assert effective_n_jobs(None) == 1

    def test_positive_passthrough(self):
        assert effective_n_jobs(3) == 3

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            effective_n_jobs(0)

    def test_negative_counts_back_from_cpus(self):
        import os

        cpus = os.cpu_count() or 1
        assert effective_n_jobs(-1) == cpus
        assert effective_n_jobs(-cpus - 5) == 1   # clamped to 1


class TestBlockRanges:
    def test_covers_all_items_in_order(self):
        ranges = block_ranges(20, 8)
        assert ranges == [(0, 8), (8, 16), (16, 20)]

    def test_single_block(self):
        assert block_ranges(3, 8) == [(0, 3)]

    def test_empty(self):
        assert block_ranges(0, 8) == []

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            block_ranges(10, 0)

    def test_independent_of_worker_count(self):
        """The determinism anchor: the partition is a function of the
        item count only, never of n_jobs."""
        assert block_ranges(100, 8) == block_ranges(100, 8)


class TestRunTasks:
    def test_serial_preserves_order(self):
        assert run_tasks(_square, [1, 2, 3, 4], n_jobs=1) == [1, 4, 9, 16]

    def test_parallel_preserves_order(self):
        assert run_tasks(_square, list(range(10)), n_jobs=4) == [
            x * x for x in range(10)
        ]

    def test_empty_payloads(self):
        assert run_tasks(_square, [], n_jobs=4) == []

    def test_serial_exception_propagates(self):
        with pytest.raises(RuntimeError, match="task 1 failed"):
            run_tasks(_boom, [1], n_jobs=1)

    def test_parallel_exception_propagates(self):
        with pytest.raises(RuntimeError, match="failed"):
            run_tasks(_boom, [1, 2], n_jobs=2)

    def test_task_metrics_recorded(self):
        from repro.obs import get_registry

        counter = get_registry().get("repro_ml_pool_tasks_total")
        before = counter.labels(task="unit", mode="serial").value
        run_tasks(_square, [1, 2, 3], n_jobs=1, task="unit")
        assert counter.labels(task="unit", mode="serial").value == before + 3


def _dataset(n=300, seed=0, classes=2):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 6))
    y = np.digitize(X[:, 0] + 0.5 * X[:, 1], np.linspace(-1, 1, classes - 1))
    return X, y


class TestForestDeterminism:
    """Same random_state => bit-identical forests for any n_jobs."""

    def test_fit_bit_identical_serial_vs_parallel(self):
        X, y = _dataset(seed=1)
        serial = RandomForestClassifier(
            n_estimators=20, random_state=5, n_jobs=1
        ).fit(X, y)
        parallel = RandomForestClassifier(
            n_estimators=20, random_state=5, n_jobs=4
        ).fit(X, y)
        assert np.array_equal(
            serial.predict_proba(X), parallel.predict_proba(X)
        )
        assert np.array_equal(serial.predict(X), parallel.predict(X))

    def test_fit_bit_identical_three_classes(self):
        X, y = _dataset(seed=2, classes=3)
        serial = RandomForestClassifier(
            n_estimators=17, random_state=9, n_jobs=1
        ).fit(X, y)
        parallel = RandomForestClassifier(
            n_estimators=17, random_state=9, n_jobs=3
        ).fit(X, y)
        assert np.array_equal(
            serial.predict_proba(X), parallel.predict_proba(X)
        )

    def test_predict_bit_identical_serial_vs_parallel(self):
        """Parallel *prediction* on one fitted forest matches serial."""
        X, y = _dataset(seed=3)
        forest = RandomForestClassifier(
            n_estimators=20, random_state=1, n_jobs=1
        ).fit(X, y)
        serial_proba = forest.predict_proba(X)
        forest.n_jobs = 4
        assert np.array_equal(forest.predict_proba(X), serial_proba)

    def test_oob_score_identical(self):
        X, y = _dataset(seed=4)
        serial = RandomForestClassifier(
            n_estimators=25, oob_score=True, random_state=2, n_jobs=1
        ).fit(X, y)
        parallel = RandomForestClassifier(
            n_estimators=25, oob_score=True, random_state=2, n_jobs=4
        ).fit(X, y)
        assert serial.oob_score_ == parallel.oob_score_

    def test_trees_seeded_independently_of_fit_order(self):
        """Tree i's structure must not depend on how much RNG entropy
        trees 0..i-1 consumed (the old shared-generator bug)."""
        X, y = _dataset(seed=5)
        short = RandomForestClassifier(
            n_estimators=4, random_state=11, n_jobs=1
        ).fit(X, y)
        long = RandomForestClassifier(
            n_estimators=12, random_state=11, n_jobs=1
        ).fit(X, y)
        for a, b in zip(short.estimators_, long.estimators_[:4]):
            assert np.array_equal(a._feature, b._feature)
            assert np.array_equal(a._threshold, b._threshold)
            assert np.array_equal(a._value, b._value)

    def test_generator_random_state_still_reproducible(self):
        X, y = _dataset(seed=6)
        f1 = RandomForestClassifier(
            n_estimators=8, random_state=np.random.default_rng(3)
        ).fit(X, y)
        f2 = RandomForestClassifier(
            n_estimators=8, random_state=np.random.default_rng(3)
        ).fit(X, y)
        assert np.array_equal(f1.predict_proba(X), f2.predict_proba(X))


class TestCrossValidateParallel:
    def test_report_identical_serial_vs_parallel(self):
        X, y = _dataset(n=200, seed=7)
        kwargs = dict(n_splits=5, random_state=0)
        serial = cross_validate(
            lambda: RandomForestClassifier(n_estimators=10, random_state=0),
            X, y, n_jobs=1, **kwargs
        )
        parallel = cross_validate(
            lambda: RandomForestClassifier(n_estimators=10, random_state=0),
            X, y, n_jobs=4, **kwargs
        )
        assert serial.accuracy == parallel.accuracy
        assert np.array_equal(serial.matrix, parallel.matrix)

    def test_balance_hook_runs_in_parent(self):
        """Balance callbacks may be closures; they must never be
        shipped to (and pickled for) worker processes."""
        X, y = _dataset(n=100, seed=8)
        calls = []

        def balance(Xb, yb):   # closure: unpicklable by reference
            calls.append(len(yb))
            return Xb, yb

        cross_validate(
            lambda: RandomForestClassifier(n_estimators=5, random_state=0),
            X, y, n_splits=5, random_state=0, balance=balance, n_jobs=2,
        )
        assert len(calls) == 5

    def test_nested_parallelism_disabled_in_folds(self):
        X, y = _dataset(n=150, seed=9)
        made = []

        def factory():
            model = RandomForestClassifier(
                n_estimators=5, random_state=0, n_jobs=4
            )
            made.append(model)
            return model

        cross_validate(X=X, y=y, model_factory=factory,
                       n_splits=3, random_state=0, n_jobs=2)
        assert all(m.n_jobs == 1 for m in made)
