"""Unit tests for class balancing."""

import numpy as np
import pytest

from repro.ml.balance import balanced_indices, oversample, undersample


class TestUndersample:
    def test_classes_equalised_to_minority(self):
        y = np.array([0] * 50 + [1] * 10 + [2] * 25)
        X = np.arange(85).reshape(-1, 1).astype(float)
        Xb, yb = undersample(X, y, random_state=0)
        _, counts = np.unique(yb, return_counts=True)
        assert counts.tolist() == [10, 10, 10]

    def test_no_duplicates_within_class(self):
        y = np.array([0] * 20 + [1] * 5)
        X = np.arange(25).reshape(-1, 1).astype(float)
        Xb, yb = undersample(X, y, random_state=1)
        values = Xb[yb == 0][:, 0]
        assert len(set(values.tolist())) == len(values)

    def test_rows_stay_aligned(self):
        y = np.array([0] * 10 + [1] * 10)
        X = np.column_stack([np.arange(20), y * 100]).astype(float)
        Xb, yb = undersample(X, y, random_state=2)
        assert np.array_equal(Xb[:, 1], yb * 100)


class TestOversample:
    def test_classes_equalised_to_majority(self):
        y = np.array([0] * 50 + [1] * 10)
        X = np.arange(60).reshape(-1, 1).astype(float)
        Xb, yb = oversample(X, y, random_state=0)
        _, counts = np.unique(yb, return_counts=True)
        assert counts.tolist() == [50, 50]

    def test_majority_class_fully_kept(self):
        y = np.array([0] * 30 + [1] * 5)
        X = np.arange(35).reshape(-1, 1).astype(float)
        Xb, yb = oversample(X, y, random_state=0)
        majority_values = set(Xb[yb == 0][:, 0].tolist())
        assert majority_values == set(range(30))

    def test_minority_duplicated(self):
        y = np.array([0] * 30 + [1] * 5)
        X = np.arange(35).reshape(-1, 1).astype(float)
        Xb, yb = oversample(X, y, random_state=0)
        minority = Xb[yb == 1][:, 0]
        assert len(minority) == 30
        assert len(set(minority.tolist())) <= 5


class TestBalancedIndices:
    def test_shuffled(self):
        y = np.array([0] * 100 + [1] * 100)
        idx = balanced_indices(y, strategy="under", random_state=0)
        assert not np.array_equal(idx, np.sort(idx))

    def test_unknown_strategy_raises(self):
        with pytest.raises(ValueError):
            balanced_indices(np.array([0, 1]), strategy="smote")

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            balanced_indices(np.array([]))

    def test_deterministic_with_seed(self):
        y = np.array([0] * 20 + [1] * 8)
        a = balanced_indices(y, random_state=7)
        b = balanced_indices(y, random_state=7)
        assert np.array_equal(a, b)
