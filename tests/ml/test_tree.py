"""Unit tests for the CART decision tree."""

import numpy as np
import pytest

from repro.ml.tree import DecisionTreeClassifier


def _separable(n=200, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 4))
    y = (X[:, 0] > 0).astype(int)
    return X, y


class TestFit:
    def test_perfectly_separable_data_fits_exactly(self):
        X, y = _separable()
        tree = DecisionTreeClassifier().fit(X, y)
        assert (tree.predict(X) == y).all()

    def test_classes_attribute_sorted(self):
        X, y = _separable()
        tree = DecisionTreeClassifier().fit(X, y + 5)
        assert tree.classes_.tolist() == [5, 6]

    def test_string_labels(self):
        X, y = _separable()
        labels = np.where(y == 0, "low", "high")
        tree = DecisionTreeClassifier().fit(X, labels)
        assert set(tree.predict(X)) <= {"low", "high"}

    def test_max_depth_respected(self):
        X, y = _separable(400)
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
        assert tree.max_depth_ <= 3

    def test_min_samples_leaf_respected(self):
        X, y = _separable(300, seed=1)
        tree = DecisionTreeClassifier(min_samples_leaf=20).fit(X, y)
        leaves = tree.apply(X)
        _, counts = np.unique(leaves, return_counts=True)
        assert counts.min() >= 20

    def test_single_class_gives_single_leaf(self):
        X = np.random.default_rng(2).normal(size=(50, 3))
        y = np.zeros(50)
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.node_count == 1

    def test_empty_dataset_raises(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.empty((0, 3)), np.empty(0))

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((5, 2)), np.zeros(4))

    def test_1d_input_raises(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros(5), np.zeros(5))

    def test_invalid_criterion_raises(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(criterion="mse")

    def test_entropy_criterion_works(self):
        X, y = _separable()
        tree = DecisionTreeClassifier(criterion="entropy").fit(X, y)
        assert (tree.predict(X) == y).mean() > 0.95


class TestPredict:
    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().predict(np.zeros((2, 3)))

    def test_wrong_feature_count_raises(self):
        X, y = _separable()
        tree = DecisionTreeClassifier().fit(X, y)
        with pytest.raises(ValueError):
            tree.predict(np.zeros((2, 7)))

    def test_proba_rows_sum_to_one(self):
        X, y = _separable()
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        proba = tree.predict_proba(X)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_proba_in_unit_interval(self):
        X, y = _separable(seed=5)
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        proba = tree.predict_proba(X)
        assert proba.min() >= 0.0 and proba.max() <= 1.0

    def test_three_class_problem(self):
        rng = np.random.default_rng(6)
        X = rng.normal(size=(300, 3))
        y = np.digitize(X[:, 0], [-0.5, 0.5])
        tree = DecisionTreeClassifier().fit(X, y)
        assert (tree.predict(X) == y).mean() > 0.95


class TestFeatureSubsampling:
    def test_max_features_sqrt(self):
        X, y = _separable()
        tree = DecisionTreeClassifier(max_features="sqrt", random_state=0).fit(X, y)
        assert tree._n_sub == 2    # ceil(sqrt(4))

    def test_max_features_int_out_of_range(self):
        X, y = _separable()
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_features=10).fit(X, y)

    def test_deterministic_given_seed(self):
        X, y = _separable(seed=9)
        t1 = DecisionTreeClassifier(max_features=2, random_state=42).fit(X, y)
        t2 = DecisionTreeClassifier(max_features=2, random_state=42).fit(X, y)
        assert (t1.predict(X) == t2.predict(X)).all()


class TestImportances:
    def test_importances_sum_to_one(self):
        X, y = _separable(seed=3)
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.feature_importances().sum() == pytest.approx(1.0)

    def test_informative_feature_dominates(self):
        X, y = _separable(seed=4)
        tree = DecisionTreeClassifier().fit(X, y)
        importances = tree.feature_importances()
        assert importances[0] == importances.max()
        assert importances[0] > 0.8


class TestSplitSearchEquivalence:
    """The hoisted one-hot split search must match the per-feature
    scatter it replaced, split for split."""

    @staticmethod
    def _reference_best_split(tree, X, y, indices):
        """The pre-hoist split search: one-hot rebuilt per feature."""
        from repro.ml.tree import _impurity

        n = indices.size
        k = tree.n_classes_
        y_node = y[indices]
        parent_counts = np.bincount(y_node, minlength=k).astype(float)
        parent_imp = _impurity(parent_counts, tree.criterion)
        if parent_imp <= 0:
            return None
        features = np.arange(tree.n_features_)
        best_gain = 1e-12
        best = None
        min_leaf = tree.min_samples_leaf
        for feat in features:
            col = X[indices, feat]
            order = np.argsort(col, kind="mergesort")
            v = col[order]
            labels = y_node[order]
            if v[0] == v[-1]:
                continue
            onehot = np.zeros((n, k))
            onehot[np.arange(n), labels] = 1.0
            prefix = np.cumsum(onehot, axis=0)
            boundaries = np.nonzero(np.diff(v) > 0)[0]
            if boundaries.size == 0:
                continue
            if min_leaf > 1:
                boundaries = boundaries[
                    (boundaries + 1 >= min_leaf)
                    & (n - boundaries - 1 >= min_leaf)
                ]
                if boundaries.size == 0:
                    continue
            left_counts = prefix[boundaries]
            right_counts = parent_counts - left_counts
            n_left = left_counts.sum(axis=1)
            n_right = n - n_left
            with np.errstate(invalid="ignore", divide="ignore"):
                gl = 1.0 - ((left_counts / n_left[:, None]) ** 2).sum(axis=1)
                gr = 1.0 - ((right_counts / n_right[:, None]) ** 2).sum(axis=1)
            child = (n_left * gl + n_right * gr) / n
            gains = parent_imp - child
            best_local = int(np.argmax(gains))
            if gains[best_local] > best_gain:
                best_gain = float(gains[best_local])
                cut_pos = int(boundaries[best_local])
                thr = 0.5 * (v[cut_pos] + v[cut_pos + 1])
                best = (int(feat), float(thr))
        return best

    def test_best_split_matches_per_feature_reference(self):
        rng = np.random.default_rng(11)
        X = rng.normal(size=(200, 6))
        X[:, 3] = np.round(X[:, 3])   # ties, so boundaries thin out
        y_raw = np.digitize(X[:, 0] + 0.3 * X[:, 1], [-0.6, 0.6])
        for min_leaf in (1, 5):
            tree = DecisionTreeClassifier(min_samples_leaf=min_leaf)
            tree.fit(X, y_raw)   # sets n_classes_/n_features_/_rng
            y_enc = np.unique(y_raw, return_inverse=True)[1]
            for seed in range(5):
                idx_rng = np.random.default_rng(seed)
                indices = np.sort(
                    idx_rng.choice(X.shape[0], size=80, replace=False)
                )
                assert tree._best_split(
                    X, y_enc, None, indices
                ) == self._reference_best_split(tree, X, y_enc, indices)

    def test_fitted_trees_bit_identical_predictions(self):
        rng = np.random.default_rng(12)
        X = rng.normal(size=(400, 8))
        y = np.digitize(X[:, 0] - 0.5 * X[:, 2], [-0.4, 0.4])
        a = DecisionTreeClassifier(max_features="sqrt", random_state=5).fit(X, y)
        b = DecisionTreeClassifier(max_features="sqrt", random_state=5).fit(X, y)
        assert np.array_equal(a._threshold, b._threshold)
        assert np.array_equal(a._feature, b._feature)
        assert np.array_equal(a.predict_proba(X), b.predict_proba(X))


class TestSampleWeight:
    def test_none_is_bit_identical_to_unit_weights(self):
        X, y = _separable(seed=3)
        plain = DecisionTreeClassifier(random_state=0).fit(X, y)
        unit = DecisionTreeClassifier(random_state=0).fit(
            X, y, sample_weight=np.ones(len(y))
        )
        assert np.array_equal(plain._feature, unit._feature)
        assert np.array_equal(plain._threshold, unit._threshold)
        assert np.array_equal(plain._value, unit._value)
        assert np.array_equal(plain.predict_proba(X), unit.predict_proba(X))

    def test_weighted_fit_differs_from_unweighted(self):
        # Two interleaved populations; weights silence the second one.
        rng = np.random.default_rng(7)
        X = rng.normal(size=(300, 3))
        y = (X[:, 0] > 0).astype(int)
        # Mislabel a contiguous block, then weight those rows to zero:
        # a weight-aware fit must recover the clean structure.
        y_bad = y.copy()
        y_bad[:120] = 1 - y_bad[:120]
        w = np.ones(len(y_bad))
        w[:120] = 0.0
        weighted = DecisionTreeClassifier(
            max_depth=3, random_state=0
        ).fit(X, y_bad, sample_weight=w)
        unweighted = DecisionTreeClassifier(
            max_depth=3, random_state=0
        ).fit(X, y_bad)
        assert not np.array_equal(
            weighted.predict_proba(X), unweighted.predict_proba(X)
        )
        # The zero-weighted mislabelled block cannot distort the tree:
        # clean rows must be classified like a fit on them alone.
        clean = DecisionTreeClassifier(max_depth=3, random_state=0).fit(
            X[120:], y[120:]
        )
        agree = np.mean(weighted.predict(X) == clean.predict(X))
        assert agree > 0.95

    def test_leaf_values_are_weighted_counts(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 1, 1])
        w = np.array([1.0, 2.0, 3.0, 4.0])
        tree = DecisionTreeClassifier().fit(X, y, sample_weight=w)
        assert tree._value[0].tolist() == [3.0, 7.0]

    def test_invalid_sample_weight_rejected(self):
        X, y = _separable(n=20)
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(X, y, sample_weight=np.ones(3))
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(
                X, y, sample_weight=-np.ones(len(y))
            )
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(
                X, y, sample_weight=np.zeros(len(y))
            )
        with pytest.raises(ValueError):
            bad = np.ones(len(y))
            bad[0] = np.nan
            DecisionTreeClassifier().fit(X, y, sample_weight=bad)


class TestZeroTotalLeaves:
    def test_zero_weight_leaf_inherits_parent_distribution(self):
        # x <= 0.5 isolates the two zero-weight rows of class 0: their
        # leaf has no evidence and must answer the parent's mixture,
        # never an all-zero row argmaxing to class 0.
        X = np.array([[0.0], [0.4], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 1, 1, 1])
        w = np.array([0.0, 0.0, 1.0, 1.0, 1.0])
        tree = DecisionTreeClassifier(min_samples_split=2).fit(
            X, y, sample_weight=w
        )
        proba = tree.predict_proba(X)
        assert np.all(proba.sum(axis=1) > 0.999)
        assert (tree.predict(X) == 1).all()

    def test_handcrafted_zero_leaf_answers_uniform(self):
        X, y = _separable(n=50, seed=1)
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        leaves = np.nonzero(tree._feature == -1)[0]
        tree._value[leaves[0]] = 0.0     # simulate a corrupted leaf
        hit = tree.apply(X) == leaves[0]
        if hit.any():
            proba = tree.predict_proba(X)
            assert np.allclose(proba[hit], 1.0 / tree.n_classes_)
