"""Unit tests for the CART decision tree."""

import numpy as np
import pytest

from repro.ml.tree import DecisionTreeClassifier


def _separable(n=200, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 4))
    y = (X[:, 0] > 0).astype(int)
    return X, y


class TestFit:
    def test_perfectly_separable_data_fits_exactly(self):
        X, y = _separable()
        tree = DecisionTreeClassifier().fit(X, y)
        assert (tree.predict(X) == y).all()

    def test_classes_attribute_sorted(self):
        X, y = _separable()
        tree = DecisionTreeClassifier().fit(X, y + 5)
        assert tree.classes_.tolist() == [5, 6]

    def test_string_labels(self):
        X, y = _separable()
        labels = np.where(y == 0, "low", "high")
        tree = DecisionTreeClassifier().fit(X, labels)
        assert set(tree.predict(X)) <= {"low", "high"}

    def test_max_depth_respected(self):
        X, y = _separable(400)
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
        assert tree.max_depth_ <= 3

    def test_min_samples_leaf_respected(self):
        X, y = _separable(300, seed=1)
        tree = DecisionTreeClassifier(min_samples_leaf=20).fit(X, y)
        leaves = tree.apply(X)
        _, counts = np.unique(leaves, return_counts=True)
        assert counts.min() >= 20

    def test_single_class_gives_single_leaf(self):
        X = np.random.default_rng(2).normal(size=(50, 3))
        y = np.zeros(50)
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.node_count == 1

    def test_empty_dataset_raises(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.empty((0, 3)), np.empty(0))

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((5, 2)), np.zeros(4))

    def test_1d_input_raises(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros(5), np.zeros(5))

    def test_invalid_criterion_raises(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(criterion="mse")

    def test_entropy_criterion_works(self):
        X, y = _separable()
        tree = DecisionTreeClassifier(criterion="entropy").fit(X, y)
        assert (tree.predict(X) == y).mean() > 0.95


class TestPredict:
    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().predict(np.zeros((2, 3)))

    def test_wrong_feature_count_raises(self):
        X, y = _separable()
        tree = DecisionTreeClassifier().fit(X, y)
        with pytest.raises(ValueError):
            tree.predict(np.zeros((2, 7)))

    def test_proba_rows_sum_to_one(self):
        X, y = _separable()
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        proba = tree.predict_proba(X)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_proba_in_unit_interval(self):
        X, y = _separable(seed=5)
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        proba = tree.predict_proba(X)
        assert proba.min() >= 0.0 and proba.max() <= 1.0

    def test_three_class_problem(self):
        rng = np.random.default_rng(6)
        X = rng.normal(size=(300, 3))
        y = np.digitize(X[:, 0], [-0.5, 0.5])
        tree = DecisionTreeClassifier().fit(X, y)
        assert (tree.predict(X) == y).mean() > 0.95


class TestFeatureSubsampling:
    def test_max_features_sqrt(self):
        X, y = _separable()
        tree = DecisionTreeClassifier(max_features="sqrt", random_state=0).fit(X, y)
        assert tree._n_sub == 2    # ceil(sqrt(4))

    def test_max_features_int_out_of_range(self):
        X, y = _separable()
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_features=10).fit(X, y)

    def test_deterministic_given_seed(self):
        X, y = _separable(seed=9)
        t1 = DecisionTreeClassifier(max_features=2, random_state=42).fit(X, y)
        t2 = DecisionTreeClassifier(max_features=2, random_state=42).fit(X, y)
        assert (t1.predict(X) == t2.predict(X)).all()


class TestImportances:
    def test_importances_sum_to_one(self):
        X, y = _separable(seed=3)
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.feature_importances().sum() == pytest.approx(1.0)

    def test_informative_feature_dominates(self):
        X, y = _separable(seed=4)
        tree = DecisionTreeClassifier().fit(X, y)
        importances = tree.feature_importances()
        assert importances[0] == importances.max()
        assert importances[0] > 0.8
