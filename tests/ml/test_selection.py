"""Unit tests for CFS subset selection and info-gain ranking."""

import numpy as np
import pytest

from repro.ml.selection import CfsSubsetSelector, InfoGainRanker, SelectionResult


def _dataset(seed=0, n=400):
    """Two informative features (one redundant pair) + noise."""
    rng = np.random.default_rng(seed)
    informative = rng.normal(size=n)
    second = rng.normal(size=n)
    X = np.column_stack(
        [
            informative,                       # 0: informative
            informative + rng.normal(0, 0.05, n),  # 1: redundant copy of 0
            second,                            # 2: independently informative
            rng.normal(size=n),                # 3: noise
            rng.normal(size=n),                # 4: noise
        ]
    )
    y = ((informative > 0) & (second > 0)).astype(int)
    return X, y


class TestInfoGainRanker:
    def test_informative_features_ranked_first(self):
        X, y = _dataset()
        result = InfoGainRanker().rank(X, y)
        assert set(result.selected[:3]) >= {0, 2} or set(result.selected[:3]) >= {1, 2}

    def test_scores_descending(self):
        X, y = _dataset()
        result = InfoGainRanker().rank(X, y)
        assert all(a >= b for a, b in zip(result.scores, result.scores[1:]))

    def test_names_aligned(self):
        X, y = _dataset()
        names = [f"f{i}" for i in range(X.shape[1])]
        result = InfoGainRanker().rank(X, y, names=names)
        assert result.names == [names[j] for j in result.selected]

    def test_top_restricts(self):
        X, y = _dataset()
        result = InfoGainRanker().rank(X, y).top(2)
        assert len(result.selected) == 2
        assert len(result.scores) == 2

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            InfoGainRanker().rank(np.zeros((5, 2)), np.zeros(4))


class TestCfs:
    def test_selects_informative_not_noise(self):
        X, y = _dataset()
        result = CfsSubsetSelector().select(X, y)
        assert 2 in result.selected
        assert 0 in result.selected or 1 in result.selected
        assert 3 not in result.selected and 4 not in result.selected

    def test_redundant_pair_not_both_kept(self):
        X, y = _dataset()
        result = CfsSubsetSelector().select(X, y)
        assert not (0 in result.selected and 1 in result.selected)

    def test_merit_positive(self):
        X, y = _dataset()
        result = CfsSubsetSelector().select(X, y)
        assert result.merit > 0

    def test_max_subset_size_enforced(self):
        X, y = _dataset(seed=1)
        result = CfsSubsetSelector(max_subset_size=1).select(X, y)
        assert len(result.selected) == 1

    def test_names_propagated(self):
        X, y = _dataset()
        names = [f"feat{i}" for i in range(X.shape[1])]
        result = CfsSubsetSelector().select(X, y, names=names)
        assert all(name in names for name in result.names)

    def test_invalid_max_stale(self):
        with pytest.raises(ValueError):
            CfsSubsetSelector(max_stale=0)

    def test_pure_noise_selects_little(self):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(200, 6))
        y = rng.integers(0, 2, 200)
        result = CfsSubsetSelector().select(X, y)
        # With no real signal the merit stays near zero.
        assert result.merit < 0.3


class TestSelectionResult:
    def test_top_preserves_merit(self):
        result = SelectionResult(selected=[3, 1, 2], scores=[0.5, 0.4, 0.1], merit=0.7)
        assert result.top(2).merit == 0.7
        assert result.top(2).selected == [3, 1]
