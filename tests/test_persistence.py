"""Tests for JSON model persistence."""

import json

import numpy as np
import pytest

from repro import QoEFramework
from repro.ml.forest import RandomForestClassifier
from repro.persistence import (
    forest_from_dict,
    forest_to_dict,
    framework_from_dict,
    framework_to_dict,
    load_framework,
    save_framework,
)


@pytest.fixture(scope="module")
def framework(stall_records, adaptive_records):
    return QoEFramework(random_state=0, n_estimators=10).fit(
        stall_records, adaptive_records
    )


class TestForestRoundtrip:
    def _forest(self, labels):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(150, 4))
        y = labels[(X[:, 0] > 0).astype(int)]
        return (
            RandomForestClassifier(n_estimators=8, random_state=0).fit(X, y),
            X,
        )

    def test_numeric_labels_roundtrip(self):
        forest, X = self._forest(np.array([0, 1]))
        clone = forest_from_dict(forest_to_dict(forest))
        assert (clone.predict(X) == forest.predict(X)).all()
        np.testing.assert_allclose(
            clone.predict_proba(X), forest.predict_proba(X)
        )

    def test_string_labels_roundtrip(self):
        forest, X = self._forest(np.array(["healthy", "stalled"]))
        clone = forest_from_dict(forest_to_dict(forest))
        assert (clone.predict(X) == forest.predict(X)).all()

    def test_unfitted_forest_rejected(self):
        with pytest.raises(ValueError):
            forest_to_dict(RandomForestClassifier())

    def test_payload_is_json_serialisable(self):
        forest, _ = self._forest(np.array([0, 1]))
        json.dumps(forest_to_dict(forest))   # must not raise


class TestFrameworkRoundtrip:
    def test_unfitted_framework_rejected(self):
        with pytest.raises(ValueError):
            framework_to_dict(QoEFramework())

    def test_dict_roundtrip_preserves_predictions(
        self, framework, stall_records, adaptive_records
    ):
        clone = framework_from_dict(framework_to_dict(framework))
        original = framework.diagnose(adaptive_records[:10])
        restored = clone.diagnose(adaptive_records[:10])
        assert [d.stall_class for d in original] == [
            d.stall_class for d in restored
        ]
        assert [d.representation_class for d in original] == [
            d.representation_class for d in restored
        ]
        assert [d.has_quality_switches for d in original] == [
            d.has_quality_switches for d in restored
        ]

    def test_file_roundtrip(self, framework, adaptive_records, tmp_path):
        path = tmp_path / "models.json"
        save_framework(framework, path)
        clone = load_framework(path)
        original = framework.diagnose(adaptive_records[:5])
        restored = clone.diagnose(adaptive_records[:5])
        assert [d.stall_class for d in original] == [
            d.stall_class for d in restored
        ]

    def test_switch_threshold_preserved(self, framework, tmp_path):
        path = tmp_path / "models.json"
        save_framework(framework, path)
        clone = load_framework(path)
        assert clone.switching.threshold == framework.switching.threshold

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            framework_from_dict({"format_version": 99})

    def test_selected_features_preserved(self, framework, tmp_path):
        path = tmp_path / "models.json"
        save_framework(framework, path)
        clone = load_framework(path)
        assert clone.stall.selected_names_ == framework.stall.selected_names_
        assert clone.stall.feature_gains()   # selection result restored
