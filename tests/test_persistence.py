"""Tests for JSON model persistence."""

import json

import numpy as np
import pytest

from repro import QoEFramework
from repro.ml.forest import RandomForestClassifier
from repro.persistence import (
    forest_from_dict,
    forest_to_dict,
    framework_from_dict,
    framework_to_dict,
    load_framework,
    payload_checksum,
    save_framework,
)


@pytest.fixture(scope="module")
def framework(stall_records, adaptive_records):
    return QoEFramework(random_state=0, n_estimators=10).fit(
        stall_records, adaptive_records
    )


class TestForestRoundtrip:
    def _forest(self, labels):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(150, 4))
        y = labels[(X[:, 0] > 0).astype(int)]
        return (
            RandomForestClassifier(n_estimators=8, random_state=0).fit(X, y),
            X,
        )

    def test_numeric_labels_roundtrip(self):
        forest, X = self._forest(np.array([0, 1]))
        clone = forest_from_dict(forest_to_dict(forest))
        assert (clone.predict(X) == forest.predict(X)).all()
        np.testing.assert_allclose(
            clone.predict_proba(X), forest.predict_proba(X)
        )

    def test_string_labels_roundtrip(self):
        forest, X = self._forest(np.array(["healthy", "stalled"]))
        clone = forest_from_dict(forest_to_dict(forest))
        assert (clone.predict(X) == forest.predict(X)).all()

    def test_unfitted_forest_rejected(self):
        with pytest.raises(ValueError):
            forest_to_dict(RandomForestClassifier())

    def test_payload_is_json_serialisable(self):
        forest, _ = self._forest(np.array([0, 1]))
        json.dumps(forest_to_dict(forest))   # must not raise

    def test_hyperparameters_roundtrip(self):
        """A reloaded forest that is re-fit() must grow the same kind
        of ensemble, not silently revert to constructor defaults."""
        rng = np.random.default_rng(1)
        X = rng.normal(size=(120, 5))
        y = (X[:, 0] > 0).astype(int)
        forest = RandomForestClassifier(
            n_estimators=6,
            criterion="entropy",
            max_depth=4,
            min_samples_split=5,
            min_samples_leaf=2,
            max_features=3,
            bootstrap=False,
            oob_score=False,
            random_state=42,
        ).fit(X, y)
        clone = forest_from_dict(forest_to_dict(forest))
        for attr in (
            "n_estimators", "criterion", "max_depth", "min_samples_split",
            "min_samples_leaf", "max_features", "bootstrap", "oob_score",
            "random_state",
        ):
            assert getattr(clone, attr) == getattr(forest, attr), attr
        # Re-fitting the clone reproduces the original forest exactly.
        refit = clone.fit(X, y)
        np.testing.assert_array_equal(
            refit.predict_proba(X), forest.predict_proba(X)
        )

    def test_tree_hyperparameters_roundtrip(self):
        forest, _ = self._forest(np.array([0, 1]))
        clone = forest_from_dict(forest_to_dict(forest))
        for orig, restored in zip(forest.estimators_, clone.estimators_):
            assert restored.max_depth == orig.max_depth
            assert restored.min_samples_split == orig.min_samples_split
            assert restored.min_samples_leaf == orig.min_samples_leaf
            assert restored.max_features == orig.max_features

    def test_float_labels_stay_float(self):
        """Integral *float* labels (0.0/1.0) must not come back int64."""
        forest, X = self._forest(np.array([0.0, 1.0]))
        assert forest.classes_.dtype.kind == "f"
        clone = forest_from_dict(forest_to_dict(forest))
        assert clone.classes_.dtype.kind == "f"
        assert clone.predict(X).dtype.kind == "f"
        assert (clone.predict(X) == forest.predict(X)).all()

    def test_int_labels_stay_int(self):
        forest, X = self._forest(np.array([0, 1]))
        clone = forest_from_dict(forest_to_dict(forest))
        assert clone.classes_.dtype.kind == "i"
        assert clone.predict(X).dtype.kind == "i"

    def test_legacy_v1_forest_payload_loads(self):
        """Version-1 payloads (no hyperparameters, 'num' class kind)
        must still deserialise, with defaults substituted."""
        forest, X = self._forest(np.array([0, 1]))
        payload = forest_to_dict(forest)
        for key in ("criterion", "max_depth", "min_samples_split",
                    "min_samples_leaf", "max_features", "bootstrap",
                    "oob_score", "random_state"):
            payload.pop(key)
        payload["classes"] = {
            "kind": "num",
            "values": [float(c) for c in forest.classes_],
        }
        for tree in payload["trees"]:
            for key in ("max_depth", "min_samples_split",
                        "min_samples_leaf", "max_features"):
                tree.pop(key)
        clone = forest_from_dict(payload)
        assert clone.criterion == "gini"
        assert clone.max_features == "sqrt"
        assert (clone.predict(X) == forest.predict(X)).all()


class TestFrameworkRoundtrip:
    def test_unfitted_framework_rejected(self):
        with pytest.raises(ValueError):
            framework_to_dict(QoEFramework())

    def test_dict_roundtrip_preserves_predictions(
        self, framework, stall_records, adaptive_records
    ):
        clone = framework_from_dict(framework_to_dict(framework))
        original = framework.diagnose(adaptive_records[:10])
        restored = clone.diagnose(adaptive_records[:10])
        assert [d.stall_class for d in original] == [
            d.stall_class for d in restored
        ]
        assert [d.representation_class for d in original] == [
            d.representation_class for d in restored
        ]
        assert [d.has_quality_switches for d in original] == [
            d.has_quality_switches for d in restored
        ]

    def test_file_roundtrip(self, framework, adaptive_records, tmp_path):
        path = tmp_path / "models.json"
        save_framework(framework, path)
        clone = load_framework(path)
        original = framework.diagnose(adaptive_records[:5])
        restored = clone.diagnose(adaptive_records[:5])
        assert [d.stall_class for d in original] == [
            d.stall_class for d in restored
        ]

    def test_switch_threshold_preserved(self, framework, tmp_path):
        path = tmp_path / "models.json"
        save_framework(framework, path)
        clone = load_framework(path)
        assert clone.switching.threshold == framework.switching.threshold

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            framework_from_dict({"format_version": 99})

    def test_legacy_v1_framework_format_tolerated(self, framework):
        payload = framework_to_dict(framework)
        assert payload["format_version"] == 2
        payload["format_version"] = 1   # a pre-upgrade model file
        clone = framework_from_dict(payload)
        assert clone._fitted

    def test_selected_features_preserved(self, framework, tmp_path):
        path = tmp_path / "models.json"
        save_framework(framework, path)
        clone = load_framework(path)
        assert clone.stall.selected_names_ == framework.stall.selected_names_
        assert clone.stall.feature_gains()   # selection result restored


class TestLoadValidation:
    """Corruption of a saved model file must fail loudly, as ValueError,
    naming the failing layer — never a KeyError ten frames deep."""

    @pytest.fixture()
    def saved(self, framework, tmp_path):
        path = tmp_path / "models.json"
        save_framework(framework, path)
        return path

    def test_saved_file_embeds_checksum(self, saved):
        payload = json.loads(saved.read_text())
        assert payload["payload_sha256"] == payload_checksum(payload)

    def test_checksum_ignores_key_order(self, saved):
        payload = json.loads(saved.read_text())
        reordered = dict(reversed(list(payload.items())))
        assert payload_checksum(reordered) == payload["payload_sha256"]

    def test_tampered_payload_rejected(self, saved):
        payload = json.loads(saved.read_text())
        payload["switching"]["threshold"] += 1.0
        saved.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="checksum"):
            load_framework(saved)

    def test_truncated_file_rejected(self, saved):
        text = saved.read_text()
        saved.write_text(text[: len(text) // 2])
        with pytest.raises(ValueError, match="not valid JSON"):
            load_framework(saved)

    def test_non_object_json_rejected(self, saved):
        saved.write_text("[1, 2, 3]")
        with pytest.raises(ValueError, match="JSON object"):
            load_framework(saved)

    def test_missing_section_rejected(self, framework, tmp_path):
        payload = framework_to_dict(framework)
        del payload["switching"]
        path = tmp_path / "models.json"
        path.write_text(json.dumps(payload))  # no checksum: format check hits
        with pytest.raises(ValueError, match="switching"):
            load_framework(path)

    def test_corrupt_section_rejected_as_value_error(self, framework):
        payload = framework_to_dict(framework)
        del payload["stall"]["model"]
        with pytest.raises(ValueError, match="corrupt model payload"):
            framework_from_dict(payload)

    def test_legacy_file_without_checksum_loads(self, framework, tmp_path):
        """Files written before checksums existed must keep loading."""
        payload = framework_to_dict(framework)
        assert "payload_sha256" not in payload
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(payload))
        clone = load_framework(path)
        assert clone._fitted

    def test_non_dict_payload_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            framework_from_dict(["not", "a", "dict"])
