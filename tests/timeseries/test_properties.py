"""Property-based tests for time-series invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.timeseries.cusum import cusum_series
from repro.timeseries.stats import ecdf, summary_statistics

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)

series_st = arrays(
    np.float64, st.integers(min_value=1, max_value=100), elements=finite_floats
)


@given(series_st)
def test_cusum_sides_nonnegative(series):
    result = cusum_series(series)
    assert (result.high >= 0).all()
    assert (result.low >= 0).all()


@given(series_st, st.floats(min_value=0.0, max_value=100.0))
def test_cusum_drift_never_increases_excursions(series, drift):
    base = cusum_series(series).combined
    damped = cusum_series(series, drift=drift).combined
    assert damped.max(initial=0.0) <= base.max(initial=0.0) + 1e-6


@given(series_st, finite_floats)
def test_cusum_shift_invariance(series, offset):
    """Adding a constant to the series leaves the (mean-referenced)
    CUSUM unchanged."""
    a = cusum_series(series).combined
    b = cusum_series(series + offset).combined
    scale = max(1.0, np.abs(a).max())
    np.testing.assert_allclose(a, b, atol=1e-6 * scale + 1e-6)


@given(series_st)
def test_summary_statistics_ordering(series):
    stats = summary_statistics(series)
    assert stats["min"] <= stats["p25"] + 1e-12
    assert stats["p25"] <= stats["p50"] + 1e-12
    assert stats["p50"] <= stats["p75"] + 1e-12
    assert stats["p75"] <= stats["max"] + 1e-12
    eps = 1e-9 * max(1.0, abs(stats["max"]))
    assert stats["min"] - eps <= stats["mean"] <= stats["max"] + eps


@given(series_st)
def test_ecdf_is_valid_distribution(series):
    e = ecdf(series)
    assert np.all(np.diff(e.x) >= 0)
    assert np.all((e.y > 0) & (e.y <= 1.0))
    assert e.y[-1] == 1.0


@given(series_st, finite_floats)
def test_ecdf_evaluation_bounded(series, value):
    e = ecdf(series)
    assert 0.0 <= e(value) <= 1.0
