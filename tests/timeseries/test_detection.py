"""Unit tests for the Δsize × Δt switch signal."""

import numpy as np
import pytest

from repro.timeseries.detection import (
    DEFAULT_STARTUP_SKIP_S,
    delta_series,
    product_series,
    switch_score,
)


class TestDeltaSeries:
    def test_basic_deltas(self):
        times = [0.0, 12.0, 14.0, 17.0]
        sizes = [100.0, 200.0, 150.0, 150.0]
        dt, dsize = delta_series(times, sizes, startup_skip_s=0.0)
        np.testing.assert_allclose(dt, [12.0, 2.0, 3.0])
        np.testing.assert_allclose(dsize, [100.0, 50.0, 0.0])

    def test_startup_skip_removes_head(self):
        times = [0.0, 5.0, 11.0, 16.0, 21.0]
        sizes = [10.0, 20.0, 30.0, 40.0, 50.0]
        dt, dsize = delta_series(times, sizes)   # default skips 10s
        # only chunks at t >= 10 relative to first survive: 11,16,21
        assert dt.size == 2

    def test_default_skip_is_ten_seconds(self):
        assert DEFAULT_STARTUP_SKIP_S == 10.0

    def test_unsorted_input_sorted(self):
        times = [5.0, 0.0, 10.0]
        sizes = [2.0, 1.0, 3.0]
        dt, dsize = delta_series(times, sizes, startup_skip_s=0.0)
        np.testing.assert_allclose(dt, [5.0, 5.0])
        np.testing.assert_allclose(dsize, [1.0, 1.0])

    def test_absolute_size_deltas(self):
        dt, dsize = delta_series([0, 1, 2], [100.0, 50.0, 100.0], startup_skip_s=0.0)
        assert (dsize >= 0).all()

    def test_short_session_empty(self):
        dt, dsize = delta_series([0.0], [1.0], startup_skip_s=0.0)
        assert dt.size == 0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            delta_series([1.0, 2.0], [1.0])


class TestProductSeries:
    def test_product_of_deltas(self):
        series = product_series([0, 2, 4], [100.0, 300.0, 300.0], startup_skip_s=0.0)
        np.testing.assert_allclose(series, [400.0, 0.0])

    def test_empty_when_all_skipped(self):
        series = product_series([0.0, 1.0], [10.0, 20.0])   # both inside 10s
        assert series.size == 0


class TestSwitchScore:
    def test_steady_session_scores_low(self):
        # uniform chunks every 5s, constant size
        times = np.arange(0, 300, 5.0)
        sizes = np.full(times.size, 500.0)
        assert switch_score(times, sizes) == pytest.approx(0.0)

    def test_switching_session_scores_higher(self):
        rng = np.random.default_rng(0)
        times = np.cumsum(rng.uniform(4, 6, 60))
        steady = 500.0 + rng.normal(0, 20, 60)
        switching = steady.copy()
        switching[30:] = 1500.0 + rng.normal(0, 20, 30)   # big level shift
        assert switch_score(times, switching) > switch_score(times, steady)

    def test_empty_session_scores_zero(self):
        assert switch_score([], []) == 0.0
