"""Unit tests for Page's CUSUM."""

import numpy as np
import pytest

from repro.timeseries.cusum import (
    CusumResult,
    cusum_score,
    cusum_series,
    detect_changes,
)


class TestCusumSeries:
    def test_flat_series_stays_at_zero(self):
        result = cusum_series(np.ones(50))
        assert np.allclose(result.high, 0.0)
        assert np.allclose(result.low, 0.0)

    def test_empty_series(self):
        result = cusum_series(np.array([]))
        assert result.high.size == 0
        assert result.std() == 0.0

    def test_level_shift_accumulates_on_high_side(self):
        series = np.concatenate([np.zeros(50), np.full(50, 10.0)])
        result = cusum_series(series)
        assert result.high[-1] > result.high[49]
        assert result.high.max() > 100

    def test_negative_shift_accumulates_on_low_side(self):
        series = np.concatenate([np.full(50, 10.0), np.zeros(50)])
        result = cusum_series(series)
        assert result.low[-1] > 100

    def test_drift_suppresses_small_wander(self):
        rng = np.random.default_rng(0)
        series = rng.normal(0, 0.1, 200)
        with_drift = cusum_series(series, drift=1.0)
        assert with_drift.combined.max() < cusum_series(series).combined.max() + 1e-9
        assert np.allclose(with_drift.combined, 0.0)

    def test_explicit_target(self):
        series = np.full(20, 5.0)
        result = cusum_series(series, target=0.0)
        # every point is 5 above target -> high side ramps linearly
        assert result.high[-1] == pytest.approx(100.0)

    def test_statistics_nonnegative(self):
        rng = np.random.default_rng(1)
        result = cusum_series(rng.normal(size=100))
        assert (result.high >= 0).all()
        assert (result.low >= 0).all()

    def test_combined_is_sum(self):
        rng = np.random.default_rng(2)
        result = cusum_series(rng.normal(size=50))
        np.testing.assert_allclose(result.combined, result.high + result.low)

    def test_reset_on_detect(self):
        series = np.concatenate([np.zeros(20), np.full(30, 10.0)])
        result = cusum_series(series, reset_on_detect=True, threshold=20.0)
        assert result.high.max() <= 20.0 + 10.0


class TestDetectChanges:
    def test_detects_single_shift(self):
        series = np.concatenate([np.zeros(50), np.full(50, 5.0)])
        alarms = detect_changes(series, threshold=30.0, target=0.0)
        assert len(alarms) >= 1
        assert alarms[0] >= 50

    def test_no_alarms_on_flat(self):
        assert detect_changes(np.ones(100), threshold=5.0) == []

    def test_multiple_shifts_multiple_alarms(self):
        series = np.concatenate(
            [np.zeros(40), np.full(40, 8.0), np.zeros(40), np.full(40, 8.0)]
        )
        alarms = detect_changes(series, threshold=20.0, target=2.0, drift=1.0)
        assert len(alarms) >= 2

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            detect_changes(np.ones(10), threshold=0.0)

    def test_empty(self):
        assert detect_changes(np.array([]), threshold=1.0) == []


class TestCusumScore:
    def test_flat_scores_zero(self):
        assert cusum_score(np.full(100, 7.0)) == 0.0

    def test_shifted_scores_higher_than_stationary(self):
        rng = np.random.default_rng(3)
        stationary = rng.normal(10, 1, 100)
        shifted = np.concatenate([rng.normal(5, 1, 50), rng.normal(15, 1, 50)])
        assert cusum_score(shifted) > cusum_score(stationary)

    def test_scale_equivariance(self):
        """Scaling the series scales the score linearly — the reason the
        paper's threshold of 500 is unit-dependent."""
        rng = np.random.default_rng(4)
        series = np.concatenate([rng.normal(0, 1, 40), rng.normal(6, 1, 40)])
        assert cusum_score(series * 10) == pytest.approx(
            10 * cusum_score(series), rel=1e-9
        )
