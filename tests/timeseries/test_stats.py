"""Unit tests for summary statistics and ECDFs."""

import numpy as np
import pytest

from repro.timeseries.stats import (
    SUMMARY_STATS_BASIC,
    SUMMARY_STATS_EXTENDED,
    ecdf,
    summary_statistics,
)


class TestSummaryStatistics:
    def test_basic_set_has_seven(self):
        assert len(SUMMARY_STATS_BASIC) == 7

    def test_extended_set_has_fifteen(self):
        assert len(SUMMARY_STATS_EXTENDED) == 15

    def test_known_values(self):
        stats = summary_statistics([1.0, 2.0, 3.0, 4.0])
        assert stats["min"] == 1.0
        assert stats["max"] == 4.0
        assert stats["mean"] == pytest.approx(2.5)
        assert stats["p50"] == pytest.approx(2.5)

    def test_std_population(self):
        stats = summary_statistics([2.0, 4.0])
        assert stats["std"] == pytest.approx(1.0)

    def test_empty_sequence_all_zero(self):
        stats = summary_statistics([])
        assert all(v == 0.0 for v in stats.values())

    def test_nan_values_dropped(self):
        stats = summary_statistics([1.0, np.nan, 3.0])
        assert stats["mean"] == pytest.approx(2.0)

    def test_all_nan_treated_as_empty(self):
        stats = summary_statistics([np.nan, np.inf])
        assert stats["max"] == 0.0

    def test_extended_percentiles(self):
        values = np.arange(101, dtype=float)
        stats = summary_statistics(values, stats=SUMMARY_STATS_EXTENDED)
        assert stats["p5"] == pytest.approx(5.0)
        assert stats["p95"] == pytest.approx(95.0)

    def test_unknown_statistic_raises(self):
        with pytest.raises(ValueError):
            summary_statistics([1.0], stats=("median",))

    def test_min_le_percentiles_le_max(self):
        rng = np.random.default_rng(0)
        stats = summary_statistics(rng.normal(size=200), SUMMARY_STATS_EXTENDED)
        assert stats["min"] <= stats["p5"] <= stats["p50"] <= stats["p95"] <= stats["max"]


class TestEcdf:
    def test_monotone_increasing(self):
        e = ecdf([3.0, 1.0, 2.0, 5.0])
        assert np.all(np.diff(e.y) >= 0)
        assert np.all(np.diff(e.x) >= 0)

    def test_last_probability_is_one(self):
        e = ecdf([1.0, 2.0])
        assert e.y[-1] == 1.0

    def test_call_evaluates_cdf(self):
        e = ecdf([1.0, 2.0, 3.0, 4.0])
        assert e(0.5) == 0.0
        assert e(2.0) == pytest.approx(0.5)
        assert e(10.0) == 1.0

    def test_quantile_inverse(self):
        e = ecdf(np.arange(1, 101, dtype=float))
        assert e.quantile(0.5) == pytest.approx(50.0)
        assert e.quantile(1.0) == 100.0

    def test_quantile_bounds(self):
        e = ecdf([1.0, 2.0])
        with pytest.raises(ValueError):
            e.quantile(1.5)

    def test_empty_ecdf(self):
        e = ecdf([])
        assert e(0.0) == 0.0
        with pytest.raises(ValueError):
            e.quantile(0.5)

    def test_nan_dropped(self):
        e = ecdf([1.0, np.nan, 2.0])
        assert e.x.size == 2
