"""Shared fixtures: small corpora and records reused across test modules.

Session-scoped because corpus generation is the expensive part of the
suite; tests must not mutate these objects.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.generate import (
    generate_adaptive_corpus,
    generate_cleartext_corpus,
    generate_encrypted_corpus,
)
from repro.datasets.preparation import record_from_video_session
from repro.network.path import NetworkPath
from repro.streaming.adaptive import AdaptivePlayer
from repro.streaming.catalog import Video, VideoCatalog
from repro.streaming.progressive import ProgressivePlayer


@pytest.fixture(scope="session")
def cleartext_corpus():
    """A small §3.1-style cleartext corpus (mixed delivery)."""
    return generate_cleartext_corpus(120, seed=101)


@pytest.fixture(scope="session")
def adaptive_corpus():
    """A small all-HAS corpus."""
    return generate_adaptive_corpus(100, seed=104)


@pytest.fixture(scope="session")
def encrypted_corpus():
    """A small §5.2-style encrypted corpus."""
    return generate_encrypted_corpus(60, seed=103)


@pytest.fixture(scope="session")
def stall_records(cleartext_corpus):
    return [
        r
        for r in cleartext_corpus.records
        if r.stall_duration_s is not None and r.total_duration_s
    ]


@pytest.fixture(scope="session")
def adaptive_records(adaptive_corpus):
    return [
        r
        for r in adaptive_corpus.records
        if r.resolutions is not None and r.resolutions.size > 0
    ]


@pytest.fixture(scope="session")
def one_progressive_session():
    """A single simulated progressive session on a good network."""
    rng = np.random.default_rng(7)
    video = Video(video_id="fixture-prog", duration_s=120.0)
    path = NetworkPath("good", 700.0, rng)
    return ProgressivePlayer().play(video, path, rng, place="home")


@pytest.fixture(scope="session")
def one_adaptive_session():
    """A single simulated adaptive session on a good network."""
    rng = np.random.default_rng(9)
    video = Video(video_id="fixture-has", duration_s=120.0)
    path = NetworkPath("good", 700.0, rng)
    return AdaptivePlayer().play(video, path, rng, place="home")


@pytest.fixture(scope="session")
def one_record(one_adaptive_session):
    """A SessionRecord built straight from a simulated session."""
    return record_from_video_session(one_adaptive_session)
