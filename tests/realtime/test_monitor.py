"""Integration tests for the real-time monitor."""

import numpy as np
import pytest

from repro import QoEFramework
from repro.capture.proxy import WebProxy
from repro.realtime import RealTimeMonitor


@pytest.fixture(scope="module")
def framework(stall_records, adaptive_records):
    return QoEFramework(random_state=0, n_estimators=12).fit(
        stall_records, adaptive_records
    )


def _stream(sessions, seed=0, subscriber="sub-x", gap=200.0):
    proxy = WebProxy(np.random.default_rng(seed))
    entries = []
    epoch = 0.0
    for session in sessions:
        entries.extend(
            proxy.observe(session, subscriber, start_epoch_s=epoch, encrypted=True)
        )
        epoch += session.total_duration_s + gap
    entries.sort(key=lambda e: e.timestamp_s)
    return entries


class TestRealTimeMonitor:
    def test_invalid_parameters(self, framework):
        with pytest.raises(ValueError):
            RealTimeMonitor(framework, severe_alarm_after=0)
        with pytest.raises(ValueError):
            RealTimeMonitor(framework, stall_ratio_alarm=0.0)

    def test_sessions_diagnosed_as_they_close(
        self, framework, one_adaptive_session, one_progressive_session
    ):
        monitor = RealTimeMonitor(framework)
        stream = _stream([one_adaptive_session, one_progressive_session])
        live = monitor.feed_many(stream)
        live += monitor.flush()
        assert len(live) == 2
        assert len(monitor.diagnoses) == 2

    def test_health_counters_update(self, framework, one_adaptive_session):
        monitor = RealTimeMonitor(framework)
        monitor.feed_many(_stream([one_adaptive_session]))
        monitor.flush()
        health = monitor.health["sub-x"]
        assert health.sessions == 1
        assert 0.0 <= health.stall_ratio <= 1.0

    def test_callback_invoked(self, framework, one_adaptive_session):
        seen = []
        monitor = RealTimeMonitor(framework, on_diagnosis=seen.append)
        monitor.feed_many(_stream([one_adaptive_session]))
        monitor.flush()
        assert len(seen) == 1

    def test_severe_alarm_fires_once(self, framework, one_adaptive_session):
        monitor = RealTimeMonitor(framework, severe_alarm_after=1)
        # force every diagnosis severe by monkeypatching the stall model
        monitor.framework.stall.predict = lambda records: np.array(
            ["severe stalls"] * len(records)
        )
        stream = _stream([one_adaptive_session, one_adaptive_session], seed=1)
        monitor.feed_many(stream)
        monitor.flush()
        assert len(monitor.alarms) == 1
        assert "severe" in monitor.alarms[0].reason

    def test_stall_ratio_alarm(self, framework, one_adaptive_session):
        monitor = RealTimeMonitor(
            framework,
            severe_alarm_after=10_000,
            stall_ratio_alarm=0.5,
            min_sessions_for_ratio=2,
        )
        monitor.framework.stall.predict = lambda records: np.array(
            ["mild stalls"] * len(records)
        )
        stream = _stream([one_adaptive_session] * 3, seed=2)
        monitor.feed_many(stream)
        monitor.flush()
        assert monitor.alarms
        assert "ratio" in monitor.alarms[0].reason


class TestDrain:
    """Graceful-shutdown regression: drain() must flush the tracker and
    run the alarm rules exactly once over the final state."""

    def test_drain_diagnoses_open_sessions(
        self, framework, one_adaptive_session, one_progressive_session
    ):
        monitor = RealTimeMonitor(framework)
        stream = _stream([one_adaptive_session, one_progressive_session])
        live = monitor.feed_many(stream)
        final = monitor.drain()
        # both sessions were still open (no trailing idle gap): drain
        # must surface whatever feed_many did not
        assert len(live) + len(final) == 2
        assert len(monitor.diagnoses) == 2
        assert monitor.tracker.open_sessions == 0

    def test_drain_runs_final_alarm_sweep(self, framework, one_adaptive_session):
        monitor = RealTimeMonitor(framework, severe_alarm_after=1)
        monitor.framework.stall.predict = lambda records: np.array(
            ["severe stalls"] * len(records)
        )
        monitor.feed_many(_stream([one_adaptive_session], seed=6))
        assert monitor.alarms == []  # session still open, nothing diagnosed
        monitor.drain()
        assert len(monitor.alarms) == 1

    def test_drain_is_idempotent(self, framework, one_adaptive_session):
        monitor = RealTimeMonitor(framework)
        monitor.feed_many(_stream([one_adaptive_session], seed=7))
        first = monitor.drain()
        assert len(first) == 1
        assert monitor.drain() == []
        assert len(monitor.diagnoses) == 1

    def test_feed_after_drain_raises(self, framework, one_adaptive_session):
        monitor = RealTimeMonitor(framework)
        stream = _stream([one_adaptive_session], seed=8)
        monitor.feed_many(stream)
        monitor.drain()
        with pytest.raises(RuntimeError, match="drained"):
            monitor.feed(stream[0])

    def test_final_alarm_sweep_returns_only_new_alarms(
        self, framework, one_adaptive_session
    ):
        monitor = RealTimeMonitor(framework, severe_alarm_after=1)
        monitor.framework.stall.predict = lambda records: np.array(
            ["severe stalls"] * len(records)
        )
        monitor.feed_many(_stream([one_adaptive_session] * 2, seed=9))
        monitor.flush()
        assert len(monitor.alarms) == 1  # raised during the stream
        # sweep finds nothing new: the per-diagnosis check already fired
        assert monitor.final_alarm_sweep() == []
        assert len(monitor.alarms) == 1


class TestCallbackIsolation:
    """One raising subscriber callback must not kill the monitor loop."""

    def test_raising_diagnosis_callback_is_isolated(
        self, framework, one_adaptive_session, one_progressive_session
    ):
        def explode(diagnosis):
            raise RuntimeError("subscriber callback bug")

        monitor = RealTimeMonitor(framework, on_diagnosis=explode)
        stream = _stream([one_adaptive_session, one_progressive_session])
        live = monitor.feed_many(stream)
        live += monitor.flush()
        # The loop survived and still diagnosed everything.
        assert len(live) == 2
        assert len(monitor.diagnoses) == 2
        assert monitor.callback_errors == 2

    def test_raising_alarm_callback_is_isolated(
        self, framework, one_adaptive_session
    ):
        def explode(alarm):
            raise RuntimeError("alarm sink down")

        monitor = RealTimeMonitor(
            framework, severe_alarm_after=1, on_alarm=explode
        )
        monitor.framework.stall.predict = lambda records: np.array(
            ["severe stalls"] * len(records)
        )
        monitor.feed_many(_stream([one_adaptive_session], seed=3))
        monitor.flush()
        # The alarm itself was still recorded.
        assert len(monitor.alarms) == 1
        assert monitor.callback_errors == 1

    def test_callback_errors_counted_in_registry(
        self, framework, one_adaptive_session
    ):
        from repro.obs import get_registry

        errors = get_registry().counter(
            "repro_realtime_alarms_callback_errors_total",
            labelnames=("callback",),
        )
        before = errors.labels(callback="diagnosis").value

        def explode(diagnosis):
            raise RuntimeError("boom")

        monitor = RealTimeMonitor(framework, on_diagnosis=explode)
        monitor.feed_many(_stream([one_adaptive_session], seed=4))
        monitor.flush()
        assert errors.labels(callback="diagnosis").value == before + 1

    def test_alarm_callback_invoked_on_alarm(
        self, framework, one_adaptive_session
    ):
        raised = []
        monitor = RealTimeMonitor(
            framework, severe_alarm_after=1, on_alarm=raised.append
        )
        monitor.framework.stall.predict = lambda records: np.array(
            ["severe stalls"] * len(records)
        )
        monitor.feed_many(_stream([one_adaptive_session], seed=5))
        monitor.flush()
        assert len(raised) == 1
        assert raised[0].subscriber_id == "sub-x"
        assert monitor.callback_errors == 0


class TestFeedValidation:
    """feed() re-validates entries before they can touch tracker state —
    the serial-path counterpart of the serving dead-letter quarantine."""

    def test_malformed_entry_raises_typed_error(self, framework):
        from repro.capture.weblog import MalformedRecordError, WeblogEntry
        from tests.faults.conftest import make_entry

        good = make_entry()
        # build garbage past __init__, the way a replay/deserialisation
        # path would hand it over
        bad = object.__new__(WeblogEntry)
        bad.__dict__.update(good.__dict__)
        bad.__dict__["timestamp_s"] = float("nan")

        monitor = RealTimeMonitor(framework)
        with pytest.raises(MalformedRecordError):
            monitor.feed(bad)
        # nothing leaked into the tracker
        assert monitor.tracker.open_sessions == 0
        assert monitor.diagnoses == []

    def test_malformed_error_is_still_a_value_error(self, framework):
        from repro.capture.weblog import MalformedRecordError

        assert issubclass(MalformedRecordError, ValueError)
