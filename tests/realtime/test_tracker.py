"""Unit tests for the online session tracker."""

import numpy as np
import pytest

from repro.capture.proxy import WebProxy
from repro.realtime.tracker import OnlineSessionTracker


def _entries(session, epoch, seed=0, subscriber="sub-a"):
    proxy = WebProxy(np.random.default_rng(seed))
    return proxy.observe(session, subscriber, start_epoch_s=epoch, encrypted=True)


class TestOnlineSessionTracker:
    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            OnlineSessionTracker(idle_gap_s=0)
        with pytest.raises(ValueError):
            OnlineSessionTracker(min_media_chunks=0)

    def test_non_youtube_traffic_ignored(self, one_adaptive_session):
        tracker = OnlineSessionTracker()
        entries = _entries(one_adaptive_session, 0.0)
        for entry in entries:
            entry = type(entry)(**{**entry.__dict__, "server_name": "cdn.other.example"})
            assert tracker.observe(entry) == []
        assert tracker.open_sessions == 0

    def test_single_session_closed_on_flush(self, one_adaptive_session):
        tracker = OnlineSessionTracker()
        closed = []
        for entry in _entries(one_adaptive_session, 0.0):
            closed.extend(tracker.observe(entry))
        assert closed == []              # still open: no gap seen yet
        closed = tracker.flush()
        assert len(closed) == 1
        assert closed[0].n_chunks == len(one_adaptive_session.chunks)

    def test_gap_closes_session(self, one_adaptive_session, one_progressive_session):
        tracker = OnlineSessionTracker(idle_gap_s=30.0)
        stream = _entries(one_adaptive_session, 0.0)
        stream += _entries(
            one_progressive_session,
            one_adaptive_session.total_duration_s + 300.0,
            seed=1,
        )
        stream.sort(key=lambda e: e.timestamp_s)
        closed = []
        for entry in stream:
            closed.extend(tracker.observe(entry))
        closed.extend(tracker.flush())
        assert len(closed) == 2

    def test_online_matches_offline_reconstruction(
        self, one_adaptive_session, one_progressive_session
    ):
        """The incremental tracker groups exactly like the batch one."""
        from repro.capture.reconstruction import SessionReconstructor

        stream = _entries(one_adaptive_session, 0.0)
        stream += _entries(
            one_progressive_session,
            one_adaptive_session.total_duration_s + 200.0,
            seed=1,
        )
        stream.sort(key=lambda e: e.timestamp_s)

        offline = SessionReconstructor().reconstruct(stream)

        tracker = OnlineSessionTracker()
        online = []
        for entry in stream:
            online.extend(tracker.observe(entry))
        online.extend(tracker.flush())

        assert sorted(s.chunk_count for s in offline) == sorted(
            r.n_chunks for r in online
        )

    def test_per_subscriber_isolation(self, one_adaptive_session):
        tracker = OnlineSessionTracker()
        a = _entries(one_adaptive_session, 0.0, subscriber="sub-a")
        b = _entries(one_adaptive_session, 0.0, seed=1, subscriber="sub-b")
        merged = sorted(a + b, key=lambda e: e.timestamp_s)
        for entry in merged:
            tracker.observe(entry)
        assert tracker.open_sessions == 2
        closed = tracker.flush()
        assert len(closed) == 2

    def test_flush_with_now_only_closes_idle(self, one_adaptive_session):
        tracker = OnlineSessionTracker(idle_gap_s=30.0)
        for entry in _entries(one_adaptive_session, 0.0):
            tracker.observe(entry)
        last = one_adaptive_session.total_duration_s
        assert tracker.flush(now_s=last + 5.0) == []       # still fresh
        assert len(tracker.flush(now_s=last + 500.0)) == 1  # now idle

    def test_last_activity_maintained_incrementally(self, one_adaptive_session):
        """The watermark must match a full rescan after every entry
        (it used to be recomputed by concatenating media + signalling —
        O(n^2) over a live stream)."""
        tracker = OnlineSessionTracker()
        for entry in _entries(one_adaptive_session, 0.0):
            tracker.observe(entry)
            session = tracker._open[entry.subscriber_id]
            expected = max(
                e.arrival_s for e in session.media + session.signalling
            )
            assert session.last_activity_s == expected

    def test_out_of_order_arrivals_keep_watermark(self, one_adaptive_session):
        """An entry arriving with an older arrival_s must not move the
        watermark backwards."""
        from repro.realtime.tracker import OpenSession

        entries = _entries(one_adaptive_session, 0.0)[:3]
        session = OpenSession(subscriber_id="sub-a")
        for entry in entries:
            session.add(entry)
        high = session.last_activity_s
        stale = type(entries[0])(
            **{**entries[0].__dict__,
               "timestamp_s": entries[0].timestamp_s - 100.0}
        )
        assert stale.arrival_s < high
        session.add(stale)
        assert session.last_activity_s == high

    def test_short_fragments_discarded(self, one_adaptive_session):
        tracker = OnlineSessionTracker(min_media_chunks=10_000)
        for entry in _entries(one_adaptive_session, 0.0):
            tracker.observe(entry)
        assert tracker.flush() == []


def _media_entry(timestamp_s, transaction_s=1.0, subscriber="sub-a"):
    from repro.capture.weblog import WeblogEntry

    return WeblogEntry(
        subscriber_id=subscriber,
        timestamp_s=timestamp_s,
        server_name="r1---sn-abc.googlevideo.com",
        server_ip="10.0.0.1",
        server_port=443,
        object_bytes=500_000,
        transaction_s=transaction_s,
        rtt_min_ms=20.0,
        rtt_avg_ms=30.0,
        rtt_max_ms=50.0,
        bdp_bytes=60_000.0,
        bif_avg_bytes=30_000.0,
        bif_max_bytes=80_000.0,
        loss_pct=0.1,
        retx_pct=0.2,
        encrypted=True,
    )


class TestIdleGapTimebase:
    """Regression: the idle gap must run on request timestamps.

    The old comparison was ``entry.timestamp_s - last_activity_s`` where
    the watermark mixed in arrival times (timestamp + transaction): one
    long transaction pushed the watermark far past the next request and
    the gap went negative, holding the session open indefinitely.
    """

    def test_long_transaction_does_not_hold_session_open(self):
        tracker = OnlineSessionTracker(idle_gap_s=30.0, min_media_chunks=1)
        # Request at t=0 whose transfer drags on for 500s: under the
        # old mixed timebase the next request at t=60 saw a "gap" of
        # 60 - 500 = -440s and never closed the session.
        tracker.observe(_media_entry(0.0, transaction_s=500.0))
        closed = tracker.observe(_media_entry(60.0))
        assert len(closed) == 1
        assert closed[0].n_chunks == 1

    def test_flush_uses_request_timebase(self):
        tracker = OnlineSessionTracker(idle_gap_s=30.0, min_media_chunks=1)
        tracker.observe(_media_entry(0.0, transaction_s=500.0))
        assert tracker.flush(now_s=20.0) == []       # request was recent
        assert len(tracker.flush(now_s=100.0)) == 1  # idle on request clock

    def test_short_gap_still_keeps_session_open(self):
        tracker = OnlineSessionTracker(idle_gap_s=30.0, min_media_chunks=1)
        tracker.observe(_media_entry(0.0, transaction_s=500.0))
        assert tracker.observe(_media_entry(10.0)) == []
        assert tracker.open_sessions == 1


class TestStreamingState:
    def test_stream_absent_by_default(self, one_adaptive_session):
        tracker = OnlineSessionTracker()
        for entry in _entries(one_adaptive_session, 0.0)[:5]:
            tracker.observe(entry)
        assert tracker._open["sub-a"].stream is None

    def test_stream_counts_media_only(self, one_adaptive_session):
        tracker = OnlineSessionTracker(streaming=True)
        for entry in _entries(one_adaptive_session, 0.0):
            tracker.observe(entry)
        session = tracker._open["sub-a"]
        assert session.stream is not None
        assert session.stream.n_chunks == len(session.media)

    def test_provisional_id_matches_emitted_id(self, one_adaptive_session):
        tracker = OnlineSessionTracker(streaming=True)
        assert tracker.provisional_session_id("sub-a") == "sub-a/online-1"
        for entry in _entries(one_adaptive_session, 0.0):
            tracker.observe(entry)
        assert tracker.provisional_session_id("sub-a") == "sub-a/online-1"
        (record,) = tracker.flush()
        assert record.session_id == "sub-a/online-1"
        assert tracker.provisional_session_id("sub-a") == "sub-a/online-2"
