"""Robustness and failure-injection tests across the stack.

A monitoring system meets broken inputs: sampled packet captures that
lose entries, single-chunk sessions, degenerate feature values.  These
tests verify the pipeline degrades gracefully instead of crashing or
silently producing garbage.
"""

import numpy as np
import pytest

from repro.capture.proxy import WebProxy
from repro.capture.reconstruction import SessionReconstructor
from repro.core.features import stall_features
from repro.core.stall import StallDetector
from repro.core.switching import SwitchDetector
from repro.datasets.preparation import record_from_video_session
from repro.datasets.schema import SessionRecord
from repro.realtime import OnlineSessionTracker


def _minimal_record(n=1, **gt):
    return SessionRecord(
        session_id="tiny",
        encrypted=True,
        timestamps=np.arange(n, dtype=float),
        sizes=np.full(n, 1000.0),
        transactions=np.full(n, 0.5),
        rtt_min=np.full(n, 40.0),
        rtt_avg=np.full(n, 50.0),
        rtt_max=np.full(n, 60.0),
        bdp=np.full(n, 1e4),
        bif_avg=np.full(n, 1e3),
        bif_max=np.full(n, 2e3),
        loss_pct=np.zeros(n),
        retx_pct=np.zeros(n),
        **gt,
    )


class TestDegenerateSessions:
    def test_single_chunk_features_finite(self):
        features = stall_features(_minimal_record(1))
        assert all(np.isfinite(v) for v in features.values())

    def test_single_chunk_switch_score_zero(self):
        assert SwitchDetector().score(_minimal_record(1)) == 0.0

    def test_two_chunk_switch_score_finite(self):
        score = SwitchDetector().score(_minimal_record(2))
        assert np.isfinite(score)

    def test_detector_predicts_on_single_chunk(self, stall_records):
        detector = StallDetector(n_estimators=8, random_state=0).fit(
            stall_records
        )
        prediction = detector.predict([_minimal_record(1)])
        assert prediction[0] in ("no stalls", "mild stalls", "severe stalls")


class TestSampledCapture:
    """A monitor that samples 1-in-N packets loses weblog entries."""

    def _sampled_entries(self, session, keep_fraction, seed=0):
        proxy = WebProxy(np.random.default_rng(seed))
        entries = proxy.observe(session, "s", encrypted=True)
        rng = np.random.default_rng(seed + 1)
        return [e for e in entries if rng.random() < keep_fraction]

    def test_reconstruction_survives_50pct_loss(self, one_adaptive_session):
        entries = self._sampled_entries(one_adaptive_session, 0.5)
        sessions = SessionReconstructor().reconstruct(entries)
        # one (possibly fragmented) session with roughly half the chunks
        assert sessions
        total = sum(s.chunk_count for s in sessions)
        assert 0.2 * len(one_adaptive_session.chunks) <= total

    def test_detector_still_runs_on_sampled_records(
        self, one_adaptive_session, stall_records
    ):
        entries = self._sampled_entries(one_adaptive_session, 0.5)
        sessions = SessionReconstructor().reconstruct(entries)
        from repro.datasets.preparation import records_from_reconstruction

        records = records_from_reconstruction(sessions, [], [])
        detector = StallDetector(n_estimators=8, random_state=0).fit(
            stall_records
        )
        predictions = detector.predict(records)
        assert len(predictions) == len(records)


class TestOnlineTrackerRobustness:
    def test_duplicate_entries_do_not_crash(self, one_adaptive_session):
        proxy = WebProxy(np.random.default_rng(0))
        entries = proxy.observe(one_adaptive_session, "s", encrypted=True)
        tracker = OnlineSessionTracker()
        for entry in entries + entries[:10]:
            tracker.observe(entry)
        closed = tracker.flush()
        assert closed

    def test_interleaved_subscribers(self, one_adaptive_session):
        proxy = WebProxy(np.random.default_rng(0))
        a = proxy.observe(one_adaptive_session, "sub-a", encrypted=True)
        b = proxy.observe(one_adaptive_session, "sub-b", encrypted=True)
        merged = sorted(a + b, key=lambda e: e.timestamp_s)
        tracker = OnlineSessionTracker()
        for entry in merged:
            tracker.observe(entry)
        closed = tracker.flush()
        assert len(closed) == 2
        assert {r.session_id.split("/")[0] for r in closed} == {
            "sub-a",
            "sub-b",
        }


class TestExtremeFeatureValues:
    def test_huge_sizes_do_not_overflow(self, stall_records):
        record = _minimal_record(5)
        record.sizes = np.full(5, 1e12)
        features = stall_features(record)
        assert all(np.isfinite(v) for v in features.values())

    def test_zero_transactions_handled(self):
        record = _minimal_record(4)
        record.transactions = np.zeros(4)
        from repro.core.features import representation_features

        features = representation_features(record)
        assert all(np.isfinite(v) for v in features.values())

    def test_identical_timestamps_handled(self):
        record = _minimal_record(4)
        record.timestamps = np.zeros(4)
        score = SwitchDetector().score(record)
        assert np.isfinite(score)
