"""Adaptive bit-rate (ABR) algorithms.

§2.1: "The quality profile of the next segment is determined as a
function of the throughput with which the previous segment was
downloaded and the available seconds of playback in the buffer."

Three selectors are provided — throughput-based, buffer-based and the
hybrid of both that the simulations use by default (it matches the
quoted YouTube behaviour).  All share a tiny stateless interface so the
ablation benches can swap them freely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol, Sequence


from .catalog import QualityLevel, Video

__all__ = [
    "AbrAlgorithm",
    "ThroughputAbr",
    "BufferAbr",
    "HybridAbr",
    "ThroughputEstimator",
]


class AbrAlgorithm(Protocol):
    """Protocol every ABR selector implements."""

    def select(
        self,
        ladder: Sequence[QualityLevel],
        video: Video,
        throughput_kbps: float,
        buffer_s: float,
        current: Optional[QualityLevel],
        playback_started: bool = True,
    ) -> QualityLevel:
        """Pick the rung for the next segment."""
        ...


class ThroughputEstimator:
    """EWMA estimator of download throughput (kbit/s)."""

    def __init__(self, alpha: float = 0.4) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._estimate: Optional[float] = None

    @property
    def estimate_kbps(self) -> float:
        """Current estimate; 0 before any samples."""
        return self._estimate if self._estimate is not None else 0.0

    def update(self, sample_kbps: float) -> float:
        if sample_kbps < 0:
            raise ValueError("throughput sample must be >= 0")
        if self._estimate is None:
            self._estimate = float(sample_kbps)
        else:
            self._estimate = (
                self.alpha * float(sample_kbps)
                + (1.0 - self.alpha) * self._estimate
            )
        return self._estimate


def _sorted_ladder(ladder: Sequence[QualityLevel]) -> List[QualityLevel]:
    return sorted(ladder, key=lambda level: level.bitrate_kbps)


@dataclass
class ThroughputAbr:
    """Highest rung whose bitrate fits under ``safety * throughput``."""

    safety: float = 0.8

    def select(
        self, ladder, video, throughput_kbps, buffer_s, current,
        playback_started=True,
    ):
        rungs = _sorted_ladder(ladder)
        budget = self.safety * throughput_kbps
        choice = rungs[0]
        for level in rungs:
            if video.bitrate_kbps(level) <= budget:
                choice = level
        return choice


@dataclass
class BufferAbr:
    """BBA-style linear mapping from buffer occupancy to the ladder.

    Below ``reservoir_s`` the lowest rung is used; above ``cushion_s``
    the highest; in between the rung index scales linearly.
    """

    reservoir_s: float = 5.0
    cushion_s: float = 25.0

    def select(
        self, ladder, video, throughput_kbps, buffer_s, current,
        playback_started=True,
    ):
        rungs = _sorted_ladder(ladder)
        if buffer_s <= self.reservoir_s:
            return rungs[0]
        if buffer_s >= self.cushion_s:
            return rungs[-1]
        frac = (buffer_s - self.reservoir_s) / (self.cushion_s - self.reservoir_s)
        idx = int(frac * (len(rungs) - 1))
        return rungs[idx]


@dataclass
class HybridAbr:
    """Throughput-driven selection tempered by buffer state.

    * Throughput picks the candidate rung (with a safety margin).
    * A low buffer (< ``panic_s``) forces the lowest rung.
    * Upswitches are only allowed when the buffer is comfortable
      (> ``upswitch_min_buffer_s``) and happen one rung at a time —
      which is what produces the gradual ladder walks seen in real
      players (and in the paper's Figure 3).
    * Downswitches are suppressed while the buffer is healthy
      (> ``downswitch_max_buffer_s``): a full buffer absorbs transient
      throughput dips, and reacting to the slow-start-skewed sample of
      the first chunk after an OFF period would make every paced
      session oscillate.
    """

    safety: float = 0.8
    panic_s: float = 2.5
    upswitch_min_buffer_s: float = 10.0
    downswitch_max_buffer_s: float = 15.0

    def select(
        self, ladder, video, throughput_kbps, buffer_s, current,
        playback_started=True,
    ):
        rungs = _sorted_ladder(ladder)
        budget = self.safety * throughput_kbps
        candidate = rungs[0]
        for level in rungs:
            if video.bitrate_kbps(level) <= budget:
                candidate = level
        if current is None:
            return candidate
        cur_idx = next(
            (i for i, level in enumerate(rungs) if level.itag == current.itag), 0
        )
        cand_idx = next(
            (i for i, level in enumerate(rungs) if level.itag == candidate.itag), 0
        )
        # Panic when the buffer is about to run dry AND the measured
        # throughput cannot sustain the current rung: drop straight to
        # the sustainable rung (skipping the one-rung-at-a-time rule).
        # A low buffer alone is normal right after playback start.
        if (
            playback_started
            and buffer_s < self.panic_s
            and cand_idx < cur_idx
        ):
            return rungs[cand_idx]
        if cand_idx > cur_idx:
            if buffer_s < self.upswitch_min_buffer_s:
                return rungs[cur_idx]
            return rungs[cur_idx + 1]            # one rung up at a time
        if cand_idx < cur_idx:
            if buffer_s > self.downswitch_max_buffer_s:
                return rungs[cur_idx]            # buffer absorbs the dip
            return rungs[cand_idx]               # downswitch immediately
        return rungs[cur_idx]
