"""Chunk records produced by the player simulations.

A :class:`ChunkDownload` couples the application-level view of a chunk
(what media it carries) with the transport-level view (the
:class:`~repro.network.tcp.TransferResult` of its download).  The
capture layer turns these into weblog entries.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.tcp import TransferResult

from .catalog import QualityLevel

__all__ = ["ChunkDownload"]


@dataclass(slots=True)
class ChunkDownload:
    """One media chunk fetched by the player.

    Attributes
    ----------
    index:
        Ordinal position within the session's request sequence.
    kind:
        ``"video"`` or ``"audio"``.
    quality:
        Ladder rung the chunk was encoded at (audio uses the audio level).
    media_seconds:
        Seconds of playback the chunk carries.
    size_bytes:
        Chunk payload size.
    transfer:
        Transport-layer outcome of the download.
    """

    index: int
    kind: str
    quality: QualityLevel
    media_seconds: float
    size_bytes: int
    transfer: TransferResult

    def __post_init__(self) -> None:
        if self.kind not in ("video", "audio"):
            raise ValueError(f"unknown chunk kind: {self.kind!r}")
        if self.media_seconds < 0:
            raise ValueError("media seconds must be >= 0")
        if self.size_bytes <= 0:
            raise ValueError("size must be positive")

    @property
    def request_s(self) -> float:
        """Wall-clock time the chunk was requested (session-relative)."""
        return self.transfer.start_s

    @property
    def arrival_s(self) -> float:
        """Wall-clock time the chunk finished downloading."""
        return self.transfer.end_s

    @property
    def resolution_p(self) -> int:
        return self.quality.resolution_p
