"""HTTP Adaptive Streaming (HAS/DASH) player simulation.

Reproduces the delivery mechanics §2.1 describes and the behaviours the
paper's detectors exploit:

* segments encoded at every ladder rung, fetched one HTTP request each;
* a *fast-start* phase requesting short segments that grow to the
  nominal length — re-entered after every quality switch and after
  every stall (§4.3: "whenever the adaptive algorithm enforces a change
  in the representation of the video, a new start-up phase is
  initiated"), which is exactly what makes Δsize × Δt informative;
* ON-OFF pacing in steady state once the buffer is full;
* ABR-driven quality switches (hybrid throughput+buffer by default);
* abandonment when stalls exhaust the viewer's patience (Krishnan &
  Sitaraman's RR>0.1 viewers are the ones who leave).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.network.path import NetworkPath
from repro.network.tcp import TcpConnection

from .abr import AbrAlgorithm, HybridAbr, ThroughputEstimator
from .buffer import PlayoutBuffer
from .catalog import AUDIO_LEVEL, DASH_LADDER, QualityLevel, Video
from .segments import ChunkDownload
from .session import VideoSession, make_session_id

__all__ = ["AdaptivePlayerConfig", "AdaptivePlayer"]


@dataclass
class AdaptivePlayerConfig:
    """Tunables of the DASH player simulation."""

    #: Steady-state media seconds per request.  The stock app
    #: aggregates DASH segments into large range requests covering
    #: several seconds of content (a few hundred KB each at SD).
    segment_media_s: float = 6.0
    #: Media seconds of the first request after start/switch/stall.
    #: The stock app's fast start uses short requests that double back
    #: to the steady block, trading a little start-up sharpness for
    #: fewer round trips.
    faststart_media_s: float = 1.25
    startup_threshold_s: float = 4.0
    rebuffer_threshold_s: float = 2.0
    max_buffer_s: float = 30.0          # OFF period begins above this
    refill_margin_s: float = 6.0        # OFF period ends this far below max
    size_noise_sigma: float = 0.12      # per-chunk encoder size jitter
    request_gap_s: float = 0.05         # client think time between requests
    initial_signalling_s: float = 0.5   # page/manifest fetch before media
    mean_patience_stall_s: float = 30.0 # mean tolerated total stall time
    include_audio: bool = True
    #: Audio segments cover more media time than video ones (itag-140
    #: m4a ranges covered tens of seconds, ~0.5 MB), so audio requests are issued
    #: when the audio stream falls this far behind the video stream.
    audio_segment_media_s: float = 30.0
    #: Seed the throughput estimator from the signalling downloads so the
    #: first segment is already requested near the sustainable rung (real
    #: players do this; without it every session begins with an artificial
    #: 144p -> cap ladder walk and no session is switch-free).
    initial_bandwidth_hint: bool = True
    bandwidth_hint_noise_sigma: float = 0.2
    ladder: Sequence[QualityLevel] = field(
        default_factory=lambda: list(DASH_LADDER)
    )


class AdaptivePlayer:
    """Simulates one DASH playback over a :class:`NetworkPath`."""

    def __init__(
        self,
        config: Optional[AdaptivePlayerConfig] = None,
        abr: Optional[AbrAlgorithm] = None,
    ) -> None:
        self.config = config or AdaptivePlayerConfig()
        self.abr = abr if abr is not None else HybridAbr()

    def play(
        self,
        video: Video,
        path: NetworkPath,
        rng: np.random.Generator,
        place: str = "unknown",
        video_conn: Optional[TcpConnection] = None,
        audio_conn: Optional[TcpConnection] = None,
        id_rng: Optional[np.random.Generator] = None,
    ) -> VideoSession:
        """Play ``video`` over ``path``; returns the full session record.

        ``video_conn``/``audio_conn`` let the caller supply connections
        bound to their own RNG streams, and ``id_rng`` isolates the
        session-id draw (the corpus engines keep transport and identity
        randomness in dedicated per-session streams); by default
        everything comes from ``rng`` as before.
        """
        cfg = self.config
        if video_conn is None:
            video_conn = TcpConnection(path, rng)
        if audio_conn is None:
            audio_conn = TcpConnection(path, rng)
        buffer = PlayoutBuffer(
            startup_threshold_s=cfg.startup_threshold_s,
            rebuffer_threshold_s=cfg.rebuffer_threshold_s,
        )
        estimator = ThroughputEstimator()
        if cfg.initial_bandwidth_hint:
            # The hint reflects achievable TCP goodput, not raw link
            # capacity: loss-limited AIMD sustains roughly half to
            # two-thirds of the bottleneck rate on these paths.
            hint = 0.6 * path.state_at(0.0).bandwidth_kbps * float(
                np.exp(rng.normal(0.0, cfg.bandwidth_hint_noise_sigma))
            )
            estimator.update(max(16.0, hint))
        patience_s = float(
            rng.gamma(shape=4.0, scale=cfg.mean_patience_stall_s / 4.0)
        )

        chunks: List[ChunkDownload] = []
        now = cfg.initial_signalling_s
        buffer.advance_to(now)
        media_pos = 0.0
        audio_pos = 0.0
        # The fast-start ramp applies after quality switches and stalls
        # (§4.3); the session's first request is already full-size — the
        # server delivers it as fast as TCP allows either way.
        request_media = cfg.segment_media_s
        current: Optional[QualityLevel] = None
        abandoned = False
        index = 0
        # After a real stall the player refills at the bottom rung until
        # the buffer has a cushion again (the Figure 1 small-chunk
        # signature), independent of what the ABR would pick.
        emergency = False

        while media_pos < video.duration_s - 1e-9:
            # OFF period: buffer full, pause downloading until it drains.
            if (
                buffer.playback_started
                and not buffer.stalled
                and buffer.level_s >= cfg.max_buffer_s
            ):
                drain = buffer.level_s - (cfg.max_buffer_s - cfg.refill_margin_s)
                now += drain
                buffer.advance_to(now)

            if emergency and buffer.level_s > cfg.rebuffer_threshold_s + 4.0:
                emergency = False
            quality = self.abr.select(
                cfg.ladder,
                video,
                estimator.estimate_kbps,
                buffer.level_s,
                current,
                playback_started=buffer.playback_started,
            )
            if emergency:
                quality = min(cfg.ladder, key=lambda q: q.bitrate_kbps)
            if current is not None and quality.itag != current.itag:
                request_media = cfg.faststart_media_s
            current = quality

            remaining = video.duration_s - media_pos
            media = min(request_media, remaining)
            # Merge a short tail into this request — the final range
            # extends to the end of the stream instead of issuing a
            # tiny extra request.
            if remaining - media < 2.0:
                media = remaining
            media = max(media, 0.25)
            noise = float(np.exp(rng.normal(0.0, cfg.size_noise_sigma)))
            size = max(
                1,
                int(video.bitrate_kbps(quality) * media * 1000.0 / 8.0 * noise),
            )
            transfer = video_conn.download(size, now)
            chunks.append(
                ChunkDownload(
                    index=index,
                    kind="video",
                    quality=quality,
                    media_seconds=media,
                    size_bytes=size,
                    transfer=transfer,
                )
            )
            index += 1
            now = transfer.end_s
            estimator.update(transfer.throughput_kbps)
            media_pos += media

            # Media is appended to the source buffer as the response
            # streams in, so credit it continuously over the transfer.
            stalls_before = len(buffer.stalls)
            slices = max(1, int(np.ceil(media)))
            span = transfer.end_s - transfer.start_s
            buffer.add_media_run(transfer.start_s, span, slices, media)
            # A stall during (or still open after) this transfer resets
            # the fast-start ramp: refill with small quick chunks.
            if len(buffer.stalls) > stalls_before or buffer.stalled:
                request_media = cfg.faststart_media_s
                emergency = True

            if cfg.include_audio:
                finished = media_pos >= video.duration_s - 1e-9
                while (
                    media_pos - audio_pos >= cfg.audio_segment_media_s
                    or (finished and audio_pos < media_pos)
                ):
                    audio_media = min(
                        cfg.audio_segment_media_s, media_pos - audio_pos
                    )
                    # The last audio request covers the whole remainder
                    # rather than leaving a tiny tail segment.
                    if finished and media_pos - audio_pos < 2.0 * cfg.audio_segment_media_s:
                        audio_media = media_pos - audio_pos
                    audio_noise = float(np.exp(rng.normal(0.0, 0.05)))
                    audio_size = max(
                        1,
                        int(
                            AUDIO_LEVEL.bitrate_kbps
                            * audio_media
                            * 1000.0
                            / 8.0
                            * audio_noise
                        ),
                    )
                    audio_transfer = audio_conn.download(audio_size, now)
                    chunks.append(
                        ChunkDownload(
                            index=index,
                            kind="audio",
                            quality=AUDIO_LEVEL,
                            media_seconds=audio_media,
                            size_bytes=audio_size,
                            transfer=audio_transfer,
                        )
                    )
                    index += 1
                    now = audio_transfer.end_s
                    audio_pos += audio_media
            buffer.advance_to(now)
            request_media = min(cfg.segment_media_s, request_media * 1.6)
            now += cfg.request_gap_s

            ongoing_stall = now - buffer.stalled_since if buffer.stalled else 0.0
            if buffer.total_stall_s() + ongoing_stall > patience_s:
                abandoned = True
                break

        # Play out whatever is buffered (or cut off on abandonment).
        buffer.advance_to(now)
        if abandoned or not buffer.playback_started:
            end = now
        else:
            end = now + buffer.level_s
        buffer.finish(end)

        return VideoSession(
            session_id=make_session_id(id_rng if id_rng is not None else rng),
            video=video,
            kind="adaptive",
            place=place,
            chunks=chunks,
            stalls=buffer.stalls,
            startup_delay_s=buffer.startup_delay_s,
            total_duration_s=max(end, 1e-3),
            abandoned=abandoned,
        )
