"""Video catalog: quality ladder, itags, bitrates and content sampling.

The ground truth in the paper's weblogs is carried by YouTube URI
parameters — most importantly the ``itag``, "used to specify the
bit-rate, frame-rate and resolution of the segment".  This module
defines a 2016-era YouTube-like ladder (144p-1080p DASH itags plus the
legacy progressive ones) and a catalog that samples videos with
realistic duration and content-complexity distributions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

__all__ = [
    "QualityLevel",
    "DASH_LADDER",
    "PROGRESSIVE_LADDER",
    "AUDIO_LEVEL",
    "quality_for_itag",
    "Video",
    "VideoCatalog",
]


@dataclass(frozen=True)
class QualityLevel:
    """One rung of the encoding ladder."""

    resolution_p: int
    itag: int
    bitrate_kbps: float
    adaptive: bool

    def __post_init__(self) -> None:
        # resolution 0 marks audio-only levels
        if self.resolution_p < 0 or self.bitrate_kbps <= 0:
            raise ValueError("resolution must be >= 0 and bitrate positive")


#: DASH (adaptive) video itags with 2016-era nominal bitrates.
DASH_LADDER: List[QualityLevel] = [
    QualityLevel(144, 160, 110.0, adaptive=True),
    QualityLevel(240, 133, 250.0, adaptive=True),
    QualityLevel(360, 134, 500.0, adaptive=True),
    QualityLevel(480, 135, 1000.0, adaptive=True),
    QualityLevel(720, 136, 2300.0, adaptive=True),
    QualityLevel(1080, 137, 4300.0, adaptive=True),
]

#: Legacy progressive (muxed) itags served to old devices/players.
PROGRESSIVE_LADDER: List[QualityLevel] = [
    QualityLevel(144, 17, 120.0, adaptive=False),
    QualityLevel(240, 36, 280.0, adaptive=False),
    QualityLevel(360, 18, 620.0, adaptive=False),
    QualityLevel(720, 22, 2700.0, adaptive=False),
]

#: DASH audio (m4a 128k); audio segments appear in the weblogs too.
AUDIO_LEVEL = QualityLevel(0, 140, 128.0, adaptive=True)

_ITAG_INDEX: Dict[int, QualityLevel] = {
    level.itag: level
    for level in [*DASH_LADDER, *PROGRESSIVE_LADDER, AUDIO_LEVEL]
}


def quality_for_itag(itag: int) -> QualityLevel:
    """Resolve an itag to its :class:`QualityLevel` (KeyError if unknown)."""
    return _ITAG_INDEX[itag]


@dataclass(frozen=True)
class Video:
    """A catalog entry.

    ``complexity`` is a per-title multiplicative factor on the nominal
    ladder bitrates (fast-motion sports encode heavier than talking
    heads at the same resolution); it is what makes chunk sizes vary
    between titles at equal quality.
    """

    video_id: str
    duration_s: float
    complexity: float = 1.0

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")
        if self.complexity <= 0:
            raise ValueError("complexity must be positive")

    def bitrate_kbps(self, level: QualityLevel) -> float:
        """Effective bitrate of this title at a ladder rung."""
        if level.resolution_p == 0:    # audio does not scale with content
            return level.bitrate_kbps
        return level.bitrate_kbps * self.complexity


class VideoCatalog:
    """Sampler of videos with realistic duration/complexity spread.

    The paper reports an average session duration of ~180 s; durations
    here are log-normal with that mean and a heavy-ish tail, truncated
    to [30 s, 1 hour].
    """

    _ID_ALPHABET = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_"

    def __init__(
        self,
        mean_duration_s: float = 180.0,
        duration_sigma: float = 0.6,
        complexity_sigma: float = 0.25,
    ) -> None:
        if mean_duration_s <= 0:
            raise ValueError("mean duration must be positive")
        self.mean_duration_s = mean_duration_s
        self.duration_sigma = duration_sigma
        self.complexity_sigma = complexity_sigma

    def random_video_id(self, rng: np.random.Generator, length: int = 11) -> str:
        """YouTube-style 11-character base64ish video id."""
        chars = rng.choice(list(self._ID_ALPHABET), size=length)
        return "".join(chars)

    def sample(self, rng: np.random.Generator) -> Video:
        """Draw one video."""
        mu = np.log(self.mean_duration_s) - self.duration_sigma**2 / 2.0
        duration = float(np.exp(rng.normal(mu, self.duration_sigma)))
        duration = float(np.clip(duration, 30.0, 3600.0))
        complexity = float(np.exp(rng.normal(0.0, self.complexity_sigma)))
        complexity = float(np.clip(complexity, 0.4, 2.5))
        return Video(
            video_id=self.random_video_id(rng),
            duration_s=duration,
            complexity=complexity,
        )

    def sample_many(self, n: int, rng: np.random.Generator) -> List[Video]:
        """Draw ``n`` videos."""
        if n < 0:
            raise ValueError("n must be >= 0")
        return [self.sample(rng) for _ in range(n)]

    def sample_batch(self, n: int, rng: np.random.Generator) -> List[Video]:
        """Draw ``n`` videos with batched RNG calls.

        Same distributions as :meth:`sample`, but durations,
        complexities and ids come from three vectorized draws instead of
        ``3 n`` scalar ones.  The corpus planner uses this; note the
        stream consumption differs from ``sample_many``, so the two are
        not interchangeable under a fixed seed.
        """
        if n < 0:
            raise ValueError("n must be >= 0")
        if n == 0:
            return []
        mu = np.log(self.mean_duration_s) - self.duration_sigma**2 / 2.0
        durations = np.clip(
            np.exp(rng.normal(mu, self.duration_sigma, size=n)), 30.0, 3600.0
        )
        complexities = np.clip(
            np.exp(rng.normal(0.0, self.complexity_sigma, size=n)), 0.4, 2.5
        )
        alphabet = self._ID_ALPHABET
        id_draws = rng.integers(0, len(alphabet), size=(n, 11))
        return [
            Video(
                video_id="".join(alphabet[j] for j in row),
                duration_s=float(d),
                complexity=float(c),
            )
            for row, d, c in zip(
                id_draws.tolist(), durations.tolist(), complexities.tolist()
            )
        ]
