"""Traditional (progressive) HTTP video streaming simulation.

§2.1: the video is a single continuous file at one quality, downloaded
through a start-up phase ("download the first part of the video as fast
as possible") followed by a steady state of ON-OFF pacing cycles.

The legacy YouTube player fetches the file in HTTP range requests, so
the proxy still sees per-request weblog entries.  The player sizes its
range requests by the playback time it wants to cover: small requests
while the buffer is low (start-up and post-stall refills — the Figure 1
behaviour) and large steady-state blocks once the buffer is healthy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.network.path import NetworkPath
from repro.network.tcp import TcpConnection

from .buffer import PlayoutBuffer
from .catalog import PROGRESSIVE_LADDER, QualityLevel, Video
from .segments import ChunkDownload
from .session import VideoSession, make_session_id

__all__ = ["ProgressivePlayerConfig", "ProgressivePlayer", "select_static_quality"]


@dataclass
class ProgressivePlayerConfig:
    """Tunables of the legacy-player simulation."""

    startup_threshold_s: float = 4.0
    rebuffer_threshold_s: float = 2.0
    pace_high_s: float = 28.0           # stop downloading above this buffer
    pace_low_s: float = 18.0            # resume below this buffer
    min_block_media_s: float = 1.0      # smallest range request (media secs)
    max_block_media_s: float = 6.0      # steady-state range request
    initial_block_media_s: float = 3.0  # first range (moov atom + head)
    size_noise_sigma: float = 0.10
    request_gap_s: float = 0.05
    initial_signalling_s: float = 0.5
    mean_patience_stall_s: float = 30.0
    ladder: Sequence[QualityLevel] = field(
        default_factory=lambda: list(PROGRESSIVE_LADDER)
    )


def select_static_quality(
    ladder: Sequence[QualityLevel],
    video: Video,
    bandwidth_hint_kbps: float,
    rng: np.random.Generator,
) -> QualityLevel:
    """Quality the legacy user/player picks for the whole session.

    Mostly the highest rung sustainable at half the (roughly known)
    access bandwidth, with user noise: sometimes a deliberately lower
    pick (data plans, small screens — the paper's explanation for the
    LD-heavy corpus), rarely an over-ambitious higher one.
    """
    rungs = sorted(ladder, key=lambda level: level.bitrate_kbps)
    budget = 0.5 * bandwidth_hint_kbps
    idx = 0
    for i, level in enumerate(rungs):
        if video.bitrate_kbps(level) <= budget:
            idx = i
    roll = rng.random()
    if roll < 0.25 and idx > 0:
        idx -= 1                       # cautious/data-capped user
    elif roll > 0.92 and idx < len(rungs) - 1:
        idx += 1                       # optimistic user; may stall
    return rungs[idx]


class ProgressivePlayer:
    """Simulates one legacy progressive playback."""

    def __init__(self, config: Optional[ProgressivePlayerConfig] = None) -> None:
        self.config = config or ProgressivePlayerConfig()

    def play(
        self,
        video: Video,
        path: NetworkPath,
        rng: np.random.Generator,
        place: str = "unknown",
        quality: Optional[QualityLevel] = None,
        conn: Optional[TcpConnection] = None,
        id_rng: Optional[np.random.Generator] = None,
    ) -> VideoSession:
        """Play ``video`` over ``path`` at a fixed quality.

        ``conn`` lets the caller supply a connection bound to its own
        RNG stream, and ``id_rng`` isolates the session-id draw (the
        corpus engines keep transport and identity randomness in
        dedicated per-session streams); by default everything comes
        from ``rng`` as before.
        """
        cfg = self.config
        if quality is None:
            quality = select_static_quality(
                cfg.ladder, video, path.base_state.bandwidth_kbps, rng
            )
        if conn is None:
            conn = TcpConnection(path, rng)
        buffer = PlayoutBuffer(
            startup_threshold_s=cfg.startup_threshold_s,
            rebuffer_threshold_s=cfg.rebuffer_threshold_s,
        )
        patience_s = float(
            rng.gamma(shape=4.0, scale=cfg.mean_patience_stall_s / 4.0)
        )
        bitrate = video.bitrate_kbps(quality)

        chunks: List[ChunkDownload] = []
        now = cfg.initial_signalling_s
        buffer.advance_to(now)
        media_pos = 0.0
        abandoned = False
        index = 0
        # Refill ramp: after a buffer outage the player switches to small
        # fast-turnaround range requests that grow back to the steady
        # block size (the Figure 1 chunk-size signature of a stall).
        refill_media: float = None

        while media_pos < video.duration_s - 1e-9:
            # OFF period of the pacing cycle.
            if (
                buffer.playback_started
                and not buffer.stalled
                and buffer.level_s >= cfg.pace_high_s
            ):
                now += buffer.level_s - cfg.pace_low_s
                buffer.advance_to(now)

            if refill_media is not None:
                block_media = refill_media
                refill_media = min(cfg.max_block_media_s, refill_media * 1.6)
                if refill_media >= cfg.max_block_media_s:
                    refill_media = None
            elif index == 0:
                # The first range is smaller: file header plus the first
                # seconds of media to get playback going quickly.
                block_media = cfg.initial_block_media_s
            else:
                # Start-up and steady state both use full-size range
                # requests (the classic player downloads "as fast as
                # possible" during start-up — big bursts, not trickles).
                block_media = cfg.max_block_media_s
            remaining = video.duration_s - media_pos
            media = min(block_media, remaining)
            # Merge a sub-block tail into this request: the final range
            # simply extends to the end of the file.
            if remaining - media < cfg.min_block_media_s:
                media = remaining
            media = max(media, 0.25)
            noise = float(np.exp(rng.normal(0.0, cfg.size_noise_sigma)))
            size = max(1, int(bitrate * media * 1000.0 / 8.0 * noise))
            transfer = conn.download(size, now)
            chunks.append(
                ChunkDownload(
                    index=index,
                    kind="video",
                    quality=quality,
                    media_seconds=media,
                    size_bytes=size,
                    transfer=transfer,
                )
            )
            index += 1
            media_pos += media

            # The response body streams into the player, so media becomes
            # playable continuously during the transfer, not only at its
            # end — on a slow link the video plays/stalls *while* a large
            # range is still downloading.
            stalls_before = len(buffer.stalls)
            slices = max(1, int(np.ceil(media)))
            span = transfer.end_s - transfer.start_s
            buffer.add_media_run(transfer.start_s, span, slices, media)
            now = transfer.end_s

            # A stall during (or still open after) this transfer switches
            # the player to small fast-turnaround refill requests.
            if len(buffer.stalls) > stalls_before or buffer.stalled:
                refill_media = cfg.min_block_media_s
            now += cfg.request_gap_s

            ongoing_stall = now - buffer.stalled_since if buffer.stalled else 0.0
            if buffer.total_stall_s() + ongoing_stall > patience_s:
                abandoned = True
                break

        buffer.advance_to(now)
        if abandoned or not buffer.playback_started:
            end = now
        else:
            end = now + buffer.level_s
        buffer.finish(end)

        return VideoSession(
            session_id=make_session_id(id_rng if id_rng is not None else rng),
            video=video,
            kind="progressive",
            place=place,
            chunks=chunks,
            stalls=buffer.stalls,
            startup_delay_s=buffer.startup_delay_s,
            total_duration_s=max(end, 1e-3),
            abandoned=abandoned,
        )
