"""Video streaming substrate: catalog/quality ladder, playout buffer,
ABR algorithms and the adaptive + progressive player simulations."""

from .abr import (
    AbrAlgorithm,
    BufferAbr,
    HybridAbr,
    ThroughputAbr,
    ThroughputEstimator,
)
from .adaptive import AdaptivePlayer, AdaptivePlayerConfig
from .buffer import PlayoutBuffer, StallEvent
from .events import PlaybackEvent, build_event_log
from .catalog import (
    AUDIO_LEVEL,
    DASH_LADDER,
    PROGRESSIVE_LADDER,
    QualityLevel,
    Video,
    VideoCatalog,
    quality_for_itag,
)
from .progressive import (
    ProgressivePlayer,
    ProgressivePlayerConfig,
    select_static_quality,
)
from .segments import ChunkDownload
from .session import VideoSession, make_session_id

__all__ = [
    "QualityLevel",
    "Video",
    "VideoCatalog",
    "quality_for_itag",
    "DASH_LADDER",
    "PROGRESSIVE_LADDER",
    "AUDIO_LEVEL",
    "ChunkDownload",
    "PlayoutBuffer",
    "StallEvent",
    "AbrAlgorithm",
    "ThroughputAbr",
    "BufferAbr",
    "HybridAbr",
    "ThroughputEstimator",
    "AdaptivePlayer",
    "AdaptivePlayerConfig",
    "ProgressivePlayer",
    "ProgressivePlayerConfig",
    "select_static_quality",
    "VideoSession",
    "make_session_id",
    "PlaybackEvent",
    "build_event_log",
]
