"""Playback event timeline of a session.

§3.2: the player's statistical reports carry "different flags ... to
specify if the video has successfully loaded, if the playback has
started, paused or stopped and if there was a stall and how long it
lasted".  This module derives that client-side event log from a
simulated :class:`~repro.streaming.session.VideoSession` — the same
view the instrumented device of §5.1 reads from the Android log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

__all__ = ["PlaybackEvent", "build_event_log"]

#: Event kinds, in the vocabulary of the player's own reports.
EVENT_KINDS = (
    "loaded",        # first media request issued
    "play",          # playback started
    "stall_start",
    "stall_end",
    "switch",        # representation change (detail: "144p->480p")
    "ended",         # played to the end
    "abandoned",     # user gave up
)


@dataclass(frozen=True)
class PlaybackEvent:
    """One timestamped playback-state transition."""

    kind: str
    time_s: float
    detail: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind: {self.kind!r}")


def build_event_log(session) -> List[PlaybackEvent]:
    """Full, time-ordered playback event log of a session."""
    events: List[PlaybackEvent] = []

    video_chunks = session.video_chunks
    if video_chunks:
        events.append(
            PlaybackEvent(kind="loaded", time_s=video_chunks[0].request_s)
        )

    if session.startup_delay_s is not None:
        events.append(PlaybackEvent(kind="play", time_s=session.startup_delay_s))

    for stall in session.stalls:
        events.append(PlaybackEvent(kind="stall_start", time_s=stall.start_s))
        events.append(
            PlaybackEvent(
                kind="stall_end",
                time_s=stall.start_s + stall.duration_s,
                detail=f"{stall.duration_s:.2f}s",
            )
        )

    previous = None
    for chunk in video_chunks:
        if previous is not None and chunk.resolution_p != previous.resolution_p:
            events.append(
                PlaybackEvent(
                    kind="switch",
                    time_s=chunk.request_s,
                    detail=f"{previous.resolution_p}p->{chunk.resolution_p}p",
                )
            )
        previous = chunk

    final_kind = "abandoned" if session.abandoned else "ended"
    events.append(PlaybackEvent(kind=final_kind, time_s=session.total_duration_s))

    events.sort(key=lambda e: e.time_s)
    return events
