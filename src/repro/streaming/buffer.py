"""Playout buffer model shared by both player simulations.

Tracks buffered media seconds against wall-clock playback, recording
startup delay and every stall (start + duration) — the ground truth the
paper extracts from YouTube's playback reports.

The buffer is advanced in two kinds of steps:

* :meth:`add_media` — a chunk finished downloading at some wall time.
* :meth:`advance_to` — wall clock moves forward; if the player is in
  the playing state the buffer drains in real time, stalling when it
  empties.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

__all__ = ["StallEvent", "PlayoutBuffer"]


@dataclass(frozen=True)
class StallEvent:
    """One rebuffering event: playback paused at ``start_s`` for ``duration_s``."""

    start_s: float
    duration_s: float

    def __post_init__(self) -> None:
        if self.duration_s < 0:
            raise ValueError("stall duration must be >= 0")


class PlayoutBuffer:
    """Media buffer with startup threshold and rebuffer threshold.

    Parameters
    ----------
    startup_threshold_s:
        Media seconds required before initial playback starts.
    rebuffer_threshold_s:
        Media seconds required to resume after a stall (players resume
        with a small cushion rather than the full startup fill).
    """

    def __init__(
        self,
        startup_threshold_s: float = 4.0,
        rebuffer_threshold_s: float = 2.0,
    ) -> None:
        if startup_threshold_s <= 0 or rebuffer_threshold_s <= 0:
            raise ValueError("thresholds must be positive")
        self.startup_threshold_s = startup_threshold_s
        self.rebuffer_threshold_s = rebuffer_threshold_s

        self.level_s: float = 0.0          # buffered media seconds
        self.played_s: float = 0.0         # media seconds consumed
        self.playback_started: bool = False
        self.startup_delay_s: Optional[float] = None
        self.stalls: List[StallEvent] = []

        self._clock_s: float = 0.0
        self._stalled_since: Optional[float] = None

    @property
    def clock_s(self) -> float:
        """Current wall-clock position of the buffer model."""
        return self._clock_s

    @property
    def stalled(self) -> bool:
        return self._stalled_since is not None

    @property
    def stalled_since(self) -> Optional[float]:
        """Wall time the current stall began, or None when not stalled."""
        return self._stalled_since

    def total_stall_s(self) -> float:
        return sum(stall.duration_s for stall in self.stalls)

    def advance_to(self, wall_s: float) -> None:
        """Move wall clock forward, draining the buffer while playing."""
        if wall_s < self._clock_s - 1e-9:
            raise ValueError("clock cannot move backwards")
        dt = max(0.0, wall_s - self._clock_s)
        if self.playback_started and not self.stalled and dt > 0:
            # Small epsilon so a buffer draining *exactly* to zero (the
            # normal end of a session) is not recorded as a stall.
            if self.level_s >= dt - 1e-6:
                self.level_s = max(0.0, self.level_s - dt)
                self.played_s += dt
            else:
                # Buffer runs dry partway through the step: play what is
                # buffered, then stall for the remainder.
                played = self.level_s
                self.played_s += played
                self.level_s = 0.0
                self._stalled_since = self._clock_s + played
        self._clock_s = wall_s

    def add_media(self, wall_s: float, media_s: float) -> None:
        """A chunk with ``media_s`` seconds of content arrived at ``wall_s``."""
        if media_s < 0:
            raise ValueError("media seconds must be >= 0")
        self.advance_to(wall_s)
        self.level_s += media_s

        if not self.playback_started:
            if self.level_s >= self.startup_threshold_s:
                self.playback_started = True
                self.startup_delay_s = wall_s
        elif self.stalled and self.level_s >= self.rebuffer_threshold_s:
            self._close_stall(wall_s)

    def _close_stall(self, wall_s: float) -> None:
        start = self._stalled_since
        duration = wall_s - start
        # Sub-perceptual pauses (scheduler/rounding artifacts) are not
        # stalls: real players absorb them without a visible rebuffer.
        if duration > 0.01:
            self.stalls.append(StallEvent(start_s=start, duration_s=duration))
        self._stalled_since = None

    def finish(self, wall_s: float) -> None:
        """Close the session at ``wall_s``, flushing an open stall."""
        self.advance_to(wall_s)
        if self.stalled:
            self._close_stall(wall_s)
