"""Playout buffer model shared by both player simulations.

Tracks buffered media seconds against wall-clock playback, recording
startup delay and every stall (start + duration) — the ground truth the
paper extracts from YouTube's playback reports.

The buffer is advanced in two kinds of steps:

* :meth:`add_media` — a chunk finished downloading at some wall time.
* :meth:`advance_to` — wall clock moves forward; if the player is in
  the playing state the buffer drains in real time, stalling when it
  empties.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

__all__ = ["StallEvent", "PlayoutBuffer"]


@dataclass(frozen=True)
class StallEvent:
    """One rebuffering event: playback paused at ``start_s`` for ``duration_s``."""

    start_s: float
    duration_s: float

    def __post_init__(self) -> None:
        if self.duration_s < 0:
            raise ValueError("stall duration must be >= 0")


class PlayoutBuffer:
    """Media buffer with startup threshold and rebuffer threshold.

    Parameters
    ----------
    startup_threshold_s:
        Media seconds required before initial playback starts.
    rebuffer_threshold_s:
        Media seconds required to resume after a stall (players resume
        with a small cushion rather than the full startup fill).
    """

    __slots__ = (
        "startup_threshold_s",
        "rebuffer_threshold_s",
        "level_s",
        "played_s",
        "playback_started",
        "startup_delay_s",
        "stalls",
        "_clock_s",
        "_stalled_since",
        "_stall_total_s",
    )

    def __init__(
        self,
        startup_threshold_s: float = 4.0,
        rebuffer_threshold_s: float = 2.0,
    ) -> None:
        if startup_threshold_s <= 0 or rebuffer_threshold_s <= 0:
            raise ValueError("thresholds must be positive")
        self.startup_threshold_s = startup_threshold_s
        self.rebuffer_threshold_s = rebuffer_threshold_s

        self.level_s: float = 0.0          # buffered media seconds
        self.played_s: float = 0.0         # media seconds consumed
        self.playback_started: bool = False
        self.startup_delay_s: Optional[float] = None
        self.stalls: List[StallEvent] = []

        self._clock_s: float = 0.0
        self._stalled_since: Optional[float] = None
        self._stall_total_s: float = 0.0

    @property
    def clock_s(self) -> float:
        """Current wall-clock position of the buffer model."""
        return self._clock_s

    @property
    def stalled(self) -> bool:
        return self._stalled_since is not None

    @property
    def stalled_since(self) -> Optional[float]:
        """Wall time the current stall began, or None when not stalled."""
        return self._stalled_since

    def total_stall_s(self) -> float:
        return self._stall_total_s

    def advance_to(self, wall_s: float) -> None:
        """Move wall clock forward, draining the buffer while playing."""
        clock = self._clock_s
        if wall_s < clock - 1e-9:
            raise ValueError("clock cannot move backwards")
        dt = wall_s - clock
        if dt > 0 and self.playback_started and self._stalled_since is None:
            level = self.level_s
            # Small epsilon so a buffer draining *exactly* to zero (the
            # normal end of a session) is not recorded as a stall.
            if level >= dt - 1e-6:
                self.level_s = level - dt if level > dt else 0.0
                self.played_s += dt
            else:
                # Buffer runs dry partway through the step: play what is
                # buffered, then stall for the remainder.
                self.played_s += level
                self.level_s = 0.0
                self._stalled_since = clock + level
        self._clock_s = wall_s

    def add_media(self, wall_s: float, media_s: float) -> None:
        """A chunk with ``media_s`` seconds of content arrived at ``wall_s``."""
        if media_s < 0:
            raise ValueError("media seconds must be >= 0")
        self.advance_to(wall_s)
        self.level_s += media_s

        if not self.playback_started:
            if self.level_s >= self.startup_threshold_s:
                self.playback_started = True
                self.startup_delay_s = wall_s
        elif self.stalled and self.level_s >= self.rebuffer_threshold_s:
            self._close_stall(wall_s)

    def add_media_run(
        self, start_s: float, span_s: float, slices: int, media_s: float
    ) -> None:
        """Credit ``media_s`` seconds continuously across a transfer.

        Equivalent to ``slices`` evenly-spaced :meth:`add_media` calls
        covering ``[start_s, start_s + span_s]`` — the inner loop of both
        player simulations, inlined here because it dominates their
        buffer bookkeeping cost.
        """
        slice_media = media_s / slices
        startup = self.startup_threshold_s
        rebuffer = self.rebuffer_threshold_s
        for k in range(1, slices + 1):
            wall = start_s + span_s * k / slices
            clock = self._clock_s
            if wall < clock - 1e-9:
                raise ValueError("clock cannot move backwards")
            dt = wall - clock
            if dt > 0 and self.playback_started and self._stalled_since is None:
                level = self.level_s
                if level >= dt - 1e-6:
                    self.level_s = level - dt if level > dt else 0.0
                    self.played_s += dt
                else:
                    self.played_s += level
                    self.level_s = 0.0
                    self._stalled_since = clock + level
            self._clock_s = wall

            level = self.level_s + slice_media
            self.level_s = level
            if not self.playback_started:
                if level >= startup:
                    self.playback_started = True
                    self.startup_delay_s = wall
            elif self._stalled_since is not None and level >= rebuffer:
                self._close_stall(wall)

    def _close_stall(self, wall_s: float) -> None:
        start = self._stalled_since
        duration = wall_s - start
        # Sub-perceptual pauses (scheduler/rounding artifacts) are not
        # stalls: real players absorb them without a visible rebuffer.
        if duration > 0.01:
            self.stalls.append(StallEvent(start_s=start, duration_s=duration))
            self._stall_total_s += duration
        self._stalled_since = None

    def finish(self, wall_s: float) -> None:
        """Close the session at ``wall_s``, flushing an open stall."""
        self.advance_to(wall_s)
        if self.stalled:
            self._close_stall(wall_s)
