"""Build orchestration: engine selection, fan-out, caching, telemetry.

``build_matrix`` is the single entry point behind
``repro.core.features.build_stall_matrix`` /
``build_representation_matrix``.  It:

* resolves the engine (``"columnar"`` by default, ``"per-record"`` as
  the reference oracle / escape hatch; overridable per call, via
  :func:`set_default_engine`, or the ``REPRO_FEATURE_ENGINE``
  environment variable),
* consults the content-addressed cache (sha256 over the packed record
  arrays + feature-set version) before building anything,
* fans large builds out in row chunks through the
  :mod:`repro.ml.parallel` worker pool — every row is a pure function
  of its record, so the chunking never changes a value — and
* exports build latency/throughput and per-engine build counts through
  :mod:`repro.obs`.

Both engines produce bit-identical matrices; ``engine`` and ``n_jobs``
only change wall-clock, never a value.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.schema import SessionRecord
from repro.ml.parallel import block_ranges, effective_n_jobs, run_tasks
from repro.obs import get_registry, trace

from .cache import batch_key, get_cache
from .ragged import RaggedBatch, pack_records
from .stats import grouped_summary

__all__ = [
    "DEFAULT_ENGINE",
    "ENGINES",
    "ModelSpec",
    "build_matrix",
    "get_default_engine",
    "set_default_engine",
]

#: Recognised engines; "per-record" is the reference oracle.
ENGINES: Tuple[str, ...] = ("columnar", "per-record")
DEFAULT_ENGINE = "columnar"

#: Below this many sessions a process pool costs more than it saves.
_PARALLEL_MIN_ROWS = 256
#: Row-chunk floor, so tiny blocks never dominate pool overhead.
_MIN_BLOCK_ROWS = 128

_REG = get_registry()
_BUILD_SECONDS = _REG.histogram(
    "repro_features_build_seconds",
    "Wall-clock time to build one feature matrix.",
    labelnames=("model",),
)
_ROWS_BUILT = _REG.counter(
    "repro_features_rows_total",
    "Session rows expanded into feature vectors.",
    labelnames=("model",),
)
_ROWS_PER_SECOND = _REG.gauge(
    "repro_features_last_rows_per_second",
    "Throughput of the most recent feature-matrix build.",
    labelnames=("model",),
)
_BUILDS = _REG.counter(
    "repro_features_builds_total",
    "Feature-matrix builds actually executed, by model and engine.",
    labelnames=("model", "engine"),
)

_default_engine = os.environ.get("REPRO_FEATURE_ENGINE", DEFAULT_ENGINE)


def get_default_engine() -> str:
    """The engine used when ``build_matrix`` is called without one."""
    return _default_engine


def set_default_engine(engine: str) -> None:
    """Set the process-wide default engine (e.g. from the CLI)."""
    global _default_engine
    if engine not in ENGINES:
        raise ValueError(
            f"unknown feature engine {engine!r}; known: {', '.join(ENGINES)}"
        )
    _default_engine = engine


@dataclass(frozen=True)
class ModelSpec:
    """Everything the engine needs to build one feature model.

    ``record_features`` is the per-record oracle (one session in, the
    name → value dict out); ``group_series`` the batch twin producing
    dense metric matrices for one length group.  ``feature_names`` is
    ``metric × stat`` in canonical column order.
    """

    name: str
    stats: Tuple[str, ...]
    metric_names: Tuple[str, ...]
    feature_names: Tuple[str, ...]
    record_features: Callable[[SessionRecord], Dict[str, float]]
    group_series: Callable[[Dict[str, np.ndarray]], Dict[str, np.ndarray]]


# ----------------------------------------------------------------------
# Engine bodies
# ----------------------------------------------------------------------


def _columnar_rows(batch: RaggedBatch, spec: ModelSpec) -> np.ndarray:
    n_stats = len(spec.stats)
    out = np.empty(
        (batch.n_sessions, len(spec.feature_names)), dtype=np.float64
    )
    metric_index = {m: i for i, m in enumerate(spec.metric_names)}
    for group in batch.groups:
        series = spec.group_series(group.base)
        rows = group.rows.size
        block = np.empty((rows, out.shape[1]), dtype=np.float64)
        # All metric matrices of equal width stack into one tall block
        # so each statistic is a single NumPy call per group — row
        # values are unchanged by the stacking, so bit-identity holds.
        by_width: Dict[int, list] = {}
        for metric in spec.metric_names:
            by_width.setdefault(series[metric].shape[1], []).append(metric)
        for metrics in by_width.values():
            stacked = (
                series[metrics[0]]
                if len(metrics) == 1
                else np.concatenate([series[m] for m in metrics], axis=0)
            )
            summary = grouped_summary(stacked, spec.stats)
            for j, metric in enumerate(metrics):
                index = metric_index[metric]
                block[:, index * n_stats:(index + 1) * n_stats] = summary[
                    j * rows:(j + 1) * rows
                ]
        out[group.rows] = block
    return out


def _per_record_rows(
    records: Sequence[SessionRecord], spec: ModelSpec
) -> np.ndarray:
    matrix = np.empty(
        (len(records), len(spec.feature_names)), dtype=np.float64
    )
    for i, record in enumerate(records):
        features = spec.record_features(record)
        matrix[i] = [features[name] for name in spec.feature_names]
    return matrix


def _build_rows(
    records: Sequence[SessionRecord],
    spec: ModelSpec,
    engine: str,
    batch: Optional[RaggedBatch] = None,
) -> np.ndarray:
    if engine == "columnar":
        return _columnar_rows(
            batch if batch is not None else pack_records(records), spec
        )
    return _per_record_rows(records, spec)


def _block_task(payload) -> np.ndarray:
    """One row-chunk build; module-level so it pickles into the pool."""
    model, engine, records = payload
    # Lazy import: repro.core.features imports this module at load
    # time, so the spec registry is only reachable after import.
    from repro.core.features import get_model_spec

    return _build_rows(records, get_model_spec(model), engine)


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------


def build_matrix(
    records: Sequence[SessionRecord],
    spec: ModelSpec,
    engine: Optional[str] = None,
    n_jobs: Optional[int] = None,
    cache: bool = True,
) -> np.ndarray:
    """Build the (N, F) feature matrix of a record batch.

    Parameters
    ----------
    engine:
        ``"columnar"`` or ``"per-record"``; ``None`` uses the process
        default.  Bit-identical output either way.
    n_jobs:
        Worker processes for row-chunk fan-out (``None``/1 serial,
        ``-1`` all cores).  Values are identical for any setting.
    cache:
        Consult/populate the content-addressed matrix cache.  Cached
        matrices are shared objects — treat them as read-only.
    """
    engine = engine or _default_engine
    if engine not in ENGINES:
        raise ValueError(
            f"unknown feature engine {engine!r}; known: {', '.join(ENGINES)}"
        )

    with trace("core.build_feature_matrix") as span:
        span.add("rows", len(records))

        batch: Optional[RaggedBatch] = None
        key: Optional[str] = None
        if cache and len(records) > 0:
            batch = pack_records(records)
            key = batch_key(batch, spec.name)
            cached = get_cache().get(key, spec.name)
            if cached is not None:
                span.add("cache_hits")
                return cached

        started = time.perf_counter()
        jobs = min(effective_n_jobs(n_jobs), max(1, len(records)))
        if jobs > 1 and len(records) >= _PARALLEL_MIN_ROWS:
            block = max(
                _MIN_BLOCK_ROWS, math.ceil(len(records) / jobs)
            )
            payloads = [
                (spec.name, engine, list(records[start:stop]))
                for start, stop in block_ranges(len(records), block)
            ]
            parts = run_tasks(
                _block_task, payloads, n_jobs=jobs, task="featurex_build"
            )
            matrix = np.vstack(parts)
        else:
            matrix = _build_rows(records, spec, engine, batch=batch)
        elapsed = time.perf_counter() - started

    _BUILDS.labels(model=spec.name, engine=engine).inc()
    _BUILD_SECONDS.labels(model=spec.name).observe(elapsed)
    _ROWS_BUILT.labels(model=spec.name).inc(len(records))
    if elapsed > 0:
        _ROWS_PER_SECOND.labels(model=spec.name).set(len(records) / elapsed)
    if key is not None:
        get_cache().put(key, matrix)
    return matrix
