"""Batch twins of the per-record metric extractors.

Each builder takes a :class:`~repro.core.featurex.ragged.LengthGroup`'s
dense base matrices and returns the metric-name → ``(rows, len)``
matrix mapping for one model, with each derived series computed by the
*same elementwise operations, in the same order*, as the per-record
extractors in :mod:`repro.core.features` — e.g. ``chunk Δt`` is
``diff(t - t[0])``, not the algebraically equal but
differently-rounded ``diff(t)``.  Row ``i`` of every matrix is
bit-identical to the per-record extractor applied to session ``i``
(``np.cumsum`` along the last axis accumulates sequentially per row,
exactly like the 1-D call; everything else is elementwise).

The property suite asserts this row-for-row against the
``STALL_METRICS`` / ``REPRESENTATION_METRICS`` reference definitions,
so the two copies cannot drift silently.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = ["stall_group_series", "representation_group_series"]


def _relative_times(base: Dict[str, np.ndarray]) -> np.ndarray:
    t = base["timestamps"]
    return t - t[:, :1]


def _throughput_kbps(base: Dict[str, np.ndarray]) -> np.ndarray:
    durations = np.maximum(base["transactions"], 1e-3)
    return base["sizes"] * 8.0 / 1000.0 / durations


def _running_mean(values: np.ndarray) -> np.ndarray:
    n = values.shape[1]
    return np.cumsum(values, axis=1) / np.arange(1, n + 1, dtype=np.float64)


def stall_group_series(base: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """The 10 stall-model metric matrices of one length group."""
    return {
        "RTT minimum": base["rtt_min"],
        "RTT average": base["rtt_avg"],
        "RTT maximum": base["rtt_max"],
        "BDP": base["bdp"],
        "BIF avg": base["bif_avg"],
        "BIF maximum": base["bif_max"],
        "packet loss": base["loss_pct"],
        "packet retransmissions": base["retx_pct"],
        "chunk size": base["sizes"],
        "chunk time": _relative_times(base),
    }


def representation_group_series(
    base: Dict[str, np.ndarray],
) -> Dict[str, np.ndarray]:
    """The 14 §4.2 metric matrices of one length group.

    The throughput and relative-time bases are computed once and shared
    by their dependent metrics, mirroring the per-record path.
    """
    rel_times = _relative_times(base)
    throughput = _throughput_kbps(base)
    sizes = base["sizes"]
    return {
        "RTT minimum": base["rtt_min"],
        "RTT average": base["rtt_avg"],
        "RTT maximum": base["rtt_max"],
        "BDP": base["bdp"],
        "BIF avg": base["bif_avg"],
        "BIF maximum": base["bif_max"],
        "packet loss": base["loss_pct"],
        "packet retransmissions": base["retx_pct"],
        "chunk size": sizes,
        "chunk avg size": _running_mean(sizes),
        "chunk Δsize": np.abs(np.diff(sizes, axis=1)),
        "chunk Δt": np.diff(rel_times, axis=1),
        "throughput": throughput,
        "cumsum throughput": np.cumsum(throughput, axis=1),
    }
