"""Columnar batch feature engine.

The per-record path in :mod:`repro.core.features` expands sessions one
at a time — a Python loop over N sessions × 14 metrics × 15 statistics,
each statistic a separate tiny-array NumPy call plus a dict build.  At
dataset scale (cross-validation folds, experiment sweeps, serving
batches) that loop, not the forest, is the hot path.

This package computes the same (N, 70) / (N, 210) matrices in a
handful of large array passes:

``ragged``
    Packs all sessions' per-chunk Table-1 series into flat ragged
    arrays (one concatenated value vector + offsets per metric) in
    length-sorted order, so every run of equal-length sessions reshapes
    into a dense C-contiguous ``(rows, n_chunks)`` block *view* — zero
    gather cost.
``series``
    Computes the derived series (Δsize, Δt, running mean, throughput,
    cumulative sums) on those dense blocks with the exact elementwise
    operations of the per-record extractors.
``stats``
    Evaluates all summary statistics block-wise with vectorised
    ``axis=1`` reductions and one fused multi-percentile call per
    metric block.
``cache``
    Content-addressed feature-matrix cache (sha256 over the packed
    record arrays + a feature-set version key): in-memory LRU plus an
    optional on-disk layer under the experiment workspace.
``engine``
    Orchestration: engine selection (``"columnar"`` / ``"per-record"``),
    row-chunk fan-out through :mod:`repro.ml.parallel`, cache lookups,
    and :mod:`repro.obs` instrumentation.

Equality guarantee
------------------
The engine is **bit-identical** (``np.array_equal``) to the per-record
reference path, which stays available as the oracle.  The guarantee
rests on two facts, enforced by the property suite in
``tests/core/test_featurex.py``:

* NumPy's ``axis=-1`` reductions (``mean``/``std``/``min``/``max``/
  ``percentile``) over a C-contiguous row are computed by the same
  kernels, in the same order (including pairwise summation), as the
  corresponding whole-array call on that row.  Grouping sessions by
  chunk count therefore reproduces every per-session statistic down to
  the last ULP — which a naive ``np.add.reduceat`` over ragged offsets
  would *not* (reduceat accumulates strictly sequentially, pairwise
  summation does not).
* Rows containing non-finite values take a per-row fallback through
  the very same :func:`repro.timeseries.stats.summary_statistics` the
  per-record path uses, so the NaN/inf-filter and empty-series → 0.0
  rules are shared code, not a reimplementation.
"""

from .cache import (
    FEATURE_SET_VERSION,
    FeatureMatrixCache,
    batch_key,
    configure_cache,
    get_cache,
)
from .engine import (
    DEFAULT_ENGINE,
    ENGINES,
    ModelSpec,
    build_matrix,
    get_default_engine,
    set_default_engine,
)
from .ragged import BASE_FIELDS, LengthGroup, RaggedBatch, pack_records

__all__ = [
    "BASE_FIELDS",
    "DEFAULT_ENGINE",
    "ENGINES",
    "FEATURE_SET_VERSION",
    "FeatureMatrixCache",
    "batch_key",
    "LengthGroup",
    "ModelSpec",
    "RaggedBatch",
    "build_matrix",
    "configure_cache",
    "get_cache",
    "get_default_engine",
    "pack_records",
    "set_default_engine",
]
