"""Content-addressed feature-matrix cache: in-memory LRU + disk layer.

A finished (N, F) feature matrix is a pure function of the record
batch's chunk arrays and the feature-set definition, so it is keyed by
content: sha256 over a feature-set version string, the model name, the
per-session chunk counts *in caller order*, and the packed per-field
flat vectors.  Hashing the length-sorted flat vectors plus the original
length sequence is injective — a permuted batch, an edited chunk value,
or an in-place record mutation all change the key, so stale hits are
impossible by construction.

Two layers:

* an in-memory LRU (bounded entry count; a hit returns the *same*
  ndarray object, treat it as read-only), and
* an optional on-disk layer (``.npy`` files under a directory, written
  atomically via ``tmp + os.replace``) so repeated experiment runs on
  an unchanged corpus skip the build entirely.  A corrupted or
  unreadable file is treated as a miss and rebuilt — never raised.

Hits and misses are exported through :mod:`repro.obs` as
``repro_features_cache_hits_total{model,layer}`` and
``repro_features_cache_misses_total{model}``.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import threading
from collections import OrderedDict
from typing import Optional

import numpy as np

from repro.obs import get_registry

from .ragged import BASE_FIELDS, RaggedBatch

__all__ = [
    "FEATURE_SET_VERSION",
    "FeatureMatrixCache",
    "batch_key",
    "configure_cache",
    "get_cache",
]

#: Bump when the feature definitions, statistics, or layout change —
#: it invalidates every previously cached matrix.
FEATURE_SET_VERSION = "repro.featurex/v1"

_REG = get_registry()
_HITS = _REG.counter(
    "repro_features_cache_hits_total",
    "Feature-matrix cache hits, by model and cache layer.",
    labelnames=("model", "layer"),
)
_MISSES = _REG.counter(
    "repro_features_cache_misses_total",
    "Feature-matrix cache misses (matrix rebuilt), by model.",
    labelnames=("model",),
)
_ENTRIES = _REG.gauge(
    "repro_features_cache_entries",
    "Feature matrices currently held by the in-memory LRU.",
)


def batch_key(batch: RaggedBatch, model: str) -> str:
    """Content hash of a packed record batch for one feature model."""
    digest = hashlib.sha256()
    digest.update(f"{FEATURE_SET_VERSION}|{model}|".encode())
    digest.update(np.ascontiguousarray(batch.lengths).tobytes())
    for field in BASE_FIELDS:
        digest.update(field.encode())
        digest.update(np.ascontiguousarray(batch.flat[field]).tobytes())
    return digest.hexdigest()


class FeatureMatrixCache:
    """Bounded LRU of finished feature matrices with a disk layer."""

    def __init__(
        self, capacity: int = 32, directory: Optional[str] = None
    ) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self.directory = directory
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, np.ndarray]" = OrderedDict()

    # -- memory layer --------------------------------------------------

    def _memory_get(self, key: str) -> Optional[np.ndarray]:
        with self._lock:
            matrix = self._entries.get(key)
            if matrix is not None:
                self._entries.move_to_end(key)
            return matrix

    def _memory_put(self, key: str, matrix: np.ndarray) -> None:
        with self._lock:
            self._entries[key] = matrix
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
            _ENTRIES.set(len(self._entries))

    # -- disk layer ----------------------------------------------------

    def _path(self, key: str) -> Optional[str]:
        if self.directory is None:
            return None
        return os.path.join(self.directory, f"{key}.npy")

    def _disk_get(self, key: str) -> Optional[np.ndarray]:
        path = self._path(key)
        if path is None or not os.path.exists(path):
            return None
        try:
            matrix = np.load(path, allow_pickle=False)
        except Exception:
            # Truncated/garbled file: a miss, never a crash.  The
            # rebuild overwrites it atomically.
            return None
        if matrix.ndim != 2:
            return None
        return matrix

    def _disk_put(self, key: str, matrix: np.ndarray) -> None:
        path = self._path(key)
        if path is None:
            return
        try:
            os.makedirs(self.directory, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=self.directory, suffix=".npy.tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    np.save(handle, matrix, allow_pickle=False)
                os.replace(tmp, path)
            finally:
                if os.path.exists(tmp):
                    os.unlink(tmp)
        except OSError:
            pass   # a full/read-only disk must not fail the build

    # -- public API ----------------------------------------------------

    def get(self, key: str, model: str) -> Optional[np.ndarray]:
        """Look up a finished matrix; counts the hit/miss per layer."""
        matrix = self._memory_get(key)
        if matrix is not None:
            _HITS.labels(model=model, layer="memory").inc()
            return matrix
        matrix = self._disk_get(key)
        if matrix is not None:
            _HITS.labels(model=model, layer="disk").inc()
            self._memory_put(key, matrix)
            return matrix
        _MISSES.labels(model=model).inc()
        return None

    def put(self, key: str, matrix: np.ndarray) -> None:
        self._memory_put(key, matrix)
        self._disk_put(key, matrix)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            _ENTRIES.set(0)


_DEFAULT_CACHE = FeatureMatrixCache(
    directory=os.environ.get("REPRO_FEATURE_CACHE") or None
)


def get_cache() -> FeatureMatrixCache:
    """The process-wide default cache used by the build engine."""
    return _DEFAULT_CACHE


def configure_cache(
    directory: Optional[str] = None, capacity: Optional[int] = None
) -> FeatureMatrixCache:
    """Re-point the default cache's disk layer / resize its LRU."""
    if capacity is not None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        _DEFAULT_CACHE.capacity = capacity
    _DEFAULT_CACHE.directory = directory
    return _DEFAULT_CACHE
