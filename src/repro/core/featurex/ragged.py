"""Ragged batch layout: flat value vectors + offsets, grouped by length.

A batch of N sessions with heterogeneous chunk counts is packed, per
Table-1 base field, into one flat float64 vector holding every
session's chunks back to back — but in *length-sorted* session order.
Sorting by chunk count makes every run of equal-length sessions a
contiguous slice of the flat vector, so the dense ``(rows, n_chunks)``
matrix each group needs is a zero-copy ``reshape`` view.  The original
row order is retained alongside, so results scatter back exactly where
the caller expects them.

C-contiguity of the group views is what carries the engine's
bit-identity guarantee: NumPy's ``axis=-1`` reductions over contiguous
rows use the same kernels and the same summation order as a whole-array
call on each row (see the package docstring).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.datasets.schema import SessionRecord

__all__ = ["BASE_FIELDS", "LengthGroup", "RaggedBatch", "pack_records"]

#: The eleven per-chunk base arrays of :class:`SessionRecord` (Table 1,
#: left column) — everything the derived series are computed from.
BASE_FIELDS: Tuple[str, ...] = (
    "timestamps",
    "sizes",
    "transactions",
    "rtt_min",
    "rtt_avg",
    "rtt_max",
    "bdp",
    "bif_avg",
    "bif_max",
    "loss_pct",
    "retx_pct",
)


@dataclass(frozen=True)
class LengthGroup:
    """One run of equal-length sessions inside a :class:`RaggedBatch`.

    ``base`` maps each field to a C-contiguous ``(rows, n_chunks)``
    view into the batch's flat vector; ``rows`` holds the *original*
    row index of each group row, for scattering results back.
    """

    n_chunks: int
    rows: np.ndarray
    base: Dict[str, np.ndarray]


@dataclass(frozen=True)
class RaggedBatch:
    """Length-sorted columnar packing of a record batch.

    Attributes
    ----------
    lengths:
        Chunk count per session, in the caller's original order.
    flat:
        One concatenated float64 vector per base field, sessions in
        length-sorted order.
    offsets:
        ``(n_sessions + 1,)`` segment boundaries into each flat vector
        (shared by all fields), in length-sorted order.
    order:
        ``order[i]`` is the original row index of sorted position
        ``i`` (a stable sort, so equal lengths keep input order).
    groups:
        Equal-length runs, each with dense views (see
        :class:`LengthGroup`).
    """

    lengths: np.ndarray
    flat: Dict[str, np.ndarray]
    offsets: np.ndarray
    order: np.ndarray
    groups: List[LengthGroup]

    @property
    def n_sessions(self) -> int:
        return int(self.lengths.size)

    @property
    def total_chunks(self) -> int:
        return int(self.offsets[-1]) if self.offsets.size else 0


def pack_records(records: Sequence[SessionRecord]) -> RaggedBatch:
    """Pack a record batch into the length-sorted ragged layout."""
    lengths = np.array([r.n_chunks for r in records], dtype=np.int64)
    order = np.argsort(lengths, kind="stable")
    sorted_lengths = lengths[order]
    offsets = np.zeros(lengths.size + 1, dtype=np.int64)
    np.cumsum(sorted_lengths, out=offsets[1:])

    flat: Dict[str, np.ndarray] = {}
    for field in BASE_FIELDS:
        parts = [
            np.asarray(getattr(records[i], field), dtype=np.float64)
            for i in order
        ]
        flat[field] = (
            np.concatenate(parts) if parts else np.empty(0, dtype=np.float64)
        )

    groups: List[LengthGroup] = []
    start = 0
    while start < sorted_lengths.size:
        n = int(sorted_lengths[start])
        stop = start
        while stop < sorted_lengths.size and sorted_lengths[stop] == n:
            stop += 1
        c0, c1 = int(offsets[start]), int(offsets[stop])
        base = {
            field: flat[field][c0:c1].reshape(stop - start, n)
            for field in BASE_FIELDS
        }
        groups.append(
            LengthGroup(n_chunks=n, rows=order[start:stop], base=base)
        )
        start = stop

    return RaggedBatch(
        lengths=lengths, flat=flat, offsets=offsets, order=order, groups=groups
    )
