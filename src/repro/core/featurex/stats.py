"""Block-wise summary statistics, bit-identical to the per-record path.

For a dense ``(rows, n)`` metric block of one length group, every
requested statistic is evaluated with a single ``axis=1`` NumPy call
over all rows at once — including one fused multi-percentile call, the
block twin of the fused call in
:func:`repro.timeseries.stats.summary_statistics`.  Because the block
rows are C-contiguous and reductions over the last axis use the same
kernels (and the same pairwise summation order) as a 1-D call on each
row, the results match the per-record path to the bit.

Rows containing non-finite values cannot take that fast path — the
per-record semantics drop NaN/inf *per metric* before computing — so
they fall back, row by row, to ``summary_statistics`` itself: the
filter and the empty-series → 0.0 rule stay shared code.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.timeseries.stats import summary_statistics

__all__ = ["grouped_summary"]


def grouped_summary(
    matrix: np.ndarray, stats: Sequence[str]
) -> np.ndarray:
    """Summary statistics of every row of a dense metric block.

    Returns a ``(rows, len(stats))`` array whose row ``i`` equals
    ``[summary_statistics(matrix[i], stats)[s] for s in stats]``
    bit-for-bit.
    """
    n_rows, n_values = matrix.shape
    out = np.zeros((n_rows, len(stats)), dtype=np.float64)
    if n_rows == 0 or n_values == 0:
        return out   # empty series -> every statistic is 0.0

    clean = np.isfinite(matrix).all(axis=1)
    block = matrix if clean.all() else np.ascontiguousarray(matrix[clean])

    if block.shape[0]:
        percentile_stats = [s for s in stats if s.startswith("p")]
        fused = {}
        if percentile_stats:
            points = np.percentile(
                block, [float(s[1:]) for s in percentile_stats], axis=1
            )
            fused = dict(zip(percentile_stats, points))
        for col, stat in enumerate(stats):
            if stat in fused:
                values = fused[stat]
            elif stat == "min":
                values = np.min(block, axis=1)
            elif stat == "max":
                values = np.max(block, axis=1)
            elif stat == "mean":
                values = np.mean(block, axis=1)
            elif stat == "std":
                values = np.std(block, axis=1)
            else:
                raise ValueError(f"unknown statistic: {stat!r}")
            out[clean, col] = values

    if not clean.all():
        for row in np.nonzero(~clean)[0]:
            row_stats = summary_statistics(matrix[row], stats=stats)
            out[row] = [row_stats[s] for s in stats]
    return out
