"""Ground-truth labelling rules (§4.1, §4.2, §4.3).

* Stalling — three classes on the rebuffering ratio::

      "no stalling":     RR = 0
      "mild stalling":   0 < RR <= 0.1
      "severe stalling": RR > 0.1

  (0.1 is the Krishnan & Sitaraman abandonment threshold.)

* Average representation — three classes on the mean resolution µ::

      HD: µ > 480    SD: 360 <= µ <= 480    LD: µ < 360

* Representation variation — switch frequency F and amplitude A
  (eq. 2) combined linearly into Var, binned into
  no / mild / high variation.  The binary with/without-switches view
  used by Figure 4 and §5.6 is also provided.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.datasets.schema import SessionRecord

__all__ = [
    "STALL_LABELS",
    "REPRESENTATION_LABELS",
    "VARIATION_LABELS",
    "SEVERE_RR_THRESHOLD",
    "stall_label",
    "representation_label",
    "variation_score",
    "variation_label",
    "has_variation",
    "label_records",
]

STALL_LABELS = ("no stalls", "mild stalls", "severe stalls")
REPRESENTATION_LABELS = ("LD", "SD", "HD")
VARIATION_LABELS = ("no variation", "mild variation", "high variation")

#: RR above this is severe stalling (viewers abandon, Krishnan et al.).
SEVERE_RR_THRESHOLD = 0.1


def stall_label(record: SessionRecord) -> str:
    """Stall class of a session from its rebuffering ratio."""
    rr = record.rebuffering_ratio()
    if rr <= 0.0:
        return "no stalls"
    if rr <= SEVERE_RR_THRESHOLD:
        return "mild stalls"
    return "severe stalls"


def representation_label(record: SessionRecord) -> str:
    """LD/SD/HD class of a session from its mean resolution."""
    mu = record.mean_resolution()
    if mu > 480.0:
        return "HD"
    if mu >= 360.0:
        return "SD"
    return "LD"


@dataclass(frozen=True)
class VariationWeights:
    """Linear-combination weights for Var = w_f * F + w_a * A.

    Defaults weigh one switch like 50 lines of mean amplitude, so a
    session with a single small switch and one with large but rare
    amplitude land in comparable Var ranges.
    """

    frequency: float = 1.0
    amplitude: float = 0.02


def variation_score(
    record: SessionRecord, weights: VariationWeights = VariationWeights()
) -> float:
    """Var — the combined switching indicator of §4.3."""
    return (
        weights.frequency * record.switch_count()
        + weights.amplitude * record.switch_amplitude()
    )


def variation_label(
    record: SessionRecord,
    mild_threshold: float = 3.0,
    weights: VariationWeights = VariationWeights(),
) -> str:
    """no / mild / high variation class of a session."""
    score = variation_score(record, weights)
    if score <= 0.0:
        return "no variation"
    if score <= mild_threshold:
        return "mild variation"
    return "high variation"


def has_variation(record: SessionRecord) -> bool:
    """Binary with/without quality switches (Figure 4, §5.6 view)."""
    return record.has_switches()


def label_records(
    records: Sequence[SessionRecord], labeller
) -> np.ndarray:
    """Vectorise any per-record labeller over a record sequence."""
    return np.array([labeller(r) for r in records])
