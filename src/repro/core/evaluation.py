"""Training/evaluation protocol used throughout §4 and §5.

§4.1: "In order to avoid biasing the results during the test phase, we
balance the number of instances among the three classes before training
the classifier.  The instances in the classes are then restored to
their original numbers for testing."

§5: "the trained model [...] is directly tested with encrypted traffic"
— train once on the cleartext corpus, evaluate unchanged on the
encrypted one.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.ml.balance import balanced_indices
from repro.ml.metrics import ClassificationReport, classification_report

__all__ = ["balanced_train_full_test", "evaluate_model"]


def balanced_train_full_test(
    model_factory: Callable[[], object],
    X: np.ndarray,
    y: np.ndarray,
    labels: Optional[Sequence] = None,
    random_state=None,
    strategy: str = "over",
) -> Tuple[object, ClassificationReport]:
    """Balance classes, train, then test on the full unbalanced set.

    ``strategy`` picks the balancing direction: ``"over"`` (default)
    replicates minority instances up to the majority size, keeping every
    majority-class session in training — important because rare
    sub-populations (e.g. the 3% adaptive sessions) would otherwise be
    nearly absent from an undersampled training set; ``"under"``
    downsamples the majority instead.

    Returns the fitted model and the paper-format report.  ``labels``
    fixes the class order of the report's rows/matrix.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y)
    idx = balanced_indices(y, strategy=strategy, random_state=random_state)
    model = model_factory()
    model.fit(X[idx], y[idx])
    predictions = model.predict(X)
    return model, classification_report(y, predictions, labels=labels)


def evaluate_model(
    model,
    X: np.ndarray,
    y: np.ndarray,
    labels: Optional[Sequence] = None,
) -> ClassificationReport:
    """Apply an already-trained model to a new dataset (the §5 protocol)."""
    predictions = model.predict(np.asarray(X, dtype=float))
    return classification_report(y, predictions, labels=labels)
