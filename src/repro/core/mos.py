"""Mean-Opinion-Score estimation from the three detected impairments.

The paper detects impairment *levels* but stops short of a single QoE
score.  This module closes that gap using the models of the works the
paper builds its QoE taxonomy on (§2.2):

* **Base quality -> MOS**: subjective studies (Lewcio et al. [10])
  place higher representations at higher MOS; we interpolate a base
  score over the resolution ladder.
* **Stalling**: Hoßfeld et al. [8] fit an exponential decay of MOS in
  the amount of stalling ("2 stalls of 3 seconds each lead to
  significantly lower MOS"); Mok et al. [9] report that medium
  rebuffering frequency alone costs about 2 MOS points.  We apply an
  exponential penalty in the rebuffering ratio, scaled so RR = 0.1
  (the paper's severe threshold, the Krishnan abandonment point) costs
  roughly 1.5 points and heavy stalling saturates near the scale floor.
* **Switching**: Hoßfeld et al. [11] find the switching *amplitude*
  has the strongest impact, frequency a weaker one; we subtract a
  bounded linear penalty in both.

Two entry points:

* :func:`mos_from_ground_truth` — exact score from a ground-truth
  :class:`~repro.datasets.schema.SessionRecord` (simulation/validation).
* :func:`mos_from_diagnosis` — operator-side score from a
  :class:`~repro.core.framework.SessionDiagnosis`, using representative
  values per detected class (all an encrypted vantage point offers).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.datasets.schema import SessionRecord

from .framework import SessionDiagnosis

__all__ = [
    "MosBreakdown",
    "mos_from_ground_truth",
    "mos_from_diagnosis",
    "BASE_QUALITY_MOS",
]

#: Resolution -> base MOS anchor points (no impairments), interpolated.
BASE_QUALITY_MOS = (
    (144.0, 2.0),
    (240.0, 2.6),
    (360.0, 3.3),
    (480.0, 3.8),
    (720.0, 4.3),
    (1080.0, 4.5),
)

#: Exponential stall-decay coefficient: exp(-_STALL_DECAY * RR) scaled
#: onto the MOS range; RR = 0.1 costs ~1.5 points from a 4.5 ceiling.
_STALL_DECAY = 7.0

#: Switching penalties (bounded): per normalised amplitude line and per
#: switch; amplitude dominates per [11].
_AMPLITUDE_PENALTY_PER_LINE = 0.004
_FREQUENCY_PENALTY_PER_SWITCH = 0.05
_MAX_SWITCH_PENALTY = 1.0

_MOS_FLOOR = 1.0
_MOS_CEIL = 5.0


@dataclass(frozen=True)
class MosBreakdown:
    """A MOS estimate with its per-factor decomposition."""

    base_quality: float
    stall_penalty: float
    switch_penalty: float

    @property
    def mos(self) -> float:
        value = self.base_quality - self.stall_penalty - self.switch_penalty
        return float(min(_MOS_CEIL, max(_MOS_FLOOR, value)))


def _base_mos(mean_resolution: float) -> float:
    """Interpolated base MOS of a mean resolution."""
    xs = np.array([x for x, _ in BASE_QUALITY_MOS])
    ys = np.array([y for _, y in BASE_QUALITY_MOS])
    return float(np.interp(mean_resolution, xs, ys))


def _stall_penalty(rebuffering_ratio: float, base: float) -> float:
    """Exponential-decay penalty of Hoßfeld-style stalling impact."""
    if rebuffering_ratio <= 0:
        return 0.0
    rr = min(1.0, rebuffering_ratio)
    retained = math.exp(-_STALL_DECAY * rr)
    return (base - _MOS_FLOOR) * (1.0 - retained)


def _switch_penalty(amplitude: float, count: int) -> float:
    """Bounded linear penalty in switch amplitude and frequency [11]."""
    penalty = (
        _AMPLITUDE_PENALTY_PER_LINE * max(0.0, amplitude)
        + _FREQUENCY_PENALTY_PER_SWITCH * max(0, count)
    )
    return min(_MAX_SWITCH_PENALTY, penalty)


def mos_from_ground_truth(record: SessionRecord) -> MosBreakdown:
    """Exact MOS decomposition of a record with full ground truth."""
    base = _base_mos(record.mean_resolution())
    return MosBreakdown(
        base_quality=base,
        stall_penalty=_stall_penalty(record.rebuffering_ratio(), base),
        switch_penalty=_switch_penalty(
            record.switch_amplitude(), record.switch_count()
        ),
    )


#: Representative per-class values used when only detected classes are
#: available: class midpoints of the labelling rules.
_CLASS_RESOLUTION = {"LD": 240.0, "SD": 420.0, "HD": 720.0}
_CLASS_RR = {"no stalls": 0.0, "mild stalls": 0.05, "severe stalls": 0.2}


def mos_from_diagnosis(
    diagnosis: SessionDiagnosis,
    assumed_switch_amplitude: float = 150.0,
    assumed_switch_count: int = 2,
) -> MosBreakdown:
    """MOS estimate from detected classes only (the encrypted view).

    Uses the midpoint of each detected class: LD/SD/HD map to 240/420/
    720 lines, the stall classes to RR 0 / 0.05 / 0.2, and a detected
    switching session is charged a typical amplitude/frequency.
    """
    resolution = _CLASS_RESOLUTION.get(diagnosis.representation_class, 360.0)
    base = _base_mos(resolution)
    rr = _CLASS_RR.get(diagnosis.stall_class, 0.0)
    if diagnosis.has_quality_switches:
        switch_penalty = _switch_penalty(
            assumed_switch_amplitude, assumed_switch_count
        )
    else:
        switch_penalty = 0.0
    return MosBreakdown(
        base_quality=base,
        stall_penalty=_stall_penalty(rr, base),
        switch_penalty=switch_penalty,
    )
