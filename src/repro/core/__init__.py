"""The paper's contribution: QoE-impairment detection from
encrypted-visible traffic features."""

from .evaluation import balanced_train_full_test, evaluate_model
from .features import (
    REPRESENTATION_METRICS,
    STALL_METRICS,
    build_representation_matrix,
    build_stall_matrix,
    representation_feature_names,
    representation_features,
    stall_feature_names,
    stall_features,
)
from .framework import QoEFramework, SessionDiagnosis
from .mos import BASE_QUALITY_MOS, MosBreakdown, mos_from_diagnosis, mos_from_ground_truth
from .startup import StartupEstimate, estimate_startup_delay
from .labeling import (
    REPRESENTATION_LABELS,
    SEVERE_RR_THRESHOLD,
    STALL_LABELS,
    VARIATION_LABELS,
    has_variation,
    label_records,
    representation_label,
    stall_label,
    variation_label,
    variation_score,
)
from .representation import AvgRepresentationDetector
from .stall import StallDetector
from .switching import SwitchDetector, SwitchEvaluation

__all__ = [
    "QoEFramework",
    "SessionDiagnosis",
    "StallDetector",
    "AvgRepresentationDetector",
    "SwitchDetector",
    "SwitchEvaluation",
    "stall_features",
    "stall_feature_names",
    "representation_features",
    "representation_feature_names",
    "build_stall_matrix",
    "build_representation_matrix",
    "STALL_METRICS",
    "REPRESENTATION_METRICS",
    "stall_label",
    "representation_label",
    "variation_label",
    "variation_score",
    "has_variation",
    "label_records",
    "STALL_LABELS",
    "REPRESENTATION_LABELS",
    "VARIATION_LABELS",
    "SEVERE_RR_THRESHOLD",
    "balanced_train_full_test",
    "evaluate_model",
    "MosBreakdown",
    "mos_from_ground_truth",
    "mos_from_diagnosis",
    "BASE_QUALITY_MOS",
    "StartupEstimate",
    "estimate_startup_delay",
]
