"""Representation-quality-switch detection (§4.3, §5.6).

Unsupervised time-series method: for every session compute the series
of per-chunk products Δsize × Δt (after dropping the first 10 seconds
of fast-start noise), run Page's CUSUM over it, and take the standard
deviation of the CUSUM output as the session's *switch score*::

    score = STD(CUSUM(Δsize × Δt))          (eq. 3)

Sessions scoring above a fixed threshold are flagged as having quality
switches.  The paper reads the threshold (500) off the two score
distributions (Figure 4) and reuses the same value unchanged on
encrypted traffic (§5.6) — :meth:`SwitchDetector.calibrate` automates
the reading-off step, and the calibrated value is then frozen.

Sizes enter the product in kilobytes and times in seconds, which puts
the scores in the same numeric range as the paper's Figure 4 axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.datasets.schema import SessionRecord
from repro.timeseries.cusum import cusum_score
from repro.timeseries.detection import DEFAULT_STARTUP_SKIP_S, product_series

from .labeling import has_variation

__all__ = ["SwitchDetector", "SwitchEvaluation"]

#: The paper's fixed threshold on STD(CUSUM(Δsize × Δt)).
DEFAULT_THRESHOLD = 500.0


@dataclass
class SwitchEvaluation:
    """Outcome of evaluating the detector on a labelled record set.

    ``accuracy_without`` is the fraction of truly switch-free sessions
    below the threshold; ``accuracy_with`` the fraction of truly
    switching sessions above it — the two percentages §4.3 and §5.6
    report (78%/76% cleartext, 76.9%/71.7% encrypted).
    """

    threshold: float
    accuracy_without: float
    accuracy_with: float
    n_without: int
    n_with: int

    @property
    def balanced_accuracy(self) -> float:
        return 0.5 * (self.accuracy_without + self.accuracy_with)


class SwitchDetector:
    """CUSUM-score detector of representation switches.

    Parameters
    ----------
    threshold:
        Score threshold; the paper's 500 by default.
    startup_skip_s:
        Leading seconds dropped from every session (fast-start noise).
    size_unit_bytes:
        Divisor applied to chunk sizes before the product (1000 =
        kilobytes, keeping scores on the Figure 4 scale).
    """

    def __init__(
        self,
        threshold: float = DEFAULT_THRESHOLD,
        startup_skip_s: float = DEFAULT_STARTUP_SKIP_S,
        size_unit_bytes: float = 1000.0,
    ) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if size_unit_bytes <= 0:
            raise ValueError("size unit must be positive")
        self.threshold = threshold
        self.startup_skip_s = startup_skip_s
        self.size_unit_bytes = size_unit_bytes

    # ------------------------------------------------------------------

    def score(self, record: SessionRecord) -> float:
        """STD(CUSUM(Δsize × Δt)) of one session."""
        series = product_series(
            record.timestamps,
            record.sizes / self.size_unit_bytes,
            startup_skip_s=self.startup_skip_s,
        )
        if series.size == 0:
            return 0.0
        return cusum_score(series)

    def scores(self, records: Sequence[SessionRecord]) -> np.ndarray:
        """Scores of a record set."""
        return np.array([self.score(r) for r in records])

    def predict(self, records: Sequence[SessionRecord]) -> np.ndarray:
        """Boolean switch prediction per session (score > threshold)."""
        return self.scores(records) > self.threshold

    # ------------------------------------------------------------------

    def calibrate(
        self,
        records: Sequence[SessionRecord],
        truth: Optional[np.ndarray] = None,
        grid_size: int = 200,
    ) -> float:
        """Pick the threshold that balances the two §4.3 accuracies.

        Scans a grid of candidate thresholds over the observed score
        range and keeps the one maximising the balanced accuracy —
        the automated version of reading the crossing point off
        Figure 4.  The chosen value replaces ``self.threshold``.
        """
        scores = self.scores(records)
        if truth is None:
            truth = np.array([has_variation(r) for r in records])
        truth = np.asarray(truth, dtype=bool)
        if truth.all() or not truth.any():
            raise ValueError("calibration needs both classes present")
        candidates = np.quantile(
            scores, np.linspace(0.01, 0.99, grid_size)
        )
        # The paper reads the threshold off the crossing region of the
        # two CDFs — the point where both classes are recovered at
        # similar rates.  Pick the candidate with the highest balanced
        # accuracy after discarding badly unbalanced operating points.
        best_threshold = float(candidates[0])
        best_score = -np.inf
        for threshold in np.unique(candidates):
            acc_without = float(np.mean(scores[~truth] <= threshold))
            acc_with = float(np.mean(scores[truth] > threshold))
            balanced = 0.5 * (acc_without + acc_with)
            skew = abs(acc_without - acc_with)
            score = balanced - 0.5 * skew
            if score > best_score:
                best_score = score
                best_threshold = float(threshold)
        self.threshold = best_threshold
        return best_threshold

    def evaluate(
        self,
        records: Sequence[SessionRecord],
        truth: Optional[np.ndarray] = None,
    ) -> SwitchEvaluation:
        """Per-class accuracies at the current (frozen) threshold."""
        scores = self.scores(records)
        if truth is None:
            truth = np.array([has_variation(r) for r in records])
        truth = np.asarray(truth, dtype=bool)
        without = scores[~truth]
        with_ = scores[truth]
        return SwitchEvaluation(
            threshold=self.threshold,
            accuracy_without=(
                float(np.mean(without <= self.threshold)) if without.size else 0.0
            ),
            accuracy_with=(
                float(np.mean(with_ > self.threshold)) if with_.size else 0.0
            ),
            n_without=int(without.size),
            n_with=int(with_.size),
        )

    def classify_variation(
        self,
        records: Sequence[SessionRecord],
        high_factor: float = 4.0,
    ) -> np.ndarray:
        """Three-level variation classes from the switch score.

        §4.3 defines Var classes (no / mild / high variation) from the
        combined frequency+amplitude indicator; on encrypted traffic
        only the score is available, so sessions below the threshold are
        "no variation", sessions above ``high_factor`` × threshold are
        "high variation", and the band in between is "mild variation".
        """
        if high_factor <= 1.0:
            raise ValueError("high_factor must exceed 1")
        scores = self.scores(records)
        labels = np.full(scores.shape, "mild variation", dtype=object)
        labels[scores <= self.threshold] = "no variation"
        labels[scores > high_factor * self.threshold] = "high variation"
        return labels.astype(str)

    def score_distributions(
        self,
        records: Sequence[SessionRecord],
        truth: Optional[np.ndarray] = None,
    ) -> Dict[str, np.ndarray]:
        """Scores split by ground truth — the two Figure 4 CDFs."""
        scores = self.scores(records)
        if truth is None:
            truth = np.array([has_variation(r) for r in records])
        truth = np.asarray(truth, dtype=bool)
        return {"without": scores[~truth], "with": scores[truth]}
