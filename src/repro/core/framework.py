"""The unified QoE measurement framework.

Bundles the three detectors into the deployment shape the paper
describes: train once on a cleartext corpus where URI ground truth is
available, then apply the frozen models to any (typically encrypted)
traffic — "the trained models can be then directly applied on the
passively monitored traffic and report issues in real time".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.datasets.schema import SessionRecord
from repro.obs import get_registry, trace

from .labeling import has_variation
from .representation import AvgRepresentationDetector
from .stall import StallDetector
from .switching import SwitchDetector

__all__ = ["QoEFramework", "SessionDiagnosis"]

_REG = get_registry()
_MODEL_PREDICTIONS = _REG.counter(
    "repro_ml_predictions_total",
    "Sessions scored per detector inside the QoE framework.",
    labelnames=("model",),
)
_DIAGNOSES = _REG.counter(
    "repro_core_diagnoses_total",
    "Full session diagnoses produced by QoEFramework.diagnose.",
)


@dataclass(frozen=True)
class SessionDiagnosis:
    """Per-session output of the framework."""

    session_id: str
    stall_class: str
    representation_class: Optional[str]
    has_quality_switches: Optional[bool]


class QoEFramework:
    """Train-once / apply-anywhere bundle of the three QoE detectors.

    Parameters
    ----------
    random_state:
        Seed shared by the two Random-Forest detectors.
    n_estimators:
        Forest size for both classifiers.
    n_jobs:
        Worker processes shared by the two forest detectors
        (``None``/1 serial, ``-1`` all cores); diagnoses are identical
        for any value.
    """

    def __init__(
        self,
        random_state: int = 0,
        n_estimators: int = 40,
        n_jobs: Optional[int] = None,
    ) -> None:
        self.stall = StallDetector(
            n_estimators=n_estimators, random_state=random_state, n_jobs=n_jobs
        )
        self.representation = AvgRepresentationDetector(
            n_estimators=n_estimators, random_state=random_state, n_jobs=n_jobs
        )
        self.switching = SwitchDetector()
        self._fitted = False

    def fit(
        self,
        stall_records: Sequence[SessionRecord],
        adaptive_records: Optional[Sequence[SessionRecord]] = None,
        calibrate_switch_threshold: bool = True,
    ) -> "QoEFramework":
        """Train all detectors from cleartext ground truth.

        ``stall_records`` is the full corpus (§4.1 uses everything);
        ``adaptive_records`` the HAS subset for the representation and
        switching methods (defaults to filtering ``stall_records``).
        """
        if adaptive_records is None:
            adaptive_records = [
                r for r in stall_records if r.kind == "adaptive"
            ]
        with trace("core.framework_fit") as span:
            span.add("stall_records", len(stall_records))
            span.add("adaptive_records", len(adaptive_records))
            self.stall.fit(stall_records)
            if len(adaptive_records) > 0:
                self.representation.fit(adaptive_records)
                if calibrate_switch_threshold:
                    truth = np.array(
                        [has_variation(r) for r in adaptive_records]
                    )
                    if truth.any() and not truth.all():
                        self.switching.calibrate(adaptive_records, truth)
        self._fitted = True
        return self

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError("framework is not fitted; call fit() first")

    def diagnose(
        self,
        records: Sequence[SessionRecord],
        adaptive: bool = True,
    ) -> list:
        """Diagnose sessions with no ground truth required.

        ``adaptive`` controls whether the HAS-only detectors run (on
        encrypted traffic the operator knows the service's delivery
        mode, not the per-session one).
        """
        self._check_fitted()
        with trace("core.framework_diagnose") as span:
            span.add("sessions", len(records))
            stall_classes = self.stall.predict(records)
            _MODEL_PREDICTIONS.labels(model="stall").inc(len(records))
            if adaptive and self.representation._model is not None:
                rep_classes = self.representation.predict(records)
                switches = self.switching.predict(records)
                _MODEL_PREDICTIONS.labels(model="representation").inc(
                    len(records)
                )
                _MODEL_PREDICTIONS.labels(model="switching").inc(len(records))
            else:
                rep_classes = [None] * len(records)
                switches = [None] * len(records)
        _DIAGNOSES.inc(len(records))
        return [
            SessionDiagnosis(
                session_id=record.session_id,
                stall_class=str(stall_class),
                representation_class=(
                    str(rep) if rep is not None else None
                ),
                has_quality_switches=(
                    bool(sw) if sw is not None else None
                ),
            )
            for record, stall_class, rep, sw in zip(
                records, stall_classes, rep_classes, switches
            )
        ]
