"""Feature construction (§4.1, §4.2).

Stall model: "From the traffic features described in Section 3
(Table 1), we generate summary statistics, i.e. max, min, mean,
standard deviation, 25th, 50th and 75th percentiles for each of the
metrics, resulting in 70 new metrics." — 10 per-chunk metrics × 7
statistics.

Average-representation model: "in addition to the 10 features that are
already available in the dataset, we construct five new ones, i.e. the
chunk average size, the chunk size delta, the chunk time delta, the
average throughput and the throughput cumulative sum. [...] we have a
total of 14 features from which we extract [15 statistics]" — giving
210 features.  (The paper's 10+5=14 arithmetic works because *chunk
time* is superseded by *chunk time delta*; we follow that reading.)

Feature names use the paper's vocabulary ("chunk size min", "BDP mean",
"packet retransmissions max", "chunk Δsize max" …) so the experiment
tables read like Tables 2 and 5.

Two engines build the matrices (see :mod:`repro.core.featurex`): the
default ``"columnar"`` batch engine, and the ``"per-record"`` path in
this module, which stays as the bit-identical reference oracle and
escape hatch.  ``engine``/``n_jobs``/``cache`` never change a value —
only wall-clock.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.featurex.engine import ModelSpec, build_matrix as _engine_build
from repro.core.featurex.series import (
    representation_group_series,
    stall_group_series,
)
from repro.datasets.schema import SessionRecord
from repro.timeseries.stats import (
    SUMMARY_STATS_BASIC,
    SUMMARY_STATS_EXTENDED,
    summary_statistics,
)

__all__ = [
    "STALL_METRICS",
    "REPRESENTATION_METRICS",
    "stall_feature_names",
    "representation_feature_names",
    "stall_features",
    "representation_features",
    "build_stall_matrix",
    "build_representation_matrix",
    "get_model_spec",
]


def _relative_times(record: SessionRecord) -> np.ndarray:
    t = record.timestamps
    return t - t[0] if t.size else t


def _chunk_throughput_kbps(record: SessionRecord) -> np.ndarray:
    """Per-chunk achieved throughput (kbit/s)."""
    durations = np.maximum(record.transactions, 1e-3)
    return record.sizes * 8.0 / 1000.0 / durations


def _running_mean(values: np.ndarray) -> np.ndarray:
    if values.size == 0:
        return values
    return np.cumsum(values) / np.arange(1, values.size + 1)


#: Table-1 metrics available per chunk, stall-model set (10 metrics).
#: Reference definitions — the hot paths below compute shared base
#: series once per record instead of calling these one by one.
STALL_METRICS: Dict[str, Callable[[SessionRecord], np.ndarray]] = {
    "RTT minimum": lambda r: r.rtt_min,
    "RTT average": lambda r: r.rtt_avg,
    "RTT maximum": lambda r: r.rtt_max,
    "BDP": lambda r: r.bdp,
    "BIF avg": lambda r: r.bif_avg,
    "BIF maximum": lambda r: r.bif_max,
    "packet loss": lambda r: r.loss_pct,
    "packet retransmissions": lambda r: r.retx_pct,
    "chunk size": lambda r: r.sizes,
    "chunk time": _relative_times,
}

#: §4.2 metric set (14): chunk time replaced by its delta, plus the four
#: other constructed series.
REPRESENTATION_METRICS: Dict[str, Callable[[SessionRecord], np.ndarray]] = {
    "RTT minimum": lambda r: r.rtt_min,
    "RTT average": lambda r: r.rtt_avg,
    "RTT maximum": lambda r: r.rtt_max,
    "BDP": lambda r: r.bdp,
    "BIF avg": lambda r: r.bif_avg,
    "BIF maximum": lambda r: r.bif_max,
    "packet loss": lambda r: r.loss_pct,
    "packet retransmissions": lambda r: r.retx_pct,
    "chunk size": lambda r: r.sizes,
    "chunk avg size": lambda r: _running_mean(r.sizes),
    "chunk Δsize": lambda r: np.abs(np.diff(r.sizes)),
    "chunk Δt": lambda r: np.diff(_relative_times(r)),
    "throughput": _chunk_throughput_kbps,
    "cumsum throughput": lambda r: np.cumsum(_chunk_throughput_kbps(r)),
}


def _stall_record_series(record: SessionRecord) -> Dict[str, np.ndarray]:
    """The 10 stall-model series of one record (base series shared)."""
    return {
        "RTT minimum": record.rtt_min,
        "RTT average": record.rtt_avg,
        "RTT maximum": record.rtt_max,
        "BDP": record.bdp,
        "BIF avg": record.bif_avg,
        "BIF maximum": record.bif_max,
        "packet loss": record.loss_pct,
        "packet retransmissions": record.retx_pct,
        "chunk size": record.sizes,
        "chunk time": _relative_times(record),
    }


def _representation_record_series(
    record: SessionRecord,
) -> Dict[str, np.ndarray]:
    """The 14 §4.2 series of one record.

    ``_chunk_throughput_kbps`` and ``_relative_times`` are computed
    once and shared by their dependent metrics ("throughput" /
    "cumsum throughput", "chunk Δt") instead of being re-derived per
    metric as the reference ``REPRESENTATION_METRICS`` lambdas would.
    """
    rel_times = _relative_times(record)
    throughput = _chunk_throughput_kbps(record)
    return {
        "RTT minimum": record.rtt_min,
        "RTT average": record.rtt_avg,
        "RTT maximum": record.rtt_max,
        "BDP": record.bdp,
        "BIF avg": record.bif_avg,
        "BIF maximum": record.bif_max,
        "packet loss": record.loss_pct,
        "packet retransmissions": record.retx_pct,
        "chunk size": record.sizes,
        "chunk avg size": _running_mean(record.sizes),
        "chunk Δsize": np.abs(np.diff(record.sizes)),
        "chunk Δt": np.diff(rel_times),
        "throughput": throughput,
        "cumsum throughput": np.cumsum(throughput),
    }


def _expand(
    series: Dict[str, np.ndarray], stats: Sequence[str]
) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for metric_name, values in series.items():
        expanded = summary_statistics(values, stats=stats)
        for stat_name, value in expanded.items():
            out[f"{metric_name} {stat_name}"] = value
    return out


def stall_feature_names() -> List[str]:
    """The 70 stall-model feature names, in canonical order."""
    return [
        f"{metric} {stat}"
        for metric in STALL_METRICS
        for stat in SUMMARY_STATS_BASIC
    ]


def representation_feature_names() -> List[str]:
    """The 210 representation-model feature names, in canonical order."""
    return [
        f"{metric} {stat}"
        for metric in REPRESENTATION_METRICS
        for stat in SUMMARY_STATS_EXTENDED
    ]


def stall_features(record: SessionRecord) -> Dict[str, float]:
    """70 summary-statistic features of one session (stall model)."""
    return _expand(_stall_record_series(record), SUMMARY_STATS_BASIC)


def representation_features(record: SessionRecord) -> Dict[str, float]:
    """210 summary-statistic features of one session (representation model)."""
    return _expand(
        _representation_record_series(record), SUMMARY_STATS_EXTENDED
    )


_SPECS: Dict[str, ModelSpec] = {
    "stall": ModelSpec(
        name="stall",
        stats=tuple(SUMMARY_STATS_BASIC),
        metric_names=tuple(STALL_METRICS),
        feature_names=tuple(stall_feature_names()),
        record_features=stall_features,
        group_series=stall_group_series,
    ),
    "representation": ModelSpec(
        name="representation",
        stats=tuple(SUMMARY_STATS_EXTENDED),
        metric_names=tuple(REPRESENTATION_METRICS),
        feature_names=tuple(representation_feature_names()),
        record_features=representation_features,
        group_series=representation_group_series,
    ),
}


def get_model_spec(model: str) -> ModelSpec:
    """The engine spec of one feature model ("stall"/"representation")."""
    try:
        return _SPECS[model]
    except KeyError:
        raise KeyError(
            f"unknown feature model {model!r}; known: {', '.join(_SPECS)}"
        ) from None


def build_stall_matrix(
    records: Sequence[SessionRecord],
    engine: Optional[str] = None,
    n_jobs: Optional[int] = None,
    cache: bool = True,
) -> Tuple[np.ndarray, List[str]]:
    """(n_sessions, 70) stall feature matrix + column names.

    ``engine`` selects the columnar batch engine (default) or the
    per-record oracle; ``n_jobs`` fans large builds out in row chunks;
    ``cache`` consults the content-addressed matrix cache.  All three
    only change wall-clock, never a value.
    """
    spec = _SPECS["stall"]
    matrix = _engine_build(
        records, spec, engine=engine, n_jobs=n_jobs, cache=cache
    )
    return matrix, list(spec.feature_names)


def build_representation_matrix(
    records: Sequence[SessionRecord],
    engine: Optional[str] = None,
    n_jobs: Optional[int] = None,
    cache: bool = True,
) -> Tuple[np.ndarray, List[str]]:
    """(n_sessions, 210) representation feature matrix + column names.

    See :func:`build_stall_matrix` for the ``engine``/``n_jobs``/
    ``cache`` knobs.
    """
    spec = _SPECS["representation"]
    matrix = _engine_build(
        records, spec, engine=engine, n_jobs=n_jobs, cache=cache
    )
    return matrix, list(spec.feature_names)
