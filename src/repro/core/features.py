"""Feature construction (§4.1, §4.2).

Stall model: "From the traffic features described in Section 3
(Table 1), we generate summary statistics, i.e. max, min, mean,
standard deviation, 25th, 50th and 75th percentiles for each of the
metrics, resulting in 70 new metrics." — 10 per-chunk metrics × 7
statistics.

Average-representation model: "in addition to the 10 features that are
already available in the dataset, we construct five new ones, i.e. the
chunk average size, the chunk size delta, the chunk time delta, the
average throughput and the throughput cumulative sum. [...] we have a
total of 14 features from which we extract [15 statistics]" — giving
210 features.  (The paper's 10+5=14 arithmetic works because *chunk
time* is superseded by *chunk time delta*; we follow that reading.)

Feature names use the paper's vocabulary ("chunk size min", "BDP mean",
"packet retransmissions max", "chunk Δsize max" …) so the experiment
tables read like Tables 2 and 5.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.datasets.schema import SessionRecord
from repro.obs import get_registry, trace
from repro.timeseries.stats import (
    SUMMARY_STATS_BASIC,
    SUMMARY_STATS_EXTENDED,
    summary_statistics,
)

__all__ = [
    "STALL_METRICS",
    "REPRESENTATION_METRICS",
    "stall_feature_names",
    "representation_feature_names",
    "stall_features",
    "representation_features",
    "build_stall_matrix",
    "build_representation_matrix",
]


_REG = get_registry()
_BUILD_SECONDS = _REG.histogram(
    "repro_features_build_seconds",
    "Wall-clock time to build one feature matrix.",
    labelnames=("model",),
)
_ROWS_BUILT = _REG.counter(
    "repro_features_rows_total",
    "Session rows expanded into feature vectors.",
    labelnames=("model",),
)
_ROWS_PER_SECOND = _REG.gauge(
    "repro_features_last_rows_per_second",
    "Throughput of the most recent feature-matrix build.",
    labelnames=("model",),
)


def _relative_times(record: SessionRecord) -> np.ndarray:
    t = record.timestamps
    return t - t[0] if t.size else t


def _chunk_throughput_kbps(record: SessionRecord) -> np.ndarray:
    """Per-chunk achieved throughput (kbit/s)."""
    durations = np.maximum(record.transactions, 1e-3)
    return record.sizes * 8.0 / 1000.0 / durations


def _running_mean(values: np.ndarray) -> np.ndarray:
    if values.size == 0:
        return values
    return np.cumsum(values) / np.arange(1, values.size + 1)


#: Table-1 metrics available per chunk, stall-model set (10 metrics).
STALL_METRICS: Dict[str, Callable[[SessionRecord], np.ndarray]] = {
    "RTT minimum": lambda r: r.rtt_min,
    "RTT average": lambda r: r.rtt_avg,
    "RTT maximum": lambda r: r.rtt_max,
    "BDP": lambda r: r.bdp,
    "BIF avg": lambda r: r.bif_avg,
    "BIF maximum": lambda r: r.bif_max,
    "packet loss": lambda r: r.loss_pct,
    "packet retransmissions": lambda r: r.retx_pct,
    "chunk size": lambda r: r.sizes,
    "chunk time": _relative_times,
}

#: §4.2 metric set (14): chunk time replaced by its delta, plus the four
#: other constructed series.
REPRESENTATION_METRICS: Dict[str, Callable[[SessionRecord], np.ndarray]] = {
    "RTT minimum": lambda r: r.rtt_min,
    "RTT average": lambda r: r.rtt_avg,
    "RTT maximum": lambda r: r.rtt_max,
    "BDP": lambda r: r.bdp,
    "BIF avg": lambda r: r.bif_avg,
    "BIF maximum": lambda r: r.bif_max,
    "packet loss": lambda r: r.loss_pct,
    "packet retransmissions": lambda r: r.retx_pct,
    "chunk size": lambda r: r.sizes,
    "chunk avg size": lambda r: _running_mean(r.sizes),
    "chunk Δsize": lambda r: np.abs(np.diff(r.sizes)),
    "chunk Δt": lambda r: np.diff(_relative_times(r)),
    "throughput": _chunk_throughput_kbps,
    "cumsum throughput": lambda r: np.cumsum(_chunk_throughput_kbps(r)),
}


def _expand(
    record: SessionRecord,
    metrics: Dict[str, Callable[[SessionRecord], np.ndarray]],
    stats: Sequence[str],
) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for metric_name, extractor in metrics.items():
        series = extractor(record)
        values = summary_statistics(series, stats=stats)
        for stat_name, value in values.items():
            out[f"{metric_name} {stat_name}"] = value
    return out


def stall_feature_names() -> List[str]:
    """The 70 stall-model feature names, in canonical order."""
    return [
        f"{metric} {stat}"
        for metric in STALL_METRICS
        for stat in SUMMARY_STATS_BASIC
    ]


def representation_feature_names() -> List[str]:
    """The 210 representation-model feature names, in canonical order."""
    return [
        f"{metric} {stat}"
        for metric in REPRESENTATION_METRICS
        for stat in SUMMARY_STATS_EXTENDED
    ]


def stall_features(record: SessionRecord) -> Dict[str, float]:
    """70 summary-statistic features of one session (stall model)."""
    return _expand(record, STALL_METRICS, SUMMARY_STATS_BASIC)


def representation_features(record: SessionRecord) -> Dict[str, float]:
    """210 summary-statistic features of one session (representation model)."""
    return _expand(record, REPRESENTATION_METRICS, SUMMARY_STATS_EXTENDED)


def _build_matrix(
    records: Sequence[SessionRecord],
    feature_fn: Callable[[SessionRecord], Dict[str, float]],
    names: List[str],
    model: str,
) -> np.ndarray:
    with trace("core.build_feature_matrix") as span:
        started = time.perf_counter()
        matrix = np.empty((len(records), len(names)))
        for i, record in enumerate(records):
            features = feature_fn(record)
            matrix[i] = [features[name] for name in names]
        elapsed = time.perf_counter() - started
        span.add("rows", len(records))
    _BUILD_SECONDS.labels(model=model).observe(elapsed)
    _ROWS_BUILT.labels(model=model).inc(len(records))
    if elapsed > 0:
        _ROWS_PER_SECOND.labels(model=model).set(len(records) / elapsed)
    return matrix


def build_stall_matrix(
    records: Sequence[SessionRecord],
) -> Tuple[np.ndarray, List[str]]:
    """(n_sessions, 70) stall feature matrix + column names."""
    names = stall_feature_names()
    return _build_matrix(records, stall_features, names, "stall"), names


def build_representation_matrix(
    records: Sequence[SessionRecord],
) -> Tuple[np.ndarray, List[str]]:
    """(n_sessions, 210) representation feature matrix + column names."""
    names = representation_feature_names()
    matrix = _build_matrix(
        records, representation_features, names, "representation"
    )
    return matrix, names
