"""Initial-delay estimation from encrypted traffic (a §2.2 extension).

The paper excludes the initial delay from its QoE model ("lowest impact
on the QoE") but operators still track it.  This module estimates it
from the same encrypted weblog view the detectors use: playback starts
once the player has buffered its start-up threshold of media, which at
the traffic level corresponds to the first few media chunks having
arrived.

The estimator returns the arrival time of the chunk at which the
cumulative downloaded bytes first cover ``startup_media_s`` seconds of
playback at the session's estimated bitrate (bitrate itself estimated
from the steady-state byte rate), measured from the session's first
request.  On simulated ground truth this tracks the player's true
startup delay closely (see ``tests/core/test_startup.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.datasets.schema import SessionRecord

__all__ = ["StartupEstimate", "estimate_startup_delay"]


@dataclass(frozen=True)
class StartupEstimate:
    """Estimated initial delay of one session."""

    delay_s: float
    bitrate_kbps: float
    chunks_used: int


def _steady_bitrate_kbps(record: SessionRecord) -> float:
    """Estimate the media bitrate from steady-state byte throughput.

    In steady state the player downloads at the media consumption rate
    (ON-OFF pacing), so total bytes / session span approximates the
    bitrate.  The first chunks (start-up burst) are excluded.
    """
    n = record.n_chunks
    skip = min(3, n - 1)
    sizes = record.sizes[skip:]
    times = record.timestamps[skip:]
    if sizes.size < 2 or times[-1] <= times[0]:
        # degenerate: fall back to whole-session average rate
        span = max(1e-3, record.timestamps[-1] - record.timestamps[0])
        return float(record.sizes.sum() * 8.0 / 1000.0 / span)
    span = times[-1] - times[0]
    return float(sizes.sum() * 8.0 / 1000.0 / max(span, 1e-3))


def estimate_startup_delay(
    record: SessionRecord,
    startup_media_s: float = 4.0,
) -> Optional[StartupEstimate]:
    """Estimate the initial delay of a session from traffic alone.

    Returns ``None`` for sessions too short to estimate (fewer than two
    chunks).
    """
    if record.n_chunks < 2:
        return None
    bitrate = max(16.0, _steady_bitrate_kbps(record))
    bytes_needed = startup_media_s * bitrate * 1000.0 / 8.0

    cumulative = np.cumsum(record.sizes)
    reached = np.nonzero(cumulative >= bytes_needed)[0]
    index = int(reached[0]) if reached.size else record.n_chunks - 1
    start = record.timestamps[0] - record.transactions[0]
    delay = float(record.timestamps[index] - start)
    return StartupEstimate(
        delay_s=max(0.0, delay),
        bitrate_kbps=bitrate,
        chunks_used=index + 1,
    )
