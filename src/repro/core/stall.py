"""Stall-severity detection model (§4.1).

Pipeline: 70-feature construction → CFS feature selection (cleartext
training only) → class balancing → Random Forest → 3-class prediction
(no / mild / severe stalling).

On encrypted traffic "an automated feature selection [...] is no longer
necessary since we already know the important features" — the fitted
detector therefore stores its selected feature indices and reuses them
on any later dataset.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.schema import SessionRecord
from repro.ml.forest import RandomForestClassifier
from repro.ml.metrics import ClassificationReport
from repro.ml.selection import CfsSubsetSelector, InfoGainRanker, SelectionResult

from .evaluation import balanced_train_full_test, evaluate_model
from .features import build_stall_matrix
from .labeling import STALL_LABELS, label_records, stall_label

__all__ = ["StallDetector"]


class StallDetector:
    """Three-class stall detector over encrypted-visible features.

    Parameters
    ----------
    n_estimators:
        Forest size.
    feature_selection:
        ``"cfs"`` (paper's CfsSubsetEval + BestFirst), ``"infogain"``
        (rank and keep ``n_features``), or ``"none"`` (all 70).
    n_features:
        Upper bound on selected features (infogain keeps exactly this
        many; CFS is capped at it).
    random_state:
        Seed for balancing and the forest.
    n_jobs:
        Worker processes for forest fitting/scoring and CV folds
        (``None``/1 serial, ``-1`` all cores); results are identical
        for any value.
    """

    def __init__(
        self,
        n_estimators: int = 40,
        feature_selection: str = "cfs",
        n_features: int = 8,
        random_state: int = 0,
        n_jobs: Optional[int] = None,
    ) -> None:
        if feature_selection not in ("cfs", "infogain", "none"):
            raise ValueError(f"unknown selection mode: {feature_selection!r}")
        self.n_estimators = n_estimators
        self.feature_selection = feature_selection
        self.n_features = n_features
        self.random_state = random_state
        self.n_jobs = n_jobs

        self.selected_indices_: Optional[List[int]] = None
        self.selected_names_: Optional[List[str]] = None
        self.selection_result_: Optional[SelectionResult] = None
        self.train_report_: Optional[ClassificationReport] = None
        self._model: Optional[RandomForestClassifier] = None

    # ------------------------------------------------------------------

    def labels_for(self, records: Sequence[SessionRecord]) -> np.ndarray:
        """Ground-truth stall labels of a record set."""
        return label_records(records, stall_label)

    def _select(self, X: np.ndarray, y: np.ndarray, names: List[str]) -> None:
        if self.feature_selection == "none":
            result = InfoGainRanker().rank(X, y, names=names)
            self.selected_indices_ = list(range(X.shape[1]))
            self.selected_names_ = list(names)
            self.selection_result_ = result
            return
        if self.feature_selection == "infogain":
            result = InfoGainRanker().rank(X, y, names=names).top(self.n_features)
        else:
            result = CfsSubsetSelector(max_subset_size=self.n_features).select(
                X, y, names=names
            )
            if len(result.selected) < 2:
                # Degenerate CFS outcome (tiny training sets): fall back
                # to the info-gain ranking so the model stays usable.
                result = (
                    InfoGainRanker().rank(X, y, names=names).top(self.n_features)
                )
        self.selected_indices_ = list(result.selected)
        self.selected_names_ = list(result.names)
        self.selection_result_ = result

    def _model_factory(self) -> RandomForestClassifier:
        return RandomForestClassifier(
            n_estimators=self.n_estimators,
            min_samples_leaf=3,
            random_state=self.random_state,
            n_jobs=self.n_jobs,
        )

    def fit(
        self,
        records: Sequence[SessionRecord],
        labels: Optional[np.ndarray] = None,
    ) -> "StallDetector":
        """Train on a cleartext record set (with stall ground truth)."""
        if len(records) == 0:
            raise ValueError("cannot fit on an empty record set")
        y = np.asarray(labels) if labels is not None else self.labels_for(records)
        X, names = build_stall_matrix(records, n_jobs=self.n_jobs)
        self._select(X, y, names)
        X_sel = X[:, self.selected_indices_]
        self._model, self.train_report_ = balanced_train_full_test(
            self._model_factory,
            X_sel,
            y,
            labels=STALL_LABELS,
            random_state=self.random_state,
        )
        return self

    # ------------------------------------------------------------------

    def _check_fitted(self) -> None:
        if self._model is None:
            raise RuntimeError("detector is not fitted; call fit() first")

    def _features_of(self, records: Sequence[SessionRecord]) -> np.ndarray:
        X, _ = build_stall_matrix(records, n_jobs=self.n_jobs)
        return X[:, self.selected_indices_]

    def predict_proba(self, records: Sequence[SessionRecord]) -> np.ndarray:
        """Class-probability estimates per session (forest soft votes).

        Columns follow ``self._model.classes_`` order; useful for
        confidence-aware alarm policies on top of the hard labels.
        """
        self._check_fitted()
        return self._model.predict_proba(self._features_of(records))

    def predict(self, records: Sequence[SessionRecord]) -> np.ndarray:
        """Predicted stall class per session."""
        self._check_fitted()
        return self._model.predict(self._features_of(records))

    def evaluate(
        self,
        records: Sequence[SessionRecord],
        labels: Optional[np.ndarray] = None,
    ) -> ClassificationReport:
        """Paper-format report of the detector on a labelled record set."""
        self._check_fitted()
        y = np.asarray(labels) if labels is not None else self.labels_for(records)
        return evaluate_model(
            self._model, self._features_of(records), y, labels=STALL_LABELS
        )

    def feature_gains(self) -> List[Tuple[str, float]]:
        """(name, information gain) pairs of the selected features (Table 2)."""
        self._check_fitted()
        return list(
            zip(self.selection_result_.names, self.selection_result_.scores)
        )

    def cross_validate(
        self,
        records: Sequence[SessionRecord],
        n_splits: int = 10,
        labels: Optional[np.ndarray] = None,
    ) -> ClassificationReport:
        """Honest 10-fold CV report (balancing inside each training fold).

        The detector must already be fitted (it supplies the selected
        feature subset); the CV then refits fresh forests per fold so
        no test instance is ever seen in training — the protocol used
        during model development (§4).
        """
        from repro.ml.balance import oversample
        from repro.ml.crossval import cross_validate as run_cv

        self._check_fitted()
        y = np.asarray(labels) if labels is not None else self.labels_for(records)
        X = self._features_of(records)
        smallest = int(np.bincount(np.unique(y, return_inverse=True)[1]).min())
        splits = max(2, min(n_splits, smallest))
        return run_cv(
            self._model_factory,
            X,
            y,
            n_splits=splits,
            random_state=self.random_state,
            balance=lambda Xb, yb: oversample(
                Xb, yb, random_state=self.random_state
            ),
            labels=list(STALL_LABELS),
            n_jobs=self.n_jobs,
        )
