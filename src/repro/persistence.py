"""Model persistence: save and load trained detectors as JSON.

An operator trains the framework once, while cleartext ground truth is
still available, and then runs the frozen models for months (§8's
deployment story).  That requires durable model storage.  This module
serialises every fitted component — forests, trees, selected feature
subsets, the calibrated switch threshold — to plain JSON: portable,
diff-able and free of pickle's code-execution hazards.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.core.framework import QoEFramework
from repro.faults.retry import retry_with_backoff
from repro.core.representation import AvgRepresentationDetector
from repro.core.stall import StallDetector
from repro.core.switching import SwitchDetector
from repro.ml.forest import RandomForestClassifier
from repro.ml.selection import SelectionResult
from repro.ml.tree import DecisionTreeClassifier

__all__ = [
    "forest_to_dict",
    "forest_from_dict",
    "framework_to_dict",
    "framework_from_dict",
    "payload_checksum",
    "save_framework",
    "load_framework",
]

#: Key under which :func:`save_framework` embeds the payload checksum.
#: Stored alongside the payload (not in a wrapper object) so files
#: written by older versions — which have no checksum — still load.
_CHECKSUM_KEY = "payload_sha256"

_FORMAT_VERSION = 2

#: Versions this module can still load.  Version 1 payloads lack the
#: per-tree/forest hyperparameters (defaults are substituted) and use
#: the ambiguous ``"num"`` class kind.
_READABLE_VERSIONS = (1, _FORMAT_VERSION)


def _classes_to_json(classes: np.ndarray) -> Dict:
    if classes.dtype.kind in ("U", "S", "O"):
        kind = "str"
    elif classes.dtype.kind in ("i", "u", "b"):
        kind = "int"
    else:
        kind = "float"
    values = [
        str(c) if kind == "str" else (int(c) if kind == "int" else float(c))
        for c in classes.tolist()
    ]
    return {"kind": kind, "values": values}


def _classes_from_json(payload: Dict) -> np.ndarray:
    kind = payload["kind"]
    if kind == "str":
        return np.array([str(v) for v in payload["values"]])
    if kind == "int":
        return np.array(payload["values"], dtype=np.int64)
    if kind == "float":
        return np.array(payload["values"], dtype=float)
    # Legacy "num" (format version 1) lost the original dtype; fall back
    # to the old guess — integral values were integer labels.
    values = np.array(payload["values"], dtype=float)
    if np.all(values == np.round(values)):
        return values.astype(np.int64)
    return values


def _tree_to_dict(tree: DecisionTreeClassifier) -> Dict:
    return {
        "feature": tree._feature.tolist(),
        "threshold": tree._threshold.tolist(),
        "left": tree._left.tolist(),
        "right": tree._right.tolist(),
        "value": tree._value.tolist(),
        "classes": _classes_to_json(tree.classes_),
        "n_features": tree.n_features_,
        "criterion": tree.criterion,
        "max_depth": tree.max_depth,
        "min_samples_split": tree.min_samples_split,
        "min_samples_leaf": tree.min_samples_leaf,
        "max_features": tree.max_features,
    }


def _tree_from_dict(payload: Dict) -> DecisionTreeClassifier:
    tree = DecisionTreeClassifier(
        criterion=payload["criterion"],
        max_depth=payload.get("max_depth"),
        min_samples_split=payload.get("min_samples_split", 2),
        min_samples_leaf=payload.get("min_samples_leaf", 1),
        max_features=payload.get("max_features"),
    )
    tree._feature = np.asarray(payload["feature"], dtype=np.int64)
    tree._threshold = np.asarray(payload["threshold"], dtype=float)
    tree._left = np.asarray(payload["left"], dtype=np.int64)
    tree._right = np.asarray(payload["right"], dtype=np.int64)
    tree._value = np.asarray(payload["value"], dtype=float)
    tree.classes_ = _classes_from_json(payload["classes"])
    tree.n_classes_ = tree.classes_.size
    tree.n_features_ = int(payload["n_features"])
    return tree


def forest_to_dict(forest: RandomForestClassifier) -> Dict:
    """Serialise a fitted forest (structure *and* hyperparameters).

    The hyperparameters matter beyond bookkeeping: a reloaded forest
    that is ``fit()`` again must grow the same kind of ensemble the
    original did, not silently revert to constructor defaults.
    ``n_jobs`` is deliberately not persisted — it is an execution
    setting of the host machine, not part of the model.
    """
    if not hasattr(forest, "estimators_"):
        raise ValueError("forest is not fitted")
    random_state = forest.random_state
    return {
        "classes": _classes_to_json(forest.classes_),
        "n_features": forest.n_features_,
        "n_estimators": forest.n_estimators,
        "criterion": forest.criterion,
        "max_depth": forest.max_depth,
        "min_samples_split": forest.min_samples_split,
        "min_samples_leaf": forest.min_samples_leaf,
        "max_features": forest.max_features,
        "bootstrap": forest.bootstrap,
        "oob_score": forest.oob_score,
        # Generators/SeedSequences are process state, not JSON; only
        # int/None seeds survive a round-trip.
        "random_state": (
            int(random_state)
            if isinstance(random_state, (int, np.integer))
            else None
        ),
        "trees": [_tree_to_dict(tree) for tree in forest.estimators_],
    }


def forest_from_dict(payload: Dict) -> RandomForestClassifier:
    """Rebuild a fitted forest.

    Tolerates format-version-1 payloads, which carried no
    hyperparameters: constructor defaults are substituted there.
    """
    forest = RandomForestClassifier(
        n_estimators=payload["n_estimators"],
        criterion=payload.get("criterion", "gini"),
        max_depth=payload.get("max_depth"),
        min_samples_split=payload.get("min_samples_split", 2),
        min_samples_leaf=payload.get("min_samples_leaf", 1),
        max_features=payload.get("max_features", "sqrt"),
        bootstrap=payload.get("bootstrap", True),
        oob_score=payload.get("oob_score", False),
        random_state=payload.get("random_state"),
    )
    forest.classes_ = _classes_from_json(payload["classes"])
    forest.n_features_ = int(payload["n_features"])
    forest.estimators_ = [_tree_from_dict(t) for t in payload["trees"]]
    return forest


def _detector_to_dict(detector) -> Dict:
    if detector._model is None:
        raise ValueError("detector is not fitted")
    return {
        "selected_indices": list(detector.selected_indices_),
        "selected_names": list(detector.selected_names_),
        "selection_scores": list(detector.selection_result_.scores),
        "n_estimators": detector.n_estimators,
        "random_state": detector.random_state,
        "model": forest_to_dict(detector._model),
    }


def _detector_from_dict(payload: Dict, cls):
    detector = cls(
        n_estimators=payload["n_estimators"],
        random_state=payload["random_state"],
    )
    detector.selected_indices_ = list(payload["selected_indices"])
    detector.selected_names_ = list(payload["selected_names"])
    detector.selection_result_ = SelectionResult(
        selected=list(payload["selected_indices"]),
        scores=list(payload["selection_scores"]),
        names=list(payload["selected_names"]),
    )
    detector._model = forest_from_dict(payload["model"])
    return detector


def framework_to_dict(framework: QoEFramework) -> Dict:
    """Serialise a fitted framework (all three detectors)."""
    if not framework._fitted:
        raise ValueError("framework is not fitted")
    payload = {
        "format_version": _FORMAT_VERSION,
        "stall": _detector_to_dict(framework.stall),
        "switching": {
            "threshold": framework.switching.threshold,
            "startup_skip_s": framework.switching.startup_skip_s,
            "size_unit_bytes": framework.switching.size_unit_bytes,
        },
    }
    if framework.representation._model is not None:
        payload["representation"] = _detector_to_dict(framework.representation)
    return payload


def framework_from_dict(payload: Dict) -> QoEFramework:
    """Rebuild a fitted framework.

    Raises :class:`ValueError` (never ``KeyError``/``TypeError``) on
    malformed payloads, so callers — in particular the hot-reload path
    in :mod:`repro.serving.models` — can treat every corruption mode
    uniformly.
    """
    if not isinstance(payload, dict):
        raise ValueError(
            f"model payload must be a JSON object, got {type(payload).__name__}"
        )
    if payload.get("format_version") not in _READABLE_VERSIONS:
        raise ValueError(
            f"unsupported model format: {payload.get('format_version')!r}"
        )
    missing = [key for key in ("stall", "switching") if key not in payload]
    if missing:
        raise ValueError(
            f"model payload is missing required section(s): {missing} "
            "(file truncated or not a saved framework?)"
        )
    framework = QoEFramework()
    try:
        framework.stall = _detector_from_dict(payload["stall"], StallDetector)
        if "representation" in payload:
            framework.representation = _detector_from_dict(
                payload["representation"], AvgRepresentationDetector
            )
        switching = payload["switching"]
        framework.switching = SwitchDetector(
            threshold=switching["threshold"],
            startup_skip_s=switching["startup_skip_s"],
            size_unit_bytes=switching["size_unit_bytes"],
        )
    except (KeyError, TypeError, IndexError) as exc:
        raise ValueError(f"corrupt model payload: {exc!r}") from exc
    framework._fitted = True
    return framework


def payload_checksum(payload: Dict) -> str:
    """SHA-256 over the canonical JSON form of a model payload.

    The checksum key itself is excluded, so the digest of a loaded file
    can be recomputed and compared against the embedded value.
    """
    body = {k: v for k, v in payload.items() if k != _CHECKSUM_KEY}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def save_framework(framework: QoEFramework, path: Union[str, Path]) -> None:
    """Write a fitted framework to a JSON file (checksummed, atomic).

    The payload lands in a same-directory temp file first and is moved
    into place with :func:`os.replace` — a reader (notably the serving
    layer's hot-reload) can never observe a half-written model, only
    the old file or the new one.  Transient I/O errors are retried
    with backoff before propagating.
    """
    payload = framework_to_dict(framework)
    payload[_CHECKSUM_KEY] = payload_checksum(payload)
    body = json.dumps(payload)
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")

    def _write() -> None:
        try:
            tmp.write_text(body)
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                tmp.unlink()

    retry_with_backoff(_write, retry_on=(OSError,), op="save_framework")


def load_framework(path: Union[str, Path]) -> QoEFramework:
    """Load a framework previously written by :func:`save_framework`.

    Validates three layers before trusting the blob — JSON
    well-formedness (truncated files), the embedded SHA-256 payload
    checksum (bit rot, partial overwrites), and the model format
    (version + required sections) — raising :class:`ValueError` with
    the failing layer named.  Files written before checksums existed
    load fine; only a *present-but-wrong* digest is rejected.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(
            f"model file {path} is not valid JSON (truncated or corrupt "
            f"write?): {exc}"
        ) from exc
    if not isinstance(payload, dict):
        raise ValueError(
            f"model file {path} must hold a JSON object, got "
            f"{type(payload).__name__}"
        )
    stored = payload.get(_CHECKSUM_KEY)
    if stored is not None:
        actual = payload_checksum(payload)
        if stored != actual:
            raise ValueError(
                f"model file {path} failed its checksum "
                f"(stored {stored[:12]}…, computed {actual[:12]}…): "
                "file corrupted or hand-edited"
            )
    return framework_from_dict(payload)
