"""Chaos flight recorder: bounded event ring + JSON postmortems.

When a shard dies or a circuit opens, the aggregate metrics say *that*
it happened; the operator debugging it wants to know what the pipeline
was doing in the seconds *before*.  The flight recorder keeps exactly
that: a bounded, lock-cheap ring buffer of recent pipeline events
(submits — sampled, batch flushes, quarantines, restarts, circuit
transitions, model reloads, injected faults), and on a trigger —
circuit open, shard death, drain timeout — dumps a structured JSON
*postmortem*: the last K events, plus whatever snapshot providers are
registered (per-stage latency breakdown, SLO burn state, dead-letter
and supervisor counters).

Design points:

* **Lock-cheap recording.**  ``record()`` is one ``deque.append`` of a
  prebuilt tuple — ``collections.deque`` with ``maxlen`` is safe for
  concurrent appends, so the hot path takes no lock at all.  Shard
  threads, the supervisor and the submit path all record freely.
* **Never raises.**  A telemetry layer that can crash the pipeline it
  observes is worse than none: ``dump()`` and every provider call are
  wrapped; failures are logged and counted, not propagated.
* **Process-global access.**  Like the registry and tracer, the
  recorder has a process default (:func:`get_recorder` /
  :func:`set_recorder`) so deep modules (DLQ, batcher, model manager,
  fault injector) record without constructor plumbing;
  :class:`~repro.serving.service.QoEService` installs its own
  configured instance at ``start()``.

Postmortem JSON schema (``repro.obs.postmortem/1``)::

    {
      "schema": "repro.obs.postmortem/1",
      "trigger": "shard_failed" | "circuit_open" | "drain_timeout" | ...,
      "detail": {...},                  # trigger-specific context
      "written_at_unix_s": 1723...,
      "events": [                       # oldest → newest, bounded
        {"ts_unix_s": ..., "kind": "...", ...event detail...}
      ],
      "snapshots": {                    # registered providers, by name
        "stages": {...}, "slo": [...], "dead_letter": {...}, ...
      }
    }
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from .logs import get_logger
from .registry import get_registry

__all__ = [
    "POSTMORTEM_SCHEMA",
    "FlightRecorder",
    "get_recorder",
    "set_recorder",
]

_LOG = get_logger("obs.recorder")

POSTMORTEM_SCHEMA = "repro.obs.postmortem/1"

_REG = get_registry()
_EVENTS = _REG.counter(
    "repro_recorder_events_total",
    "Pipeline events captured by the flight recorder, by kind.",
    labelnames=("kind",),
)
_POSTMORTEMS = _REG.counter(
    "repro_recorder_postmortems_total",
    "Postmortem dumps written by the flight recorder, by trigger.",
    labelnames=("trigger",),
)


class FlightRecorder:
    """Bounded ring of pipeline events with postmortem dumping.

    Parameters
    ----------
    capacity:
        Events retained (oldest evicted) — the "last K events" of a
        postmortem.
    postmortem_dir:
        Where postmortem JSON files are written.  ``None`` (default)
        records events but never writes files — :meth:`dump` becomes a
        no-op returning ``None``, so library code can trigger dumps
        unconditionally.
    clock:
        Injectable wall clock (tests); event timestamps are wall time
        because postmortems are read by humans correlating logs.
    """

    def __init__(
        self,
        capacity: int = 256,
        postmortem_dir: Optional[Union[str, Path]] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if capacity < 1:
            raise ValueError("recorder capacity must be >= 1")
        self.capacity = capacity
        self.postmortem_dir = (
            Path(postmortem_dir) if postmortem_dir is not None else None
        )
        self._clock = clock
        self._ring: deque = deque(maxlen=capacity)
        self._providers: Dict[str, Callable[[], object]] = {}
        self._lock = threading.Lock()  # providers + postmortem bookkeeping
        self._dump_seq = 0
        self.postmortems: List[str] = []

    # ------------------------------------------------------------------
    # Hot path
    # ------------------------------------------------------------------

    def record(self, kind: str, **detail: object) -> None:
        """Append one event (lock-free; safe from any thread)."""
        self._ring.append((self._clock(), kind, detail))
        _EVENTS.labels(kind=kind).inc()

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------

    def add_provider(
        self, name: str, provider: Callable[[], object]
    ) -> None:
        """Register a snapshot provider included in every postmortem.

        Providers are called at dump time and must be cheap;
        exceptions are caught and reported inside the snapshot rather
        than propagated.
        """
        with self._lock:
            self._providers[name] = provider

    def remove_provider(self, name: str) -> None:
        with self._lock:
            self._providers.pop(name, None)

    # ------------------------------------------------------------------
    # Read side / dumping
    # ------------------------------------------------------------------

    def events(self) -> List[Dict]:
        """The retained events, oldest first, as JSON-shaped dicts."""
        return [
            {"ts_unix_s": ts, "kind": kind, **_jsonable(detail)}
            for ts, kind, detail in list(self._ring)
        ]

    def snapshots(self) -> Dict[str, object]:
        """Every provider's current snapshot (errors reported inline)."""
        with self._lock:
            providers = dict(self._providers)
        out: Dict[str, object] = {}
        for name, provider in providers.items():
            try:
                out[name] = provider()
            except Exception as exc:  # noqa: BLE001 - must not propagate
                out[name] = {"error": repr(exc)}
        return out

    def dump(self, trigger: str, **detail: object) -> Optional[str]:
        """Write a postmortem file; returns its path (or ``None``).

        ``None`` when no ``postmortem_dir`` is configured or the write
        failed — a postmortem must never take down the pipeline it is
        documenting, so *all* failures are swallowed (logged and
        visible as the absence of a ``repro_recorder_postmortems_total``
        increment).
        """
        self.record("postmortem_trigger", trigger=trigger, **detail)
        if self.postmortem_dir is None:
            return None
        try:
            payload = {
                "schema": POSTMORTEM_SCHEMA,
                "trigger": trigger,
                "detail": _jsonable(detail),
                "written_at_unix_s": self._clock(),
                "events": self.events(),
                "snapshots": _jsonable(self.snapshots()),
            }
            with self._lock:
                self._dump_seq += 1
                seq = self._dump_seq
            self.postmortem_dir.mkdir(parents=True, exist_ok=True)
            path = self.postmortem_dir / f"postmortem-{seq:03d}-{trigger}.json"
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, default=str)
                handle.write("\n")
            with self._lock:
                self.postmortems.append(str(path))
            _POSTMORTEMS.labels(trigger=trigger).inc()
            _LOG.warning(
                "postmortem_written", trigger=trigger, path=str(path)
            )
            return str(path)
        except Exception as exc:  # noqa: BLE001 - must not propagate
            _LOG.error(
                "postmortem_write_failed", trigger=trigger, error=repr(exc)
            )
            return None


def _jsonable(value: object) -> object:
    """Best-effort conversion to JSON-serialisable structures."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


_recorder = FlightRecorder()
_recorder_lock = threading.Lock()


def get_recorder() -> FlightRecorder:
    """The process-wide default recorder."""
    return _recorder


def set_recorder(recorder: FlightRecorder) -> FlightRecorder:
    """Swap the process default; returns the previous one.

    :class:`~repro.serving.service.QoEService` installs its configured
    recorder here at ``start()`` so deep modules (DLQ, batcher, model
    manager, fault injector) record into the service's ring without
    constructor plumbing — mirroring :func:`repro.obs.get_registry`.
    """
    global _recorder
    with _recorder_lock:
        previous, _recorder = _recorder, recorder
    return previous
