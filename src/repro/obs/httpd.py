"""Live Prometheus scrape endpoint over stdlib ``http.server``.

``--metrics-out`` writes one JSON snapshot when a run *ends*; a serving
process needs its telemetry observable *while it runs*.  This module
exposes the existing text exposition (:mod:`repro.obs.exposition`) on a
daemon-threaded HTTP server:

* ``GET /metrics`` (or ``/``) → the registry in Prometheus text format
* anything else → 404

Dependency-free (``http.server`` + ``threading``), bound to localhost
by default, and cheap: rendering happens per scrape, nothing is pushed.
Port ``0`` binds an ephemeral port — read it back from
:attr:`MetricsServer.port`.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from .exposition import render_prometheus
from .logs import get_logger
from .registry import MetricsRegistry

__all__ = ["MetricsServer", "start_metrics_server"]

_LOG = get_logger("obs.httpd")

#: Content type mandated by the text exposition format, version 0.0.4.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _Handler(BaseHTTPRequestHandler):
    # The registry to render is attached to the *server* instance so
    # one handler class serves any number of servers.

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        if self.path not in ("/", "/metrics"):
            self.send_error(404, "only /metrics is served here")
            return
        body = render_prometheus(self.server.registry).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:
        # Route scrape logs through the structured logger at DEBUG
        # instead of stderr spam.
        _LOG.debug("scrape", client=self.address_string(), line=format % args)


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    registry: Optional[MetricsRegistry] = None


class MetricsServer:
    """A running metrics endpoint; close it with :meth:`close`.

    Usable as a context manager::

        with start_metrics_server(port=0) as server:
            print(server.url)  # http://127.0.0.1:<ephemeral>/metrics
    """

    def __init__(
        self,
        port: int = 0,
        host: str = "127.0.0.1",
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self._httpd = _Server((host, port), _Handler)
        self._httpd.registry = registry
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-httpd",
            daemon=True,
        )
        self._thread.start()
        _LOG.info("metrics_server_started", url=self.url)

    @property
    def port(self) -> int:
        """The actually-bound port (resolves port 0)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host = self._httpd.server_address[0]
        return f"http://{host}:{self.port}/metrics"

    def close(self) -> None:
        """Stop serving and release the port (idempotent)."""
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def start_metrics_server(
    port: int = 0,
    host: str = "127.0.0.1",
    registry: Optional[MetricsRegistry] = None,
) -> MetricsServer:
    """Start serving the (default) registry; returns the live server."""
    return MetricsServer(port=port, host=host, registry=registry)
