"""Live Prometheus scrape endpoint over stdlib ``http.server``.

``--metrics-out`` writes one JSON snapshot when a run *ends*; a serving
process needs its telemetry observable *while it runs*.  This module
exposes the existing text exposition (:mod:`repro.obs.exposition`) on a
daemon-threaded HTTP server:

* ``GET /metrics`` (or ``/``) → the registry in Prometheus text format
* ``GET /health`` → JSON from the attached health provider (a callable
  returning a dict, typically ``QoEService.health``); 404 when none
* anything else → 404

Rendering snapshots the registry first and formats outside the metric
locks, so a slow scrape client never holds up instrumented hot paths.

Dependency-free (``http.server`` + ``threading``), bound to localhost
by default, and cheap: rendering happens per scrape, nothing is pushed.
Port ``0`` binds an ephemeral port — read it back from
:attr:`MetricsServer.port`.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional

from .exposition import render_prometheus
from .logs import get_logger
from .registry import MetricsRegistry

__all__ = ["MetricsServer", "start_metrics_server"]

_LOG = get_logger("obs.httpd")

#: Content type mandated by the text exposition format, version 0.0.4.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _Handler(BaseHTTPRequestHandler):
    # The registry to render is attached to the *server* instance so
    # one handler class serves any number of servers.

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        if self.path == "/health":
            provider = self.server.health_provider
            if provider is None:
                self.send_error(404, "no health provider attached")
                return
            try:
                payload = provider()
            except Exception as exc:  # pragma: no cover - defensive
                _LOG.warning("health_provider_failed", error=repr(exc))
                self._respond(
                    json.dumps({"error": repr(exc)}).encode("utf-8"),
                    "application/json",
                    status=500,
                )
                return
            self._respond(
                json.dumps(payload, default=str).encode("utf-8"),
                "application/json",
            )
            return
        if self.path not in ("/", "/metrics"):
            self.send_error(404, "only /metrics and /health are served here")
            return
        body = render_prometheus(self.server.registry).encode("utf-8")
        self._respond(body, CONTENT_TYPE)

    def _respond(
        self, body: bytes, content_type: str, status: int = 200
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:
        # Route scrape logs through the structured logger at DEBUG
        # instead of stderr spam.
        _LOG.debug("scrape", client=self.address_string(), line=format % args)


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    registry: Optional[MetricsRegistry] = None
    health_provider: Optional[Callable[[], Dict]] = None


class MetricsServer:
    """A running metrics endpoint; close it with :meth:`close`.

    Usable as a context manager::

        with start_metrics_server(port=0) as server:
            print(server.url)  # http://127.0.0.1:<ephemeral>/metrics
    """

    def __init__(
        self,
        port: int = 0,
        host: str = "127.0.0.1",
        registry: Optional[MetricsRegistry] = None,
        health: Optional[Callable[[], Dict]] = None,
    ) -> None:
        self._httpd = _Server((host, port), _Handler)
        self._httpd.registry = registry
        self._httpd.health_provider = health
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-httpd",
            daemon=True,
        )
        self._thread.start()
        _LOG.info("metrics_server_started", url=self.url)

    @property
    def port(self) -> int:
        """The actually-bound port (resolves port 0)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host = self._httpd.server_address[0]
        return f"http://{host}:{self.port}/metrics"

    def close(self) -> None:
        """Stop serving and release the port (idempotent)."""
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def start_metrics_server(
    port: int = 0,
    host: str = "127.0.0.1",
    registry: Optional[MetricsRegistry] = None,
    health: Optional[Callable[[], Dict]] = None,
) -> MetricsServer:
    """Start serving the (default) registry; returns the live server.

    ``health`` is an optional zero-argument callable returning a dict
    (e.g. a bound ``QoEService.health``); when given, ``GET /health``
    serves its JSON next to ``/metrics``.
    """
    return MetricsServer(port=port, host=host, registry=registry, health=health)
