"""Structured key=value event logging on stdlib ``logging``.

Events are a short snake_case name plus keyword fields, rendered as
``ts=... level=... logger=... event=... key=value ...`` — grep-able
with no parser, and machine-splittable on spaces outside quotes.

Nothing is configured implicitly: importing this module attaches no
handlers, so library users keep full control of their logging tree.
``configure_logging("DEBUG")`` (or the CLI's ``--log-level``) installs
one stream handler on the ``repro`` root logger.
"""

from __future__ import annotations

import logging
from typing import IO, Optional

__all__ = ["StructuredLogger", "get_logger", "configure_logging"]

_ROOT_LOGGER_NAME = "repro"


def _format_value(value: object) -> str:
    if isinstance(value, float):
        text = f"{value:.6g}"
    elif isinstance(value, bool) or value is None:
        text = str(value).lower()
    else:
        text = str(value)
    if " " in text or '"' in text or "=" in text:
        text = '"' + text.replace('"', '\\"') + '"'
    return text


def format_event(event: str, fields: dict) -> str:
    parts = [f"event={_format_value(event)}"]
    parts.extend(f"{key}={_format_value(val)}" for key, val in fields.items())
    return " ".join(parts)


class StructuredLogger:
    """Thin key=value façade over one stdlib logger."""

    def __init__(self, logger: logging.Logger) -> None:
        self._logger = logger

    @property
    def stdlib(self) -> logging.Logger:
        return self._logger

    def _log(self, level: int, event: str, fields: dict) -> None:
        if self._logger.isEnabledFor(level):
            self._logger.log(level, format_event(event, fields))

    def debug(self, event: str, **fields: object) -> None:
        self._log(logging.DEBUG, event, fields)

    def info(self, event: str, **fields: object) -> None:
        self._log(logging.INFO, event, fields)

    def warning(self, event: str, **fields: object) -> None:
        self._log(logging.WARNING, event, fields)

    def error(self, event: str, **fields: object) -> None:
        self._log(logging.ERROR, event, fields)

    def exception(self, event: str, **fields: object) -> None:
        """Like :meth:`error` but appends the active traceback."""
        if self._logger.isEnabledFor(logging.ERROR):
            self._logger.error(format_event(event, fields), exc_info=True)


def get_logger(name: str = "") -> StructuredLogger:
    """A structured logger under the ``repro`` logging namespace.

    ``get_logger("realtime.monitor")`` logs as ``repro.realtime.monitor``.
    """
    full = f"{_ROOT_LOGGER_NAME}.{name}" if name else _ROOT_LOGGER_NAME
    return StructuredLogger(logging.getLogger(full))


class _KeyValueFormatter(logging.Formatter):
    def format(self, record: logging.LogRecord) -> str:
        head = (
            f"ts={self.formatTime(record, '%Y-%m-%dT%H:%M:%S')}"
            f" level={record.levelname.lower()}"
            f" logger={record.name}"
        )
        message = record.getMessage()
        if record.exc_info:
            exc = self.formatException(record.exc_info).replace("\n", " | ")
            exc = exc.replace('"', '\\"')
            message += f' exc="{exc}"'
        return f"{head} {message}"


def configure_logging(
    level: str = "INFO", stream: Optional[IO[str]] = None
) -> logging.Logger:
    """Install one key=value stream handler on the ``repro`` logger.

    Idempotent: calling it again replaces the previously installed
    handler instead of stacking a second one.
    """
    numeric = logging.getLevelName(str(level).upper())
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level {level!r}")
    root = logging.getLogger(_ROOT_LOGGER_NAME)
    root.setLevel(numeric)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_obs", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream) if stream else logging.StreamHandler()
    handler.setFormatter(_KeyValueFormatter())
    handler._repro_obs = True
    root.addHandler(handler)
    # Keep records from also flowing into the (often unconfigured)
    # stdlib root logger, which would double-print them.
    root.propagate = False
    return root
