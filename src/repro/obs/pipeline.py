"""Per-record trace propagation through the serving pipeline.

The serving path (``submit → queue → shard dequeue → validate →
tracker → micro-batch → diagnose``) was observable only in aggregate:
queue depths, entry counters, one drain histogram.  None of it could
answer the operator's actual question — *where did this diagnosis
spend its 40 ms?*  This module adds the per-record layer:

``TraceContext``
    A tiny per-entry stamp (trace id deterministic from
    subscriber + submit sequence, monotonic per-stage timestamps)
    attached to the entry at ``submit`` and carried — by object
    attribute, so queue items and shard code keep their shapes — all
    the way to the diagnosis that closes the session.
``PipelineTelemetry``
    Owns the staged latency histograms
    (``repro_serving_stage_seconds{stage=...}``), the end-to-end
    histogram (``repro_serving_e2e_seconds``) and a bounded pool of
    *exemplar* traces: every ``sample_every``-th trace is retained in
    full as a span tree, so ``health()`` and postmortems can show a
    concrete worked example next to the distributions.
``ShardTelemetry``
    The per-shard recording surface.  Stage durations are buffered in
    plain lists owned by the shard thread and flushed into the
    histograms with :meth:`~repro.obs.registry.Histogram.observe_many`
    at batch boundaries — one lock per stage per batch instead of
    several per record, which is what keeps full telemetry inside the
    serving benchmark's 5% overhead gate.

Stage semantics (see the ARCHITECTURE "Operational telemetry" table):

=============  =====================================================
``submit``     ``QoEService.submit`` entry → record enqueued
``queue_wait`` enqueued → shard worker dequeues (includes any
               blocked-put time under the ``block`` policy)
``validate``   dequeue → field + monotonicity validation done
``track``      validation → session tracker update done
``batch_wait`` session closed → its diagnosis batch starts
``diagnose``   one batch's feature build + forest inference + alarm
               evaluation (alarm emission is part of the monitor's
               diagnose call, so it is folded into this stage)
``alarm_sweep``the shutdown-time final alarm sweep, per shard
=============  =====================================================

End-to-end (``repro_serving_e2e_seconds``) is measured per *closed
session*: from the submit of the entry that closed it to the moment
its diagnosis batch completed — the operational "diagnosis freshness"
number.  A record that closes several sessions stamps them all with
its own context.

Determinism: nothing here touches the data path — contexts ride as an
extra attribute, timestamps come from ``time.perf_counter`` and feed
only histograms — so sharded diagnosis/alarm multisets remain
bit-identical to the serial monitor with telemetry enabled.
"""

from __future__ import annotations

import math
import threading
import zlib
from collections import deque
from typing import Dict, List, Optional, Tuple

from .registry import MetricsRegistry, get_registry


def _finite(value: float) -> float:
    """JSON/health payloads have no Infinity; clamp empty-histogram sentinels."""
    return value if math.isfinite(value) else 0.0

__all__ = [
    "STAGES",
    "LATENCY_BUCKETS",
    "TraceContext",
    "PipelineTelemetry",
    "ShardTelemetry",
]

#: Pipeline stages, in record order.
STAGES: Tuple[str, ...] = (
    "submit",
    "queue_wait",
    "validate",
    "track",
    "batch_wait",
    "diagnose",
    "alarm_sweep",
)

#: Sub-millisecond-capable buckets — pipeline stages run far below the
#: experiment-scale defaults.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

#: Buffered stage observations per shard before a safety-valve flush
#: (normal flushes happen at batch boundaries, well before this).
_FLUSH_HIGH_WATER = 512


class TraceContext:
    """Per-record trace stamp riding through the pipeline.

    Deliberately minimal: subscriber + submit sequence (from which the
    trace id derives deterministically), a sampled flag, and the
    monotonic timestamps of the stage boundaries other stages need
    later (submit for e2e, enqueue for queue wait, tracked for batch
    wait) — intra-shard boundaries live in locals on the hot path.
    The ``stages`` dict is populated only for sampled contexts —
    unsampled records pay for three float slots and nothing else.
    """

    __slots__ = (
        "subscriber",
        "seq",
        "sampled",
        "t_submit",
        "t_enqueued",
        "t_tracked",
        "stages",
    )

    def __init__(self, subscriber: str, seq: int, sampled: bool) -> None:
        self.subscriber = subscriber
        self.seq = seq
        self.sampled = sampled
        self.t_submit = 0.0
        self.t_enqueued = 0.0
        self.t_tracked = 0.0
        self.stages: Optional[Dict[str, float]] = {} if sampled else None

    @property
    def trace_id(self) -> str:
        """Deterministic id: CRC32 of the subscriber + submit sequence."""
        return (
            f"{zlib.crc32(self.subscriber.encode('utf-8')):08x}"
            f"-{self.seq:08d}"
        )


class ShardTelemetry:
    """One shard's recording surface: buffered stage durations.

    Owned and written by exactly one shard thread; the buffers are
    plain lists, flushed into the shared histograms under one lock per
    stage at batch boundaries (:meth:`flush`).  Restart-safe: the
    replacement thread inherits the same object, and a flush of a
    partially filled buffer is always valid.

    The per-entry stages (``queue_wait``, ``validate``, ``track``) are
    also exposed as direct list attributes (``buf_queue_wait``, ...)
    aliasing the same buffers: the shard's hot loop appends to them
    directly — one attribute load and one ``list.append`` per stage —
    because at tens of thousands of entries per second even a method
    call per stage is measurable against the <5% overhead gate.
    ``flush`` therefore clears the lists *in place*, preserving the
    aliases.
    """

    __slots__ = (
        "_parent",
        "index",
        "_buffers",
        "buf_queue_wait",
        "buf_validate",
        "buf_track",
    )

    def __init__(self, parent: "PipelineTelemetry", index: int) -> None:
        self._parent = parent
        self.index = index
        self._buffers: Dict[str, List[float]] = {
            stage: [] for stage in STAGES
        }
        self._buffers["e2e"] = []
        self.buf_queue_wait = self._buffers["queue_wait"]
        self.buf_validate = self._buffers["validate"]
        self.buf_track = self._buffers["track"]

    def note(
        self,
        stage: str,
        duration_s: float,
        ctx: Optional[TraceContext] = None,
    ) -> None:
        """Buffer one stage duration (and mirror it on sampled traces)."""
        buffer = self._buffers[stage]
        buffer.append(duration_s)
        if ctx is not None and ctx.stages is not None:
            ctx.stages[stage] = ctx.stages.get(stage, 0.0) + duration_s
        if len(buffer) >= _FLUSH_HIGH_WATER:
            self.flush()

    def complete(self, ctx: TraceContext, t_done: float) -> None:
        """A session diagnosis finished for the record behind ``ctx``."""
        self._buffers["e2e"].append(t_done - ctx.t_submit)
        if ctx.stages is not None:
            self._parent._add_exemplar(ctx, t_done - ctx.t_submit, self.index)

    def flush(self) -> None:
        """Drain the buffers into the histograms (one lock per stage).

        Clears each buffer in place so the ``buf_*`` hot-path aliases
        stay valid; ``observe_many`` has fully consumed the values
        before the clear (same thread, synchronous call).
        """
        for stage, values in self._buffers.items():
            if values:
                self._parent._observe_stage(stage, values)
                values.clear()


class PipelineTelemetry:
    """Staged latency histograms + exemplar traces for one service.

    Parameters
    ----------
    registry:
        Metrics registry to declare into (process default when omitted).
    sample_every:
        Every Nth submitted record is retained in full as an exemplar
        span tree (1 = every record; useful in tests).
    max_exemplars:
        Exemplar pool bound (oldest evicted).
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        sample_every: int = 128,
        max_exemplars: int = 32,
    ) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        reg = registry if registry is not None else get_registry()
        self.sample_every = sample_every
        self._stage_family = reg.histogram(
            "repro_serving_stage_seconds",
            "Per-record latency of each serving pipeline stage.",
            labelnames=("stage",),
            buckets=LATENCY_BUCKETS,
        )
        self._e2e = reg.histogram(
            "repro_serving_e2e_seconds",
            "Submit-to-diagnosis latency of closed sessions.",
            buckets=LATENCY_BUCKETS,
        )
        self._stage_children = {
            stage: self._stage_family.labels(stage=stage) for stage in STAGES
        }
        self._exemplar_lock = threading.Lock()
        self._exemplars: deque = deque(maxlen=max_exemplars)
        self._sampled_total = 0
        # Service-side submit-stage buffer (its own lock: submit may be
        # driven by any thread, unlike the shard-owned buffers).
        self._submit_lock = threading.Lock()
        self._submit_buf: List[float] = []

    # ------------------------------------------------------------------
    # Service-side API
    # ------------------------------------------------------------------

    def trace_context(self, subscriber: str, seq: int) -> TraceContext:
        """A fresh context for submit number ``seq`` (deterministic id)."""
        return TraceContext(
            subscriber, seq, sampled=seq % self.sample_every == 0
        )

    def note_submit(self, ctx: TraceContext) -> None:
        """Record the submit stage (``t_submit`` → ``t_enqueued``)."""
        duration = ctx.t_enqueued - ctx.t_submit
        if ctx.stages is not None:
            ctx.stages["submit"] = duration
        with self._submit_lock:
            self._submit_buf.append(duration)
            if len(self._submit_buf) >= _FLUSH_HIGH_WATER:
                buf, self._submit_buf = self._submit_buf, []
            else:
                return
        self._stage_children["submit"].observe_many(buf)

    def for_shard(self, index: int) -> ShardTelemetry:
        return ShardTelemetry(self, index)

    def flush(self) -> None:
        """Flush the service-side submit buffer (drain path)."""
        with self._submit_lock:
            buf, self._submit_buf = self._submit_buf, []
        if buf:
            self._stage_children["submit"].observe_many(buf)

    # ------------------------------------------------------------------
    # Shard callbacks
    # ------------------------------------------------------------------

    def _observe_stage(self, stage: str, values: List[float]) -> None:
        if stage == "e2e":
            self._e2e.observe_many(values)
        else:
            self._stage_children[stage].observe_many(values)

    def _add_exemplar(
        self, ctx: TraceContext, e2e_s: float, shard: int
    ) -> None:
        exemplar = {
            "trace_id": ctx.trace_id,
            "subscriber": ctx.subscriber,
            "seq": ctx.seq,
            "shard": shard,
            "name": "e2e",
            "duration_s": e2e_s,
            "children": [
                {"name": stage, "duration_s": ctx.stages[stage]}
                for stage in STAGES
                if ctx.stages is not None and stage in ctx.stages
            ],
        }
        with self._exemplar_lock:
            self._exemplars.append(exemplar)
            self._sampled_total += 1

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------

    @property
    def e2e_histogram(self):
        """The end-to-end histogram child (SLO engine target)."""
        return self._e2e._require_default()

    def stage_histogram(self, stage: str):
        """One stage's histogram child (SLO engine target)."""
        if stage not in self._stage_children:
            raise KeyError(
                f"unknown stage {stage!r}; stages are {STAGES}"
            )
        return self._stage_children[stage]

    def exemplars(self) -> List[dict]:
        """The retained exemplar span trees, oldest first."""
        with self._exemplar_lock:
            return list(self._exemplars)

    def stage_snapshot(self) -> Dict:
        """Latency breakdown for ``health()`` and postmortems."""
        stages = {}
        for stage, child in self._stage_children.items():
            state = child.state()
            count = state["count"]
            stages[stage] = {
                "count": count,
                "mean_s": state["sum"] / count if count else 0.0,
                "p50_s": _finite(child.quantile(0.5)),
                "p99_s": _finite(child.quantile(0.99)),
            }
        e2e = self._e2e._require_default()
        state = e2e.state()
        count = state["count"]
        return {
            "stages": stages,
            "e2e": {
                "count": count,
                "mean_s": state["sum"] / count if count else 0.0,
                "p50_s": _finite(e2e.quantile(0.5)),
                "p99_s": _finite(e2e.quantile(0.99)),
            },
            "exemplars_retained": len(self._exemplars),
            "exemplars_sampled": self._sampled_total,
            "sample_every": self.sample_every,
        }
