"""Prometheus text-exposition rendering of a metrics registry.

Produces the `text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_
(version 0.0.4): ``# HELP`` / ``# TYPE`` headers per family, one
``name{label="value"} value`` sample line per child, and the
``_bucket``/``_sum``/``_count`` triplet for histograms with cumulative
``le`` buckets ending at ``+Inf``.

Naming note: this module is deliberately called ``exposition`` and not
``prometheus`` — :mod:`repro.baselines.prometheus` already holds the
*Prometheus baseline classifier* (Aggarwal et al., HotMobile 2014)
that the paper compares against, an unrelated system that happens to
share the name.  This module is about the monitoring ecosystem;
that one is about QoE inference.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from .registry import MetricsRegistry, get_registry

__all__ = ["render_prometheus", "escape_label_value", "format_sample_line"]


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition spec."""
    return (
        value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')
    )


def _format_number(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def format_sample_line(
    name: str, labels: Dict[str, str], value: float
) -> str:
    """One ``name{labels} value`` sample line."""
    if labels:
        body = ",".join(
            f'{key}="{escape_label_value(str(val))}"'
            for key, val in labels.items()
        )
        return f"{name}{{{body}}} {_format_number(value)}"
    return f"{name} {_format_number(value)}"


def _snapshot(registry: MetricsRegistry) -> list:
    """Phase one: copy every value out from under the metric locks.

    Each child is read exactly once — histograms through
    :meth:`~repro.obs.registry.Histogram.state`, which returns the
    bucket counts, sum and count from a *single* lock acquisition, so a
    concurrent observer cannot tear the ``_bucket``/``_sum``/``_count``
    triplet.  Rendering then runs entirely lock-free, which matters for
    the httpd path: a slow scrape client must never hold up the
    serving hot loop.
    """
    snap = []
    for family in registry.collect():
        samples = []
        for labels, child in family.samples():
            if family.type == "histogram":
                samples.append((labels, child.state()))
            else:
                samples.append((labels, child.value))
        snap.append(
            (family.name, family.help, family.type, samples)
        )
    return snap


def render_prometheus(registry: Optional[MetricsRegistry] = None) -> str:
    """The whole registry in Prometheus text format (trailing newline)."""
    registry = registry if registry is not None else get_registry()
    lines = []
    for name, help, type_, samples in _snapshot(registry):
        help_text = help.replace("\\", "\\\\").replace("\n", "\\n")
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {type_}")
        for labels, value in samples:
            if type_ == "histogram":
                for bound, count in zip(value["bounds"], value["cumulative"]):
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = _format_number(bound)
                    lines.append(
                        format_sample_line(
                            f"{name}_bucket", bucket_labels, count
                        )
                    )
                lines.append(
                    format_sample_line(f"{name}_sum", labels, value["sum"])
                )
                lines.append(
                    format_sample_line(f"{name}_count", labels, value["count"])
                )
            else:
                lines.append(format_sample_line(name, labels, value))
    return "\n".join(lines) + "\n" if lines else ""
