"""Prometheus text-exposition rendering of a metrics registry.

Produces the `text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_
(version 0.0.4): ``# HELP`` / ``# TYPE`` headers per family, one
``name{label="value"} value`` sample line per child, and the
``_bucket``/``_sum``/``_count`` triplet for histograms with cumulative
``le`` buckets ending at ``+Inf``.

Naming note: this module is deliberately called ``exposition`` and not
``prometheus`` — :mod:`repro.baselines.prometheus` already holds the
*Prometheus baseline classifier* (Aggarwal et al., HotMobile 2014)
that the paper compares against, an unrelated system that happens to
share the name.  This module is about the monitoring ecosystem;
that one is about QoE inference.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from .registry import MetricsRegistry, get_registry

__all__ = ["render_prometheus", "escape_label_value", "format_sample_line"]


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition spec."""
    return (
        value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')
    )


def _format_number(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def format_sample_line(
    name: str, labels: Dict[str, str], value: float
) -> str:
    """One ``name{labels} value`` sample line."""
    if labels:
        body = ",".join(
            f'{key}="{escape_label_value(str(val))}"'
            for key, val in labels.items()
        )
        return f"{name}{{{body}}} {_format_number(value)}"
    return f"{name} {_format_number(value)}"


def render_prometheus(registry: Optional[MetricsRegistry] = None) -> str:
    """The whole registry in Prometheus text format (trailing newline)."""
    registry = registry if registry is not None else get_registry()
    lines = []
    for family in registry.collect():
        help_text = family.help.replace("\\", "\\\\").replace("\n", "\\n")
        lines.append(f"# HELP {family.name} {help_text}")
        lines.append(f"# TYPE {family.name} {family.type}")
        for labels, child in family.samples():
            if family.type == "histogram":
                cumulative = child.cumulative_counts()
                for bound, count in zip(child.bounds, cumulative):
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = _format_number(bound)
                    lines.append(
                        format_sample_line(
                            f"{family.name}_bucket", bucket_labels, count
                        )
                    )
                lines.append(
                    format_sample_line(f"{family.name}_sum", labels, child.sum)
                )
                lines.append(
                    format_sample_line(
                        f"{family.name}_count", labels, child.count
                    )
                )
            else:
                lines.append(
                    format_sample_line(family.name, labels, child.value)
                )
    return "\n".join(lines) + "\n" if lines else ""
