"""Process-wide metrics registry: counters, gauges, histograms.

Dependency-free and thread-safe.  The design mirrors the Prometheus
client-library data model — named metric *families* that fan out into
labelled children — but stays small enough to audit:

* Registration is idempotent: a module can declare its metrics at
  import time and re-imports (or a second declaration elsewhere with
  the same signature) return the existing family.  Re-declaring a name
  with a different type or label set raises.
* A family declared without label names *is* its own single child, so
  ``registry.counter("x_total", "...").inc()`` just works.
* Histograms use fixed bucket boundaries and estimate quantiles by
  linear interpolation inside the bucket, clamped to the observed
  per-bucket min/max — the standard exposition-side estimator, here
  available in-process and *exact* when a bucket holds a single value
  (e.g. observations sitting on a bucket boundary).
* Histograms additionally maintain a resettable *window* (same bucket
  layout) so the SLO engine can evaluate objectives over tumbling
  windows without touching the cumulative series.
* Registries (and their histograms) support :meth:`MetricsRegistry.merge`
  — fold another registry's counts into this one — the aggregation
  primitive per-shard (and, later, per-process) registries need to
  present one exposition surface.

Updates take one small lock per metric child; with no exporter
attached that is the entire cost, which keeps instrumented hot paths
within a few percent of their uninstrumented speed.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_right
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramWindow",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "estimate_quantile",
    "get_registry",
    "set_registry",
    "registry_state_delta",
]

#: Default histogram buckets (seconds-oriented, like the Prometheus
#: client defaults plus a long tail for experiment-scale spans).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)

_INF = float("inf")


def _validate_name(name: str) -> None:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise ValueError(
            f"invalid metric name {name!r}: use [a-zA-Z0-9_:] only"
        )
    if name[0].isdigit():
        raise ValueError(f"metric name {name!r} must not start with a digit")


class _Child:
    """One labelled time series; holds its own lock."""

    def __init__(self) -> None:
        self._lock = threading.Lock()


class Counter(_Child):
    """Monotonically increasing counter."""

    def __init__(self) -> None:
        super().__init__()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _absorb(self, other: "Counter") -> None:
        amount = other.value
        with self._lock:
            self._value += amount


class Gauge(_Child):
    """A value that can go up and down."""

    def __init__(self) -> None:
        super().__init__()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _absorb(self, other: "Gauge") -> None:
        # Sum semantics: merged gauges report the fleet total (queue
        # depths, DLQ depths add across shards/processes).
        amount = other.value
        with self._lock:
            self._value += amount


def estimate_quantile(
    bounds: Sequence[float],
    counts: Sequence[int],
    total: int,
    q: float,
    minimum: float = _INF,
    maximum: float = -_INF,
    bucket_mins: Optional[Sequence[float]] = None,
    bucket_maxes: Optional[Sequence[float]] = None,
) -> float:
    """Shared in-bucket interpolation estimator.

    ``counts`` are per-bucket (not cumulative).  When per-bucket
    min/max are supplied, interpolation happens inside the *occupied*
    range of the selected bucket — which makes the estimate exact when
    a bucket holds a single distinct value (the empty-bucket /
    boundary-observation edge case: a histogram observed only at one
    bucket boundary reports that value instead of interpolating down
    from the bucket's lower bound).
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    if total == 0:
        return float("nan")
    if minimum == maximum and math.isfinite(minimum):
        return minimum
    rank = q * total
    running = 0
    lower = -_INF
    for i, bound in enumerate(bounds):
        in_bucket = counts[i]
        if in_bucket and running + in_bucket >= rank:
            hi = min(bound, maximum)
            lo = max(lower, minimum)
            if bucket_mins is not None and math.isfinite(bucket_mins[i]):
                lo = bucket_mins[i]
            if bucket_maxes is not None and math.isfinite(bucket_maxes[i]):
                hi = bucket_maxes[i]
            if not math.isfinite(hi):
                return maximum
            if hi <= lo:
                return lo
            fraction = (rank - running) / in_bucket
            return lo + (hi - lo) * fraction
        running += in_bucket
        lower = bound
    return maximum


class HistogramWindow:
    """Frozen view of one histogram observation window.

    Produced by :meth:`Histogram.window_view`; consumed by the SLO
    engine, which needs quantiles and over-threshold fractions scoped
    to an evaluation window rather than the process lifetime.
    """

    __slots__ = ("bounds", "counts", "sum", "count", "min", "max")

    def __init__(
        self,
        bounds: Tuple[float, ...],
        counts: List[int],
        sum_: float,
        count: int,
        min_: float,
        max_: float,
    ) -> None:
        self.bounds = bounds
        self.counts = counts
        self.sum = sum_
        self.count = count
        self.min = min_
        self.max = max_

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        return estimate_quantile(
            self.bounds, self.counts, self.count, q, self.min, self.max
        )

    def fraction_over(self, threshold: float) -> float:
        """Estimated fraction of window observations above ``threshold``.

        The SLO engine's burn-rate input: a latency objective
        ``p99 <= t`` allows 1% of observations over ``t``; this reports
        how many actually were (interpolating inside the bucket that
        straddles ``t``).
        """
        if self.count == 0:
            return 0.0
        if threshold >= self.max:
            return 0.0
        if threshold < self.min:
            return 1.0
        below = 0.0
        lower = -_INF
        for i, bound in enumerate(self.bounds):
            in_bucket = self.counts[i]
            if threshold > bound:
                below += in_bucket
            elif in_bucket:
                hi = min(bound, self.max)
                lo = max(lower, self.min)
                if hi > lo and math.isfinite(hi):
                    below += in_bucket * min(
                        1.0, max(0.0, (threshold - lo) / (hi - lo))
                    )
                break
            else:
                break
            lower = bound
        return max(0.0, min(1.0, 1.0 - below / self.count))


class Histogram(_Child):
    """Fixed-bucket histogram with interpolated quantile estimation.

    Besides the cumulative series it maintains a *window* over the same
    buckets: :meth:`window_view` snapshots it, :meth:`reset_window`
    starts a fresh one.  The SLO engine evaluates objectives over these
    windows; the cumulative series never resets.
    """

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        super().__init__()
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(math.isnan(b) for b in bounds):
            raise ValueError("bucket bounds must not be NaN")
        if len(set(bounds)) != len(bounds):
            raise ValueError("bucket bounds must be distinct")
        if bounds[-1] != _INF:
            bounds.append(_INF)
        self.bounds: Tuple[float, ...] = tuple(bounds)
        n = len(self.bounds)
        self._counts = [0] * n
        self._sum = 0.0
        self._count = 0
        self._min = _INF
        self._max = -_INF
        #: Observed value range *per bucket* — what makes quantile
        #: estimates exact for point-mass buckets (boundary values).
        self._bucket_min = [_INF] * n
        self._bucket_max = [-_INF] * n
        # Window twin (reset by reset_window; fed alongside cumulative).
        self._win_counts = [0] * n
        self._win_sum = 0.0
        self._win_count = 0
        self._win_min = _INF
        self._win_max = -_INF

    def _observe_locked(self, value: float) -> None:
        # Linear scan: bucket lists are short and almost every
        # observation lands early for latency-shaped data.
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self._counts[i] += 1
                self._win_counts[i] += 1
                if value < self._bucket_min[i]:
                    self._bucket_min[i] = value
                if value > self._bucket_max[i]:
                    self._bucket_max[i] = value
                break
        self._sum += value
        self._count += 1
        self._win_sum += value
        self._win_count += 1
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if value < self._win_min:
            self._win_min = value
        if value > self._win_max:
            self._win_max = value

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._observe_locked(value)

    def observe_many(self, values: Iterable[float]) -> None:
        """Record a batch of observations under one lock acquisition.

        The serving shards buffer per-record stage latencies and flush
        them at batch boundaries.  The batch is sorted once (C speed)
        and bucketed with one ``bisect_right`` per bound instead of a
        Python bucket scan per value — at ~4 stage observations per
        served entry the per-value path is what the <5% telemetry
        overhead budget is spent on.
        """
        ordered = sorted(map(float, values))
        if not ordered:
            return
        n = len(ordered)
        batch_sum = sum(ordered)
        lowest, highest = ordered[0], ordered[-1]
        with self._lock:
            lo = 0
            for i, bound in enumerate(self.bounds):
                hi = bisect_right(ordered, bound, lo)
                if hi > lo:
                    span = hi - lo
                    self._counts[i] += span
                    self._win_counts[i] += span
                    if ordered[lo] < self._bucket_min[i]:
                        self._bucket_min[i] = ordered[lo]
                    if ordered[hi - 1] > self._bucket_max[i]:
                        self._bucket_max[i] = ordered[hi - 1]
                    lo = hi
                    if lo == n:
                        break
            self._sum += batch_sum
            self._count += n
            self._win_sum += batch_sum
            self._win_count += n
            if lowest < self._min:
                self._min = lowest
            if highest > self._max:
                self._max = highest
            if lowest < self._win_min:
                self._win_min = lowest
            if highest > self._win_max:
                self._win_max = highest

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def cumulative_counts(self) -> List[int]:
        """Per-bucket cumulative counts (Prometheus ``le`` semantics)."""
        with self._lock:
            out, running = [], 0
            for c in self._counts:
                running += c
                out.append(running)
            return out

    def state(self) -> Dict:
        """Every exposition-relevant field under a single lock.

        Renderers snapshot first and format outside the lock; reading
        fields one property at a time can tear a histogram (bucket
        counts from one instant, ``count`` from another).
        """
        with self._lock:
            cumulative, running = [], 0
            for c in self._counts:
                running += c
                cumulative.append(running)
            return {
                "bounds": self.bounds,
                "counts": list(self._counts),
                "cumulative": cumulative,
                "sum": self._sum,
                "count": self._count,
                "min": self._min,
                "max": self._max,
                "bucket_min": list(self._bucket_min),
                "bucket_max": list(self._bucket_max),
            }

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by in-bucket interpolation."""
        with self._lock:
            return estimate_quantile(
                self.bounds,
                self._counts,
                self._count,
                q,
                self._min,
                self._max,
                self._bucket_min,
                self._bucket_max,
            )

    # ------------------------------------------------------------------
    # Window (SLO engine support)
    # ------------------------------------------------------------------

    def window_view(self) -> HistogramWindow:
        """Snapshot of observations since the last :meth:`reset_window`."""
        with self._lock:
            return HistogramWindow(
                self.bounds,
                list(self._win_counts),
                self._win_sum,
                self._win_count,
                self._win_min,
                self._win_max,
            )

    def reset_window(self) -> HistogramWindow:
        """Close the current window (returned) and start a fresh one.

        The cumulative series is untouched — windows exist so SLO
        objectives can be judged over bounded spans while Prometheus
        keeps seeing monotonic buckets.
        """
        with self._lock:
            closed = HistogramWindow(
                self.bounds,
                list(self._win_counts),
                self._win_sum,
                self._win_count,
                self._win_min,
                self._win_max,
            )
            self._win_counts = [0] * len(self.bounds)
            self._win_sum = 0.0
            self._win_count = 0
            self._win_min = _INF
            self._win_max = -_INF
            return closed

    # ------------------------------------------------------------------
    # Merge support
    # ------------------------------------------------------------------

    def _absorb(self, other: "Histogram") -> None:
        """Fold another histogram's counts into this one (registry merge)."""
        with other._lock:
            state = {
                "bounds": other.bounds,
                "counts": list(other._counts),
                "sum": other._sum,
                "count": other._count,
                "min": other._min,
                "max": other._max,
                "bucket_min": list(other._bucket_min),
                "bucket_max": list(other._bucket_max),
            }
            win_counts = list(other._win_counts)
            win_sum, win_count = other._win_sum, other._win_count
            win_min, win_max = other._win_min, other._win_max
        if state["bounds"] != self.bounds:
            raise ValueError(
                "cannot merge histograms with different bucket bounds"
            )
        with self._lock:
            for i, c in enumerate(state["counts"]):
                self._counts[i] += c
                self._win_counts[i] += win_counts[i]
                if state["bucket_min"][i] < self._bucket_min[i]:
                    self._bucket_min[i] = state["bucket_min"][i]
                if state["bucket_max"][i] > self._bucket_max[i]:
                    self._bucket_max[i] = state["bucket_max"][i]
            self._sum += state["sum"]
            self._count += state["count"]
            self._min = min(self._min, state["min"])
            self._max = max(self._max, state["max"])
            self._win_sum += win_sum
            self._win_count += win_count
            self._win_min = min(self._win_min, win_min)
            self._win_max = max(self._win_max, win_max)


_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """A named metric with a label schema, fanning out into children."""

    def __init__(
        self,
        name: str,
        help: str,
        type: str,
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        _validate_name(name)
        if type not in _TYPES:
            raise ValueError(f"unknown metric type {type!r}")
        for label in labelnames:
            if not label or not all(c.isalnum() or c == "_" for c in label):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help = help
        self.type = type
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        self._buckets = tuple(buckets) if buckets is not None else None
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], _Child] = {}
        if not self.labelnames:
            self._default = self._make_child()
            self._children[()] = self._default
        else:
            self._default = None

    def _make_child(self) -> _Child:
        if self.type == "histogram":
            return Histogram(self._buckets or DEFAULT_BUCKETS)
        return _TYPES[self.type]()

    def labels(self, **labels: object):
        """The child for one label combination (created on first use)."""
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._make_child())
        return child

    def samples(self) -> List[Tuple[Dict[str, str], _Child]]:
        """(labels, child) pairs, in creation order."""
        with self._lock:
            items = list(self._children.items())
        return [
            (dict(zip(self.labelnames, key)), child) for key, child in items
        ]

    # Unlabelled families delegate to their single child so call sites
    # read naturally: registry.counter("x_total", "...").inc().

    def _require_default(self) -> _Child:
        if self._default is None:
            raise ValueError(
                f"metric {self.name!r} has labels {self.labelnames}; "
                "call .labels(...) first"
            )
        return self._default

    def inc(self, amount: float = 1.0) -> None:
        self._require_default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._require_default().dec(amount)

    def set(self, value: float) -> None:
        self._require_default().set(value)

    def observe(self, value: float) -> None:
        self._require_default().observe(value)

    def observe_many(self, values: Iterable[float]) -> None:
        self._require_default().observe_many(values)

    def state(self) -> Dict:
        return self._require_default().state()

    def window_view(self) -> "HistogramWindow":
        return self._require_default().window_view()

    def reset_window(self) -> "HistogramWindow":
        return self._require_default().reset_window()

    @property
    def value(self) -> float:
        return self._require_default().value

    def quantile(self, q: float) -> float:
        return self._require_default().quantile(q)

    @property
    def count(self) -> int:
        return self._require_default().count

    @property
    def sum(self) -> float:
        return self._require_default().sum


class MetricsRegistry:
    """Holds metric families; declaration is idempotent."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, MetricFamily] = {}

    def _declare(
        self,
        name: str,
        help: str,
        type: str,
        labelnames: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if existing.type != type or existing.labelnames != tuple(
                    labelnames
                ):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.type}{existing.labelnames}, cannot "
                        f"redeclare as {type}{tuple(labelnames)}"
                    )
                return existing
            family = MetricFamily(name, help, type, labelnames, buckets)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._declare(name, help, "counter", labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._declare(name, help, "gauge", labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        return self._declare(name, help, "histogram", labelnames, buckets)

    def get(self, name: str) -> Optional[MetricFamily]:
        with self._lock:
            return self._families.get(name)

    def collect(self) -> Iterable[MetricFamily]:
        """Families in registration order."""
        with self._lock:
            return list(self._families.values())

    def reset(self) -> None:
        """Zero every child (families and label sets survive)."""
        for family in self.collect():
            with family._lock:
                for key, child in list(family._children.items()):
                    family._children[key] = family._make_child()
            if family._default is not None:
                family._default = family._children[()]

    def to_state(self) -> Dict:
        """Serialise every family and child to a plain-data dict.

        The shard-process transport: a state dict pickles compactly,
        crosses a pipe, and round-trips through :meth:`from_state` into
        a registry that :meth:`merge` folds like any other.  Pair with
        :func:`registry_state_delta` to ship increments on a heartbeat
        cadence without double counting.
        """
        families = []
        for family in self.collect():
            with family._lock:
                items = list(family._children.items())
            families.append(
                {
                    "name": family.name,
                    "help": family.help,
                    "type": family.type,
                    "labelnames": list(family.labelnames),
                    "buckets": (
                        list(family._buckets)
                        if family._buckets is not None
                        else None
                    ),
                    "children": [
                        {
                            "labels": list(key),
                            "data": _child_payload(family.type, child),
                        }
                        for key, child in items
                    ],
                }
            )
        return {"families": families}

    @classmethod
    def from_state(cls, state: Dict) -> "MetricsRegistry":
        """Rebuild a registry from a :meth:`to_state` (or delta) dict."""
        registry = cls()
        for fam in state.get("families", ()):
            family = registry._declare(
                fam["name"],
                fam["help"],
                fam["type"],
                tuple(fam["labelnames"]),
                tuple(fam["buckets"]) if fam["buckets"] is not None else None,
            )
            for entry in fam["children"]:
                labels = dict(zip(family.labelnames, entry["labels"]))
                child = family.labels(**labels)
                data = entry["data"]
                if fam["type"] == "histogram":
                    with child._lock:
                        child._counts = list(data["counts"])
                        child._sum = data["sum"]
                        child._count = data["count"]
                        child._min = data["min"]
                        child._max = data["max"]
                        child._bucket_min = list(data["bucket_min"])
                        child._bucket_max = list(data["bucket_max"])
                        child._win_counts = list(data["win_counts"])
                        child._win_sum = data["win_sum"]
                        child._win_count = data["win_count"]
                        child._win_min = data["win_min"]
                        child._win_max = data["win_max"]
                else:
                    with child._lock:
                        child._value = float(data["value"])
        return registry

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's series into this one.

        Families missing here are declared with the other registry's
        schema; matching children are summed (counters, gauges — gauges
        merge as fleet totals) or bucket-folded (histograms, windows
        included).  Mismatched types/labels raise via ``_declare``;
        mismatched histogram bounds raise from the child fold.  This is
        the aggregation primitive for per-shard and, next, per-process
        registries presenting one exposition surface.
        """
        for family in other.collect():
            mine = self._declare(
                family.name,
                family.help,
                family.type,
                family.labelnames,
                family._buckets,
            )
            for labels, child in family.samples():
                mine.labels(**labels)._absorb(child)


def _child_payload(type: str, child: _Child) -> Dict:
    """Plain-data snapshot of one child, suitable for pickling."""
    if type == "histogram":
        with child._lock:
            return {
                "counts": list(child._counts),
                "sum": child._sum,
                "count": child._count,
                "min": child._min,
                "max": child._max,
                "bucket_min": list(child._bucket_min),
                "bucket_max": list(child._bucket_max),
                "win_counts": list(child._win_counts),
                "win_sum": child._win_sum,
                "win_count": child._win_count,
                "win_min": child._win_min,
                "win_max": child._win_max,
            }
    return {"value": child.value}


def registry_state_delta(current: Dict, previous: Optional[Dict]) -> Dict:
    """Difference between two :meth:`MetricsRegistry.to_state` snapshots.

    The shard-process heartbeat ships *increments* so the parent can
    ``merge`` them repeatedly without double counting: counter/gauge
    values, histogram bucket counts, sums and counts (window twins
    included) are subtracted, while min/max and per-bucket extrema pass
    through as the current cumulative values — folding those with
    min/max is idempotent, so re-merging them is harmless.  Children
    absent from ``previous`` ship whole.  ``previous=None`` returns
    ``current`` unchanged (the first heartbeat).
    """
    if previous is None:
        return current
    prior: Dict[Tuple[str, Tuple[str, ...]], Dict] = {}
    for fam in previous.get("families", ()):
        for entry in fam["children"]:
            prior[(fam["name"], tuple(entry["labels"]))] = entry["data"]
    families = []
    for fam in current.get("families", ()):
        children = []
        for entry in fam["children"]:
            data = entry["data"]
            prev = prior.get((fam["name"], tuple(entry["labels"])))
            if prev is None:
                delta = dict(data)
            elif fam["type"] == "histogram":
                delta = {
                    "counts": [
                        c - p for c, p in zip(data["counts"], prev["counts"])
                    ],
                    "sum": data["sum"] - prev["sum"],
                    "count": data["count"] - prev["count"],
                    "min": data["min"],
                    "max": data["max"],
                    "bucket_min": list(data["bucket_min"]),
                    "bucket_max": list(data["bucket_max"]),
                    "win_counts": [
                        c - p
                        for c, p in zip(
                            data["win_counts"], prev["win_counts"]
                        )
                    ],
                    "win_sum": data["win_sum"] - prev["win_sum"],
                    "win_count": data["win_count"] - prev["win_count"],
                    "win_min": data["win_min"],
                    "win_max": data["win_max"],
                }
            else:
                delta = {"value": data["value"] - prev["value"]}
            children.append({"labels": entry["labels"], "data": delta})
        families.append({**{k: v for k, v in fam.items() if k != "children"},
                         "children": children})
    return {"families": families}


_registry = MetricsRegistry()
_registry_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process default (tests); returns the previous one.

    Note: modules bind their metric families at import time, so a swap
    only affects families declared afterwards.  Prefer deltas or
    :meth:`MetricsRegistry.reset` when asserting on instrumented code.
    """
    global _registry
    with _registry_lock:
        previous, _registry = _registry, registry
    return previous
