"""Process-wide metrics registry: counters, gauges, histograms.

Dependency-free and thread-safe.  The design mirrors the Prometheus
client-library data model — named metric *families* that fan out into
labelled children — but stays small enough to audit:

* Registration is idempotent: a module can declare its metrics at
  import time and re-imports (or a second declaration elsewhere with
  the same signature) return the existing family.  Re-declaring a name
  with a different type or label set raises.
* A family declared without label names *is* its own single child, so
  ``registry.counter("x_total", "...").inc()`` just works.
* Histograms use fixed bucket boundaries and estimate quantiles by
  linear interpolation inside the bucket, clamped to the observed
  min/max — the standard exposition-side estimator, here available
  in-process.

Updates take one small lock per metric child; with no exporter
attached that is the entire cost, which keeps instrumented hot paths
within a few percent of their uninstrumented speed.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "get_registry",
    "set_registry",
]

#: Default histogram buckets (seconds-oriented, like the Prometheus
#: client defaults plus a long tail for experiment-scale spans).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)

_INF = float("inf")


def _validate_name(name: str) -> None:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise ValueError(
            f"invalid metric name {name!r}: use [a-zA-Z0-9_:] only"
        )
    if name[0].isdigit():
        raise ValueError(f"metric name {name!r} must not start with a digit")


class _Child:
    """One labelled time series; holds its own lock."""

    def __init__(self) -> None:
        self._lock = threading.Lock()


class Counter(_Child):
    """Monotonically increasing counter."""

    def __init__(self) -> None:
        super().__init__()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge(_Child):
    """A value that can go up and down."""

    def __init__(self) -> None:
        super().__init__()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram(_Child):
    """Fixed-bucket histogram with interpolated quantile estimation."""

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        super().__init__()
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(math.isnan(b) for b in bounds):
            raise ValueError("bucket bounds must not be NaN")
        if len(set(bounds)) != len(bounds):
            raise ValueError("bucket bounds must be distinct")
        if bounds[-1] != _INF:
            bounds.append(_INF)
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self._counts = [0] * len(self.bounds)
        self._sum = 0.0
        self._count = 0
        self._min = _INF
        self._max = -_INF

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            # Linear scan: bucket lists are short and almost every
            # observation lands early for latency-shaped data.
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    self._counts[i] += 1
                    break
            self._sum += value
            self._count += 1
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def cumulative_counts(self) -> List[int]:
        """Per-bucket cumulative counts (Prometheus ``le`` semantics)."""
        with self._lock:
            out, running = [], 0
            for c in self._counts:
                running += c
                out.append(running)
            return out

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by in-bucket interpolation."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            if self._count == 0:
                return float("nan")
            rank = q * self._count
            running = 0
            lower = -_INF
            for i, bound in enumerate(self.bounds):
                in_bucket = self._counts[i]
                if in_bucket and running + in_bucket >= rank:
                    # Interpolate inside the bucket, clamped to the
                    # observed range (tightens the first/last buckets).
                    hi = min(bound, self._max)
                    lo = max(lower, self._min)
                    if not math.isfinite(hi):
                        return self._max
                    fraction = (rank - running) / in_bucket
                    return lo + (hi - lo) * fraction
                running += in_bucket
                lower = bound
            return self._max


_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """A named metric with a label schema, fanning out into children."""

    def __init__(
        self,
        name: str,
        help: str,
        type: str,
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        _validate_name(name)
        if type not in _TYPES:
            raise ValueError(f"unknown metric type {type!r}")
        for label in labelnames:
            if not label or not all(c.isalnum() or c == "_" for c in label):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help = help
        self.type = type
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        self._buckets = tuple(buckets) if buckets is not None else None
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], _Child] = {}
        if not self.labelnames:
            self._default = self._make_child()
            self._children[()] = self._default
        else:
            self._default = None

    def _make_child(self) -> _Child:
        if self.type == "histogram":
            return Histogram(self._buckets or DEFAULT_BUCKETS)
        return _TYPES[self.type]()

    def labels(self, **labels: object):
        """The child for one label combination (created on first use)."""
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._make_child())
        return child

    def samples(self) -> List[Tuple[Dict[str, str], _Child]]:
        """(labels, child) pairs, in creation order."""
        with self._lock:
            items = list(self._children.items())
        return [
            (dict(zip(self.labelnames, key)), child) for key, child in items
        ]

    # Unlabelled families delegate to their single child so call sites
    # read naturally: registry.counter("x_total", "...").inc().

    def _require_default(self) -> _Child:
        if self._default is None:
            raise ValueError(
                f"metric {self.name!r} has labels {self.labelnames}; "
                "call .labels(...) first"
            )
        return self._default

    def inc(self, amount: float = 1.0) -> None:
        self._require_default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._require_default().dec(amount)

    def set(self, value: float) -> None:
        self._require_default().set(value)

    def observe(self, value: float) -> None:
        self._require_default().observe(value)

    @property
    def value(self) -> float:
        return self._require_default().value

    def quantile(self, q: float) -> float:
        return self._require_default().quantile(q)

    @property
    def count(self) -> int:
        return self._require_default().count

    @property
    def sum(self) -> float:
        return self._require_default().sum


class MetricsRegistry:
    """Holds metric families; declaration is idempotent."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, MetricFamily] = {}

    def _declare(
        self,
        name: str,
        help: str,
        type: str,
        labelnames: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if existing.type != type or existing.labelnames != tuple(
                    labelnames
                ):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.type}{existing.labelnames}, cannot "
                        f"redeclare as {type}{tuple(labelnames)}"
                    )
                return existing
            family = MetricFamily(name, help, type, labelnames, buckets)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._declare(name, help, "counter", labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._declare(name, help, "gauge", labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        return self._declare(name, help, "histogram", labelnames, buckets)

    def get(self, name: str) -> Optional[MetricFamily]:
        with self._lock:
            return self._families.get(name)

    def collect(self) -> Iterable[MetricFamily]:
        """Families in registration order."""
        with self._lock:
            return list(self._families.values())

    def reset(self) -> None:
        """Zero every child (families and label sets survive)."""
        for family in self.collect():
            with family._lock:
                for key, child in list(family._children.items()):
                    family._children[key] = family._make_child()
            if family._default is not None:
                family._default = family._children[()]


_registry = MetricsRegistry()
_registry_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process default (tests); returns the previous one.

    Note: modules bind their metric families at import time, so a swap
    only affects families declared afterwards.  Prefer deltas or
    :meth:`MetricsRegistry.reset` when asserting on instrumented code.
    """
    global _registry
    with _registry_lock:
        previous, _registry = _registry, registry
    return previous
