"""Observability substrate: metrics, spans, structured logs, exporters.

The ROADMAP's north star is an operator-scale deployment of the
paper's QoE inference loop, and such deployments live or die by
operational telemetry (Bronzino/Schmitt et al. 2019 report exactly
this from their ISP rollout).  This package is the measurement
substrate every later performance PR builds on:

``registry``
    Process-wide, dependency-free, thread-safe metrics registry —
    labelled counters, gauges and histograms with bucket-interpolated
    quantile estimation.
``tracing``
    Span tracer: ``with trace("capture.reconstruct"): ...`` produces
    nested timing trees with per-span counters; ``@traced`` wraps
    functions.  Span names follow the ``layer.operation`` convention.
``logs``
    Structured key=value event logging on top of stdlib ``logging``.
``exposition``
    Prometheus text-exposition rendering of a registry.  (Named
    *exposition*, not *prometheus*, to avoid shadowing the
    :mod:`repro.baselines.prometheus` baseline classifier.)
``snapshot``
    JSON snapshot writer (metrics + span trees) for benchmark runs,
    plus :func:`merge_snapshots` for aggregating per-shard documents.
``httpd``
    Live ``/metrics`` + ``/health`` endpoint (stdlib ``http.server``
    thread) for long-running serving processes (CLI ``--metrics-port``).
``pipeline``
    Per-record trace propagation through the serving pipeline: staged
    latency histograms, end-to-end latency, sampled exemplar traces.
``slo``
    Declarative SLOs (``p99:e2e<=250ms@60s``, ``success>=99.9%``)
    evaluated over tumbling windows with error-budget burn rates.
``recorder``
    Chaos flight recorder: bounded event ring + JSON postmortems on
    circuit opens, shard deaths and drain timeouts.

Instrumentation is pull-based and passive: modules record into the
default registry/tracer unconditionally; cost without an attached
exporter is a dict lookup and a lock-guarded float add per event, so
hot paths stay within a few percent of their uninstrumented speed.
"""

from .exposition import render_prometheus
from .httpd import MetricsServer, start_metrics_server
from .logs import configure_logging, get_logger
from .pipeline import (
    LATENCY_BUCKETS,
    STAGES,
    PipelineTelemetry,
    ShardTelemetry,
    TraceContext,
)
from .recorder import (
    POSTMORTEM_SCHEMA,
    FlightRecorder,
    get_recorder,
    set_recorder,
)
from .registry import (
    Counter,
    Gauge,
    Histogram,
    HistogramWindow,
    MetricsRegistry,
    estimate_quantile,
    get_registry,
    registry_state_delta,
    set_registry,
)
from .slo import DEFAULT_SLOS, SLO, SLOEngine, parse_slo
from .snapshot import merge_snapshots, registry_snapshot, write_snapshot
from .tracing import SpanNode, Tracer, current_span, get_tracer, trace, traced

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramWindow",
    "MetricsRegistry",
    "estimate_quantile",
    "get_registry",
    "registry_state_delta",
    "set_registry",
    "render_prometheus",
    "MetricsServer",
    "start_metrics_server",
    "configure_logging",
    "get_logger",
    "merge_snapshots",
    "registry_snapshot",
    "write_snapshot",
    "SpanNode",
    "Tracer",
    "current_span",
    "get_tracer",
    "trace",
    "traced",
    "STAGES",
    "LATENCY_BUCKETS",
    "TraceContext",
    "PipelineTelemetry",
    "ShardTelemetry",
    "SLO",
    "SLOEngine",
    "parse_slo",
    "DEFAULT_SLOS",
    "POSTMORTEM_SCHEMA",
    "FlightRecorder",
    "get_recorder",
    "set_recorder",
]
