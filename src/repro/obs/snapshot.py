"""JSON snapshot exporter: one file per run, metrics plus span trees.

The shape intentionally matches what the benchmark harness drops next
to its ``BENCH_*.json`` artifacts: a flat, versioned document that a
later run (or CI step) can load with ``json.load`` and diff —
``{"schema": ..., "metrics": [...], "spans": [...]}``.

Counters and gauges serialise as ``{labels, value}``; histograms carry
count/sum/min/max, the cumulative buckets, and interpolated p50/p90/p99
so downstream tooling does not need to re-derive quantiles.
"""

from __future__ import annotations

import json
import math
from typing import Optional

from .registry import MetricsRegistry, estimate_quantile, get_registry
from .tracing import Tracer, get_tracer

__all__ = [
    "SNAPSHOT_SCHEMA",
    "merge_snapshots",
    "registry_snapshot",
    "write_snapshot",
]

SNAPSHOT_SCHEMA = "repro.obs/1"

_QUANTILES = (0.5, 0.9, 0.99)


def _finite(value: float) -> float:
    """JSON has no Infinity; clamp sentinels from empty histograms."""
    return value if math.isfinite(value) else 0.0


def _histogram_payload(child) -> dict:
    buckets = [
        {"le": "+Inf" if math.isinf(bound) else bound, "count": count}
        for bound, count in zip(child.bounds, child.cumulative_counts())
    ]
    quantiles = {
        f"p{int(q * 100)}": _finite(child.quantile(q)) for q in _QUANTILES
    }
    return {
        "count": child.count,
        "sum": child.sum,
        "min": _finite(child._min),
        "max": _finite(child._max),
        "buckets": buckets,
        "quantiles": quantiles,
    }


def registry_snapshot(
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
) -> dict:
    """The registry (and span forest) as a JSON-serialisable dict."""
    registry = registry if registry is not None else get_registry()
    tracer = tracer if tracer is not None else get_tracer()
    metrics = []
    for family in registry.collect():
        samples = []
        for labels, child in family.samples():
            if family.type == "histogram":
                samples.append({"labels": labels, **_histogram_payload(child)})
            else:
                samples.append({"labels": labels, "value": child.value})
        metrics.append(
            {
                "name": family.name,
                "type": family.type,
                "help": family.help,
                "samples": samples,
            }
        )
    return {
        "schema": SNAPSHOT_SCHEMA,
        "metrics": metrics,
        "spans": tracer.to_dict(),
    }


def _merge_histogram_samples(acc: dict, sample: dict) -> None:
    if [b["le"] for b in acc["buckets"]] != [
        b["le"] for b in sample["buckets"]
    ]:
        raise ValueError("cannot merge histograms with different buckets")
    for mine, theirs in zip(acc["buckets"], sample["buckets"]):
        mine["count"] += theirs["count"]
    had, has = acc["count"] > 0, sample["count"] > 0
    acc["min"] = (
        min(acc["min"], sample["min"]) if had and has
        else (sample["min"] if has else acc["min"])
    )
    acc["max"] = max(acc["max"], sample["max"])
    acc["count"] += sample["count"]
    acc["sum"] += sample["sum"]


def _requantile(sample: dict) -> None:
    """Recompute p50/p90/p99 from the merged cumulative buckets."""
    bounds = [
        math.inf if b["le"] == "+Inf" else float(b["le"])
        for b in sample["buckets"]
    ]
    counts, prev = [], 0
    for b in sample["buckets"]:
        counts.append(b["count"] - prev)
        prev = b["count"]
    sample["quantiles"] = {
        f"p{int(q * 100)}": _finite(
            estimate_quantile(
                bounds, counts, sample["count"], q,
                sample["min"] if sample["count"] else math.inf,
                sample["max"] if sample["count"] else -math.inf,
            )
        )
        for q in _QUANTILES
    }


def merge_snapshots(*snapshots: dict) -> dict:
    """Fold several registry snapshots into one aggregate document.

    The file-level counterpart of :meth:`MetricsRegistry.merge`: given
    snapshots written by per-shard (or, next, per-process) registries,
    counters and gauges sum, histogram buckets fold together, and
    quantiles are re-estimated from the merged buckets.  Span forests
    concatenate.  Mismatched schemas or histogram buckets raise.
    """
    if not snapshots:
        raise ValueError("merge_snapshots needs at least one snapshot")
    for snap in snapshots:
        if snap.get("schema") != SNAPSHOT_SCHEMA:
            raise ValueError(
                f"cannot merge snapshot with schema {snap.get('schema')!r}"
            )
    merged_metrics: dict = {}
    order = []
    for snap in snapshots:
        for family in snap["metrics"]:
            acc = merged_metrics.get(family["name"])
            if acc is None:
                acc = {
                    "name": family["name"],
                    "type": family["type"],
                    "help": family["help"],
                    "samples": [],
                }
                merged_metrics[family["name"]] = acc
                order.append(family["name"])
            elif acc["type"] != family["type"]:
                raise ValueError(
                    f"metric {family['name']!r} is {acc['type']} in one "
                    f"snapshot and {family['type']} in another"
                )
            for sample in family["samples"]:
                target = next(
                    (
                        s for s in acc["samples"]
                        if s["labels"] == sample["labels"]
                    ),
                    None,
                )
                if target is None:
                    acc["samples"].append(json.loads(json.dumps(sample)))
                elif family["type"] == "histogram":
                    _merge_histogram_samples(target, sample)
                else:
                    target["value"] += sample["value"]
    for name in order:
        family = merged_metrics[name]
        if family["type"] == "histogram":
            for sample in family["samples"]:
                _requantile(sample)
    spans = []
    for snap in snapshots:
        spans.extend(snap.get("spans", []))
    return {
        "schema": SNAPSHOT_SCHEMA,
        "metrics": [merged_metrics[name] for name in order],
        "spans": spans,
    }


def write_snapshot(
    path: str,
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
) -> dict:
    """Write the snapshot to ``path``; returns the written dict.

    The file write is retried with backoff (``OSError`` only) — a
    snapshot is usually the last act of a run, and losing it to a
    transient filesystem hiccup wastes the whole run's evidence.
    """
    # Imported lazily: repro.faults.retry records its retries through
    # this registry's counters, so a module-level import would cycle.
    from repro.faults.retry import retry_with_backoff

    snapshot = registry_snapshot(registry, tracer)

    def _write() -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=False)
            handle.write("\n")

    retry_with_backoff(_write, retry_on=(OSError,), op="write_snapshot")
    return snapshot
