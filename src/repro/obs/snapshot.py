"""JSON snapshot exporter: one file per run, metrics plus span trees.

The shape intentionally matches what the benchmark harness drops next
to its ``BENCH_*.json`` artifacts: a flat, versioned document that a
later run (or CI step) can load with ``json.load`` and diff —
``{"schema": ..., "metrics": [...], "spans": [...]}``.

Counters and gauges serialise as ``{labels, value}``; histograms carry
count/sum/min/max, the cumulative buckets, and interpolated p50/p90/p99
so downstream tooling does not need to re-derive quantiles.
"""

from __future__ import annotations

import json
import math
from typing import Optional

from .registry import MetricsRegistry, get_registry
from .tracing import Tracer, get_tracer

__all__ = ["SNAPSHOT_SCHEMA", "registry_snapshot", "write_snapshot"]

SNAPSHOT_SCHEMA = "repro.obs/1"

_QUANTILES = (0.5, 0.9, 0.99)


def _finite(value: float) -> float:
    """JSON has no Infinity; clamp sentinels from empty histograms."""
    return value if math.isfinite(value) else 0.0


def _histogram_payload(child) -> dict:
    buckets = [
        {"le": "+Inf" if math.isinf(bound) else bound, "count": count}
        for bound, count in zip(child.bounds, child.cumulative_counts())
    ]
    quantiles = {
        f"p{int(q * 100)}": _finite(child.quantile(q)) for q in _QUANTILES
    }
    return {
        "count": child.count,
        "sum": child.sum,
        "min": _finite(child._min),
        "max": _finite(child._max),
        "buckets": buckets,
        "quantiles": quantiles,
    }


def registry_snapshot(
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
) -> dict:
    """The registry (and span forest) as a JSON-serialisable dict."""
    registry = registry if registry is not None else get_registry()
    tracer = tracer if tracer is not None else get_tracer()
    metrics = []
    for family in registry.collect():
        samples = []
        for labels, child in family.samples():
            if family.type == "histogram":
                samples.append({"labels": labels, **_histogram_payload(child)})
            else:
                samples.append({"labels": labels, "value": child.value})
        metrics.append(
            {
                "name": family.name,
                "type": family.type,
                "help": family.help,
                "samples": samples,
            }
        )
    return {
        "schema": SNAPSHOT_SCHEMA,
        "metrics": metrics,
        "spans": tracer.to_dict(),
    }


def write_snapshot(
    path: str,
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
) -> dict:
    """Write the snapshot to ``path``; returns the written dict.

    The file write is retried with backoff (``OSError`` only) — a
    snapshot is usually the last act of a run, and losing it to a
    transient filesystem hiccup wastes the whole run's evidence.
    """
    # Imported lazily: repro.faults.retry records its retries through
    # this registry's counters, so a module-level import would cycle.
    from repro.faults.retry import retry_with_backoff

    snapshot = registry_snapshot(registry, tracer)

    def _write() -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=False)
            handle.write("\n")

    retry_with_backoff(_write, retry_on=(OSError,), op="write_snapshot")
    return snapshot
