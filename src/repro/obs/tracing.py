"""Span tracer: nested timing trees with per-span counters.

``with trace("capture.reconstruct"):`` opens a span; spans started
inside it become children.  When a span closes it is *aggregated* into
its parent by name — a thousand ``ml.forest_predict`` calls under one
experiment collapse into a single tree node carrying count, total and
min/max duration — so tracing long runs stays O(distinct span names),
not O(calls).

Span names follow the ``layer.operation`` convention
(``capture.reconstruct``, ``ml.forest_fit``, ``experiments.tab3_4``).
Closed spans also feed the ``repro_span_duration_seconds`` histogram in
the default metrics registry, labelled by span name, so exporters see
latency distributions without separate plumbing.

Per-thread span stacks keep concurrent pipelines from interleaving
their trees; each thread grows its own roots.
"""

from __future__ import annotations

import functools
import threading
import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional

from .registry import get_registry

__all__ = [
    "SpanNode",
    "Span",
    "Tracer",
    "trace",
    "traced",
    "current_span",
    "get_tracer",
    "set_tracer",
]

_SPAN_SECONDS = get_registry().histogram(
    "repro_span_duration_seconds",
    "Wall-clock duration of traced spans, labelled by span name.",
    labelnames=("span",),
)


class SpanNode:
    """Aggregated statistics of all closed spans with one name/position."""

    __slots__ = ("name", "count", "total_s", "min_s", "max_s", "counters", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total_s = 0.0
        self.min_s = float("inf")
        self.max_s = 0.0
        self.counters: Dict[str, float] = {}
        self.children: Dict[str, "SpanNode"] = {}

    def _absorb(self, other: "SpanNode") -> None:
        self.count += other.count
        self.total_s += other.total_s
        self.min_s = min(self.min_s, other.min_s)
        self.max_s = max(self.max_s, other.max_s)
        for key, value in other.counters.items():
            self.counters[key] = self.counters.get(key, 0.0) + value
        for name, child in other.children.items():
            mine = self.children.get(name)
            if mine is None:
                self.children[name] = child
            else:
                mine._absorb(child)

    def to_dict(self) -> dict:
        out: dict = {
            "name": self.name,
            "count": self.count,
            "total_s": self.total_s,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
        }
        if self.counters:
            out["counters"] = dict(self.counters)
        if self.children:
            out["children"] = [
                child.to_dict() for child in self.children.values()
            ]
        return out

    def render(self, indent: int = 0) -> str:
        """Human-readable timing tree."""
        mean = self.total_s / self.count if self.count else 0.0
        line = (
            f"{'  ' * indent}{self.name}: {self.total_s:.3f}s"
            f" (n={self.count}, mean={mean:.3f}s)"
        )
        if self.counters:
            extras = ", ".join(
                f"{k}={v:g}" for k, v in sorted(self.counters.items())
            )
            line += f" [{extras}]"
        lines = [line]
        for child in self.children.values():
            lines.append(child.render(indent + 1))
        return "\n".join(lines)


class Span:
    """A live (still-open) span."""

    __slots__ = ("name", "_started", "duration_s", "counters", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self._started = time.perf_counter()
        #: Filled in when the span closes (None while still open).
        self.duration_s: Optional[float] = None
        self.counters: Dict[str, float] = {}
        self.children: Dict[str, SpanNode] = {}

    def add(self, counter: str, amount: float = 1.0) -> None:
        """Bump a per-span counter (rows seen, sessions closed, …)."""
        self.counters[counter] = self.counters.get(counter, 0.0) + amount

    def _close(self) -> SpanNode:
        node = SpanNode(self.name)
        duration = time.perf_counter() - self._started
        self.duration_s = duration
        node.count = 1
        node.total_s = duration
        node.min_s = duration
        node.max_s = duration
        node.counters = self.counters
        node.children = self.children
        return node


class Tracer:
    """Holds per-thread span stacks and the forest of closed roots."""

    def __init__(self, registry=None) -> None:
        self._local = threading.local()
        self._lock = threading.Lock()
        self._roots: Dict[str, SpanNode] = {}
        self._registry = registry

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    @contextmanager
    def span(self, name: str) -> Iterator[Span]:
        stack = self._stack()
        span = Span(name)
        stack.append(span)
        try:
            yield span
        finally:
            stack.pop()
            node = span._close()
            if stack:
                parent = stack[-1]
                mine = parent.children.get(name)
                if mine is None:
                    parent.children[name] = node
                else:
                    mine._absorb(node)
            else:
                with self._lock:
                    root = self._roots.get(name)
                    if root is None:
                        self._roots[name] = node
                    else:
                        root._absorb(node)
            histogram = _SPAN_SECONDS
            if self._registry is not None:
                histogram = self._registry.histogram(
                    "repro_span_duration_seconds",
                    "Wall-clock duration of traced spans, labelled by span name.",
                    labelnames=("span",),
                )
            histogram.labels(span=name).observe(node.total_s)

    def roots(self) -> List[SpanNode]:
        """Closed root spans, aggregated by name."""
        with self._lock:
            return list(self._roots.values())

    def to_dict(self) -> List[dict]:
        return [root.to_dict() for root in self.roots()]

    def render(self) -> str:
        """All root timing trees as text."""
        return "\n".join(root.render() for root in self.roots())

    def reset(self) -> None:
        with self._lock:
            self._roots.clear()


_tracer = Tracer()
_tracer_lock = threading.Lock()


def get_tracer() -> Tracer:
    """The process-wide default tracer."""
    return _tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the process default (tests); returns the previous one."""
    global _tracer
    with _tracer_lock:
        previous, _tracer = _tracer, tracer
    return previous


@contextmanager
def trace(name: str) -> Iterator[Span]:
    """Open a span on the default tracer: ``with trace("ml.fit") as s:``."""
    with _tracer.span(name) as span:
        yield span


def current_span() -> Optional[Span]:
    """The innermost open span of this thread (None outside any trace)."""
    return _tracer.current()


def traced(name: Optional[str] = None) -> Callable:
    """Decorator form: ``@traced("ml.forest_fit")``.

    With no argument the span is named after the function's module tail
    and name (``forest.fit`` → ``forest.fit``).
    """

    def decorate(func: Callable) -> Callable:
        span_name = name or (
            f"{func.__module__.rsplit('.', 1)[-1]}.{func.__name__}"
        )

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            with _tracer.span(span_name):
                return func(*args, **kwargs)

        return wrapper

    # Support bare @traced (func passed directly).
    if callable(name):
        func, name = name, None
        return decorate(func)
    return decorate
