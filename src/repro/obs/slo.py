"""Declarative SLOs over the pipeline's latency and success telemetry.

An operator running the paper's QoE loop does not watch raw histograms
— they set an objective ("99% of diagnoses within 250 ms end-to-end",
"99.9% of records diagnosed successfully") and watch whether it holds
and how fast its error budget burns.  This module evaluates such
objectives over *tumbling windows* of the telemetry the pipeline
already records:

Spec grammar (one spec string per SLO)::

    p<Q>:<target><=<value>(ms|s)@<window>s     latency objective
    success>=<percent>%[@<window>s]            success-ratio objective

    p99:e2e<=250ms@60s      p99 end-to-end latency ≤ 250 ms per 60 s
    p95:diagnose<=5ms@30s   p95 of the diagnose stage ≤ 5 ms per 30 s
    success>=99.9%@60s      ≥ 99.9% of processed records diagnosed

Latency targets are ``e2e`` or any stage from
:data:`repro.obs.pipeline.STAGES`; their windows come from the target
histogram's :meth:`~repro.obs.registry.Histogram.reset_window` (SLOs
sharing a target histogram share its window — the engine rolls it on
the shortest requested cadence).  Success ratios are computed from
counter deltas against window-start baselines.

Per evaluated window the engine publishes, for each SLO:

* ``value`` — the measured quantile / ratio,
* ``ok`` — objective met (vacuously true on an empty window),
* ``burn_rate`` — error-budget burn: the fraction of observations
  violating the objective divided by the fraction the objective
  allows.  1.0 burns the budget exactly at the sustainable rate;
  10 means the window consumed ten windows' worth of budget.

mirrored on the registry as ``repro_slo_ok{slo=}``,
``repro_slo_value{slo=}`` and ``repro_slo_burn_rate{slo=}``, and
available as a dict (:meth:`SLOEngine.snapshot`) for ``health()``,
postmortems and the serve-replay summary.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Union

from .pipeline import STAGES, PipelineTelemetry
from .registry import MetricsRegistry, get_registry

__all__ = ["SLO", "SLOEngine", "parse_slo", "DEFAULT_SLOS"]

_LATENCY_RE = re.compile(
    r"^p(?P<q>\d+(?:\.\d+)?):(?P<target>[a-z_][a-z_0-9]*)"
    r"<=(?P<value>\d+(?:\.\d+)?)(?P<unit>ms|s)"
    r"@(?P<window>\d+(?:\.\d+)?)s$"
)
_RATIO_RE = re.compile(
    r"^success>=(?P<pct>\d+(?:\.\d+)?)%(?:@(?P<window>\d+(?:\.\d+)?)s)?$"
)

#: The serve-replay defaults when ``--slo`` is given without a spec:
#: the ISSUE's two examples.
DEFAULT_SLOS = ("p99:e2e<=250ms@60s", "success>=99.9%@60s")


@dataclass(frozen=True)
class SLO:
    """One parsed objective (see the module grammar)."""

    name: str
    spec: str
    kind: str  # "latency" | "ratio"
    window_s: float
    quantile: float = 0.0  # latency only
    target: str = ""  # latency only: "e2e" or a stage name
    threshold_s: float = 0.0  # latency only
    target_ratio: float = 0.0  # ratio only

    @property
    def allowed_fraction(self) -> float:
        """Fraction of observations the objective permits to violate it."""
        if self.kind == "latency":
            return max(1e-9, 1.0 - self.quantile)
        return max(1e-9, 1.0 - self.target_ratio)


def parse_slo(spec: str) -> SLO:
    """Parse one spec string; raises ``ValueError`` with the grammar."""
    spec = spec.strip()
    match = _LATENCY_RE.match(spec)
    if match:
        quantile = float(match["q"]) / 100.0
        if not 0.0 < quantile < 1.0:
            raise ValueError(f"percentile out of range in SLO spec {spec!r}")
        target = match["target"]
        if target != "e2e" and target not in STAGES:
            raise ValueError(
                f"unknown latency target {target!r} in SLO spec {spec!r}; "
                f"use 'e2e' or one of {STAGES}"
            )
        value = float(match["value"])
        threshold_s = value / 1000.0 if match["unit"] == "ms" else value
        window_s = float(match["window"])
        if window_s <= 0:
            raise ValueError(f"window must be positive in SLO spec {spec!r}")
        return SLO(
            name=f"p{match['q']}_{target}",
            spec=spec,
            kind="latency",
            window_s=window_s,
            quantile=quantile,
            target=target,
            threshold_s=threshold_s,
        )
    match = _RATIO_RE.match(spec)
    if match:
        pct = float(match["pct"])
        if not 0.0 < pct <= 100.0:
            raise ValueError(f"percentage out of range in SLO spec {spec!r}")
        window = match["window"]
        window_s = float(window) if window is not None else 60.0
        if window_s <= 0:
            raise ValueError(f"window must be positive in SLO spec {spec!r}")
        return SLO(
            name="success",
            spec=spec,
            kind="ratio",
            window_s=window_s,
            target_ratio=pct / 100.0,
        )
    raise ValueError(
        f"cannot parse SLO spec {spec!r}; grammar: "
        "'p<Q>:<target><=<value>(ms|s)@<window>s' or "
        "'success>=<pct>%[@<window>s]'"
    )


class _SLOState:
    """Mutable evaluation state of one SLO."""

    __slots__ = ("slo", "value", "ok", "burn_rate", "windows", "breaches")

    def __init__(self, slo: SLO) -> None:
        self.slo = slo
        self.value: Optional[float] = None
        self.ok = True
        self.burn_rate = 0.0
        self.windows = 0
        self.breaches = 0


class SLOEngine:
    """Evaluates a set of SLOs over tumbling telemetry windows.

    Parameters
    ----------
    slos:
        Spec strings or pre-parsed :class:`SLO` objects.
    telemetry:
        The :class:`~repro.obs.pipeline.PipelineTelemetry` whose
        histograms the latency objectives read.
    processed, failed:
        Zero-argument callables returning the monotonically increasing
        totals the ``success`` ratio is computed from (records
        processed, records that failed diagnosis — quarantines).
        Required only when a ratio SLO is present.
    registry:
        Where the ``repro_slo_*`` gauges are declared.
    clock:
        Injectable monotonic clock (tests).

    :meth:`maybe_roll` is called from the submit path (cheap: one clock
    read and a float compare until a window actually expires);
    :meth:`finalize` force-closes the in-flight window at drain so
    short runs still evaluate at least once.
    """

    def __init__(
        self,
        slos: Sequence[Union[str, SLO]],
        telemetry: PipelineTelemetry,
        processed: Optional[Callable[[], float]] = None,
        failed: Optional[Callable[[], float]] = None,
        registry: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        parsed = [s if isinstance(s, SLO) else parse_slo(s) for s in slos]
        if not parsed:
            raise ValueError("SLOEngine needs at least one SLO")
        names = [s.name for s in parsed]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names: {sorted(names)}")
        if any(s.kind == "ratio" for s in parsed) and (
            processed is None or failed is None
        ):
            raise ValueError(
                "ratio SLOs need 'processed' and 'failed' providers"
            )
        self.slos = parsed
        self._telemetry = telemetry
        self._processed = processed
        self._failed = failed
        self._clock = clock
        reg = registry if registry is not None else get_registry()
        self._g_ok = reg.gauge(
            "repro_slo_ok",
            "1 while the SLO's latest window met its objective.",
            labelnames=("slo",),
        )
        self._g_value = reg.gauge(
            "repro_slo_value",
            "Measured value of the SLO's latest window "
            "(seconds for latency, ratio for success).",
            labelnames=("slo",),
        )
        self._g_burn = reg.gauge(
            "repro_slo_burn_rate",
            "Error-budget burn rate of the SLO's latest window "
            "(1.0 = exactly sustainable).",
            labelnames=("slo",),
        )
        self._states = {s.name: _SLOState(s) for s in parsed}
        # Latency SLOs sharing a target histogram share its window;
        # the group rolls on the shortest requested cadence.
        self._groups: Dict[str, List[SLO]] = {}
        for slo in parsed:
            if slo.kind == "latency":
                self._groups.setdefault(slo.target, []).append(slo)
        self._deadlines: Dict[str, float] = {}
        self._baselines: Dict[str, tuple] = {}
        self._started = False

    # ------------------------------------------------------------------

    def _histogram(self, target: str):
        if target == "e2e":
            return self._telemetry.e2e_histogram
        return self._telemetry.stage_histogram(target)

    def start(self) -> None:
        """Anchor the first window at the current clock reading."""
        now = self._clock()
        for target, group in self._groups.items():
            window = min(s.window_s for s in group)
            self._deadlines[target] = now + window
            self._histogram(target).reset_window()  # discard pre-start noise
        for slo in self.slos:
            if slo.kind == "ratio":
                self._deadlines[slo.name] = now + slo.window_s
                self._baselines[slo.name] = (
                    self._processed(),
                    self._failed(),
                )
        self._started = True

    def maybe_roll(self, now: Optional[float] = None) -> bool:
        """Evaluate every window whose deadline passed; True if any did."""
        if not self._started:
            self.start()
            return False
        now = self._clock() if now is None else now
        rolled = False
        for target, group in self._groups.items():
            if now >= self._deadlines[target]:
                self._roll_latency(target, group)
                self._deadlines[target] = now + min(
                    s.window_s for s in group
                )
                rolled = True
        for slo in self.slos:
            if slo.kind == "ratio" and now >= self._deadlines[slo.name]:
                self._roll_ratio(slo)
                self._deadlines[slo.name] = now + slo.window_s
                rolled = True
        return rolled

    def finalize(self) -> None:
        """Force-close the in-flight windows (drain path)."""
        if not self._started:
            self.start()
        for target, group in self._groups.items():
            self._roll_latency(target, group)
        for slo in self.slos:
            if slo.kind == "ratio":
                self._roll_ratio(slo)

    # ------------------------------------------------------------------

    def _roll_latency(self, target: str, group: List[SLO]) -> None:
        window = self._histogram(target).reset_window()
        for slo in group:
            state = self._states[slo.name]
            if window.count == 0:
                # No traffic: vacuously ok, nothing burned, but do not
                # overwrite the last measured value.
                state.ok = True
                state.burn_rate = 0.0
                self._publish(state)
                continue
            value = window.quantile(slo.quantile)
            violating = window.fraction_over(slo.threshold_s)
            state.value = value
            state.ok = value <= slo.threshold_s
            state.burn_rate = violating / slo.allowed_fraction
            state.windows += 1
            if not state.ok:
                state.breaches += 1
            self._publish(state)

    def _roll_ratio(self, slo: SLO) -> None:
        state = self._states[slo.name]
        processed, failed = self._processed(), self._failed()
        base = self._baselines.get(slo.name, (0.0, 0.0))
        self._baselines[slo.name] = (processed, failed)
        d_processed = processed - base[0]
        d_failed = failed - base[1]
        if d_processed <= 0:
            state.ok = True
            state.burn_rate = 0.0
            self._publish(state)
            return
        ratio = (d_processed - d_failed) / d_processed
        state.value = ratio
        state.ok = ratio >= slo.target_ratio
        state.burn_rate = (d_failed / d_processed) / slo.allowed_fraction
        state.windows += 1
        if not state.ok:
            state.breaches += 1
        self._publish(state)

    def _publish(self, state: _SLOState) -> None:
        name = state.slo.name
        self._g_ok.labels(slo=name).set(1.0 if state.ok else 0.0)
        if state.value is not None:
            self._g_value.labels(slo=name).set(state.value)
        self._g_burn.labels(slo=name).set(state.burn_rate)

    # ------------------------------------------------------------------

    @property
    def ok(self) -> bool:
        """True while every SLO's latest window met its objective."""
        return all(state.ok for state in self._states.values())

    def snapshot(self) -> List[Dict]:
        """Per-SLO state for ``health()``, postmortems and summaries."""
        out = []
        for slo in self.slos:
            state = self._states[slo.name]
            out.append(
                {
                    "name": slo.name,
                    "spec": slo.spec,
                    "kind": slo.kind,
                    "window_s": slo.window_s,
                    "value": state.value,
                    "ok": state.ok,
                    "burn_rate": round(state.burn_rate, 4),
                    "windows": state.windows,
                    "breaches": state.breaches,
                }
            )
        return out
