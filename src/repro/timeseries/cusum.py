"""Page's CUSUM (Cumulative Sum Control Chart) change detection.

§4.3 of the paper: "we find that the most suitable [algorithm] for the
purposes of this work is the Cumulative Sum Control Chart (CUSUM) which
was developed by E.S. Page.  CUSUM is a change detection monitoring
technique which allows the detection of shifts from the mean of a given
sample of points in a time series.  [...] In our case, instead of
thresholds we use the standard deviation of the output of the change
detection algorithm."

Two views are provided:

* :func:`cusum_series` — the raw CUSUM statistic trajectories
  (high-side and low-side), whose standard deviation is the paper's
  switch-detection score.
* :func:`detect_changes` — the classic thresholded detector returning
  change points, used by tests / diagnostics and the ablation benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

__all__ = ["CusumResult", "cusum_series", "detect_changes", "cusum_score"]


@dataclass
class CusumResult:
    """Raw CUSUM trajectories of a series.

    Attributes
    ----------
    high:
        Upper one-sided statistic S+_t, accumulating positive shifts.
    low:
        Lower one-sided statistic S-_t, accumulating negative shifts.
    combined:
        ``high + low`` — a single magnitude trajectory whose standard
        deviation is used as the switch score.
    """

    high: np.ndarray
    low: np.ndarray

    @property
    def combined(self) -> np.ndarray:
        return self.high + self.low

    def std(self) -> float:
        """Standard deviation of the combined trajectory."""
        if self.combined.size == 0:
            return 0.0
        return float(np.std(self.combined))


def cusum_series(
    values: np.ndarray,
    target: float = None,
    drift: float = 0.0,
    reset_on_detect: bool = False,
    threshold: float = None,
) -> CusumResult:
    """Compute one-sided CUSUM statistics of ``values``.

    The tabular CUSUM recursions are::

        S+_t = max(0, S+_{t-1} + (x_t - target - drift))
        S-_t = max(0, S-_{t-1} + (target - x_t - drift))

    Parameters
    ----------
    values:
        Input series.
    target:
        Reference level; defaults to the series mean (Page's original
        formulation monitors deviations from the in-control mean).
    drift:
        Allowance ("slack") subtracted each step; 0 keeps every
        deviation, larger values ignore small wander.
    reset_on_detect / threshold:
        When both are given, the accumulators reset to zero whenever a
        side crosses ``threshold`` (standard alarm-and-restart CUSUM).
    """
    x = np.asarray(values, dtype=float)
    if x.size == 0:
        return CusumResult(high=np.empty(0), low=np.empty(0))
    mu = float(np.mean(x)) if target is None else float(target)
    high = np.empty(x.size)
    low = np.empty(x.size)
    s_hi = 0.0
    s_lo = 0.0
    for t, value in enumerate(x):
        s_hi = max(0.0, s_hi + (value - mu - drift))
        s_lo = max(0.0, s_lo + (mu - value - drift))
        if reset_on_detect and threshold is not None:
            if s_hi > threshold:
                s_hi = 0.0
            if s_lo > threshold:
                s_lo = 0.0
        high[t] = s_hi
        low[t] = s_lo
    return CusumResult(high=high, low=low)


def detect_changes(
    values: np.ndarray,
    threshold: float,
    target: float = None,
    drift: float = 0.0,
) -> List[int]:
    """Indices where the CUSUM statistic first crosses ``threshold``.

    The accumulators reset after each alarm so that multiple change
    points in the same series are all reported.
    """
    x = np.asarray(values, dtype=float)
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    if x.size == 0:
        return []
    mu = float(np.mean(x)) if target is None else float(target)
    alarms: List[int] = []
    s_hi = 0.0
    s_lo = 0.0
    for t, value in enumerate(x):
        s_hi = max(0.0, s_hi + (value - mu - drift))
        s_lo = max(0.0, s_lo + (mu - value - drift))
        if s_hi > threshold or s_lo > threshold:
            alarms.append(t)
            s_hi = 0.0
            s_lo = 0.0
    return alarms


def cusum_score(values: np.ndarray, drift: float = 0.0) -> float:
    """The paper's change score: STD(CUSUM(series)).

    Flat series score ~0; series containing level shifts accumulate
    large CUSUM excursions and score high.  §4.3/§5.6 threshold this
    score at 500 to split sessions with vs. without quality switches.
    """
    return cusum_series(values, drift=drift).std()
