"""Switch-signal construction: the Δsize × Δt product series.

§4.3: "We find that the metric which better captures the changes in
both the size and the inter-arrival of the video segments, is the
product Δsize × Δt. [...] for each video session in the dataset, we
calculate a new time series where each point corresponds to the
aforementioned product."

The series is built from per-chunk (arrival_time, size) observations
after optionally dropping the first ``startup_skip_s`` seconds of the
session (the paper removes the first 10 s to suppress fast-start noise).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.obs import get_registry

from .cusum import cusum_score

__all__ = [
    "delta_series",
    "product_series",
    "switch_score",
    "DEFAULT_STARTUP_SKIP_S",
]

#: §4.3 — "we remove the first ten seconds of all video sessions".
DEFAULT_STARTUP_SKIP_S: float = 10.0

_REG = get_registry()
_SCORES = _REG.counter(
    "repro_timeseries_switch_scores_total",
    "CUSUM switch scores computed over Δsize×Δt product series.",
)
_EMPTY_SERIES = _REG.counter(
    "repro_timeseries_empty_series_total",
    "Sessions whose product series was empty after startup filtering.",
)


def _filter_startup(
    times: np.ndarray, sizes: np.ndarray, startup_skip_s: float
) -> Tuple[np.ndarray, np.ndarray]:
    if times.size == 0:
        return times, sizes
    origin = times[0]
    keep = times - origin >= startup_skip_s
    return times[keep], sizes[keep]


def delta_series(
    times: Sequence[float],
    sizes: Sequence[float],
    startup_skip_s: float = DEFAULT_STARTUP_SKIP_S,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-chunk (Δt, Δsize) sequences of a session.

    ``times`` are chunk arrival timestamps (seconds, ascending) and
    ``sizes`` the corresponding chunk sizes.  Both deltas are between
    consecutive chunks; Δsize is the absolute size difference (a switch
    in either direction perturbs the signal identically).
    """
    t = np.asarray(list(times), dtype=float)
    s = np.asarray(list(sizes), dtype=float)
    if t.shape != s.shape:
        raise ValueError("times and sizes must have equal lengths")
    if t.size and np.any(np.diff(t) < 0):
        order = np.argsort(t, kind="mergesort")
        t, s = t[order], s[order]
    t, s = _filter_startup(t, s, startup_skip_s)
    if t.size < 2:
        return np.empty(0), np.empty(0)
    return np.diff(t), np.abs(np.diff(s))


def product_series(
    times: Sequence[float],
    sizes: Sequence[float],
    startup_skip_s: float = DEFAULT_STARTUP_SKIP_S,
) -> np.ndarray:
    """The Δsize × Δt product series of a session."""
    dt, dsize = delta_series(times, sizes, startup_skip_s=startup_skip_s)
    return dt * dsize


def switch_score(
    times: Sequence[float],
    sizes: Sequence[float],
    startup_skip_s: float = DEFAULT_STARTUP_SKIP_S,
) -> float:
    """STD(CUSUM(Δsize × Δt)) — the paper's switch-detection score (eq. 3)."""
    series = product_series(times, sizes, startup_skip_s=startup_skip_s)
    _SCORES.inc()
    if series.size == 0:
        _EMPTY_SERIES.inc()
        return 0.0
    return cusum_score(series)
