"""Summary statistics and empirical distributions.

The feature-construction steps of §4.1 and §4.2 expand every per-chunk
metric into a fixed vector of summary statistics; the figures of the
paper (Figs. 2, 4, 5) are ECDFs.  Both primitives live here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

__all__ = [
    "SUMMARY_STATS_BASIC",
    "SUMMARY_STATS_EXTENDED",
    "summary_statistics",
    "Ecdf",
    "ecdf",
]

#: §4.1 — "max, min, mean, standard deviation, 25th, 50th and 75th
#: percentiles" (7 statistics; 10 metrics -> 70 features).
SUMMARY_STATS_BASIC: Tuple[str, ...] = (
    "min",
    "max",
    "mean",
    "std",
    "p25",
    "p50",
    "p75",
)

#: §4.2 — "minimum, mean, maximum, std. deviation and 5th, 10th, 15th,
#: 20th, 25th, 50th, 75th, 80th, 85th, 90th and 95th percentiles"
#: (15 statistics; 14 metrics -> 210 features).
SUMMARY_STATS_EXTENDED: Tuple[str, ...] = (
    "min",
    "mean",
    "max",
    "std",
    "p5",
    "p10",
    "p15",
    "p20",
    "p25",
    "p50",
    "p75",
    "p80",
    "p85",
    "p90",
    "p95",
)


def _single_stat(values: np.ndarray, stat: str) -> float:
    if stat == "min":
        return float(np.min(values))
    if stat == "max":
        return float(np.max(values))
    if stat == "mean":
        return float(np.mean(values))
    if stat == "std":
        return float(np.std(values))
    if stat.startswith("p"):
        return float(np.percentile(values, float(stat[1:])))
    raise ValueError(f"unknown statistic: {stat!r}")


def _as_float_array(values: Sequence[float]) -> np.ndarray:
    """``values`` as a float64 ndarray without a Python-list detour.

    ndarrays pass straight through ``np.asarray`` (zero-copy when
    already float64) — round-tripping them through ``list()`` copied
    every element through Python objects on the per-record hot path.
    Only true iterables (generators, map objects) are materialised.
    """
    if isinstance(values, np.ndarray):
        return np.asarray(values, dtype=float)
    if isinstance(values, (list, tuple)):
        return np.asarray(values, dtype=float)
    return np.asarray(list(values), dtype=float)


def summary_statistics(
    values: Sequence[float],
    stats: Sequence[str] = SUMMARY_STATS_BASIC,
) -> Dict[str, float]:
    """Compute the named summary statistics of a value sequence.

    Empty sequences map every statistic to 0.0 (a session with no
    observations of a metric carries no signal; zeros keep the feature
    matrix rectangular without NaN handling downstream).

    All requested percentiles are computed in a single
    ``np.percentile`` call — identical values to per-stat calls (same
    interpolation on the same data), but one partition instead of up to
    eleven.  This sits on the per-record hot path of every feature
    build, online and offline.
    """
    arr = _as_float_array(values)
    arr = arr[np.isfinite(arr)]
    if arr.size == 0:
        return {stat: 0.0 for stat in stats}
    percentile_stats = [s for s in stats if s.startswith("p")]
    fused: Dict[str, float] = {}
    if percentile_stats:
        points = np.percentile(arr, [float(s[1:]) for s in percentile_stats])
        fused = dict(zip(percentile_stats, points))
    return {
        stat: float(fused[stat]) if stat in fused else _single_stat(arr, stat)
        for stat in stats
    }


@dataclass
class Ecdf:
    """Empirical CDF: sorted support points and cumulative probabilities."""

    x: np.ndarray
    y: np.ndarray

    def __call__(self, value: float) -> float:
        """P(X <= value) under the empirical distribution."""
        if self.x.size == 0:
            return 0.0
        return float(np.searchsorted(self.x, value, side="right") / self.x.size)

    def quantile(self, q: float) -> float:
        """Smallest support point with cumulative probability >= q."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.x.size == 0:
            raise ValueError("empty ECDF has no quantiles")
        idx = int(np.ceil(q * self.x.size)) - 1
        return float(self.x[max(0, idx)])


def ecdf(values: Sequence[float]) -> Ecdf:
    """Build the empirical CDF of ``values`` (NaNs dropped)."""
    arr = _as_float_array(values)
    arr = arr[np.isfinite(arr)]
    x = np.sort(arr)
    n = x.size
    y = np.arange(1, n + 1, dtype=float) / n if n else np.empty(0)
    return Ecdf(x=x, y=y)
