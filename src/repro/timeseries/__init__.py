"""Time-series substrate: CUSUM change detection, summary statistics,
ECDFs and the paper's Δsize × Δt switch signal."""

from .cusum import CusumResult, cusum_score, cusum_series, detect_changes
from .detection import (
    DEFAULT_STARTUP_SKIP_S,
    delta_series,
    product_series,
    switch_score,
)
from .stats import (
    SUMMARY_STATS_BASIC,
    SUMMARY_STATS_EXTENDED,
    Ecdf,
    ecdf,
    summary_statistics,
)

__all__ = [
    "CusumResult",
    "cusum_series",
    "cusum_score",
    "detect_changes",
    "delta_series",
    "product_series",
    "switch_score",
    "DEFAULT_STARTUP_SKIP_S",
    "SUMMARY_STATS_BASIC",
    "SUMMARY_STATS_EXTENDED",
    "summary_statistics",
    "Ecdf",
    "ecdf",
]
