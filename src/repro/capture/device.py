"""Instrumented-client ground truth (the §5.1 Android application).

For the encrypted evaluation the paper cannot read ground truth from
URIs, so it instruments a device: an app that launches YouTube videos,
reads playback state from the device log, and hooks the request-URL
construction method to recover per-segment metadata — all without
touching the TLS path.

:class:`DeviceLogger` plays that role for simulated sessions: it
produces per-segment records and a per-session playback summary from
the player's own state, i.e. from *above* the encryption boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.streaming.session import VideoSession

__all__ = ["SegmentRecord", "PlaybackSummary", "DeviceLogger"]


@dataclass(frozen=True)
class SegmentRecord:
    """One hooked request: §5.2's ground-truth dataset row.

    "Each entry in the ground truth dataset corresponds to a unique
    segment and the video session ID which the segment belongs to, the
    timestamp that marks the beginning of the chunk download, a field
    to indicate if it is an audio or video segment, the total number
    and duration of the stalls observed in the session and finally its
    quality representation."
    """

    session_id: str
    timestamp_s: float
    kind: str
    resolution_p: int
    itag: int
    session_stall_count: int
    session_stall_duration_s: float


@dataclass(frozen=True)
class PlaybackSummary:
    """Per-session playback log extracted from the device."""

    session_id: str
    video_id: str
    started: bool
    abandoned: bool
    stall_count: int
    stall_duration_s: float
    total_duration_s: float
    chunk_count: int


class DeviceLogger:
    """Extracts ground truth from sessions the instrumented device played."""

    def segment_records(
        self, session: VideoSession, start_epoch_s: float = 0.0
    ) -> List[SegmentRecord]:
        """One record per hooked segment request."""
        records = []
        for chunk in session.chunks:
            records.append(
                SegmentRecord(
                    session_id=session.session_id,
                    timestamp_s=start_epoch_s + chunk.request_s,
                    kind=chunk.kind,
                    resolution_p=chunk.resolution_p,
                    itag=chunk.quality.itag,
                    session_stall_count=session.stall_count,
                    session_stall_duration_s=session.stall_duration_s,
                )
            )
        return records

    def playback_summary(self, session: VideoSession) -> PlaybackSummary:
        """The per-session log-derived summary."""
        return PlaybackSummary(
            session_id=session.session_id,
            video_id=session.video.video_id,
            started=session.startup_delay_s is not None,
            abandoned=session.abandoned,
            stall_count=session.stall_count,
            stall_duration_s=session.stall_duration_s,
            total_duration_s=session.total_duration_s,
            chunk_count=len(session.chunks),
        )
