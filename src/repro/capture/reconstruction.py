"""Encrypted session reconstruction (§5.2 heuristic).

Encrypted weblogs carry no session id, so segments must be regrouped
into sessions from traffic shape alone.  The paper's three steps:

1. "Identify the traffic that corresponds to a single subscriber and
   remove all requests that do not belong to YouTube by filtering out
   those that have domain names not related to the service."
2. "Look for the unique HTTP traffic patterns that take place at the
   beginning of a new video session [...] requests to m.youtube.com and
   i.ytimg.com which are responsible for downloading multiple web
   objects such as HTML, scripts and images."
3. "Longer periods without traffic that correspond to the time between
   consecutive sessions are identified in order to clearly define the
   beginning and ending of each session."

The known limitation is preserved too: parallel sessions of one
subscriber interleave and cannot be separated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List

from repro.obs import get_registry, trace

from .weblog import WeblogEntry

__all__ = [
    "ReconstructedSession",
    "SessionReconstructor",
    "is_youtube_host",
    "is_youtube_ip",
]

_YOUTUBE_SUFFIXES = (".youtube.com", ".googlevideo.com", ".ytimg.com")
_SIGNALLING_PAGE_HOSTS = ("m.youtube.com", "www.youtube.com")

#: Address space the simulated Google CDN lives in (see
#: :func:`repro.capture.proxy.server_ip_for`).  With encrypted SNI
#: (TLS ECH) the IP prefix is the only service fingerprint left.
_YOUTUBE_IP_PREFIX = "173.194."

_REG = get_registry()
_SESSIONS_RECONSTRUCTED = _REG.counter(
    "repro_capture_sessions_reconstructed_total",
    "Encrypted sessions regrouped by the reconstruction heuristic.",
    labelnames=("mode",),
)
_SESSIONS_DISCARDED = _REG.counter(
    "repro_capture_sessions_discarded_total",
    "Reconstructed groups dropped for having too few media chunks.",
    labelnames=("mode",),
)
_CHUNKS_RECONSTRUCTED = _REG.counter(
    "repro_capture_chunks_reconstructed_total",
    "Media chunks placed into reconstructed sessions.",
    labelnames=("mode",),
)


def is_youtube_host(server_name: str) -> bool:
    """Whether a server name belongs to the YouTube service."""
    name = server_name.lower()
    return name.endswith(_YOUTUBE_SUFFIXES) or name in (
        "youtube.com",
        "googlevideo.com",
        "ytimg.com",
    )


def is_youtube_ip(server_ip: str) -> bool:
    """Whether a server IP falls in the service's address space.

    The ECH-era fallback: when the SNI itself is encrypted, prefix
    matching against published CDN ranges is what remains.  Coarser
    than SNI — any service hosted in the same ranges matches too.
    """
    return server_ip.startswith(_YOUTUBE_IP_PREFIX)


def _is_media_host(server_name: str) -> bool:
    return server_name.lower().endswith(".googlevideo.com")


def _is_page_host(server_name: str) -> bool:
    return server_name.lower() in _SIGNALLING_PAGE_HOSTS


@dataclass
class ReconstructedSession:
    """One regrouped encrypted session."""

    media: List[WeblogEntry] = field(default_factory=list)
    signalling: List[WeblogEntry] = field(default_factory=list)

    @property
    def start_s(self) -> float:
        entries = self.signalling + self.media
        return min(e.timestamp_s for e in entries)

    @property
    def end_s(self) -> float:
        entries = self.signalling + self.media
        return max(e.arrival_s for e in entries)

    @property
    def chunk_count(self) -> int:
        return len(self.media)


class SessionReconstructor:
    """Groups a subscriber's encrypted weblogs into video sessions.

    Parameters
    ----------
    idle_gap_s:
        A silence longer than this between consecutive YouTube entries
        closes the current session.
    min_media_chunks:
        Groups with fewer media entries are discarded (page visits that
        never started a playback).
    use_sni:
        With True (default) the service filter and the media/signalling
        distinction use the TLS SNI, as in the paper.  With False the
        reconstructor operates in ECH mode: the service filter matches
        the CDN IP prefix and — since signalling hosts are no longer
        distinguishable — sessions split on idle gaps and a size
        heuristic only (small transactions are treated as signalling).
    """

    #: ECH mode: transactions at most this large count as signalling.
    SIGNALLING_MAX_BYTES = 150_000

    def __init__(
        self,
        idle_gap_s: float = 30.0,
        min_media_chunks: int = 3,
        use_sni: bool = True,
    ):
        if idle_gap_s <= 0:
            raise ValueError("idle gap must be positive")
        if min_media_chunks < 1:
            raise ValueError("min_media_chunks must be >= 1")
        self.idle_gap_s = idle_gap_s
        self.min_media_chunks = min_media_chunks
        self.use_sni = use_sni

    def _is_service(self, entry: WeblogEntry) -> bool:
        if self.use_sni:
            return is_youtube_host(entry.server_name)
        return is_youtube_ip(entry.server_ip)

    def _is_media(self, entry: WeblogEntry) -> bool:
        if self.use_sni:
            return _is_media_host(entry.server_name)
        return entry.object_bytes > self.SIGNALLING_MAX_BYTES

    def _is_page(self, entry: WeblogEntry) -> bool:
        if self.use_sni:
            return _is_page_host(entry.server_name)
        return False    # page requests are indistinguishable under ECH

    def reconstruct(
        self, entries: Iterable[WeblogEntry]
    ) -> List[ReconstructedSession]:
        """Run the 3-step heuristic over one subscriber's weblogs."""
        with trace("capture.reconstruct") as span:
            sessions = self._reconstruct(entries)
            span.add("sessions", len(sessions))
            span.add("chunks", sum(s.chunk_count for s in sessions))
        return sessions

    def _reconstruct(
        self, entries: Iterable[WeblogEntry]
    ) -> List[ReconstructedSession]:
        # Step 1: service filter.
        youtube = sorted(
            (e for e in entries if self._is_service(e)),
            key=lambda e: e.timestamp_s,
        )

        sessions: List[ReconstructedSession] = []
        current: ReconstructedSession = None
        last_time: float = None

        for entry in youtube:
            gap_break = (
                last_time is not None
                and entry.timestamp_s - last_time > self.idle_gap_s
            )
            # Step 2: a watch-page request after media activity marks a
            # new session even without an idle gap (back-to-back videos).
            page_break = (
                current is not None
                and self._is_page(entry)
                and current.media
            )
            if current is None or gap_break or page_break:
                if current is not None:
                    sessions.append(current)
                current = ReconstructedSession()
            if self._is_media(entry):
                current.media.append(entry)
            else:
                current.signalling.append(entry)
            last_time = entry.arrival_s

        if current is not None:
            sessions.append(current)

        # Drop page visits that never played media.
        kept = [s for s in sessions if len(s.media) >= self.min_media_chunks]
        mode = "sni" if self.use_sni else "ech"
        _SESSIONS_RECONSTRUCTED.labels(mode=mode).inc(len(kept))
        _SESSIONS_DISCARDED.labels(mode=mode).inc(len(sessions) - len(kept))
        _CHUNKS_RECONSTRUCTED.labels(mode=mode).inc(
            sum(s.chunk_count for s in kept)
        )
        return kept
