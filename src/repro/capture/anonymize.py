"""Weblog anonymisation (§3.1).

"All the data is anonymized before the extraction by removing all
private information such as user agents, subscriber and handset
identifiers, MAC and IP addresses and so on.  The only identifier which
is preserved is the unique 16-character video session ID."

This module applies the same policy to simulated weblogs: subscriber
identifiers are replaced by keyed pseudonyms (stable within one run so
sessions can still be grouped per subscriber, unlinkable across runs),
client-identifying fields are dropped, and URIs keep only the
measurement-relevant parameters.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
from dataclasses import replace
from typing import Iterable, List, Optional
from urllib.parse import parse_qs, urlencode, urlparse, urlunparse

from .weblog import WeblogEntry

__all__ = ["Anonymizer", "KEPT_URI_PARAMS"]

#: URI parameters preserved by anonymisation — exactly the ground-truth
#: channel of Table 1 (itag/resolution, session id, playback stats) plus
#: what feature extraction needs.  Everything else (device, locale, user
#: tokens) is dropped.
KEPT_URI_PARAMS = frozenset(
    {
        "id",
        "itag",
        "cpn",
        "mime",
        "range",
        "dur",
        "clen",
        "docid",
        "cmt",
        "state",
        "rebuf_count",
        "rebuf_dur",
        "v",
    }
)


class Anonymizer:
    """Keyed-pseudonym anonymiser for weblog streams.

    Parameters
    ----------
    key:
        HMAC key for subscriber pseudonyms. A fresh random key per run
        (the default) makes pseudonyms unlinkable across runs while
        keeping them stable within one run.
    """

    def __init__(self, key: Optional[bytes] = None) -> None:
        self._key = key if key is not None else secrets.token_bytes(16)

    def pseudonym(self, subscriber_id: str) -> str:
        """Stable keyed pseudonym of a subscriber identifier."""
        digest = hmac.new(
            self._key, subscriber_id.encode(), hashlib.sha256
        ).hexdigest()
        return f"anon-{digest[:12]}"

    def _scrub_uri(self, uri: Optional[str]) -> Optional[str]:
        if uri is None:
            return None
        parsed = urlparse(uri)
        params = parse_qs(parsed.query)
        kept = {
            name: values[0]
            for name, values in params.items()
            if name in KEPT_URI_PARAMS
        }
        return urlunparse(parsed._replace(query=urlencode(kept)))

    def anonymize_entry(self, entry: WeblogEntry) -> WeblogEntry:
        """Anonymised copy of one weblog entry."""
        return replace(
            entry,
            subscriber_id=self.pseudonym(entry.subscriber_id),
            uri=self._scrub_uri(entry.uri),
        )

    def anonymize(self, entries: Iterable[WeblogEntry]) -> List[WeblogEntry]:
        """Anonymised copy of a weblog stream."""
        return [self.anonymize_entry(entry) for entry in entries]
