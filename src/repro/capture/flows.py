"""Packet-level capture: monitoring without a proxy.

The paper's vantage point is a web proxy that annotates each HTTP
transaction with TCP statistics.  Many operators monitor from a plain
tap instead: all they see is the packet stream of each TLS flow —
timestamps, sizes and directions; no transaction log, no TCP-stack
annotations.

This module provides that harder deployment path:

* :class:`FlowSynthesizer` turns a simulated session's chunk downloads
  into downstream/upstream packet streams (request packet up, response
  bytes paced across the measured transfer window);
* :class:`FlowReassembler` does the inverse from packets alone —
  request packets delimit transactions, response packets are summed to
  chunk sizes, and the request→first-byte gap estimates the RTT;
* :func:`record_from_packets` assembles the result into a standard
  :class:`~repro.datasets.schema.SessionRecord` (transport annotations
  the tap cannot see — loss, retransmissions, BIF, BDP — are zero).

The flow-level experiment (``benchmarks/test_bench_flow_level.py``)
quantifies what losing the proxy's TCP annotations costs the stall
model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

from repro.datasets.schema import SessionRecord
from repro.streaming.session import VideoSession

__all__ = [
    "Packet",
    "FlowSynthesizer",
    "Transaction",
    "FlowReassembler",
    "record_from_packets",
]

_MTU_PAYLOAD = 1400


@dataclass(frozen=True)
class Packet:
    """One observed packet of a flow (tap view)."""

    timestamp_s: float
    size_bytes: int
    downstream: bool          # server -> client

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("packet size must be positive")


class FlowSynthesizer:
    """Expands a session's chunk transfers into a packet stream.

    Response bytes are paced across the transfer's measured duration
    with a slow-start-ish ramp (early packets sparser), matching how
    the round-based TCP model actually delivered them.
    """

    def __init__(self, rng: np.random.Generator, mtu_payload: int = _MTU_PAYLOAD):
        if mtu_payload <= 0:
            raise ValueError("MTU payload must be positive")
        self.rng = rng
        self.mtu_payload = mtu_payload

    def synthesize(self, session: VideoSession) -> List[Packet]:
        """Packet stream of one session's media flow(s), time-ordered."""
        packets: List[Packet] = []
        for chunk in session.chunks:
            transfer = chunk.transfer
            # the HTTP request: one small upstream packet
            packets.append(
                Packet(
                    timestamp_s=transfer.start_s,
                    size_bytes=int(self.rng.integers(200, 700)),
                    downstream=False,
                )
            )
            n_packets = max(1, int(np.ceil(chunk.size_bytes / self.mtu_payload)))
            # quadratic ramp: few packets early (slow start), dense
            # later; the first data packet arrives one RTT after the
            # request (fraction 0)
            fractions = np.sqrt(np.linspace(0.0, 1.0, n_packets))
            first_byte_gap = min(
                transfer.rtt_avg_ms / 1000.0, transfer.duration_s * 0.5
            )
            span = max(1e-4, transfer.duration_s - first_byte_gap)
            times = transfer.start_s + first_byte_gap + fractions * span
            remaining = chunk.size_bytes
            for t in times:
                size = min(self.mtu_payload, remaining)
                if size <= 0:
                    break
                packets.append(
                    Packet(timestamp_s=float(t), size_bytes=size, downstream=True)
                )
                remaining -= size
        packets.sort(key=lambda p: p.timestamp_s)
        return packets


@dataclass
class Transaction:
    """One reassembled request/response exchange."""

    request_s: float
    first_byte_s: float
    last_byte_s: float
    bytes: int
    packets: int

    @property
    def duration_s(self) -> float:
        return max(0.0, self.last_byte_s - self.request_s)

    @property
    def rtt_estimate_ms(self) -> float:
        """Request -> first response byte gap, the tap's RTT proxy."""
        return max(0.0, (self.first_byte_s - self.request_s) * 1000.0)


class FlowReassembler:
    """Recovers transactions from a raw packet stream.

    A new transaction opens at each upstream (request) packet; all
    downstream bytes until the next request belong to it.  Downstream
    data with no preceding request (mid-capture start) opens an
    anonymous transaction.
    """

    def reassemble(self, packets: Iterable[Packet]) -> List[Transaction]:
        transactions: List[Transaction] = []
        current: Transaction = None
        for packet in sorted(packets, key=lambda p: p.timestamp_s):
            if not packet.downstream:
                if current is not None and current.bytes > 0:
                    transactions.append(current)
                current = Transaction(
                    request_s=packet.timestamp_s,
                    first_byte_s=packet.timestamp_s,
                    last_byte_s=packet.timestamp_s,
                    bytes=0,
                    packets=0,
                )
                continue
            if current is None:
                current = Transaction(
                    request_s=packet.timestamp_s,
                    first_byte_s=packet.timestamp_s,
                    last_byte_s=packet.timestamp_s,
                    bytes=0,
                    packets=0,
                )
            if current.bytes == 0:
                current.first_byte_s = packet.timestamp_s
            current.bytes += packet.size_bytes
            current.packets += 1
            current.last_byte_s = packet.timestamp_s
        if current is not None and current.bytes > 0:
            transactions.append(current)
        return transactions


def record_from_packets(
    packets: Sequence[Packet],
    session_id: str = "flow-level",
    min_transaction_bytes: int = 2000,
) -> SessionRecord:
    """Build a SessionRecord from a raw packet stream.

    Tiny transactions (signalling, stats reports) are dropped via
    ``min_transaction_bytes``; transport annotations a tap cannot
    measure are zero-filled, so only timing/size features carry signal.
    """
    transactions = [
        t
        for t in FlowReassembler().reassemble(packets)
        if t.bytes >= min_transaction_bytes
    ]
    if not transactions:
        raise ValueError("no media-sized transactions in the packet stream")
    n = len(transactions)
    rtts = np.array([t.rtt_estimate_ms for t in transactions])
    return SessionRecord(
        session_id=session_id,
        encrypted=True,
        timestamps=np.array([t.last_byte_s for t in transactions]),
        sizes=np.array([float(t.bytes) for t in transactions]),
        transactions=np.array([t.duration_s for t in transactions]),
        rtt_min=rtts,
        rtt_avg=rtts,
        rtt_max=rtts,
        bdp=np.zeros(n),
        bif_avg=np.zeros(n),
        bif_max=np.zeros(n),
        loss_pct=np.zeros(n),
        retx_pct=np.zeros(n),
    )
