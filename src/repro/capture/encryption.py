"""Encrypted view of a weblog stream.

With end-to-end TLS the proxy keeps seeing one log line per HTTP
transaction (sizes, timings and TCP statistics are measured below the
encryption layer) but loses everything the URI carried: session id,
itag/resolution, stall reports.  The TLS SNI still reveals the server
name — which is all the reconstruction heuristic needs.

:func:`encrypt_view` converts cleartext weblogs into that degraded
view, which lets experiments evaluate the exact same sessions in both
conditions (the paper instead collects a second dataset; we can do both).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, List

from .weblog import WeblogEntry

__all__ = ["encrypt_view"]


def encrypt_view(entries: Iterable[WeblogEntry]) -> List[WeblogEntry]:
    """Strip URIs and mark entries encrypted (port moves to 443)."""
    out: List[WeblogEntry] = []
    for entry in entries:
        out.append(
            replace(entry, uri=None, encrypted=True, server_port=443)
        )
    return out
