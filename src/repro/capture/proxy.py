"""Web-proxy capture: turning simulated sessions into weblog streams.

The proxy sees every HTTP(S) transaction of a subscriber.  For one
video session that is:

* the signalling burst that builds the watch page (HTML, scripts,
  thumbnails from m.youtube.com / i.ytimg.com — the pattern the
  encrypted-session reconstruction keys on),
* one entry per media-segment download with transport annotations,
* periodic playback stats reports to s.youtube.com whose URI carries
  the cumulative stall ground truth (cleartext only).

Entries are produced in timestamp order.  With ``encrypted=True`` the
same transactions appear but with ``uri=None`` — exactly the §5.2
situation where "information such as the session ID, the stall
characteristics and the quality level of each chunk are not available".

Randomness discipline
---------------------
All of a session's capture randomness is drawn up front by
:func:`draw_session_randoms` — host pick, object/report sizes, and an
unconditional cached+compressed roll pair per signalling entry — so the
per-session RNG consumption depends only on the report count, never on
which cache rolls hit.  That fixed consumption is what lets the
vectorized corpus engine (:mod:`repro.datasets.genx`) mirror the
capture stream per session and reproduce these entries bit for bit.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.obs import get_registry
from repro.streaming.buffer import StallEvent
from repro.streaming.session import VideoSession

from .uri import (
    pick_video_host,
    segment_uri,
    stats_report_uri,
    thumbnail_uri,
    watch_page_uri,
)
from .weblog import WeblogEntry

__all__ = [
    "WebProxy",
    "server_ip_for",
    "SessionDraws",
    "draw_session_randoms",
    "report_times_for",
    "stall_stats_at",
    "DEFAULT_CACHE_MARK_RATE",
]

#: Playback reports are sent roughly this often during playback.
_REPORT_INTERVAL_S = 30.0

#: Default fraction of signalling objects served from the proxy cache.
DEFAULT_CACHE_MARK_RATE = 0.05

_REG = get_registry()
_SESSIONS_OBSERVED = _REG.counter(
    "repro_capture_sessions_observed_total",
    "Video sessions that passed through the capture proxy.",
    labelnames=("encrypted",),
)
_ENTRIES_OBSERVED = _REG.counter(
    "repro_capture_weblog_entries_total",
    "Weblog entries emitted by the capture proxy.",
    labelnames=("encrypted",),
)
_BYTES_OBSERVED = _REG.counter(
    "repro_capture_bytes_observed_total",
    "Object bytes seen by the capture proxy.",
    labelnames=("encrypted",),
)


@lru_cache(maxsize=None)
def server_ip_for(host: str) -> str:
    """Deterministic fake public IP for a hostname.

    Google-service hosts land in the (simulated) Google address space
    173.194.0.0/16; everything else gets an address derived from its
    name in unrelated space — so IP-prefix service fingerprinting (the
    ECH-era reconstruction mode) behaves like it would in the wild.
    The handful of distinct hostnames makes this worth memoising.
    """
    digest = hashlib.sha1(host.encode()).digest()
    name = host.lower()
    if name.endswith((".googlevideo.com", ".youtube.com", ".ytimg.com")) or name in (
        "googlevideo.com",
        "youtube.com",
        "ytimg.com",
    ):
        return f"173.194.{digest[0]}.{digest[1]}"
    return f"104.{digest[0] % 128 + 16}.{digest[1]}.{digest[2]}"


def report_times_for(total_duration_s: float) -> List[float]:
    """Report timestamps of a session: every 30 s plus a final report."""
    times = np.arange(
        _REPORT_INTERVAL_S, total_duration_s, _REPORT_INTERVAL_S
    ).tolist()
    times.append(total_duration_s)
    return times


def stall_stats_at(
    stalls: Sequence[StallEvent], t: float
) -> Tuple[int, float]:
    """Cumulative (count, duration) of stalls begun by session time ``t``."""
    count = sum(1 for s in stalls if s.start_s <= t)
    duration = sum(
        min(s.duration_s, max(0.0, t - s.start_s))
        for s in stalls
        if s.start_s <= t
    )
    return count, duration


@dataclass(frozen=True)
class SessionDraws:
    """All capture-side randomness of one observed session.

    ``cached``/``compressed`` flags cover the signalling entries in
    emission order: the watch page, then the page objects, then the
    playback reports.
    """

    video_host: str
    page_size: int
    object_sizes: List[int]
    report_sizes: List[int]
    cached: np.ndarray
    compressed: np.ndarray


def draw_session_randoms(
    rng: np.random.Generator,
    n_reports: int,
    cache_mark_rate: float = DEFAULT_CACHE_MARK_RATE,
) -> SessionDraws:
    """Draw one session's capture randomness in a fixed batched order.

    The compressed roll is drawn for every signalling entry (not only
    cache hits), so consumption never depends on the cache outcome.
    """
    video_host = pick_video_host(rng)
    page_size = int(rng.integers(30_000, 120_000))
    n_objects = int(rng.integers(2, 6))
    object_sizes = rng.integers(5_000, 60_000, size=n_objects).tolist()
    report_sizes = rng.integers(300, 900, size=n_reports).tolist()
    rolls = rng.random(2 * (1 + n_objects + n_reports))
    cached = rolls[0::2] < cache_mark_rate
    compressed = cached & (rolls[1::2] < 0.5)
    return SessionDraws(
        video_host=video_host,
        page_size=page_size,
        object_sizes=object_sizes,
        report_sizes=report_sizes,
        cached=cached,
        compressed=compressed,
    )


def _record_observation(
    encrypted: bool, n_sessions: int, n_entries: int, n_bytes: int
) -> None:
    """Export capture counters (shared by both corpus engines)."""
    mode = "true" if encrypted else "false"
    _SESSIONS_OBSERVED.labels(encrypted=mode).inc(n_sessions)
    _ENTRIES_OBSERVED.labels(encrypted=mode).inc(n_entries)
    _BYTES_OBSERVED.labels(encrypted=mode).inc(n_bytes)


class WebProxy:
    """Observes sessions and emits weblog entries.

    Parameters
    ----------
    rng:
        Drives signalling-object sizes and the cache-hit marks; callers
        that keep per-session streams pass a generator to
        :meth:`observe` instead.
    cache_mark_rate:
        Fraction of signalling objects served from the proxy cache
        (§3.3 removes those during preparation).
    """

    def __init__(
        self,
        rng: Optional[np.random.Generator] = None,
        cache_mark_rate: float = DEFAULT_CACHE_MARK_RATE,
    ):
        if not 0.0 <= cache_mark_rate < 1.0:
            raise ValueError("cache_mark_rate must be in [0, 1)")
        self.rng = rng
        self.cache_mark_rate = cache_mark_rate

    def _signalling_entry(
        self,
        subscriber_id: str,
        host: str,
        uri: Optional[str],
        timestamp_s: float,
        size: int,
        encrypted: bool,
        rtt_ms: float,
        cached: bool,
        compressed: bool,
    ) -> WeblogEntry:
        transaction = max(0.01, size * 8.0 / 1e6 + rtt_ms / 1000.0)
        return WeblogEntry(
            subscriber_id=subscriber_id,
            timestamp_s=timestamp_s,
            server_name=host,
            server_ip=server_ip_for(host),
            server_port=443 if encrypted else 80,
            object_bytes=size,
            transaction_s=transaction,
            rtt_min_ms=rtt_ms * 0.9,
            rtt_avg_ms=rtt_ms,
            rtt_max_ms=rtt_ms * 1.2,
            bdp_bytes=0.0,
            bif_avg_bytes=float(min(size, 14600)),
            bif_max_bytes=float(min(size, 14600)),
            loss_pct=0.0,
            retx_pct=0.0,
            encrypted=encrypted,
            uri=None if encrypted else uri,
            cached=cached,
            compressed=compressed,
        )

    def build_entries(
        self,
        session: VideoSession,
        subscriber_id: str,
        start_epoch_s: float,
        encrypted: bool,
        draws: SessionDraws,
        report_times: List[float],
    ) -> List[WeblogEntry]:
        """Deterministically build one session's entries from ``draws``."""
        entries: List[WeblogEntry] = []
        rtt_hint = (
            session.chunks[0].transfer.rtt_avg_ms if session.chunks else 50.0
        )
        cached = draws.cached.tolist()
        compressed = draws.compressed.tolist()

        # --- Signalling burst while the watch page is constructed.
        page_time = start_epoch_s
        entries.append(
            self._signalling_entry(
                subscriber_id,
                "m.youtube.com",
                watch_page_uri(session.video.video_id),
                page_time,
                draws.page_size,
                encrypted,
                rtt_hint,
                cached[0],
                compressed[0],
            )
        )
        for k, size in enumerate(draws.object_sizes):
            host = "i.ytimg.com" if k % 2 == 0 else "s.ytimg.com"
            uri = thumbnail_uri(session.video.video_id, name=f"obj{k}")
            entries.append(
                self._signalling_entry(
                    subscriber_id,
                    host,
                    uri,
                    page_time + 0.05 * (k + 1),
                    size,
                    encrypted,
                    rtt_hint,
                    cached[1 + k],
                    compressed[1 + k],
                )
            )

        # --- Media segments with transport annotations.
        video_host = draws.video_host
        video_ip = server_ip_for(video_host)
        range_cursor = 0
        for chunk in session.chunks:
            transfer = chunk.transfer
            uri = (
                None
                if encrypted
                else segment_uri(
                    video_host,
                    session.video.video_id,
                    session.session_id,
                    chunk,
                    range_start=range_cursor,
                )
            )
            range_cursor += chunk.size_bytes
            entries.append(
                WeblogEntry(
                    subscriber_id=subscriber_id,
                    timestamp_s=start_epoch_s + transfer.start_s,
                    server_name=video_host,
                    server_ip=video_ip,
                    server_port=443 if encrypted else 80,
                    object_bytes=chunk.size_bytes,
                    transaction_s=transfer.duration_s,
                    rtt_min_ms=transfer.rtt_min_ms,
                    rtt_avg_ms=transfer.rtt_avg_ms,
                    rtt_max_ms=transfer.rtt_max_ms,
                    bdp_bytes=transfer.bdp_bytes,
                    bif_avg_bytes=transfer.bif_avg_bytes,
                    bif_max_bytes=transfer.bif_max_bytes,
                    loss_pct=transfer.loss_pct,
                    retx_pct=transfer.retx_pct,
                    encrypted=encrypted,
                    uri=uri,
                )
            )

        # --- Periodic playback reports carrying cumulative stall stats.
        base = 1 + len(draws.object_sizes)
        for j, t in enumerate(report_times):
            count, duration = stall_stats_at(session.stalls, t)
            uri = (
                None
                if encrypted
                else stats_report_uri(
                    session.session_id,
                    session.video.video_id,
                    playback_position_s=t,
                    stall_count=count,
                    stall_duration_s=duration,
                    state="ended" if t >= session.total_duration_s else "playing",
                )
            )
            entries.append(
                self._signalling_entry(
                    subscriber_id,
                    "s.youtube.com",
                    uri,
                    start_epoch_s + t,
                    draws.report_sizes[j],
                    encrypted,
                    rtt_hint,
                    cached[base + j],
                    compressed[base + j],
                )
            )

        entries.sort(key=lambda e: e.timestamp_s)
        return entries

    def observe(
        self,
        session: VideoSession,
        subscriber_id: str,
        start_epoch_s: float = 0.0,
        encrypted: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> List[WeblogEntry]:
        """Weblog entries of one session, in timestamp order.

        ``rng`` overrides the proxy's own generator for this session
        (the corpus engines keep capture randomness in dedicated
        per-session streams).
        """
        generator = rng if rng is not None else self.rng
        if generator is None:
            raise ValueError("WebProxy needs an rng (constructor or observe)")
        report_times = report_times_for(session.total_duration_s)
        draws = draw_session_randoms(
            generator, len(report_times), self.cache_mark_rate
        )
        entries = self.build_entries(
            session, subscriber_id, start_epoch_s, encrypted, draws, report_times
        )
        _record_observation(
            encrypted, 1, len(entries), sum(e.object_bytes for e in entries)
        )
        return entries
