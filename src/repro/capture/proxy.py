"""Web-proxy capture: turning simulated sessions into weblog streams.

The proxy sees every HTTP(S) transaction of a subscriber.  For one
video session that is:

* the signalling burst that builds the watch page (HTML, scripts,
  thumbnails from m.youtube.com / i.ytimg.com — the pattern the
  encrypted-session reconstruction keys on),
* one entry per media-segment download with transport annotations,
* periodic playback stats reports to s.youtube.com whose URI carries
  the cumulative stall ground truth (cleartext only).

Entries are produced in timestamp order.  With ``encrypted=True`` the
same transactions appear but with ``uri=None`` — exactly the §5.2
situation where "information such as the session ID, the stall
characteristics and the quality level of each chunk are not available".
"""

from __future__ import annotations

import hashlib
from typing import List, Optional

import numpy as np

from repro.obs import get_registry
from repro.streaming.session import VideoSession

from .uri import (
    pick_video_host,
    segment_uri,
    stats_report_uri,
    thumbnail_uri,
    watch_page_uri,
)
from .weblog import WeblogEntry

__all__ = ["WebProxy", "server_ip_for"]

#: Playback reports are sent roughly this often during playback.
_REPORT_INTERVAL_S = 30.0

_REG = get_registry()
_SESSIONS_OBSERVED = _REG.counter(
    "repro_capture_sessions_observed_total",
    "Video sessions that passed through the capture proxy.",
    labelnames=("encrypted",),
)
_ENTRIES_OBSERVED = _REG.counter(
    "repro_capture_weblog_entries_total",
    "Weblog entries emitted by the capture proxy.",
    labelnames=("encrypted",),
)
_BYTES_OBSERVED = _REG.counter(
    "repro_capture_bytes_observed_total",
    "Object bytes seen by the capture proxy.",
    labelnames=("encrypted",),
)


def server_ip_for(host: str) -> str:
    """Deterministic fake public IP for a hostname.

    Google-service hosts land in the (simulated) Google address space
    173.194.0.0/16; everything else gets an address derived from its
    name in unrelated space — so IP-prefix service fingerprinting (the
    ECH-era reconstruction mode) behaves like it would in the wild.
    """
    digest = hashlib.sha1(host.encode()).digest()
    name = host.lower()
    if name.endswith((".googlevideo.com", ".youtube.com", ".ytimg.com")) or name in (
        "googlevideo.com",
        "youtube.com",
        "ytimg.com",
    ):
        return f"173.194.{digest[0]}.{digest[1]}"
    return f"104.{digest[0] % 128 + 16}.{digest[1]}.{digest[2]}"


class WebProxy:
    """Observes sessions and emits weblog entries.

    Parameters
    ----------
    rng:
        Drives signalling-object sizes and the cache-hit marks.
    cache_mark_rate:
        Fraction of signalling objects served from the proxy cache
        (§3.3 removes those during preparation).
    """

    def __init__(self, rng: np.random.Generator, cache_mark_rate: float = 0.05):
        if not 0.0 <= cache_mark_rate < 1.0:
            raise ValueError("cache_mark_rate must be in [0, 1)")
        self.rng = rng
        self.cache_mark_rate = cache_mark_rate

    def _signalling_entry(
        self,
        subscriber_id: str,
        host: str,
        uri: Optional[str],
        timestamp_s: float,
        size: int,
        encrypted: bool,
        rtt_ms: float,
    ) -> WeblogEntry:
        transaction = max(0.01, size * 8.0 / 1e6 + rtt_ms / 1000.0)
        cached = bool(self.rng.random() < self.cache_mark_rate)
        return WeblogEntry(
            subscriber_id=subscriber_id,
            timestamp_s=timestamp_s,
            server_name=host,
            server_ip=server_ip_for(host),
            server_port=443 if encrypted else 80,
            object_bytes=size,
            transaction_s=transaction,
            rtt_min_ms=rtt_ms * 0.9,
            rtt_avg_ms=rtt_ms,
            rtt_max_ms=rtt_ms * 1.2,
            bdp_bytes=0.0,
            bif_avg_bytes=float(min(size, 14600)),
            bif_max_bytes=float(min(size, 14600)),
            loss_pct=0.0,
            retx_pct=0.0,
            encrypted=encrypted,
            uri=None if encrypted else uri,
            cached=cached,
            compressed=bool(cached and self.rng.random() < 0.5),
        )

    def observe(
        self,
        session: VideoSession,
        subscriber_id: str,
        start_epoch_s: float = 0.0,
        encrypted: bool = False,
    ) -> List[WeblogEntry]:
        """Weblog entries of one session, in timestamp order."""
        entries: List[WeblogEntry] = []
        video_host = pick_video_host(self.rng)
        rtt_hint = (
            session.chunks[0].transfer.rtt_avg_ms if session.chunks else 50.0
        )

        # --- Signalling burst while the watch page is constructed.
        page_time = start_epoch_s
        entries.append(
            self._signalling_entry(
                subscriber_id,
                "m.youtube.com",
                watch_page_uri(session.video.video_id),
                page_time,
                int(self.rng.integers(30_000, 120_000)),
                encrypted,
                rtt_hint,
            )
        )
        n_objects = int(self.rng.integers(2, 6))
        for k in range(n_objects):
            host = "i.ytimg.com" if k % 2 == 0 else "s.ytimg.com"
            uri = thumbnail_uri(session.video.video_id, name=f"obj{k}")
            entries.append(
                self._signalling_entry(
                    subscriber_id,
                    host,
                    uri,
                    page_time + 0.05 * (k + 1),
                    int(self.rng.integers(5_000, 60_000)),
                    encrypted,
                    rtt_hint,
                )
            )

        # --- Media segments with transport annotations.
        range_cursor = 0
        for chunk in session.chunks:
            transfer = chunk.transfer
            uri = segment_uri(
                video_host,
                session.video.video_id,
                session.session_id,
                chunk,
                range_start=range_cursor,
            )
            range_cursor += chunk.size_bytes
            entries.append(
                WeblogEntry(
                    subscriber_id=subscriber_id,
                    timestamp_s=start_epoch_s + transfer.start_s,
                    server_name=video_host,
                    server_ip=server_ip_for(video_host),
                    server_port=443 if encrypted else 80,
                    object_bytes=chunk.size_bytes,
                    transaction_s=transfer.duration_s,
                    rtt_min_ms=transfer.rtt_min_ms,
                    rtt_avg_ms=transfer.rtt_avg_ms,
                    rtt_max_ms=transfer.rtt_max_ms,
                    bdp_bytes=transfer.bdp_bytes,
                    bif_avg_bytes=transfer.bif_avg_bytes,
                    bif_max_bytes=transfer.bif_max_bytes,
                    loss_pct=transfer.loss_pct,
                    retx_pct=transfer.retx_pct,
                    encrypted=encrypted,
                    uri=None if encrypted else uri,
                )
            )

        # --- Periodic playback reports carrying cumulative stall stats.
        report_times = np.arange(
            _REPORT_INTERVAL_S, session.total_duration_s, _REPORT_INTERVAL_S
        ).tolist()
        report_times.append(session.total_duration_s)
        for t in report_times:
            count = sum(1 for s in session.stalls if s.start_s <= t)
            duration = sum(
                min(s.duration_s, max(0.0, t - s.start_s))
                for s in session.stalls
                if s.start_s <= t
            )
            uri = stats_report_uri(
                session.session_id,
                session.video.video_id,
                playback_position_s=t,
                stall_count=count,
                stall_duration_s=duration,
                state="ended" if t >= session.total_duration_s else "playing",
            )
            entries.append(
                self._signalling_entry(
                    subscriber_id,
                    "s.youtube.com",
                    uri,
                    start_epoch_s + t,
                    int(self.rng.integers(300, 900)),
                    encrypted,
                    rtt_hint,
                )
            )

        entries.sort(key=lambda e: e.timestamp_s)
        mode = "true" if encrypted else "false"
        _SESSIONS_OBSERVED.labels(encrypted=mode).inc()
        _ENTRIES_OBSERVED.labels(encrypted=mode).inc(len(entries))
        _BYTES_OBSERVED.labels(encrypted=mode).inc(
            sum(e.object_bytes for e in entries)
        )
        return entries
