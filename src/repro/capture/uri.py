"""YouTube-like URI synthesis and parsing.

§3.2: the ground truth lives in "the meta-data that are passed as
parameters in the URIs of the HTTP requests" — the ``itag`` encodes the
representation of each segment, the 16-character ``cpn`` (client
playback nonce) identifies the session, and periodic statistical
reports carry playback state including stall counts and durations.

This module synthesises such URIs for the simulated cleartext traffic
and parses them back — the parse side is exactly the reverse
engineering step the paper performs on real weblogs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional
from urllib.parse import parse_qs, quote, urlencode, urlparse

import numpy as np

from repro.streaming.catalog import quality_for_itag
from repro.streaming.segments import ChunkDownload

__all__ = [
    "VIDEO_HOSTS",
    "SIGNALLING_HOSTS",
    "segment_uri",
    "stats_report_uri",
    "watch_page_uri",
    "thumbnail_uri",
    "ParsedSegment",
    "ParsedStatsReport",
    "parse_uri",
]

#: googlevideo CDN edge hostnames (content servers).
VIDEO_HOSTS = (
    "r1---sn-h5q7dnl6.googlevideo.com",
    "r3---sn-h5q7dner.googlevideo.com",
    "r4---sn-4g5ednsl.googlevideo.com",
    "r6---sn-25ge7nsl.googlevideo.com",
)

#: Hosts involved in session signalling (page, scripts, thumbnails, stats).
SIGNALLING_HOSTS = (
    "m.youtube.com",
    "www.youtube.com",
    "i.ytimg.com",
    "s.ytimg.com",
    "s.youtube.com",
)


def pick_video_host(rng: np.random.Generator) -> str:
    """CDN edge assigned to a session (sticky per session in practice)."""
    return str(rng.choice(list(VIDEO_HOSTS)))


def segment_uri(
    host: str,
    video_id: str,
    session_id: str,
    chunk: ChunkDownload,
    range_start: int = 0,
) -> str:
    """URL of one media-segment request, ground truth in the params."""
    params = {
        "id": video_id,
        "itag": str(chunk.quality.itag),
        "cpn": session_id,
        "mime": "video/mp4" if chunk.kind == "video" else "audio/mp4",
        "range": f"{range_start}-{range_start + chunk.size_bytes - 1}",
        "dur": f"{chunk.media_seconds:.3f}",
        "clen": str(chunk.size_bytes),
    }
    return f"https://{host}/videoplayback?{urlencode(params)}"


def stats_report_uri(
    session_id: str,
    video_id: str,
    playback_position_s: float,
    stall_count: int,
    stall_duration_s: float,
    state: str = "playing",
) -> str:
    """Periodic playback report sent by the player to s.youtube.com.

    Carries the cumulative stall statistics since playback began —
    the stall ground truth the paper mines (§3.2 "playback stats").
    """
    params = {
        "cpn": session_id,
        "docid": video_id,
        "cmt": f"{playback_position_s:.1f}",
        "state": state,
        "rebuf_count": str(stall_count),
        "rebuf_dur": f"{stall_duration_s:.2f}",
    }
    return f"https://s.youtube.com/api/stats/watchtime?{urlencode(params)}"


def watch_page_uri(video_id: str) -> str:
    """The HTML watch page requested when a session starts."""
    return f"https://m.youtube.com/watch?v={quote(video_id)}"


def thumbnail_uri(video_id: str, name: str = "hqdefault") -> str:
    """Thumbnail image fetched while the page is constructed."""
    return f"https://i.ytimg.com/vi/{quote(video_id)}/{name}.jpg"


@dataclass(frozen=True)
class ParsedSegment:
    """Ground truth recovered from a segment URI."""

    video_id: str
    session_id: str
    itag: int
    resolution_p: int
    kind: str
    media_seconds: float
    size_bytes: int


@dataclass(frozen=True)
class ParsedStatsReport:
    """Ground truth recovered from a playback report URI."""

    session_id: str
    video_id: str
    playback_position_s: float
    state: str
    stall_count: int
    stall_duration_s: float


def _single(params: Dict[str, list], key: str) -> Optional[str]:
    values = params.get(key)
    return values[0] if values else None


def parse_uri(uri: str):
    """Parse a weblog URI into its ground-truth record.

    Returns a :class:`ParsedSegment`, a :class:`ParsedStatsReport`, or
    ``None`` for signalling/unknown URIs (watch pages, thumbnails,
    scripts carry no per-session ground truth we use).
    """
    parsed = urlparse(uri)
    params = parse_qs(parsed.query)
    if parsed.path == "/videoplayback":
        itag = int(_single(params, "itag"))
        quality = quality_for_itag(itag)
        mime = _single(params, "mime") or "video/mp4"
        return ParsedSegment(
            video_id=_single(params, "id") or "",
            session_id=_single(params, "cpn") or "",
            itag=itag,
            resolution_p=quality.resolution_p,
            kind="video" if mime.startswith("video") else "audio",
            media_seconds=float(_single(params, "dur") or 0.0),
            size_bytes=int(_single(params, "clen") or 0),
        )
    if parsed.path.startswith("/api/stats/"):
        return ParsedStatsReport(
            session_id=_single(params, "cpn") or "",
            video_id=_single(params, "docid") or "",
            playback_position_s=float(_single(params, "cmt") or 0.0),
            state=_single(params, "state") or "unknown",
            stall_count=int(_single(params, "rebuf_count") or 0),
            stall_duration_s=float(_single(params, "rebuf_dur") or 0.0),
        )
    return None
