"""YouTube-like URI synthesis and parsing.

§3.2: the ground truth lives in "the meta-data that are passed as
parameters in the URIs of the HTTP requests" — the ``itag`` encodes the
representation of each segment, the 16-character ``cpn`` (client
playback nonce) identifies the session, and periodic statistical
reports carry playback state including stall counts and durations.

This module synthesises such URIs for the simulated cleartext traffic
and parses them back — the parse side is exactly the reverse
engineering step the paper performs on real weblogs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional
from urllib.parse import quote, unquote_plus

import numpy as np

from repro.streaming.catalog import quality_for_itag
from repro.streaming.segments import ChunkDownload

__all__ = [
    "VIDEO_HOSTS",
    "SIGNALLING_HOSTS",
    "segment_uri",
    "stats_report_uri",
    "watch_page_uri",
    "thumbnail_uri",
    "ParsedSegment",
    "ParsedStatsReport",
    "parse_uri",
]

#: googlevideo CDN edge hostnames (content servers).
VIDEO_HOSTS = (
    "r1---sn-h5q7dnl6.googlevideo.com",
    "r3---sn-h5q7dner.googlevideo.com",
    "r4---sn-4g5ednsl.googlevideo.com",
    "r6---sn-25ge7nsl.googlevideo.com",
)

#: Hosts involved in session signalling (page, scripts, thumbnails, stats).
SIGNALLING_HOSTS = (
    "m.youtube.com",
    "www.youtube.com",
    "i.ytimg.com",
    "s.ytimg.com",
    "s.youtube.com",
)


def pick_video_host(rng: np.random.Generator) -> str:
    """CDN edge assigned to a session (sticky per session in practice)."""
    return VIDEO_HOSTS[int(rng.integers(0, len(VIDEO_HOSTS)))]


def segment_uri(
    host: str,
    video_id: str,
    session_id: str,
    chunk: ChunkDownload,
    range_start: int = 0,
) -> str:
    """URL of one media-segment request, ground truth in the params.

    Every parameter value is already URL-safe (video/session ids use a
    base64url alphabet, the numeric fields are digits with ``.``/``-``)
    except the mime type's ``/``, which is spelled out pre-encoded — so
    the whole URI is a single f-string instead of an ``urlencode`` call
    on the corpus hot path.
    """
    mime = "video%2Fmp4" if chunk.kind == "video" else "audio%2Fmp4"
    end = range_start + chunk.size_bytes - 1
    return (
        f"https://{host}/videoplayback?id={video_id}"
        f"&itag={chunk.quality.itag}&cpn={session_id}&mime={mime}"
        f"&range={range_start}-{end}&dur={chunk.media_seconds:.3f}"
        f"&clen={chunk.size_bytes}"
    )


def stats_report_uri(
    session_id: str,
    video_id: str,
    playback_position_s: float,
    stall_count: int,
    stall_duration_s: float,
    state: str = "playing",
) -> str:
    """Periodic playback report sent by the player to s.youtube.com.

    Carries the cumulative stall statistics since playback began —
    the stall ground truth the paper mines (§3.2 "playback stats").
    """
    return (
        f"https://s.youtube.com/api/stats/watchtime?cpn={session_id}"
        f"&docid={video_id}&cmt={playback_position_s:.1f}&state={state}"
        f"&rebuf_count={stall_count}&rebuf_dur={stall_duration_s:.2f}"
    )


def watch_page_uri(video_id: str) -> str:
    """The HTML watch page requested when a session starts."""
    return f"https://m.youtube.com/watch?v={quote(video_id)}"


def thumbnail_uri(video_id: str, name: str = "hqdefault") -> str:
    """Thumbnail image fetched while the page is constructed."""
    return f"https://i.ytimg.com/vi/{quote(video_id)}/{name}.jpg"


@dataclass(frozen=True)
class ParsedSegment:
    """Ground truth recovered from a segment URI."""

    video_id: str
    session_id: str
    itag: int
    resolution_p: int
    kind: str
    media_seconds: float
    size_bytes: int


@dataclass(frozen=True)
class ParsedStatsReport:
    """Ground truth recovered from a playback report URI."""

    session_id: str
    video_id: str
    playback_position_s: float
    state: str
    stall_count: int
    stall_duration_s: float


def _query_params(query: str) -> Dict[str, Optional[str]]:
    """Split-based query parser (the ``urlparse``/``parse_qs`` pair was
    the hottest call in cleartext grouping).  Percent/plus decoding is
    only invoked when an escape is actually present."""
    params: Dict[str, Optional[str]] = {}
    if not query:
        return params
    for pair in query.split("&"):
        key, _, value = pair.partition("=")
        if "%" in value or "+" in value:
            value = unquote_plus(value)
        params[key] = value
    return params


def parse_uri(uri: str):
    """Parse a weblog URI into its ground-truth record.

    Returns a :class:`ParsedSegment`, a :class:`ParsedStatsReport`, or
    ``None`` for signalling/unknown URIs (watch pages, thumbnails,
    scripts carry no per-session ground truth we use).
    """
    scheme_sep = uri.find("://")
    if scheme_sep < 0:
        return None
    path_start = uri.find("/", scheme_sep + 3)
    if path_start < 0:
        return None
    path, _, query = uri[path_start:].partition("?")
    if path == "/videoplayback":
        params = _query_params(query)
        itag = int(params.get("itag"))
        quality = quality_for_itag(itag)
        mime = params.get("mime") or "video/mp4"
        return ParsedSegment(
            video_id=params.get("id") or "",
            session_id=params.get("cpn") or "",
            itag=itag,
            resolution_p=quality.resolution_p,
            kind="video" if mime.startswith("video") else "audio",
            media_seconds=float(params.get("dur") or 0.0),
            size_bytes=int(params.get("clen") or 0),
        )
    if path.startswith("/api/stats/"):
        params = _query_params(query)
        return ParsedStatsReport(
            session_id=params.get("cpn") or "",
            video_id=params.get("docid") or "",
            playback_position_s=float(params.get("cmt") or 0.0),
            state=params.get("state") or "unknown",
            stall_count=int(params.get("rebuf_count") or 0),
            stall_duration_s=float(params.get("rebuf_dur") or 0.0),
        )
    return None
