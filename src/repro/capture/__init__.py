"""Measurement substrate: weblog schema, proxy capture, URI ground
truth, encrypted views, device instrumentation and encrypted-session
reconstruction."""

from .anonymize import KEPT_URI_PARAMS, Anonymizer
from .device import DeviceLogger, PlaybackSummary, SegmentRecord
from .encryption import encrypt_view
from .proxy import WebProxy, server_ip_for
from .reconstruction import (
    ReconstructedSession,
    SessionReconstructor,
    is_youtube_host,
)
from .uri import (
    SIGNALLING_HOSTS,
    VIDEO_HOSTS,
    ParsedSegment,
    ParsedStatsReport,
    parse_uri,
    segment_uri,
    stats_report_uri,
    thumbnail_uri,
    watch_page_uri,
)
from .weblog import MalformedRecordError, WeblogEntry

__all__ = [
    "MalformedRecordError",
    "WeblogEntry",
    "Anonymizer",
    "KEPT_URI_PARAMS",
    "WebProxy",
    "server_ip_for",
    "encrypt_view",
    "DeviceLogger",
    "PlaybackSummary",
    "SegmentRecord",
    "SessionReconstructor",
    "ReconstructedSession",
    "is_youtube_host",
    "parse_uri",
    "ParsedSegment",
    "ParsedStatsReport",
    "segment_uri",
    "stats_report_uri",
    "watch_page_uri",
    "thumbnail_uri",
    "VIDEO_HOSTS",
    "SIGNALLING_HOSTS",
]
