"""Weblog records — the proxy's view of one HTTP(S) transaction.

§3.1: "The proxy is capable of registering all unencrypted HTTP traffic
including IP-port tuples, URI's, object sizes, transaction times,
request time-stamps and more.  Moreover, each log is annotated with a
set of transport layer performance metrics, i.e. bandwidth-delay
product (BDP), bytes-in-flight (BIF), packet loss, packet
retransmissions and RTT."

For encrypted flows the URI is absent (§5.2): "we only extract the
timestamp of the HTTP request, the server IP address and port, the size
of the requested object and the TCP statistics".  The TLS SNI still
exposes the server *name*, which is what the session-reconstruction
heuristic keys on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

__all__ = ["MalformedRecordError", "WeblogEntry"]


class MalformedRecordError(ValueError):
    """A weblog record carries a field no real transaction could produce.

    Subclasses :class:`ValueError` so pre-existing callers that caught
    ``ValueError`` keep working, while the serving layer can catch the
    *typed* error and quarantine the record in its dead-letter queue
    instead of letting a garbled log line kill a shard worker.
    """


#: Transport-annotation fields that must be finite and non-negative.
#: Collector glitches (the dominant failure mode in the deployments
#: Schmitt et al. describe) show up here as NaN or negative readings.
_METRIC_FIELDS = (
    "transaction_s",
    "rtt_min_ms",
    "rtt_avg_ms",
    "rtt_max_ms",
    "bdp_bytes",
    "bif_avg_bytes",
    "bif_max_bytes",
    "loss_pct",
    "retx_pct",
)


@dataclass
class WeblogEntry:
    """One proxy log line.

    Attributes mirror the left column of Table 1 plus bookkeeping:

    * ``timestamp_s`` — absolute request time (epoch-like seconds).
    * ``transaction_s`` — transfer duration; the *chunk time* feature is
      ``timestamp_s + transaction_s`` (when the chunk arrives).
    * ``object_bytes`` — the *chunk size* feature.
    * RTT min/avg/max, ``bdp_bytes``, ``bif_avg/max_bytes``,
      ``loss_pct``, ``retx_pct`` — transport annotations.
    * ``uri`` — full request URI for cleartext, ``None`` when encrypted.
    * ``server_name`` — Host header (cleartext) or TLS SNI (encrypted).
    * ``cached``/``compressed`` — proxy service marks; such entries are
      dropped during data preparation (§3.3).
    """

    subscriber_id: str
    timestamp_s: float
    server_name: str
    server_ip: str
    server_port: int
    object_bytes: int
    transaction_s: float
    rtt_min_ms: float
    rtt_avg_ms: float
    rtt_max_ms: float
    bdp_bytes: float
    bif_avg_bytes: float
    bif_max_bytes: float
    loss_pct: float
    retx_pct: float
    encrypted: bool = False
    uri: Optional[str] = None
    cached: bool = False
    compressed: bool = False

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise :class:`MalformedRecordError` unless every field is sane.

        Runs at construction, but is also re-invoked by consumers of
        *untrusted* streams (the serving shards, the real-time monitor):
        a record deserialised or fault-injected past ``__init__`` must
        still be caught before it poisons a tracker session.
        """
        if not self.subscriber_id:
            raise MalformedRecordError("subscriber_id must be non-empty")
        if not math.isfinite(self.timestamp_s):
            raise MalformedRecordError(
                f"timestamp must be finite, got {self.timestamp_s!r}"
            )
        if self.object_bytes < 0:
            raise MalformedRecordError(
                f"object size must be >= 0, got {self.object_bytes!r}"
            )
        for field_name in _METRIC_FIELDS:
            value = getattr(self, field_name)
            if not math.isfinite(value) or value < 0:
                raise MalformedRecordError(
                    f"{field_name} must be finite and >= 0, got {value!r}"
                )
        if self.encrypted and self.uri is not None:
            raise MalformedRecordError("encrypted entries cannot carry a URI")

    @property
    def arrival_s(self) -> float:
        """Chunk arrival time (request timestamp + transaction time)."""
        return self.timestamp_s + self.transaction_s

    @property
    def chunk_size(self) -> int:
        """Alias matching the paper's feature name."""
        return self.object_bytes
