"""Shared lazy workspace for experiment runs.

Corpus generation and model training dominate experiment runtime, and
several tables/figures share the same artifacts (e.g. Tables 3, 4 and
8, 9 all need the fitted stall detector).  A :class:`Workspace` builds
each artifact once on first use and caches it.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.baselines.prometheus import PrometheusBaseline
from repro.core.featurex import configure_cache
from repro.core.labeling import has_variation
from repro.core.representation import AvgRepresentationDetector
from repro.core.stall import StallDetector
from repro.core.switching import SwitchDetector
from repro.datasets.generate import (
    Corpus,
    generate_adaptive_corpus,
    generate_cleartext_corpus,
    generate_encrypted_corpus,
)
from repro.datasets.schema import SessionRecord

from .config import FULL, ExperimentConfig

__all__ = ["Workspace"]


class Workspace:
    """Caches corpora and fitted detectors for one experiment config."""

    def __init__(self, config: ExperimentConfig = FULL) -> None:
        self.config = config
        self._cache: Dict[str, object] = {}
        if config.feature_cache_dir is not None:
            configure_cache(directory=config.feature_cache_dir)

    # ------------------------------------------------------------------
    # Corpora
    # ------------------------------------------------------------------

    def cleartext_corpus(self) -> Corpus:
        """The §3.1 operator corpus (97% progressive, cleartext)."""
        if "cleartext" not in self._cache:
            self._cache["cleartext"] = generate_cleartext_corpus(
                self.config.cleartext_sessions,
                seed=self.config.seed,
                engine=self.config.corpus_engine,
            )
        return self._cache["cleartext"]

    def adaptive_corpus(self) -> Corpus:
        """The all-HAS cleartext corpus (representation/switching)."""
        if "adaptive" not in self._cache:
            self._cache["adaptive"] = generate_adaptive_corpus(
                self.config.adaptive_sessions,
                seed=self.config.seed + 1,
                engine=self.config.corpus_engine,
            )
        return self._cache["adaptive"]

    def encrypted_corpus(self) -> Corpus:
        """The §5.2 instrumented-device corpus (encrypted)."""
        if "encrypted" not in self._cache:
            self._cache["encrypted"] = generate_encrypted_corpus(
                self.config.encrypted_sessions,
                seed=self.config.seed + 2,
                engine=self.config.corpus_engine,
            )
        return self._cache["encrypted"]

    # ------------------------------------------------------------------
    # Prepared record views
    # ------------------------------------------------------------------

    def stall_records(self) -> List[SessionRecord]:
        """Cleartext records with stall ground truth (§4.1 training set)."""
        return [
            r
            for r in self.cleartext_corpus().records
            if r.stall_duration_s is not None and r.total_duration_s
        ]

    def representation_records(self) -> List[SessionRecord]:
        """Adaptive records with resolution ground truth (§4.2/§4.3)."""
        return [
            r
            for r in self.adaptive_corpus().records
            if r.resolutions is not None and r.resolutions.size > 0
        ]

    def encrypted_stall_records(self) -> List[SessionRecord]:
        return [
            r
            for r in self.encrypted_corpus().records
            if r.stall_duration_s is not None and r.total_duration_s
        ]

    def encrypted_representation_records(self) -> List[SessionRecord]:
        return [
            r
            for r in self.encrypted_corpus().records
            if r.resolutions is not None and r.resolutions.size > 0
        ]

    # ------------------------------------------------------------------
    # Fitted detectors
    # ------------------------------------------------------------------

    def stall_detector(self) -> StallDetector:
        if "stall_detector" not in self._cache:
            detector = StallDetector(
                n_estimators=self.config.n_estimators,
                random_state=self.config.seed,
                n_jobs=self.config.n_jobs,
            )
            detector.fit(self.stall_records())
            self._cache["stall_detector"] = detector
        return self._cache["stall_detector"]

    def representation_detector(self) -> AvgRepresentationDetector:
        if "representation_detector" not in self._cache:
            detector = AvgRepresentationDetector(
                n_estimators=self.config.n_estimators,
                random_state=self.config.seed,
                n_jobs=self.config.n_jobs,
            )
            detector.fit(self.representation_records())
            self._cache["representation_detector"] = detector
        return self._cache["representation_detector"]

    def switch_detector(self) -> SwitchDetector:
        """Switch detector calibrated on the cleartext HAS corpus (§4.3)."""
        if "switch_detector" not in self._cache:
            detector = SwitchDetector()
            records = self.representation_records()
            truth = np.array([has_variation(r) for r in records])
            if truth.any() and not truth.all():
                detector.calibrate(records, truth)
            self._cache["switch_detector"] = detector
        return self._cache["switch_detector"]

    def prometheus_baseline(self) -> PrometheusBaseline:
        if "prometheus" not in self._cache:
            baseline = PrometheusBaseline(
                n_estimators=self.config.n_estimators,
                random_state=self.config.seed,
                n_jobs=self.config.n_jobs,
            )
            baseline.fit(self.stall_records())
            self._cache["prometheus"] = baseline
        return self._cache["prometheus"]
