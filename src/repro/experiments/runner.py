"""Run experiments by id.

``run_experiment("tab3_4", workspace)`` returns the experiment's data
object and prints nothing; :func:`run_all` renders every table and
figure as text — the closest equivalent of regenerating the paper's
evaluation section.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.obs import get_registry, trace

from .config import FULL, ExperimentConfig
from .early import early_vs_final_curve, render_early_curve
from .figures import (
    figure1_chunk_sizes,
    figure2_stall_ecdfs,
    figure3_switch_session,
    figure4_score_cdfs,
    figure5_dataset_comparison,
)
from .report import (
    render_baseline_comparison,
    render_classifier_table,
    render_confusion_matrix,
    render_feature_gains,
    render_switch_evaluation,
)
from .tables import (
    baseline_comparison,
    section56_encrypted_switching,
    table2_stall_features,
    table5_representation_features,
    tables3_4_stall_classifier,
    tables6_7_representation_classifier,
    tables8_9_encrypted_stall,
    tables10_11_encrypted_representation,
)
from .workspace import Workspace

__all__ = ["EXPERIMENT_IDS", "run_experiment", "run_all"]

_RUNNERS: Dict[str, Callable[[Workspace], object]] = {
    "fig1": lambda ws: figure1_chunk_sizes(),
    "fig2": figure2_stall_ecdfs,
    "fig3": lambda ws: figure3_switch_session(),
    "fig4": figure4_score_cdfs,
    "fig5": figure5_dataset_comparison,
    "tab2": table2_stall_features,
    "tab3_4": tables3_4_stall_classifier,
    "tab5": table5_representation_features,
    "tab6_7": tables6_7_representation_classifier,
    "tab8_9": tables8_9_encrypted_stall,
    "tab10_11": tables10_11_encrypted_representation,
    "sec56": section56_encrypted_switching,
    "baseline": baseline_comparison,
    "early": early_vs_final_curve,
}

EXPERIMENT_IDS: List[str] = list(_RUNNERS)

_REG = get_registry()
_RUNS = _REG.counter(
    "repro_experiments_runs_total",
    "Experiments executed, by experiment id.",
    labelnames=("experiment",),
)
_LAST_RUN_SECONDS = _REG.gauge(
    "repro_experiments_last_run_seconds",
    "Duration of the most recent run of each experiment.",
    labelnames=("experiment",),
)


def run_experiment(experiment_id: str, workspace: Workspace):
    """Run one experiment; returns its data object."""
    if experiment_id not in _RUNNERS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {', '.join(EXPERIMENT_IDS)}"
        )
    with trace(f"experiments.{experiment_id}") as span:
        result = _RUNNERS[experiment_id](workspace)
    _RUNS.labels(experiment=experiment_id).inc()
    _LAST_RUN_SECONDS.labels(experiment=experiment_id).set(span.duration_s)
    return result


def run_all(config: ExperimentConfig = FULL) -> str:
    """Regenerate every table/figure; returns the full text report."""
    workspace = Workspace(config)
    sections: List[str] = []

    from .plots import ascii_cdfs, ascii_series

    fig1 = run_experiment("fig1", workspace)
    sections.append(
        "Figure 1 — chunk sizes in a stalled session\n"
        f"chunks: {fig1.times_s.size}, stalls at "
        f"{[round(t, 1) for t in fig1.stall_starts_s]}; "
        f"post-stall size dip observed: {fig1.sizes_dip_after_stalls()}\n"
        + ascii_series(fig1.sizes_bytes, title="chunk sizes over time:")
    )

    fig2 = run_experiment("fig2", workspace)
    sections.append(
        "Figure 2 — stall ECDFs\n"
        f"sessions with >=1 stall: {fig2.frac_with_stalls:.1%} (paper ~12%)\n"
        f"sessions with >1 stall:  {fig2.frac_more_than_one:.1%} (paper ~8%)\n"
        f"sessions with RR>0.1:    {fig2.frac_severe:.1%} (paper ~10%)"
    )

    fig3 = run_experiment("fig3", workspace)
    sections.append(
        "Figure 3 — Δt / Δsize at a representation switch\n"
        f"resolution walk: {sorted(set(fig3.resolutions.tolist()))}, "
        f"switches at {[round(t, 1) for t in fig3.switch_times_s]}"
    )

    sections.append(
        render_feature_gains(
            run_experiment("tab2", workspace),
            "Table 2 — stall-model features",
        )
    )

    tab34 = run_experiment("tab3_4", workspace)
    sections.append(render_classifier_table(tab34, "Table 3 — stall classifier"))
    sections.append(render_confusion_matrix(tab34, "Table 4 — stall confusion"))

    sections.append(
        render_feature_gains(
            run_experiment("tab5", workspace),
            "Table 5 — representation-model features",
        )
    )

    tab67 = run_experiment("tab6_7", workspace)
    sections.append(
        render_classifier_table(tab67, "Table 6 — representation classifier")
    )
    sections.append(
        render_confusion_matrix(tab67, "Table 7 — representation confusion")
    )

    fig4 = run_experiment("fig4", workspace)
    sections.append(
        "Figure 4 — switch-score CDFs (cleartext)\n"
        f"threshold={fig4.threshold:.0f}; "
        f"without-switches below: {fig4.accuracy_without:.1%} (paper 78%), "
        f"with-switches above: {fig4.accuracy_with:.1%} (paper 76%)\n"
        + ascii_cdfs(
            [("no switches", fig4.cdf_without), ("switches", fig4.cdf_with)],
            log_x=True,
            title="CDF of STD(CUSUM(Δsize×Δt)):",
        )
    )

    fig5 = run_experiment("fig5", workspace)
    sections.append(
        "Figure 5 — dataset comparison (encrypted vs cleartext)\n"
        f"chunks >1MB: clear {fig5.frac_clear_over_1mb:.1%}, "
        f"encrypted {fig5.frac_encrypted_over_1mb:.1%} (paper ~10%)\n"
        f"median inter-arrival: clear {fig5.median_iat_clear:.2f}s, "
        f"encrypted {fig5.median_iat_encrypted:.2f}s "
        "(paper: encrypted slightly lower)\n"
        + ascii_cdfs(
            [
                ("cleartext", fig5.size_cdf_clear),
                ("encrypted", fig5.size_cdf_encrypted),
            ],
            log_x=True,
            title="CDF of segment sizes (bytes):",
        )
    )

    tab89 = run_experiment("tab8_9", workspace)
    sections.append(
        render_classifier_table(tab89, "Table 8 — stall model on encrypted")
    )
    sections.append(
        render_confusion_matrix(tab89, "Table 9 — encrypted stall confusion")
    )

    tab1011 = run_experiment("tab10_11", workspace)
    sections.append(
        render_classifier_table(
            tab1011, "Table 10 — representation model on encrypted"
        )
    )
    sections.append(
        render_confusion_matrix(
            tab1011, "Table 11 — encrypted representation confusion"
        )
    )

    sections.append(
        render_switch_evaluation(
            run_experiment("sec56", workspace),
            "§5.6 — switch detection on encrypted",
        )
    )

    sections.append(
        render_baseline_comparison(
            run_experiment("baseline", workspace),
            "Baseline — Prometheus-style binary classifier",
        )
    )

    sections.append(
        render_early_curve(
            run_experiment("early", workspace),
            "Early prediction — agreement with final labels at k chunks",
        )
    )

    return "\n\n".join(sections)
