"""Terminal plotting for the figure experiments.

The figure generators return data; this module renders it as compact
ASCII plots so ``run_all`` / the CLI can show the *shapes* the paper's
figures show (chunk-size collapses, separated CDFs) without any
plotting dependency.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.timeseries.stats import Ecdf

__all__ = ["ascii_series", "ascii_cdfs"]


def ascii_series(
    values: Sequence[float],
    width: int = 60,
    height: int = 10,
    title: Optional[str] = None,
) -> str:
    """Render a value series as ASCII bars (one column per sample bin)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return "(empty series)"
    if width < 1 or height < 1:
        raise ValueError("width and height must be positive")
    # bin to the target width by taking per-bin maxima (peaks matter)
    if arr.size > width:
        edges = np.linspace(0, arr.size, width + 1).astype(int)
        sampled = np.array(
            [arr[a:b].max() for a, b in zip(edges[:-1], edges[1:]) if b > a]
        )
    else:
        sampled = arr
    top = sampled.max()
    if top <= 0:
        top = 1.0
    rows = []
    for level in range(height, 0, -1):
        threshold = top * (level - 0.5) / height
        rows.append("".join("#" if v >= threshold else " " for v in sampled))
    rows.append("-" * sampled.size)
    if title:
        rows.insert(0, title)
    rows.append(f"max={top:.3g}  n={arr.size}")
    return "\n".join(rows)


def ascii_cdfs(
    curves: Sequence[Tuple[str, Ecdf]],
    width: int = 60,
    height: int = 12,
    log_x: bool = False,
    title: Optional[str] = None,
) -> str:
    """Render one or more ECDFs on a shared grid.

    Each curve gets its own glyph (`*`, `o`, `+`, ...); overlapping
    cells show the later curve's glyph.
    """
    if not curves:
        return "(no curves)"
    if width < 2 or height < 2:
        raise ValueError("width and height must be >= 2")
    glyphs = "*o+x@%"

    supports = [c.x for _, c in curves if c.x.size > 0]
    if not supports:
        return "(empty curves)"
    lo = min(float(s.min()) for s in supports)
    hi = max(float(s.max()) for s in supports)
    if hi <= lo:
        hi = lo + 1.0
    if log_x:
        # zero values cannot live on a log axis: start the grid at the
        # smallest positive support point instead
        positives = np.concatenate([s[s > 0] for s in supports])
        lo = float(positives.min()) if positives.size else 1e-9
        if hi <= lo:
            hi = lo * 10.0
        xs = np.logspace(np.log10(lo), np.log10(hi), width)
    else:
        xs = np.linspace(lo, hi, width)

    grid = [[" "] * width for _ in range(height)]
    for index, (_, curve) in enumerate(curves):
        glyph = glyphs[index % len(glyphs)]
        for col, x in enumerate(xs):
            p = curve(float(x))
            row = height - 1 - int(round(p * (height - 1)))
            grid[row][col] = glyph

    rows = []
    if title:
        rows.append(title)
    for i, cells in enumerate(grid):
        p = 1.0 - i / (height - 1)
        rows.append(f"{p:4.1f} |" + "".join(cells))
    rows.append("     +" + "-" * width)
    rows.append(f"      {lo:.3g} ... {hi:.3g}" + ("  (log x)" if log_x else ""))
    legend = "  ".join(
        f"{glyphs[i % len(glyphs)]} {name}" for i, (name, _) in enumerate(curves)
    )
    rows.append("      " + legend)
    return "\n".join(rows)
