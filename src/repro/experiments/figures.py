"""Generators for every figure in the paper's evaluation.

Each function returns the *data* of the figure (series / ECDFs /
distributions) plus the summary quantities the paper quotes in prose,
so benchmarks can both regenerate and sanity-check the shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.datasets.schema import SessionRecord
from repro.network.path import NetworkPath, Outage
from repro.streaming.adaptive import AdaptivePlayer, AdaptivePlayerConfig
from repro.streaming.catalog import DASH_LADDER, Video
from repro.streaming.progressive import (
    ProgressivePlayer,
    ProgressivePlayerConfig,
)
from repro.timeseries.stats import Ecdf, ecdf

from .workspace import Workspace

__all__ = [
    "Figure1Data",
    "figure1_chunk_sizes",
    "Figure2Data",
    "figure2_stall_ecdfs",
    "Figure3Data",
    "figure3_switch_session",
    "Figure4Data",
    "figure4_score_cdfs",
    "Figure5Data",
    "figure5_dataset_comparison",
]


# ----------------------------------------------------------------------
# Figure 1 — chunk sizes in a video session with stalls
# ----------------------------------------------------------------------


@dataclass
class Figure1Data:
    """Per-chunk (arrival time, size) series of a stalled session."""

    times_s: np.ndarray
    sizes_bytes: np.ndarray
    stall_starts_s: List[float]

    def sizes_dip_after_stalls(self) -> bool:
        """The Figure-1 signature: post-stall chunks shrink markedly."""
        if not self.stall_starts_s:
            return False
        for stall_start in self.stall_starts_s:
            after = self.sizes_bytes[self.times_s > stall_start][:3]
            before = self.sizes_bytes[self.times_s <= stall_start]
            if after.size and before.size and after.min() < 0.5 * before.max():
                return True
        return False


def figure1_chunk_sizes(seed: int = 5) -> Figure1Data:
    """One progressive session forced through two bandwidth outages."""
    rng = np.random.default_rng(seed)
    video = Video(video_id="fig1-video", duration_s=240.0, complexity=1.0)
    path = NetworkPath(
        "good",
        video.duration_s * 4 + 180.0,
        rng,
        outages=[Outage(25.0, 55.0, 0.04), Outage(110.0, 145.0, 0.04)],
    )
    session = ProgressivePlayer(
        ProgressivePlayerConfig(mean_patience_stall_s=120.0)
    ).play(video, path, rng)
    return Figure1Data(
        times_s=session.chunk_times(),
        sizes_bytes=session.chunk_sizes(),
        stall_starts_s=[stall.start_s for stall in session.stalls],
    )


# ----------------------------------------------------------------------
# Figure 2 — ECDFs of stall count and rebuffering ratio per session
# ----------------------------------------------------------------------


@dataclass
class Figure2Data:
    stall_count_ecdf: Ecdf
    rebuffering_ratio_ecdf: Ecdf
    frac_with_stalls: float
    frac_more_than_one: float
    frac_severe: float


def figure2_stall_ecdfs(workspace: Workspace) -> Figure2Data:
    """ECDFs over the cleartext corpus (paper: 12% stalled, ~10% RR>=0.1)."""
    records = workspace.stall_records()
    counts = np.array([r.stall_count for r in records], dtype=float)
    ratios = np.array([r.rebuffering_ratio() for r in records])
    return Figure2Data(
        stall_count_ecdf=ecdf(counts),
        rebuffering_ratio_ecdf=ecdf(ratios),
        frac_with_stalls=float(np.mean(counts > 0)),
        frac_more_than_one=float(np.mean(counts > 1)),
        frac_severe=float(np.mean(ratios > 0.1)),
    )


# ----------------------------------------------------------------------
# Figure 3 — Δt and Δsize at a representation switch
# ----------------------------------------------------------------------


@dataclass
class Figure3Data:
    times_s: np.ndarray
    sizes_bytes: np.ndarray
    resolutions: np.ndarray
    switch_times_s: List[float]

    def deltas(self) -> Tuple[np.ndarray, np.ndarray]:
        """(Δt, Δsize) between consecutive video chunks."""
        return np.diff(self.times_s), np.abs(np.diff(self.sizes_bytes))

    def has_upswitch(self) -> bool:
        return bool(np.any(np.diff(self.resolutions) > 0))


def figure3_switch_session(seed: int = 12) -> Figure3Data:
    """A HAS session that starts low and upswitches (the 144p->480p walk).

    An initial throughput under-estimate forces a low first rung; the
    hybrid ABR then walks the ladder up — each step re-entering the
    fast-start phase, which is what the figure visualises.
    """
    rng = np.random.default_rng(seed)
    video = Video(video_id="fig3-video", duration_s=180.0, complexity=1.0)
    path = NetworkPath("good", video.duration_s * 4 + 180.0, rng)
    ladder = [q for q in DASH_LADDER if q.resolution_p <= 480]
    config = AdaptivePlayerConfig(
        ladder=ladder,
        initial_bandwidth_hint=False,   # cold start -> begins at 144p
        include_audio=False,
    )
    session = AdaptivePlayer(config).play(video, path, rng)
    times = session.chunk_times()
    sizes = session.chunk_sizes()
    resolutions = np.array([c.resolution_p for c in session.video_chunks])
    switches = [
        float(times[i + 1])
        for i in range(resolutions.size - 1)
        if resolutions[i + 1] != resolutions[i]
    ]
    return Figure3Data(
        times_s=times,
        sizes_bytes=sizes,
        resolutions=resolutions,
        switch_times_s=switches,
    )


# ----------------------------------------------------------------------
# Figure 4 — CDFs of STD(CUSUM(Δsize × Δt)) with/without switches
# ----------------------------------------------------------------------


@dataclass
class Figure4Data:
    cdf_without: Ecdf
    cdf_with: Ecdf
    threshold: float
    accuracy_without: float
    accuracy_with: float


def figure4_score_cdfs(workspace: Workspace) -> Figure4Data:
    """The two switch-score CDFs and the calibrated threshold (§4.3)."""
    records = workspace.representation_records()
    detector = workspace.switch_detector()
    distributions = detector.score_distributions(records)
    evaluation = detector.evaluate(records)
    return Figure4Data(
        cdf_without=ecdf(distributions["without"]),
        cdf_with=ecdf(distributions["with"]),
        threshold=detector.threshold,
        accuracy_without=evaluation.accuracy_without,
        accuracy_with=evaluation.accuracy_with,
    )


# ----------------------------------------------------------------------
# Figure 5 — segment size / inter-arrival CDFs, encrypted vs cleartext
# ----------------------------------------------------------------------


@dataclass
class Figure5Data:
    size_cdf_clear: Ecdf
    size_cdf_encrypted: Ecdf
    iat_cdf_clear: Ecdf
    iat_cdf_encrypted: Ecdf
    frac_clear_over_1mb: float
    frac_encrypted_over_1mb: float
    median_iat_clear: float
    median_iat_encrypted: float


def _interarrivals(records: List[SessionRecord]) -> np.ndarray:
    out = []
    for record in records:
        if record.n_chunks >= 2:
            out.append(np.diff(record.timestamps))
    return np.concatenate(out) if out else np.empty(0)


def figure5_dataset_comparison(workspace: Workspace) -> Figure5Data:
    """Size and inter-arrival distributions of both corpora (§5.3)."""
    clear = workspace.stall_records()
    encrypted = workspace.encrypted_stall_records()
    sizes_clear = np.concatenate([r.sizes for r in clear])
    sizes_enc = np.concatenate([r.sizes for r in encrypted])
    iat_clear = _interarrivals(clear)
    iat_enc = _interarrivals(encrypted)
    return Figure5Data(
        size_cdf_clear=ecdf(sizes_clear),
        size_cdf_encrypted=ecdf(sizes_enc),
        iat_cdf_clear=ecdf(iat_clear),
        iat_cdf_encrypted=ecdf(iat_enc),
        frac_clear_over_1mb=float(np.mean(sizes_clear > 1e6)),
        frac_encrypted_over_1mb=float(np.mean(sizes_enc > 1e6)),
        median_iat_clear=float(np.median(iat_clear)),
        median_iat_encrypted=float(np.median(iat_enc)),
    )
