"""Early-vs-final accuracy-at-k-chunks convergence curve.

How soon can the early predictor be trusted?  For every encrypted
session we replay the first ``k`` chunks into a
:class:`~repro.online.snapshot.StreamingSessionState`, ask the fitted
detectors for a provisional label via
:meth:`~repro.online.early.EarlyPredictor.predict_partial`, and compare
against the *final* label the same detector assigns to the complete
session.  Agreement@k therefore measures convergence of the online
path onto the offline pipeline — the quantity an operator needs to
choose ``--early-after-chunks`` — not ground-truth accuracy (which is
bounded by the final model itself and reported in Tables 8–11).
"""

from __future__ import annotations

from dataclasses import dataclass
from types import SimpleNamespace
from typing import List, Sequence, Tuple

import numpy as np

from repro.online.early import EarlyPredictor
from repro.online.snapshot import state_from_record_prefix

from .workspace import Workspace

__all__ = ["EarlyAccuracyCurve", "early_vs_final_curve", "render_early_curve"]

DEFAULT_KS: Tuple[int, ...] = (2, 4, 8, 16, 32)


@dataclass(frozen=True)
class EarlyAccuracyCurve:
    """Agreement between k-chunk provisional and final labels.

    ``coverage[i]`` is the fraction of sessions that have at least
    ``ks[i]`` chunks (shorter sessions are excluded from that point's
    agreement rates — their "partial" view is already the full
    session).  ``confidence[i]`` is the mean combined confidence of
    the provisional predictions at that k.
    """

    ks: Tuple[int, ...]
    sessions: int
    coverage: Tuple[float, ...]
    stall_agreement: Tuple[float, ...]
    representation_agreement: Tuple[float, ...]
    confidence: Tuple[float, ...]


def early_vs_final_curve(
    workspace: Workspace, ks: Sequence[int] = DEFAULT_KS
) -> EarlyAccuracyCurve:
    """Compute the convergence curve on the encrypted corpus."""
    ks = tuple(sorted(set(int(k) for k in ks)))
    if not ks or ks[0] < 1:
        raise ValueError("ks must be positive chunk counts")
    stall = workspace.stall_detector()
    representation = workspace.representation_detector()
    # EarlyPredictor only touches .stall / .representation — a shim
    # spares refitting a full QoEFramework on the workspace corpora.
    early = EarlyPredictor(
        SimpleNamespace(stall=stall, representation=representation),
        after_chunks=ks[0],
    )

    records = workspace.encrypted_stall_records()
    final_stall = stall.predict(records)
    final_representation = representation.predict(records)

    counts = np.zeros(len(ks), dtype=int)
    stall_hits = np.zeros(len(ks), dtype=int)
    representation_hits = np.zeros(len(ks), dtype=int)
    confidence_sums = np.zeros(len(ks), dtype=float)
    for record, want_stall, want_representation in zip(
        records, final_stall, final_representation
    ):
        for i, k in enumerate(ks):
            if record.n_chunks < k:
                break
            state = state_from_record_prefix(record, k)
            provisional = early.predict_partial(
                state, record.session_id, record.session_id
            )
            counts[i] += 1
            stall_hits[i] += provisional.stall_class == want_stall
            representation_hits[i] += (
                provisional.representation_class == want_representation
            )
            confidence_sums[i] += provisional.confidence

    def rate(hits: np.ndarray) -> Tuple[float, ...]:
        return tuple(
            float(h) / c if c else 0.0 for h, c in zip(hits, counts)
        )

    return EarlyAccuracyCurve(
        ks=ks,
        sessions=len(records),
        coverage=tuple(
            float(c) / len(records) if records else 0.0 for c in counts
        ),
        stall_agreement=rate(stall_hits),
        representation_agreement=rate(representation_hits),
        confidence=rate(confidence_sums),
    )


def render_early_curve(curve: EarlyAccuracyCurve, title: str) -> str:
    lines: List[str] = [
        title,
        f"sessions: {curve.sessions} (encrypted corpus)",
        "  k   coverage   stall-agree   repr-agree   mean-conf",
    ]
    for i, k in enumerate(curve.ks):
        lines.append(
            f"{k:>3}   {curve.coverage[i]:>7.1%}   "
            f"{curve.stall_agreement[i]:>10.1%}   "
            f"{curve.representation_agreement[i]:>9.1%}   "
            f"{curve.confidence[i]:>9.3f}"
        )
    return "\n".join(lines)
