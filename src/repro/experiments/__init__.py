"""Experiment harness: regenerates every table and figure of the paper."""

from .config import FULL, SMALL, ExperimentConfig
from .early import (
    EarlyAccuracyCurve,
    early_vs_final_curve,
    render_early_curve,
)
from .figures import (
    figure1_chunk_sizes,
    figure2_stall_ecdfs,
    figure3_switch_session,
    figure4_score_cdfs,
    figure5_dataset_comparison,
)
from .generalization import (
    OTHER_SERVICES,
    GeneralizationResult,
    ServiceProfile,
    evaluate_generalization,
    generate_service_records,
)
from .runner import EXPERIMENT_IDS, run_all, run_experiment
from .tables import (
    baseline_comparison,
    section56_encrypted_switching,
    table2_stall_features,
    table5_representation_features,
    tables3_4_stall_classifier,
    tables6_7_representation_classifier,
    tables8_9_encrypted_stall,
    tables10_11_encrypted_representation,
)
from .workspace import Workspace

__all__ = [
    "ExperimentConfig",
    "FULL",
    "SMALL",
    "Workspace",
    "EXPERIMENT_IDS",
    "run_experiment",
    "run_all",
    "figure1_chunk_sizes",
    "figure2_stall_ecdfs",
    "figure3_switch_session",
    "figure4_score_cdfs",
    "figure5_dataset_comparison",
    "table2_stall_features",
    "tables3_4_stall_classifier",
    "table5_representation_features",
    "tables6_7_representation_classifier",
    "tables8_9_encrypted_stall",
    "tables10_11_encrypted_representation",
    "section56_encrypted_switching",
    "baseline_comparison",
    "ServiceProfile",
    "OTHER_SERVICES",
    "GeneralizationResult",
    "generate_service_records",
    "evaluate_generalization",
    "EarlyAccuracyCurve",
    "early_vs_final_curve",
    "render_early_curve",
]
