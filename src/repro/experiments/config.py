"""Experiment configuration presets.

``FULL`` is the default for the benchmark harness (big enough for
stable paper-shaped numbers); ``SMALL`` keeps integration tests fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["ExperimentConfig", "FULL", "SMALL"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Sizes and seeds of one full experiment run.

    Attributes
    ----------
    cleartext_sessions:
        Size of the §3.1-style operator corpus (stall experiments).
    adaptive_sessions:
        Size of the all-HAS corpus (representation / switching).
    encrypted_sessions:
        Size of the §5.2 instrumented-device corpus (722 in the paper).
    seed:
        Base seed; each corpus derives its own stream from it.
    n_estimators:
        Forest size for the two classifiers.
    n_jobs:
        Worker processes for forest fitting/scoring, CV folds, and
        feature builds (1 serial, -1 all cores).  Results are identical
        for any value — only wall-clock changes.
    feature_cache_dir:
        Directory of the on-disk feature-matrix cache; ``None`` keeps
        caching in-memory only.  The workspace defaults this to
        ``<workspace>/feature-cache`` so repeated runs on an unchanged
        corpus skip the feature builds entirely.
    corpus_engine:
        Corpus generation engine (``"vectorized"`` or ``"per-session"``);
        ``None`` defers to :func:`repro.datasets.genx.get_default_engine`.
        Both engines produce bit-identical corpora — only wall-clock
        changes.
    """

    cleartext_sessions: int = 3000
    adaptive_sessions: int = 1200
    encrypted_sessions: int = 722
    seed: int = 7
    n_estimators: int = 60
    n_jobs: int = 1
    feature_cache_dir: Optional[str] = None
    corpus_engine: Optional[str] = None

    def __post_init__(self) -> None:
        if min(
            self.cleartext_sessions,
            self.adaptive_sessions,
            self.encrypted_sessions,
        ) < 10:
            raise ValueError("corpora must have at least 10 sessions")
        if self.n_jobs == 0:
            raise ValueError("n_jobs must not be 0 (use 1 for serial)")
        if self.corpus_engine is not None:
            from repro.datasets import genx

            if self.corpus_engine not in genx.ENGINES:
                raise ValueError(
                    f"unknown corpus engine {self.corpus_engine!r}; "
                    f"known: {', '.join(genx.ENGINES)}"
                )


FULL = ExperimentConfig()

SMALL = ExperimentConfig(
    cleartext_sessions=400,
    adaptive_sessions=250,
    encrypted_sessions=150,
    seed=7,
    n_estimators=25,
)
